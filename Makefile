# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

# Pinned lint/vuln tool versions — bump deliberately, not via @latest, so
# a tool release can't break CI on an unrelated day. `make lint-tools`
# installs them; `make lint` skips (loudly) any tool that isn't on PATH,
# so offline or minimal environments still get a green `make ci`.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

# staticcheck runs the full catalog minus package-comment and
# underscore-name style checks, which this codebase deliberately does not
# follow everywhere (test fixtures, generated tables).
STATICCHECK_CHECKS ?= all,-ST1000,-ST1003

.PHONY: build test race bench fmt vet lint lint-tools fuzz-smoke fleet-smoke trace-smoke escapecheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine fans campaigns across goroutines, the build shards its
# placement/candidate phases, the fleet coordinator serves concurrent
# HTTP workers, and the obs tracer is written into by every partition
# worker; keep the concurrent packages honest under the race detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiment ./internal/core ./internal/measure ./internal/netnode ./internal/fleet ./internal/p2p ./internal/wire ./internal/obs

# Short fuzz passes over the differential fuzz targets that guard the
# flat-node and arena-scheduler kernels against their reference
# implementations. 30s each: enough to shake out shallow divergence
# regressions on every CI run without burning runner minutes. Set
# FUZZ_RACE=-race to also run the fuzz executions under the race
# detector (the stable CI leg does; slower, so off by default locally).
FUZZ_RACE ?=
fuzz-smoke:
	$(GO) test $(FUZZ_RACE) -run='^$$' -fuzz=FuzzFlatNodeMatchesReference -fuzztime=30s ./internal/p2p
	$(GO) test $(FUZZ_RACE) -run='^$$' -fuzz=FuzzArenaMatchesReference -fuzztime=30s ./internal/sim
	$(GO) test $(FUZZ_RACE) -run='^$$' -fuzz=FuzzParallelMatchesSerial -fuzztime=30s ./internal/sim

# Distributed-campaign smoke: a coordinator + 2 local workers (one
# induced worker failure) must merge a tiny sweep byte-identical to the
# single-process engine. See scripts/fleetsmoke.sh.
fleet-smoke:
	sh scripts/fleetsmoke.sh

# Observability smoke: a figure3 run traced (serial and parallel kernels)
# must produce a CDF CSV byte-identical to the untraced run, and both
# trace exports (Perfetto JSON + binary spool) must validate. See
# scripts/tracesmoke.sh.
trace-smoke:
	sh scripts/tracesmoke.sh

# Bench smoke: the Figure 3 benchmarks, the serial-vs-sharded Build pair,
# the arena-vs-reference scheduler pair, and the 2000-node flood, one
# iteration each (the scheduler microbenches get real benchtime via their
# internal loops). The engine pair catches campaign-scheduling
# regressions (EngineParallel must beat EngineSerial on multi-core
# runners); the Build pair catches regressions in the sharded
# construction path; the scheduler and flood benches run with -benchmem
# so allocs/op lands in the artifact — SchedulerArena must stay at
# 0 allocs/op. CI stores this output as an artifact and diffs it against
# the previous run (scripts/benchdiff.sh), flagging wall-clock regressions
# beyond 30% and ANY allocs/op increase.
bench:
	$(GO) test -bench='Figure3|^BenchmarkBuild|^BenchmarkFlood' -benchmem -benchtime=1x -timeout=20m .
	$(GO) test -bench='^BenchmarkScheduler' -benchmem -benchtime=100000x .

# Escape-budget gate: the compiler's escape analysis over the kernel
# packages, diffed per hot function against the pinned manifest. See
# scripts/escapecheck.sh.
escapecheck:
	sh scripts/escapecheck.sh

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Static analysis beyond vet. bcbpt-lint is this repo's own analyzer
# suite (internal/lint): determinism, hot-path allocation, and lock-I/O
# invariants, run through the real `go vet -vettool` unit-check protocol
# so results cache per package like any vet pass. It builds from the
# tree with zero module dependencies, so it ALWAYS runs — offline too.
# staticcheck and govulncheck run only when installed (see lint-tools);
# a missing external tool prints a notice instead of failing so
# sandboxed machines without network access still get a green `make ci`.
lint:
	$(GO) build -o bin/bcbpt-lint ./cmd/bcbpt-lint
	$(GO) vet -vettool=$(CURDIR)/bin/bcbpt-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks $(STATICCHECK_CHECKS) ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (make lint-tools)"; \
	fi

ci: build fmt vet lint escapecheck test race fuzz-smoke fleet-smoke trace-smoke bench
