# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine fans campaigns across goroutines; keep the concurrent
# packages honest under the race detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiment ./internal/measure ./internal/netnode

# Bench smoke: the Figure 3 benchmarks, one iteration each — includes the
# serial-vs-parallel engine pair, so a scheduling regression shows up as
# EngineParallel no longer beating EngineSerial on multi-core runners.
bench:
	$(GO) test -bench=Figure3 -benchtime=1x -timeout=20m .

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt vet test race bench
