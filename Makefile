# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine fans campaigns across goroutines and the build shards its
# placement/candidate phases; keep the concurrent packages honest under
# the race detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiment ./internal/core ./internal/measure ./internal/netnode

# Bench smoke: the Figure 3 benchmarks plus the serial-vs-sharded Build
# pair, one iteration each. The engine pair catches campaign-scheduling
# regressions (EngineParallel must beat EngineSerial on multi-core
# runners); the Build pair catches regressions in the sharded
# construction path (BuildSharded must beat BuildSerial there too).
# CI stores this output as an artifact and diffs it against the previous
# run (scripts/benchdiff.sh) to flag wall-clock regressions.
bench:
	$(GO) test -bench='Figure3|^BenchmarkBuild' -benchtime=1x -timeout=20m .

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt vet test race bench
