// Figure 3: compare the transaction propagation delay distribution of the
// simulated Bitcoin protocol, LBC, and BCBPT (dt = 25ms) — the paper's
// headline result. Expect BCBPT's CDF left of LBC's, left of Bitcoin's.
//
// This example runs a reduced-scale version (400 nodes, 60 runs) that
// finishes in well under a minute; use cmd/bcbpt-sim for full scale.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
)

func main() {
	fig, err := experiment.Figure3(experiment.Options{
		Nodes:    400,
		Runs:     60,
		Seed:     1,
		Deadline: 2 * time.Minute,
	})
	if err != nil {
		log.Fatalf("figure3: %v", err)
	}
	fmt.Println(fig)

	// The reproduction criterion: median ordering.
	var bitcoin, lbc, bcbpt time.Duration
	for _, s := range fig.Series {
		switch s.Name {
		case "bitcoin":
			bitcoin = s.Dist.Median()
		case "lbc":
			lbc = s.Dist.Median()
		default:
			bcbpt = s.Dist.Median()
		}
	}
	fmt.Printf("median Δt: bcbpt=%v < lbc=%v < bitcoin=%v : %v\n",
		bcbpt.Round(time.Millisecond), lbc.Round(time.Millisecond),
		bitcoin.Round(time.Millisecond), bcbpt < lbc && lbc < bitcoin)
}
