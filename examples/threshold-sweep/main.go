// Threshold sweep (Figure 4): BCBPT's Δt distribution at dt ∈ {30, 50,
// 100}ms, plus a finer sweep showing where the effect saturates. The
// paper's finding: "less distance threshold performs less variance of
// delays" because smaller dt bounds each cluster's physical span.
//
// The whole grid — seven thresholds × two replications each — goes
// through the campaign engine as a single work queue (one
// ThresholdSweepCtx call), so the sweep saturates every core and still
// produces bit-identical results for any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/experiment"
)

func main() {
	o := experiment.Options{
		Nodes:        400,
		Runs:         60,
		Seed:         3,
		Deadline:     2 * time.Minute,
		Replications: 2,
		Workers:      runtime.GOMAXPROCS(0),
	}

	// The paper's Fig. 4 set plus a finer extension including the Fig. 3
	// operating point — one engine call schedules all of them together.
	paperSet := []time.Duration{30 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	fineSet := []time.Duration{15 * time.Millisecond, 25 * time.Millisecond, 200 * time.Millisecond}

	start := time.Now()
	fig, err := experiment.ThresholdSweepCtx(context.Background(), o,
		append(append([]time.Duration(nil), paperSet...), fineSet...))
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}

	paperFig := experiment.FigureResult{Title: fig.Title, Series: fig.Series[:len(paperSet)]}
	fmt.Println(paperFig)

	fmt.Println("== extension: finer threshold sweep ==")
	for _, s := range fig.Series[len(paperSet):] {
		fmt.Printf("%-14s median=%v std=%v\n",
			s.Name, s.Dist.Median().Round(time.Millisecond), s.Dist.Std().Round(time.Millisecond))
	}
	fmt.Printf("\n(%d campaigns × %d replications on %d workers, wall time %v)\n",
		len(fig.Series), o.Replications, o.Workers, time.Since(start).Round(time.Millisecond))
}
