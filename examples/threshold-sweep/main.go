// Threshold sweep (Figure 4): BCBPT's Δt distribution at dt ∈ {30, 50,
// 100}ms, plus a finer sweep showing where the effect saturates. The
// paper's finding: "less distance threshold performs less variance of
// delays" because smaller dt bounds each cluster's physical span.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
)

func main() {
	o := experiment.Options{
		Nodes:    400,
		Runs:     60,
		Seed:     3,
		Deadline: 2 * time.Minute,
	}

	// The paper's Fig. 4 set.
	fig, err := experiment.Figure4(o)
	if err != nil {
		log.Fatalf("figure4: %v", err)
	}
	fmt.Println(fig)

	// Extension: a finer sweep including the Fig. 3 operating point.
	fine, err := experiment.ThresholdSweep(o, []time.Duration{
		15 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		200 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("fine sweep: %v", err)
	}
	fmt.Println("== extension: finer threshold sweep ==")
	for _, s := range fine.Series {
		fmt.Printf("%-14s median=%v std=%v\n",
			s.Name, s.Dist.Median().Round(time.Millisecond), s.Dist.Std().Round(time.Millisecond))
	}
}
