// Live network: spin up nine real TCP nodes in-process, let them cluster
// with the BCBPT join protocol (probe → threshold test → JOIN → CLUSTER),
// then propagate an ECDSA-signed transaction through the INV/GETDATA/TX
// relay and watch it arrive everywhere. Everything here crosses real
// sockets — this is the deployable protocol, not the simulator.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"repro/internal/chain"
	"repro/internal/netnode"
)

func main() {
	const n = 9
	nodes := make([]*netnode.Node, 0, n)
	for i := 0; i < n; i++ {
		cfg := netnode.DefaultConfig()
		cfg.Threshold = 100 * time.Millisecond // loopback: everyone is close
		cfg.PingInterval = 0
		node, err := netnode.New(cfg)
		if err != nil {
			log.Fatalf("new node %d: %v", i, err)
		}
		if err := node.Start(); err != nil {
			log.Fatalf("start node %d: %v", i, err)
		}
		defer node.Stop()
		nodes = append(nodes, node)
	}

	// Node 0 founds the cluster; the rest join through it, learning each
	// other from the CLUSTER member lists. The timeout bounds the whole
	// TCP join phase so a wedged peer cannot hang the example.
	joinCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := nodes[0].JoinCluster(joinCtx, nil, 3); err != nil {
		log.Fatalf("found cluster: %v", err)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].JoinCluster(joinCtx, []string{nodes[0].Addr()}, 3); err != nil {
			log.Fatalf("join %d: %v", i, err)
		}
	}
	fmt.Printf("cluster %d formed over TCP:\n", nodes[0].ClusterID())
	for i, node := range nodes {
		rtt := time.Duration(0)
		if r, ok := node.RTT(nodes[0].Addr()); ok {
			rtt = r
		}
		fmt.Printf("  node %d %s  peers=%d  rtt->seed=%v\n", i, node.Addr(), node.NumPeers(), rtt)
	}

	// A real signed transaction: key, coinbase-style payment, relay.
	key, err := chain.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	tx := chain.Coinbase(1, 50_000, key.Address())
	start := time.Now()
	if err := nodes[0].SubmitTx(tx); err != nil {
		log.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, node := range nodes {
			if !node.HasTx(tx.ID()) {
				all = false
				break
			}
		}
		if all {
			fmt.Printf("tx %s reached all %d nodes in %v\n", tx.ID(), n, time.Since(start).Round(time.Microsecond))
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("propagation timed out")
		}
		time.Sleep(time.Millisecond)
	}
}
