// Attack evaluation (the paper's §V.C future work): eclipse exposure as
// the adversary budget grows, and partition exposure as the threshold
// shrinks. The paper's worry, quantified: "it would seem possible for an
// attacker to more easily launch eclipse attacks by concentrating its bad
// peers within a small cluster."
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/experiment"
)

func build(seed int64, dt time.Duration) *experiment.Built {
	cfg := core.DefaultConfig()
	cfg.Threshold = dt
	b, err := experiment.Build(context.Background(), experiment.Spec{
		Nodes:    300,
		Seed:     seed,
		Protocol: experiment.ProtoBCBPT,
		BCBPT:    cfg,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	return b
}

func main() {
	// Eclipse: sweep the adversary budget against a fixed victim.
	fmt.Println("== eclipse exposure vs adversary budget (dt=25ms) ==")
	var rows []attack.SweepResult
	for _, budget := range []int{4, 8, 16, 32} {
		const trials = 3
		row := attack.SweepResult{Adversaries: budget, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			b := build(int64(trial)+1, 25*time.Millisecond)
			res, err := attack.Eclipse(b.Net, b.BCBPT, b.Measurer.ID(), attack.EclipseSpec{
				Adversaries:  budget,
				JitterMeters: 5_000,
				SettleTime:   5 * time.Minute,
			})
			if err != nil {
				log.Fatalf("eclipse: %v", err)
			}
			row.MeanBadFrac += res.Fraction() / trials
			if res.Eclipsed {
				row.Eclipses++
			}
		}
		rows = append(rows, row)
	}
	fmt.Println(attack.SweepTable(rows))

	// Partition: smaller thresholds make smaller clusters with thinner
	// cuts to the rest of the network.
	fmt.Println("== partition exposure vs threshold ==")
	fmt.Printf("%10s %10s %8s %9s %9s\n", "dt", "clusters", "minCut", "meanCut", "isolated")
	for _, dt := range []time.Duration{15 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		b := build(9, dt)
		res, err := attack.Partition(b.Net, b.BCBPT)
		if err != nil {
			log.Fatalf("partition: %v", err)
		}
		fmt.Printf("%10v %10d %8d %9.1f %9d\n", dt, res.Clusters, res.MinCut, res.MeanCut, res.Isolated)
	}
}
