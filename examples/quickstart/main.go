// Quickstart: build a 200-node world, cluster it with BCBPT (dt = 25ms),
// inject one transaction from the measuring node and print each
// connection's Δt — the paper's core measurement (eq. 5) in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	cfg := core.DefaultConfig() // dt = 25ms, the paper's Fig. 3 setting
	built, err := experiment.Build(context.Background(), experiment.Spec{
		Nodes:    200,
		Seed:     7,
		Protocol: experiment.ProtoBCBPT,
		BCBPT:    cfg,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	clusters := built.BCBPT.Clusters()
	fmt.Printf("BCBPT clustered %d nodes into %d clusters (dt=%v)\n",
		built.Net.NumNodes(), len(clusters), cfg.Threshold)

	res, err := built.Campaign(25, time.Minute)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	fmt.Printf("Δt(m,n) over %d samples: %s\n", res.Dist.N(), res.Dist)
	fmt.Println("\nCDF of transaction arrival at the measuring node's connections:")
	for _, p := range res.Dist.CDF(6) {
		fmt.Printf("  %3.0f%%  %v\n", p.Fraction*100, p.Value.Round(time.Millisecond))
	}
}
