// Command bcbpt-fleet distributes campaign sweeps across machines.
//
// Usage:
//
//	# One coordinator (token-locked, shards spooled to disk)...
//	BCBPT_FLEET_TOKEN=s3cret bcbpt-fleet serve -listen :9777 -spool-dir /var/tmp/fleet \
//	    -experiment figure3 -nodes 5000 -runs 1000 -replications 16
//
//	# ...any number of workers, anywhere (they heartbeat their leases,
//	# so -lease-ttl never has to cover a slow unit's wall time):
//	BCBPT_FLEET_TOKEN=s3cret bcbpt-fleet work -coordinator http://coordinator:9777
//
//	# Custom scenarios beyond the presets: a JSON campaign file.
//	bcbpt-fleet serve -sweep sweep.json
//
//	# Single-machine demo/smoke: coordinator plus N in-process workers.
//	bcbpt-fleet run -experiment figure3 -fleet-workers 2
//
// The merged figure is bit-identical to a single-process
// `bcbpt-sim -experiment figure3` with the same sweep flags, regardless
// of worker count, failures, or commit order — see internal/fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's profiles
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "work":
		err = cmdWork(ctx, os.Args[2:])
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "bcbpt-fleet: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-fleet: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bcbpt-fleet — distribute campaign sweeps across machines

Subcommands:
  serve   host a sweep's work queue and print the merged figure
  work    pull and execute units from a coordinator
  run     coordinator + N in-process workers on one machine

Run "bcbpt-fleet <subcommand> -h" for flags.
`)
}

// sweepFlags are the experiment-definition flags shared by serve and run;
// they mirror bcbpt-sim so the two frontends define identical sweeps. A
// -sweep file overrides the preset flags entirely.
type sweepFlags struct {
	experiment   *string
	sweepFile    *string
	nodes        *int
	runs         *int
	seed         *int64
	replications *int
	deadline     *time.Duration
	streaming    *bool
	buildWorkers *int
}

func addSweepFlags(fs *flag.FlagSet) *sweepFlags {
	return &sweepFlags{
		experiment:   fs.String("experiment", "figure3", "sweep to distribute: figure3|figure4"),
		sweepFile:    fs.String("sweep", "", "custom sweep definition (JSON campaign file; overrides -experiment and the preset flags)"),
		nodes:        fs.Int("nodes", 1000, "network size (paper: ~5000)"),
		runs:         fs.Int("runs", 200, "measurement injections per replication (paper: ~1000)"),
		seed:         fs.Int64("seed", 1, "root random seed"),
		replications: fs.Int("replications", 1, "independently seeded networks per series"),
		deadline:     fs.Duration("deadline", 2*time.Minute, "virtual-time deadline per run"),
		streaming:    fs.Bool("streaming", false, "ship bounded-memory sketch shards instead of every sample"),
		buildWorkers: fs.Int("build-workers", 0, "sharding inside each build (0 = GOMAXPROCS; any value is bit-identical)"),
	}
}

func (s *sweepFlags) options() experiment.Options {
	return experiment.Options{
		Nodes:        *s.nodes,
		Runs:         *s.runs,
		Seed:         *s.seed,
		Deadline:     *s.deadline,
		Replications: *s.replications,
		Streaming:    *s.streaming,
		BuildWorkers: *s.buildWorkers,
	}
}

// campaigns resolves the flag set into the sweep definition and figure
// title — the same campaign builders bcbpt-sim's figures run on, which is
// what makes `bcbpt-fleet run` output diffable against `bcbpt-sim`. A
// -sweep JSON file (validated loudly: schema, shippability, buildable
// specs) replaces the presets and opens the fleet to arbitrary
// scenarios.
func (s *sweepFlags) campaigns() ([]experiment.CampaignSpec, string, error) {
	if *s.sweepFile != "" {
		sf, err := experiment.LoadSweepFile(*s.sweepFile)
		if err != nil {
			return nil, "", err
		}
		title := sf.Title
		if title == "" {
			title = fmt.Sprintf("Custom sweep — %s", filepath.Base(*s.sweepFile))
		}
		return sf.Campaigns, title, nil
	}
	o := s.options()
	switch *s.experiment {
	case "figure3":
		return experiment.Figure3Campaigns(o), experiment.Figure3Title, nil
	case "figure4":
		return experiment.ThresholdSweepCampaigns(o, experiment.Figure4Thresholds()), experiment.Figure4Title, nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q (want figure3 or figure4)", *s.experiment)
	}
}

// addTokenFlag declares -token; resolveToken applies the env-var
// fallback after parsing. Flags show up in `ps` output on shared
// machines, so BCBPT_FLEET_TOKEN is the preferred channel and the flag
// an explicit override — and the env value must never be the flag's
// *default*, or `-h` (and the usage dump ExitOnError prints on any
// mistyped flag) would echo the secret in cleartext.
func addTokenFlag(fs *flag.FlagSet) *string {
	return fs.String("token", "",
		`shared bearer token for the mutating endpoints (default $BCBPT_FLEET_TOKEN; -token "" forces an open coordinator)`)
}

// resolveToken returns the parsed -token value; only when the flag was
// not given at all does BCBPT_FLEET_TOKEN apply. An *explicit* -token ""
// must win over the env var, or an operator with the token exported in
// their profile could never run an open coordinator.
func resolveToken(fs *flag.FlagSet, flagValue string) string {
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "token" {
			explicit = true
		}
	})
	if explicit {
		return flagValue
	}
	return os.Getenv("BCBPT_FLEET_TOKEN")
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	sf := addSweepFlags(fs)
	listen := fs.String("listen", ":9777", "coordinator listen address")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "heartbeat window: a silent worker's unit reassigns after this (workers renew at TTL/3, so slow units are safe)")
	token := addTokenFlag(fs)
	spoolDir := fs.String("spool-dir", "", "spool committed shards to this directory instead of coordinator memory")
	csvPath := fs.String("csv", "", "write the merged figure's CDF data to this CSV file")
	linger := fs.Duration("linger", 10*time.Second, "keep serving this long after completion so workers observe \"done\" and exit cleanly")
	debugAddr := addDebugFlag(fs)
	fs.Parse(args)

	campaigns, title, err := sf.campaigns()
	if err != nil {
		return err
	}
	if err := startDebug(*debugAddr); err != nil {
		return err
	}
	coord, err := fleet.NewCoordinator(campaigns, fleet.CoordinatorConfig{
		LeaseTTL: *leaseTTL,
		Token:    resolveToken(fs, *token),
		SpoolDir: *spoolDir,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on %s (%d units; point workers at it with `bcbpt-fleet work -coordinator http://<host>%s`)\n",
		l.Addr(), coord.Status().Units, *listen)
	srv, serveErr := serveCoordinator(coord, l)
	defer srv.Close()
	err = waitAndReport(ctx, coord, serveErr, title, *csvPath)
	if ctx.Err() == nil && *linger > 0 {
		// Idle workers poll about once a second; answering them "done"
		// for a little longer beats letting them discover a vanished
		// coordinator through connection-refused retries.
		t := time.NewTimer(*linger)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return err
}

func cmdWork(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required), e.g. http://10.0.0.5:9777")
	name := fs.String("name", defaultWorkerName(), "worker name in coordinator diagnostics")
	parallelism := fs.Int("parallelism", 0, "units run concurrently (0 = GOMAXPROCS)")
	token := addTokenFlag(fs)
	debugAddr := addDebugFlag(fs)
	fs.Parse(args)
	if *coordinator == "" {
		return errors.New("work: -coordinator is required")
	}
	if err := startDebug(*debugAddr); err != nil {
		return err
	}
	w := &fleet.Worker{CoordinatorURL: *coordinator, Name: *name, Parallelism: *parallelism, Token: resolveToken(fs, *token)}
	fmt.Printf("worker %s pulling from %s\n", *name, *coordinator)
	return w.Run(ctx)
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	sf := addSweepFlags(fs)
	fleetWorkers := fs.Int("fleet-workers", 2, "in-process workers to spawn")
	parallelism := fs.Int("parallelism", 0, "units run concurrently per worker (0 = GOMAXPROCS)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "heartbeat window: a silent worker's unit reassigns after this (workers renew at TTL/3)")
	token := addTokenFlag(fs)
	spoolDir := fs.String("spool-dir", "", "spool committed shards to this directory instead of coordinator memory")
	induceFailure := fs.Bool("induce-failure", false, "lease one unit to a worker that dies without committing, forcing an expiry reassignment")
	csvPath := fs.String("csv", "", "write the merged figure's CDF data to this CSV file")
	debugAddr := addDebugFlag(fs)
	fs.Parse(args)

	campaigns, title, err := sf.campaigns()
	if err != nil {
		return err
	}
	if *fleetWorkers < 1 {
		return errors.New("run: need at least one worker")
	}
	if err := startDebug(*debugAddr); err != nil {
		return err
	}
	tok := resolveToken(fs, *token)
	coord, err := fleet.NewCoordinator(campaigns, fleet.CoordinatorConfig{
		LeaseTTL: *leaseTTL,
		Token:    tok,
		SpoolDir: *spoolDir,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	url := "http://" + l.Addr().String()
	srv, serveErr := serveCoordinator(coord, l)
	defer srv.Close()

	if *induceFailure {
		// A worker that takes a unit to its grave: lease and walk away.
		// The unit comes back after -lease-ttl expires (the dead worker
		// sends no heartbeats) and the sweep still merges bit-identical —
		// the failover path, exercised end to end (the reassignment count
		// is printed with the figure).
		saboteur := fleet.NewClient(url, nil)
		saboteur.Token = tok
		resp, err := saboteur.Lease(ctx, "induced-failure")
		if err != nil {
			return fmt.Errorf("induce-failure lease: %w", err)
		}
		if resp.Status != fleet.LeaseGranted {
			return fmt.Errorf("induce-failure lease not granted: %s", resp.Status)
		}
		fmt.Printf("induced failure: campaign %d replication %d leased and abandoned (reassigns after %v)\n",
			resp.Lease.Campaign, resp.Lease.Replication, *leaseTTL)
	}

	// If every worker dies with units still pending (persistent commit
	// rejections, an unreachable port), nothing will ever complete the
	// sweep — cancel the wait instead of hanging, and report the workers'
	// errors. Workers that exit cleanly only do so once the coordinator
	// has signalled done, so the cancel can never race a healthy finish.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	workerErrs := make([]error, *fleetWorkers)
	var wg sync.WaitGroup
	for i := 0; i < *fleetWorkers; i++ {
		w := &fleet.Worker{
			CoordinatorURL: url,
			Name:           fmt.Sprintf("local-%d", i),
			Parallelism:    *parallelism,
			Token:          tok,
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			workerErrs[slot] = w.Run(runCtx)
		}(i)
	}
	go func() {
		wg.Wait()
		select {
		case <-coord.Done():
		default:
			cancelRun()
		}
	}()
	fmt.Printf("coordinator on %s, %d in-process workers, %d units\n", url, *fleetWorkers, coord.Status().Units)

	err = waitAndReport(runCtx, coord, serveErr, title, *csvPath)
	wg.Wait()
	if werr := errors.Join(workerErrs...); werr != nil && ctx.Err() == nil {
		if err != nil {
			return fmt.Errorf("workers failed: %w (coordinator: %v)", werr, err)
		}
		err = werr
	}
	return err
}

// addDebugFlag declares -debug-addr on a subcommand's flag set.
func addDebugFlag(fs *flag.FlagSet) *string {
	return fs.String("debug-addr", "",
		"serve net/http/pprof (and expvar) on this address, e.g. localhost:6060; empty disables")
}

// startDebug serves the default mux — where net/http/pprof registers —
// on addr. Diagnostics only, kept off the coordinator's own listener so
// profiling endpoints are never exposed on the fleet port.
func startDebug(addr string) error {
	if addr == "" {
		return nil
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug-addr: %w", err)
	}
	fmt.Fprintf(os.Stderr, "(debug server on http://%s/debug/pprof/)\n", l.Addr())
	go http.Serve(l, nil) //nolint — diagnostics listener lives for the process
	return nil
}

// serveCoordinator serves the coordinator's HTTP endpoints on l.
func serveCoordinator(coord *fleet.Coordinator, l net.Listener) (*http.Server, <-chan error) {
	srv := &http.Server{Handler: coord}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	return srv, serveErr
}

// progressInterval paces the coordinator's progress log lines.
const progressInterval = 15 * time.Second

// logProgress prints one queue-progress line. Expired (leases past their
// deadline nobody has reclaimed) and Reassigned (survived worker
// failures) get their own numbers: a stalled queue shows up as Expired
// climbing while Done stands still, which a lumped "leased" count hides.
// Throughput and ETA (sliding-window, see StatusResponse) appear once
// the coordinator has seen enough commits to extrapolate, and a second
// line breaks progress down per campaign.
func logProgress(s fleet.StatusResponse) {
	var b strings.Builder
	fmt.Fprintf(&b, "progress: %d/%d units done, %d leased, %d expired, %d pending, %d reassigned, %d renewals",
		s.Done, s.Units, s.Leased, s.Expired, s.Pending, s.Reassigned, s.Renewed)
	if s.CommitsPerMinute > 0 {
		fmt.Fprintf(&b, ", %.1f commits/min", s.CommitsPerMinute)
	}
	if s.EtaMillis > 0 {
		fmt.Fprintf(&b, ", ETA %v", (time.Duration(s.EtaMillis) * time.Millisecond).Round(time.Second))
	}
	fmt.Println(b.String())
	if len(s.Campaigns) > 0 {
		b.Reset()
		b.WriteString("  campaigns:")
		for _, cs := range s.Campaigns {
			fmt.Fprintf(&b, " %s %d/%d", cs.Name, cs.Done, cs.Units)
		}
		fmt.Println(b.String())
	}
}

// waitAndReport blocks until the sweep completes (or ctx cancels, or the
// HTTP server dies — a dead server means no worker can ever finish the
// sweep, so waiting on would hang forever), then prints the merged
// figure and optional CSV. While waiting it logs queue progress every
// progressInterval.
func waitAndReport(ctx context.Context, coord *fleet.Coordinator, serveErr <-chan error, title, csvPath string) error {
	start := time.Now()
	waitDone := make(chan error, 1)
	go func() { waitDone <- coord.Wait(ctx) }()
	progress := time.NewTicker(progressInterval)
	defer progress.Stop()
	var waitErr error
wait:
	for {
		select {
		case waitErr = <-waitDone:
			break wait
		case <-progress.C:
			logProgress(coord.Status())
		case err := <-serveErr:
			return fmt.Errorf("coordinator server: %w", err)
		}
	}
	if errors.Is(waitErr, context.Canceled) || errors.Is(waitErr, context.DeadlineExceeded) {
		status := coord.Status()
		return fmt.Errorf("interrupted with %d/%d units committed: %w", status.Done, status.Units, waitErr)
	}

	outcomes, err := coord.Outcomes()
	if err != nil {
		return err
	}
	fig := experiment.FigureResult{Title: title}
	for _, oc := range outcomes {
		fig.Series = append(fig.Series, experiment.Series{Name: oc.Name, Dist: oc.Result.Dist, Lost: oc.Result.Lost})
	}
	fmt.Println(fig)
	status := coord.Status()
	summary := fmt.Sprintf("(%d units, %d lease reassignments, %d lease renewals, wall time %v",
		status.Units, status.Reassigned, status.Renewed, time.Since(start).Round(time.Millisecond))
	if status.CommitsPerMinute > 0 {
		summary += fmt.Sprintf(", %.1f commits/min over the last window", status.CommitsPerMinute)
	}
	fmt.Println(summary + ")")
	if csvPath != "" {
		if err := writeCSV(csvPath, fig); err != nil {
			return err
		}
	}
	return waitErr
}

// writeCSV dumps the figure's CDF series in the canonical encoding
// (FigureResult.WriteCSV) shared with bcbpt-sim, so outputs of the same
// sweep diff byte for byte.
func writeCSV(path string, fig experiment.FigureResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fig.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("(CDF data written to %s)\n", path)
	return nil
}

func defaultWorkerName() string {
	host, err := os.Hostname()
	if err != nil {
		return fmt.Sprintf("worker-%d", os.Getpid())
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
