// Command bcbptd runs a live BCBPT node over TCP: it listens for peers,
// measures ping latency to seed nodes, joins the closest cluster under
// the threshold (eq. 1 of the paper), and relays transactions with the
// INV/GETDATA/TX protocol of Fig. 1.
//
// Usage:
//
//	bcbptd -listen 127.0.0.1:18555
//	bcbptd -listen 127.0.0.1:18556 -seeds 127.0.0.1:18555 -dt 25ms
//
// The node logs accepted transactions and its cluster membership; stop it
// with SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chain"
	"repro/internal/netnode"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:18555", "TCP listen address")
		seedsFlag = flag.String("seeds", "", "comma-separated seed addresses to probe and join")
		dt        = flag.Duration("dt", 25*time.Millisecond, "BCBPT latency threshold (0 disables the proximity test)")
		probes    = flag.Int("probes", 3, "pings per candidate during join")
		pingEvery = flag.Duration("ping-interval", 10*time.Second, "keepalive ping period")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "bcbptd: ", log.LstdFlags|log.Lmicroseconds)

	cfg := netnode.DefaultConfig()
	cfg.ListenAddr = *listen
	cfg.Threshold = *dt
	cfg.PingInterval = *pingEvery

	node, err := netnode.New(cfg)
	if err != nil {
		logger.Fatalf("new node: %v", err)
	}
	node.OnTx = func(tx *chain.Tx, from string) {
		logger.Printf("tx %s accepted from %s (%d bytes)", tx.ID(), from, tx.Size())
	}
	if err := node.Start(); err != nil {
		logger.Fatalf("start: %v", err)
	}
	defer node.Stop()
	logger.Printf("listening on %s", node.Addr())

	var seeds []string
	if *seedsFlag != "" {
		seeds = strings.Split(*seedsFlag, ",")
	}
	// SIGINT/SIGTERM during the join (seed probing can block on slow or
	// filtered hosts for seconds) cancels it instead of leaving a daemon
	// stuck half-joined; after the join the same context just waits for
	// the shutdown signal.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := node.JoinCluster(ctx, seeds, *probes); err != nil {
		if ctx.Err() != nil {
			logger.Printf("join cancelled by signal, shutting down")
			return
		}
		logger.Fatalf("join: %v", err)
	}
	logger.Printf("cluster %d, %d peers: %v", node.ClusterID(), node.NumPeers(), node.PeerAddrs())
	for _, a := range node.PeerAddrs() {
		if rtt, ok := node.RTT(a); ok {
			logger.Printf("peer %s rtt=%v", a, rtt)
		}
	}

	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "\n")
	logger.Printf("received shutdown signal, shutting down")
}
