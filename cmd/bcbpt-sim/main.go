// Command bcbpt-sim runs the paper's simulation experiments and prints
// the regenerated figures.
//
// Usage:
//
//	bcbpt-sim -experiment figure3 -nodes 5000 -runs 1000
//	bcbpt-sim -experiment figure4
//	bcbpt-sim -experiment variance-connections
//	bcbpt-sim -experiment overhead
//	bcbpt-sim -experiment eclipse -adversaries 32
//	bcbpt-sim -experiment partition
//	bcbpt-sim -experiment crawl
//
// The defaults are laptop-scale (1000 nodes, 200 runs); pass -nodes 5000
// -runs 1000 for the paper's full configuration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/topology"
)

func main() {
	var (
		exp          = flag.String("experiment", "figure3", "experiment: figure3|figure4|variance-connections|overhead|eclipse|partition|crawl|doublespend|forks")
		nodes        = flag.Int("nodes", 1000, "network size (paper: ~5000)")
		runs         = flag.Int("runs", 200, "measurement injections per replication (paper: ~1000)")
		seed         = flag.Int64("seed", 1, "root random seed")
		churnOn      = flag.Bool("churn", false, "enable join/leave churn during measurement")
		threshold    = flag.Duration("dt", 25*time.Millisecond, "BCBPT latency threshold")
		adversaries  = flag.Int("adversaries", 16, "eclipse: adversarial nodes")
		deadline     = flag.Duration("deadline", 2*time.Minute, "virtual-time deadline per run")
		csvPath      = flag.String("csv", "", "write figure CDF data to this CSV file (figure3/figure4 only)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign-engine worker pool size")
		buildWorkers = flag.Int("build-workers", 0, "worker pool size inside each network build (0 = GOMAXPROCS); any value builds an identical network")
		simWorkers   = flag.Int("sim-workers", 1, "event-dispatch workers inside each simulation (1 = serial kernel; >= 2 enables cluster-partitioned parallel dispatch); any value produces identical output")
		reps         = flag.Int("replications", 1, "independently seeded networks per series (samples pool)")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget for the whole experiment (0 = none)")
		streaming    = flag.Bool("streaming", false, "pool samples into bounded-memory sketches (~1% quantile error) instead of retaining every Δt; use for paper-scale sweeps")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (diagnose hot-path regressions from a release binary)")
		memProfile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		tracePath    = flag.String("trace", "", "export a sim-time event trace of the first campaign (replication 0) as Chrome trace_event JSON to this file, plus a binary spool at <file>.bin; open in Perfetto (ui.perfetto.dev)")
		winProfile   = flag.Bool("window-profile", false, "with -sim-workers >= 2: print per-partition PDES window timings (busy, barrier wait, imbalance) after the run")
	)
	flag.Parse()

	o := experiment.Options{
		Nodes:        *nodes,
		Runs:         *runs,
		Seed:         *seed,
		Deadline:     *deadline,
		ChurnOn:      *churnOn,
		Workers:      *workers,
		BuildWorkers: *buildWorkers,
		SimWorkers:   *simWorkers,
		Replications: *reps,
		Streaming:    *streaming,
		Trace:        *tracePath,
	}
	if *winProfile {
		// PDES profiling needs a wall clock and a registry to aggregate
		// per-unit profiles into; both are observational only.
		o.Metrics = experiment.NewMetricsRegistry()
		o.Clock = func() int64 { return time.Now().UnixNano() }
	}

	// Profiles flush explicitly before every exit path: main leaves via
	// os.Exit, which would skip deferred writers.
	flushProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-sim: %v\n", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM cancels the engine cooperatively: completed
	// replications are still merged and reported as partial results, and
	// network builds in progress stop at their next context poll. Once
	// the first signal has cancelled ctx, stop() restores default signal
	// handling so a second Ctrl-C force-kills — the phases that still do
	// not consult ctx (attack settling, doublespend/forks measurement)
	// must stay killable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sigCtx := ctx // the signal ctx only — a -timeout expiry must not uninstall the handler
	go func() {
		<-sigCtx.Done()
		stop()
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runErr := run(ctx, *exp, o, *threshold, *adversaries, *csvPath)
	if *winProfile {
		printWindowProfile(o.Metrics)
	}
	flushProfiles()
	if runErr != nil {
		if errors.Is(runErr, experiment.ErrPartialResult) {
			fmt.Fprintf(os.Stderr, "bcbpt-sim: interrupted, results above are partial (%v)\n", runErr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "bcbpt-sim: %v\n", runErr)
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile and/or arms a heap-profile write,
// returning a flush function to call before exit. Both paths are for
// diagnosing hot-path regressions from a release binary without a test
// harness: -cpuprofile for dispatch throughput, -memprofile for
// allocation regressions (the steady-state event kernel and flood path
// are designed to allocate nothing).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "(CPU profile written to %s)\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bcbpt-sim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bcbpt-sim: memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "(heap profile written to %s)\n", memPath)
		}
	}, nil
}

// printWindowProfile renders the PDES window timings aggregated across
// every unit of the run: how much wall time partitions spent dispatching
// inside windows, how much worker capacity idled at barriers, and how
// unevenly the partitions were loaded (max/mean busy — the factor the
// slowest partition costs each window).
func printWindowProfile(m *obs.Registry) {
	get := func(name string) uint64 { return m.Counter(name).Value() }
	windows := get("bcbpt_pdes_windows_total")
	if windows == 0 {
		fmt.Fprintln(os.Stderr, "(no PDES windows profiled — -window-profile needs -sim-workers >= 2 and an experiment that runs measurement campaigns)")
		return
	}
	busy := time.Duration(get("bcbpt_pdes_busy_nanos_total"))
	wait := time.Duration(get("bcbpt_pdes_barrier_wait_nanos_total"))
	fmt.Printf("\n== PDES window profile (all units pooled) ==\n")
	fmt.Printf("windows dispatched:   %d\n", windows)
	fmt.Printf("staged cross-events:  %d\n", get("bcbpt_pdes_staged_events_total"))
	fmt.Printf("partition busy time:  %v\n", busy.Round(time.Millisecond))
	fmt.Printf("barrier wait (idle):  %v\n", wait.Round(time.Millisecond))
	const prefix = `bcbpt_pdes_partition_busy_nanos_total{partition="`
	var parts []obs.CounterValue
	var max, sum uint64
	for _, cv := range m.CounterValues() {
		if strings.HasPrefix(cv.Name, prefix) {
			parts = append(parts, cv)
			sum += cv.Value
			if cv.Value > max {
				max = cv.Value
			}
		}
	}
	if len(parts) > 0 && sum > 0 {
		mean := float64(sum) / float64(len(parts))
		fmt.Printf("imbalance (max/mean): %.2f over %d partitions\n", float64(max)/mean, len(parts))
		sort.Slice(parts, func(i, j int) bool {
			pi, _ := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(parts[i].Name, prefix), `"}`))
			pj, _ := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(parts[j].Name, prefix), `"}`))
			return pi < pj
		})
		for _, cv := range parts {
			label := strings.TrimSuffix(strings.TrimPrefix(cv.Name, prefix), `"}`)
			fmt.Printf("  partition %-4s busy %v\n", label, time.Duration(cv.Value).Round(time.Millisecond))
		}
	}
}

func run(ctx context.Context, exp string, o experiment.Options, dt time.Duration, adversaries int, csvPath string) error {
	start := time.Now()
	defer func() { fmt.Printf("\n(wall time %v)\n", time.Since(start).Round(time.Millisecond)) }()

	switch exp {
	case "figure3":
		fig, err := experiment.Figure3Ctx(ctx, o)
		if err := printFigure(fig, err, csvPath); err != nil {
			return err
		}
	case "figure4":
		fig, err := experiment.Figure4Ctx(ctx, o)
		if err := printFigure(fig, err, csvPath); err != nil {
			return err
		}
	case "variance-connections":
		res, err := experiment.VarianceVsConnectionsCtx(ctx, o, nil)
		if len(res.Points) > 0 {
			fmt.Println(res)
		}
		if err != nil {
			return err
		}
	case "overhead":
		results, err := experiment.OverheadCtx(ctx, o)
		if len(results) > 0 {
			fmt.Println("== §IV.A — measurement overhead ==")
			for _, r := range results {
				fmt.Println(r)
			}
		}
		if err != nil {
			return err
		}
	case "eclipse":
		return runEclipse(ctx, o, dt, adversaries)
	case "partition":
		return runPartition(ctx, o, dt)
	case "crawl":
		return runCrawl(ctx, o)
	case "doublespend":
		return runDoubleSpend(ctx, o, dt)
	case "forks":
		return runForks(ctx, o, dt)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// printFigure renders a figure (partial figures included — an interrupted
// sweep still reports the replications that completed) and propagates the
// sweep error so main can flag partial output.
func printFigure(fig experiment.FigureResult, sweepErr error, csvPath string) error {
	if len(fig.Series) > 0 {
		fmt.Println(fig)
		if err := writeCSV(csvPath, fig); err != nil {
			// Join rather than mask: a failed CSV write must not hide
			// that the figure above is partial (exit-code-2 signal).
			return errors.Join(err, sweepErr)
		}
	}
	return sweepErr
}

// writeCSV dumps a figure's CDF series to path (no-op when path is "")
// in the canonical encoding shared with bcbpt-fleet.
func writeCSV(path string, fig experiment.FigureResult) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fig.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("(CDF data written to %s)\n", path)
	return nil
}

// runDoubleSpend races conflicting transactions under each protocol.
func runDoubleSpend(ctx context.Context, o experiment.Options, dt time.Duration) error {
	fmt.Println("== extension — double-spend race (the paper's motivating attack) ==")
	offsets := []time.Duration{0, 50 * time.Millisecond, 150 * time.Millisecond, 500 * time.Millisecond, time.Second}
	for _, proto := range []experiment.ProtocolKind{experiment.ProtoBitcoin, experiment.ProtoBCBPT} {
		cfg := core.DefaultConfig()
		cfg.Threshold = dt
		res, err := experiment.DoubleSpend(ctx, experiment.DoubleSpendSpec{
			Nodes:    o.Nodes,
			Seed:     o.Seed,
			Protocol: proto,
			BCBPT:    cfg,
			Offsets:  offsets,
			Trials:   5,
			Deadline: o.Deadline,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}

// runForks races miners under each protocol and reports fork rates.
func runForks(ctx context.Context, o experiment.Options, dt time.Duration) error {
	fmt.Println("== extension — fork rate vs protocol (ref [9] metric) ==")
	for _, proto := range []experiment.ProtocolKind{experiment.ProtoBitcoin, experiment.ProtoLBC, experiment.ProtoBCBPT} {
		cfg := core.DefaultConfig()
		cfg.Threshold = dt
		res, err := experiment.ForkRace(ctx, experiment.ForkSpec{
			Nodes:         o.Nodes,
			Seed:          o.Seed,
			Protocol:      proto,
			BCBPT:         cfg,
			Miners:        o.Nodes / 20,
			Blocks:        150,
			BlockInterval: time.Second,
			BlockTxs:      100,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}

// buildBCBPT constructs a BCBPT network for the attack experiments; ctx
// cancels a build in progress.
func buildBCBPT(ctx context.Context, o experiment.Options, dt time.Duration) (*experiment.Built, error) {
	cfg := core.DefaultConfig()
	cfg.Threshold = dt
	return experiment.Build(ctx, experiment.Spec{
		Nodes:        o.Nodes,
		Seed:         o.Seed,
		Protocol:     experiment.ProtoBCBPT,
		BCBPT:        cfg,
		BuildWorkers: o.BuildWorkers,
	})
}

func runEclipse(ctx context.Context, o experiment.Options, dt time.Duration, adversaries int) error {
	fmt.Printf("== §V.C — eclipse exposure (dt=%v) ==\n", dt)
	var rows []attack.SweepResult
	for _, budget := range []int{adversaries / 4, adversaries / 2, adversaries, adversaries * 2} {
		if budget < 1 {
			continue
		}
		const trials = 3
		row := attack.SweepResult{Adversaries: budget, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			b, err := buildBCBPT(ctx, experiment.Options{
				Nodes: o.Nodes, Seed: o.Seed + int64(trial), Runs: o.Runs, Deadline: o.Deadline,
				BuildWorkers: o.BuildWorkers,
			}, dt)
			if err != nil {
				return err
			}
			victim := b.Measurer.ID()
			res, err := attack.Eclipse(b.Net, b.BCBPT, victim, attack.EclipseSpec{
				Adversaries:  budget,
				JitterMeters: 5_000,
				SettleTime:   5 * time.Minute,
			})
			if err != nil {
				return err
			}
			row.MeanBadFrac += res.Fraction() / trials
			if res.Eclipsed {
				row.Eclipses++
			}
		}
		rows = append(rows, row)
	}
	fmt.Println(attack.SweepTable(rows))
	return nil
}

func runPartition(ctx context.Context, o experiment.Options, dt time.Duration) error {
	fmt.Printf("== §V.C — partition exposure by threshold ==\n")
	fmt.Printf("%10s %10s %10s %10s %10s\n", "dt", "clusters", "minCut", "meanCut", "isolated")
	for _, th := range []time.Duration{15 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		b, err := buildBCBPT(ctx, o, th)
		if err != nil {
			return err
		}
		res, err := attack.Partition(b.Net, b.BCBPT)
		if err != nil {
			return err
		}
		fmt.Printf("%10v %10d %10d %10.1f %10d\n", th, res.Clusters, res.MinCut, res.MeanCut, res.Isolated)
	}
	return nil
}

func runCrawl(ctx context.Context, o experiment.Options) error {
	fmt.Println("== crawler — ping/pong RTT census (methodology of refs [5],[12]) ==")
	pcfg := p2p.DefaultConfig()
	pcfg.Seed = o.Seed
	pcfg.Validation = p2p.ValidationNone
	net, err := p2p.NewNetwork(pcfg)
	if err != nil {
		return err
	}
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("placement")
	ids := make([]p2p.NodeID, o.Nodes)
	for i := range ids {
		ids[i] = net.AddNode(placer.Place(r)).ID()
	}
	proto := topology.NewRandom(net, topology.NewDNSSeed(), 0)
	if err := proto.Bootstrap(ctx, ids); err != nil {
		return err
	}
	crawler, err := measure.NewCrawler(net, ids[0])
	if err != nil {
		return err
	}
	pingsPer := 4
	res, err := crawler.Crawl(pingsPer, 50*time.Millisecond, 10*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("reachable nodes: %d\n", res.Reachable)
	fmt.Printf("ping/pong observations: %d\n", res.RTTs.N())
	fmt.Printf("RTT distribution: %s\n", res.RTTs)
	fmt.Println(measure.ASCIICDF([]string{"rtt"}, []measure.Distribution{res.RTTs}, 11))
	return nil
}
