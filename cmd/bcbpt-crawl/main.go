// Command bcbpt-crawl measures a live BCBPT network the way the paper's
// crawler measured the real Bitcoin network (refs [5],[12]): it connects
// to every address it is given, sends repeated pings, and reports the
// observed round-trip distribution and reachable-node census.
//
// Usage:
//
//	bcbpt-crawl -targets 127.0.0.1:18555,127.0.0.1:18556 -pings 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/measure"
	"repro/internal/netnode"
)

func main() {
	var (
		targets   = flag.String("targets", "", "comma-separated addresses to crawl")
		pings     = flag.Int("pings", 5, "pings per target")
		streaming = flag.Bool("streaming", false, "fold RTTs into a bounded-memory sketch (~1% quantile error) instead of retaining every sample; use for very large crawls")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "bcbpt-crawl: ", log.LstdFlags)
	if *targets == "" {
		logger.Fatal("no -targets given")
	}

	cfg := netnode.DefaultConfig()
	cfg.PingInterval = 0
	cfg.Threshold = 0 // the crawler measures; it does not cluster
	node, err := netnode.New(cfg)
	if err != nil {
		logger.Fatalf("new node: %v", err)
	}
	if err := node.Start(); err != nil {
		logger.Fatalf("start: %v", err)
	}
	defer node.Stop()

	addrs := strings.Split(*targets, ",")
	sort.Strings(addrs)
	var samples []time.Duration
	var sketch *measure.StreamingDistribution
	if *streaming {
		sketch = measure.NewStreamingDistribution()
	}
	reachable := 0
	for _, addr := range addrs {
		rtt, err := node.ProbeAddr(strings.TrimSpace(addr), *pings)
		if err != nil {
			logger.Printf("%s unreachable: %v", addr, err)
			continue
		}
		reachable++
		if sketch != nil {
			sketch.Add(rtt)
		} else {
			samples = append(samples, rtt)
		}
		fmt.Printf("%-24s min-rtt %v\n", addr, rtt)
	}
	dist := measure.NewDistribution(samples)
	if sketch != nil {
		dist = sketch.Dist()
	}
	fmt.Printf("\nreachable: %d/%d\n", reachable, len(addrs))
	if dist.N() > 0 {
		fmt.Printf("rtt distribution: %s\n", dist)
	}
}
