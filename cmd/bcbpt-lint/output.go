package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// Standalone output formats beyond the default one-line-per-finding
// text: -json for tooling, -sarif for code-scanning uploads, -github
// for workflow-command annotations on pull requests. All three render
// the same []analysis.Diagnostic the text mode prints.

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, minimal profile: one run, one rule per analyzer, one
// result per finding. Enough for `github/codeql-action/upload-sarif`
// and editor SARIF viewers.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, diags []analysis.Diagnostic) error {
	var rules []sarifRule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "bcbpt-lint", Rules: rules}}, Results: results}},
	})
}

// writeGitHub emits one workflow command per finding; on a pull request
// these render as inline annotations. Newlines and the %,\r,\n control
// characters must be escaped per the workflow-command grammar.
func writeGitHub(w io.Writer, diags []analysis.Diagnostic) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column,
			esc.Replace(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)))
	}
}
