package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON unit-check configuration cmd/go writes for
// `go vet -vettool` tools (the same protocol x/tools' unitchecker
// speaks): one compiled package's files, its import→path map, and the
// export-data file for every package in the typing closure.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite over one vet unit config and returns the
// process exit code (0 clean, 1 error, 2 findings).
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-lint: parsing vet config %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go records the .vetx facts file as this unit's build output;
	// the suite has no cross-package facts, so an empty file satisfies
	// the cache. In VetxOnly mode (dependency pre-pass) that's the whole
	// job — skip type-checking entirely.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "bcbpt-lint: writing %s: %v\n", cfg.VetxOutput, err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.NewImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})

	pkg, err := analysis.TypeCheck(fset, cfg.ImportPath, cfg.GoVersion, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
		return 1
	}

	diags, err := lint.Check(pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}
