package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles bcbpt-lint into a temp dir and returns its path
// plus the module root the vet commands should run from.
func buildTool(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "bcbpt-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/bcbpt-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bcbpt-lint: %v\n%s", err, out)
	}
	return bin, root
}

// TestVetToolProtocol drives the real `go vet -vettool` unit-check
// protocol (-V=full handshake, per-package *.cfg units, vetx outputs)
// over clean in-tree packages and expects a zero exit.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets packages")
	}
	bin, root := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/sim/...", "./internal/measure/...", "./internal/chain/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, out)
	}
}

// TestVetToolSeededViolation proves the vettool path actually fails the
// build when a violation exists: a -overlay adds a file with a
// wall-clock read to repro/internal/sim without touching the tree, and
// go vet must exit nonzero with the detrand message.
func TestVetToolSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets packages")
	}
	bin, root := buildTool(t)

	dir := t.TempDir()
	seed := filepath.Join(dir, "zz_seeded_violation.go")
	src := "package sim\n\nimport \"time\"\n\nfunc zzSeededViolation() time.Time { return time.Now() }\n"
	if err := os.WriteFile(seed, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(dir, "overlay.json")
	data, err := json.Marshal(map[string]map[string]string{
		"Replace": {filepath.Join(root, "internal/sim/zz_seeded_violation.go"): seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-overlay="+overlay, "-vettool="+bin, "./internal/sim")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed despite seeded violation:\n%s", out)
	}
	if !strings.Contains(string(out), "wall-clock time.Now") {
		t.Fatalf("vet failed but without the detrand diagnostic:\n%s", out)
	}
}

// TestVetToolPartisoViolation seeds a partition-isolation violation the
// same way: an overlaid file registers a dispatch handler that touches
// Network.serial, and go vet must exit nonzero with the partiso message
// — proving the interprocedural engine runs under the vet protocol too.
func TestVetToolPartisoViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets packages")
	}
	bin, root := buildTool(t)

	dir := t.TempDir()
	seed := filepath.Join(dir, "zz_partiso_violation.go")
	src := `package p2p

func zzPartisoViolation(n *Network) {
	n.sched.AfterCall(0, zzPartisoDeliver, n)
}

func zzPartisoDeliver(a any) {
	n := a.(*Network)
	n.serial.stats.Dropped++
}
`
	if err := os.WriteFile(seed, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(dir, "overlay.json")
	data, err := json.Marshal(map[string]map[string]string{
		"Replace": {filepath.Join(root, "internal/p2p/zz_partiso_violation.go"): seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-overlay="+overlay, "-vettool="+bin, "./internal/p2p")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed despite seeded partiso violation:\n%s", out)
	}
	if !strings.Contains(string(out), "access to Network.serial in dispatch-reachable zzPartisoDeliver") {
		t.Fatalf("vet failed but without the partiso diagnostic:\n%s", out)
	}
}

// TestVersionHandshake checks the -V=full line cmd/go parses to
// fingerprint the tool for result caching.
func TestVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	bin, _ := buildTool(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	line := strings.TrimSpace(string(out))
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("malformed -V=full line: %q", line)
	}
	if fields[0] != "bcbpt-lint" {
		t.Fatalf("tool name = %q, want bcbpt-lint", fields[0])
	}
	// The buildID must be stable across invocations (it keys vet's cache).
	out2, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Fatalf("-V=full not stable:\n%s\n%s", out, out2)
	}
}
