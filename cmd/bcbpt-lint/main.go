// bcbpt-lint machine-enforces this repo's invariants — determinism of
// the simulation packages, flood hot-path allocation discipline, and
// fleet lock hygiene — as a suite of custom static analyzers
// (internal/lint) built on the standard library's go/ast + go/types, so
// the tool needs no module dependencies and no network.
//
// Two modes share the same analyzers:
//
//	bcbpt-lint ./...                     standalone: loads packages via
//	                                     `go list -export` build-cache data
//	go vet -vettool=$(pwd)/bin/bcbpt-lint ./...
//	                                     vet unit protocol: cmd/go hands the
//	                                     tool one *.cfg per package and
//	                                     caches clean results
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
// Suppress a finding with //bcbptlint:allow <analyzer> — <reason> on the
// offending line or the line above; the reason is mandatory and an
// unused or malformed directive is itself a finding.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	args := os.Args[1:]
	// `go vet` handshakes: -V=full for the tool's cache ID, -flags for
	// the analyzer flag inventory (none), then one <unit>.cfg per
	// package.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitcheck(args[0]))
		}
	}
	os.Exit(standalone(args))
}

// printVersion emits the `name version devel ... buildID=` line cmd/go
// parses to fingerprint the tool for vet result caching. Hashing the
// executable means a rebuilt bcbpt-lint invalidates prior clean verdicts.
func printVersion() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, id)
}

// standalone loads the requested packages (default ./...) through the
// build cache and runs the suite.
func standalone(args []string) int {
	fs := flag.NewFlagSet("bcbpt-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 instead of text")
	ghOut := fs.Bool("github", false, "emit findings as GitHub workflow-command annotations instead of text")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bcbpt-lint [-json|-sarif|-github] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
		return 1
	}
	var found []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
			return 1
		}
		found = append(found, diags...)
	}
	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, found); err != nil {
			fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
			return 1
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, found); err != nil {
			fmt.Fprintf(os.Stderr, "bcbpt-lint: %v\n", err)
			return 1
		}
	case *ghOut:
		writeGitHub(os.Stdout, found)
	default:
		for _, d := range found {
			fmt.Println(d)
		}
	}
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "bcbpt-lint: %d finding(s)\n", len(found))
		return 2
	}
	return 0
}
