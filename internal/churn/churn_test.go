package churn

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero scale", func(m *Model) { m.SessionScale = 0 }},
		{"zero shape", func(m *Model) { m.SessionShape = 0 }},
		{"negative arrival", func(m *Model) { m.MeanArrival = -time.Second }},
		{"negative min", func(m *Model) { m.MinSession = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Default()
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted bad model")
			}
		})
	}
}

func TestSessionLengthFloorAndSkew(t *testing.T) {
	m := Default()
	r := rand.New(rand.NewSource(1))
	const n = 50000
	var sum float64
	shorter := 0
	for i := 0; i < n; i++ {
		d := m.SessionLength(r)
		if d < m.MinSession {
			t.Fatalf("session %v below floor %v", d, m.MinSession)
		}
		sum += float64(d)
		if d < m.SessionScale {
			shorter++
		}
	}
	// Weibull with k<1: mean > scale (Gamma(1+1/0.6) ≈ 1.5), and well
	// over half the mass sits below the scale parameter — the "many
	// short sessions, long tail" shape.
	mean := time.Duration(sum / n)
	if mean < m.SessionScale {
		t.Errorf("mean session %v < scale %v; tail missing", mean, m.SessionScale)
	}
	if frac := float64(shorter) / n; frac < 0.55 {
		t.Errorf("only %.2f of sessions below scale; distribution not skewed", frac)
	}
}

func TestNextArrivalMean(t *testing.T) {
	m := Default()
	r := rand.New(rand.NewSource(2))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(m.NextArrival(r))
	}
	mean := sum / n
	want := float64(m.MeanArrival)
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("mean arrival gap = %v, want ~%v", time.Duration(mean), m.MeanArrival)
	}
}

func TestNextArrivalDisabled(t *testing.T) {
	m := Default()
	m.MeanArrival = 0
	if d := m.NextArrival(rand.New(rand.NewSource(1))); d != 0 {
		t.Errorf("disabled arrivals returned %v", d)
	}
}

func TestDriverSchedulesLeaves(t *testing.T) {
	sched := sim.NewScheduler()
	m := Model{SessionScale: time.Minute, SessionShape: 1, MinSession: time.Second}
	d, err := NewDriver(m, sched, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var left []uint64
	d.OnLeave = func(id uint64) { left = append(left, id) }
	for id := uint64(0); id < 10; id++ {
		d.ScheduleSession(id)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(left) != 10 {
		t.Errorf("left = %d nodes, want 10", len(left))
	}
	leaves, arrivals := d.Stats()
	if leaves != 10 || arrivals != 0 {
		t.Errorf("stats = (%d, %d), want (10, 0)", leaves, arrivals)
	}
}

func TestDriverArrivalsFormPoissonProcess(t *testing.T) {
	sched := sim.NewScheduler()
	m := Model{
		SessionScale: time.Hour, SessionShape: 1,
		MeanArrival: time.Second, MinSession: time.Second,
	}
	d, err := NewDriver(m, sched, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(100)
	arrived := 0
	d.OnArrive = func() (uint64, bool) {
		arrived++
		next++
		return next, true
	}
	d.OnLeave = func(uint64) {}
	d.Start()
	if err := sched.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	// 120s at 1/s mean: expect ~120, allow wide slack.
	if arrived < 80 || arrived > 170 {
		t.Errorf("arrivals in 2min = %d, want ~120", arrived)
	}
	// Arrivals must also get departure sessions scheduled.
	if sched.Len() == 0 {
		t.Error("no pending departures for arrived peers")
	}
}

func TestDriverStopHaltsEvents(t *testing.T) {
	sched := sim.NewScheduler()
	m := Model{SessionScale: time.Second, SessionShape: 1, MeanArrival: time.Second}
	d, err := NewDriver(m, sched, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	d.OnLeave = func(uint64) { fired++ }
	d.OnArrive = func() (uint64, bool) { return 1, true }
	d.ScheduleSession(1)
	d.Start()
	d.Stop()
	if err := sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("%d leave events after Stop", fired)
	}
}

func TestDriverRejectsInvalidModel(t *testing.T) {
	if _, err := NewDriver(Model{}, sim.NewScheduler(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewDriver accepted zero model")
	}
}

func TestDriverOnArriveRefusal(t *testing.T) {
	sched := sim.NewScheduler()
	m := Model{SessionScale: time.Minute, SessionShape: 1, MeanArrival: time.Second}
	d, err := NewDriver(m, sched, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	d.OnArrive = func() (uint64, bool) {
		calls++
		return 0, false // network at capacity: refuse
	}
	d.Start()
	if err := sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	if calls == 0 {
		t.Error("OnArrive never called")
	}
	if _, arrivals := d.Stats(); arrivals != 0 {
		t.Errorf("refused arrivals counted: %d", arrivals)
	}
}
