// Package churn models peer session behaviour: how long nodes stay
// connected and how often new nodes arrive.
//
// The paper's simulator "designed joining and leaving events based on the
// measurements of peers' session length in the real Bitcoin network"
// (§V.A, from their refs [5],[12]). Published Bitcoin measurement studies
// find heavily skewed session lengths — a large population of short-lived
// peers and a stable core that stays up for days — which a Weibull
// distribution with shape < 1 captures well. Arrivals are Poisson.
package churn

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Model generates session lengths and inter-arrival gaps.
type Model struct {
	// SessionScale is the Weibull scale (λ) of session length.
	SessionScale time.Duration
	// SessionShape is the Weibull shape (k). k < 1 gives the measured
	// "many short sessions, long tail" behaviour.
	SessionShape float64
	// MeanArrival is the mean gap between new-peer arrivals (Poisson
	// process). Zero disables arrivals.
	MeanArrival time.Duration
	// MinSession floors session length so a peer always completes its
	// handshake before it can leave.
	MinSession time.Duration
}

// Default returns the calibration used by the experiments: median session
// around 15-20 minutes with a tail of multi-hour sessions, matching the
// session-length CDFs reported by Bitcoin crawler studies of 2015-2016.
func Default() Model {
	return Model{
		SessionScale: 40 * time.Minute,
		SessionShape: 0.6,
		MeanArrival:  5 * time.Second,
		MinSession:   30 * time.Second,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.SessionScale <= 0 {
		return fmt.Errorf("churn: SessionScale = %v, must be positive", m.SessionScale)
	}
	if m.SessionShape <= 0 {
		return fmt.Errorf("churn: SessionShape = %g, must be positive", m.SessionShape)
	}
	if m.MeanArrival < 0 {
		return fmt.Errorf("churn: MeanArrival = %v, must be non-negative", m.MeanArrival)
	}
	if m.MinSession < 0 {
		return fmt.Errorf("churn: MinSession = %v, must be non-negative", m.MinSession)
	}
	return nil
}

// SessionLength draws one session duration.
func (m Model) SessionLength(r *rand.Rand) time.Duration {
	d := time.Duration(sim.Weibull(r, float64(m.SessionScale), m.SessionShape))
	if d < m.MinSession {
		d = m.MinSession
	}
	return d
}

// NextArrival draws the gap until the next peer arrival. Returns 0 if
// arrivals are disabled.
func (m Model) NextArrival(r *rand.Rand) time.Duration {
	if m.MeanArrival <= 0 {
		return 0
	}
	return time.Duration(sim.Exponential(r, float64(m.MeanArrival)))
}

// Driver wires a churn model into a simulation: it schedules leave events
// for existing peers and arrival events for new ones, invoking the
// supplied callbacks. The callbacks own all topology bookkeeping.
type Driver struct {
	model Model
	sched *sim.Scheduler
	r     *rand.Rand

	// OnLeave is invoked when a peer's session expires.
	OnLeave func(nodeID uint64)
	// OnArrive is invoked for each new peer arrival and must return the
	// new peer's node ID so its eventual departure can be scheduled.
	OnArrive func() (nodeID uint64, ok bool)

	stopped bool
	leaves  uint64
	arrives uint64
}

// NewDriver creates a driver. Callbacks may be nil, in which case the
// corresponding event class is skipped.
func NewDriver(model Model, sched *sim.Scheduler, r *rand.Rand) (*Driver, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Driver{model: model, sched: sched, r: r}, nil
}

// Stats returns counts of processed leave and arrival events.
func (d *Driver) Stats() (leaves, arrivals uint64) { return d.leaves, d.arrives }

// Stop disables all future churn events.
func (d *Driver) Stop() { d.stopped = true }

// ScheduleSession schedules the departure of an existing peer one session
// length from now.
func (d *Driver) ScheduleSession(nodeID uint64) {
	d.sched.After(d.model.SessionLength(d.r), func() {
		if d.stopped || d.OnLeave == nil {
			return
		}
		d.leaves++
		d.OnLeave(nodeID)
	})
}

// Start begins the arrival process (if enabled) — each arrival schedules
// the next, forming a Poisson process.
func (d *Driver) Start() {
	if d.model.MeanArrival <= 0 || d.OnArrive == nil {
		return
	}
	d.scheduleNextArrival()
}

func (d *Driver) scheduleNextArrival() {
	d.sched.After(d.model.NextArrival(d.r), func() {
		if d.stopped {
			return
		}
		if id, ok := d.OnArrive(); ok {
			d.arrives++
			d.ScheduleSession(id)
		}
		d.scheduleNextArrival()
	})
}
