// Package fleet distributes campaign sweeps across machines: a
// coordinator serves a lease-based work queue over HTTP+JSON and workers
// pull (campaign, replication) units, run them through the same
// per-replication path as the local engine (experiment.RunUnit), and ship
// back measure.CampaignResult shards.
//
// The design leans entirely on the campaign engine's determinism
// contract: a unit derives every bit of randomness from its replication
// seed, so executing it is idempotent — running a unit twice, on two
// machines, or after a worker died mid-run produces bit-identical shards.
// That makes the queue's failure story simple:
//
//   - leases have deadlines: a worker that goes silent has its lease
//     expire and the unit handed to the next worker that asks;
//   - commits are at-most-once: the first shard accepted for a unit wins,
//     and late commits from superseded leases are rejected — so a shard
//     can never be merged twice;
//   - shards are merged in (campaign, replication) order, never arrival
//     order, through measure.MergeCampaignResults.
//
// The merged outcome is therefore bit-identical to a single-machine
// Runner.Sweep of the same specs, regardless of worker count, failures,
// or arrival order — the property TestFleetFailoverMatchesSerialSweep
// pins.
//
// Three hardening layers take the queue from trusted-LAN demos to shared
// clusters:
//
//   - heartbeat renewal: a worker extends its lease at TTL/3 cadence
//     (POST /v1/renew), so LeaseTTL is a failure-detection window — it
//     can sit at seconds for fast dead-worker recovery without ever
//     reassigning a live slow unit;
//   - bearer-token auth: when the coordinator is built with a token,
//     every mutating endpoint (lease, renew, commit) requires
//     "Authorization: Bearer <token>" and answers 401 otherwise;
//   - disk spooling: committed shards can stream to a spool directory
//     instead of living in coordinator memory, re-read in replication
//     order at merge time — coordinator memory stays flat however deep
//     the sweep.
//
// Both pooling modes round-trip: streaming shards ship the fixed-size
// sketch (O(KiB) per unit), exact shards ship every sample and per-run
// result. Every shard carries its spec fingerprint and the coordinator
// rejects commits whose fingerprint does not match the campaign it leased
// — a worker running skewed code cannot silently poison a sweep.
package fleet

import (
	"encoding/json"
	"time"

	"repro/internal/experiment"
)

// Protocol endpoints, all rooted under the coordinator's base URL.
const (
	// PathSweep (GET) returns the SweepResponse: the full campaign list
	// workers execute units of, plus the coordinator's fingerprints.
	PathSweep = "/v1/sweep"
	// PathLease (POST, LeaseRequest) grants a work unit lease.
	PathLease = "/v1/lease"
	// PathRenew (POST, RenewRequest) extends a live lease's deadline —
	// the heartbeat that lets LeaseTTL sit far below a slow unit's wall
	// time.
	PathRenew = "/v1/renew"
	// PathCommit (POST, CommitRequest) ships a finished shard back.
	PathCommit = "/v1/commit"
	// PathStatus (GET) returns queue progress for dashboards and tests.
	PathStatus = "/v1/status"
	// PathMetrics (GET) returns the coordinator's metrics registry in
	// Prometheus text exposition format: unit progress by state and
	// campaign, lease lifecycle counters, per-unit build/run/ship timing
	// summaries, and traffic counters folded from worker shards.
	PathMetrics = "/v1/metrics"
)

// SweepResponse describes the sweep being distributed. Workers fetch it
// once, recompute each campaign's fingerprint locally, and refuse to work
// for a coordinator they disagree with — version skew between binaries
// surfaces before any simulation time is spent.
type SweepResponse struct {
	Campaigns    []experiment.CampaignSpec `json:"campaigns"`
	Fingerprints []uint64                  `json:"fingerprints"`
}

// LeaseRequest asks for one unit of work.
type LeaseRequest struct {
	// Worker names the requester (diagnostics only; the lease ID is the
	// authority).
	Worker string `json:"worker"`
}

// LeaseStatus is the coordinator's answer to a lease request.
type LeaseStatus string

const (
	// LeaseGranted carries a unit to execute.
	LeaseGranted LeaseStatus = "granted"
	// LeaseWait means every unit is done or leased out; retry later — an
	// outstanding lease may yet expire and free its unit.
	LeaseWait LeaseStatus = "wait"
	// LeaseDone means the sweep completed successfully; the worker can
	// exit cleanly.
	LeaseDone LeaseStatus = "done"
	// LeaseFailed means the sweep failed (a unit hit a deterministic
	// error). Workers must exit non-zero carrying the failure reason —
	// a failed sweep may never masquerade as a clean fleet-wide exit.
	LeaseFailed LeaseStatus = "failed"
)

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status LeaseStatus `json:"status"`
	// Lease is set when Status is LeaseGranted.
	Lease *Lease `json:"lease,omitempty"`
	// RetryMillis suggests a poll delay when Status is LeaseWait.
	RetryMillis int64 `json:"retry_ms,omitempty"`
	// Failure carries the sweep-fatal error when Status is LeaseFailed.
	Failure string `json:"failure,omitempty"`
}

// Lease is one granted work unit: replication Replication of campaign
// Campaign in the sweep's campaign list.
type Lease struct {
	// ID authenticates the commit: only the unit's current lease may
	// commit it.
	ID uint64 `json:"id"`
	// Campaign indexes SweepResponse.Campaigns.
	Campaign int `json:"campaign"`
	// Replication is the unit's replication index within the campaign.
	Replication int `json:"replication"`
	// Seed echoes the coordinator's derived replication seed. Workers
	// cross-check it against their own derivation — a mismatch means the
	// two binaries disagree about the experiment and the worker must not
	// proceed.
	Seed int64 `json:"seed"`
	// TTLMillis is how long the lease lasts before the unit may be
	// reassigned. Workers renew at TTL/3 cadence (PathRenew), so the TTL
	// is a heartbeat window, not a bound on unit wall time: it only has
	// to cover a few missed heartbeats, and a unit slower than the TTL
	// keeps its lease as long as its worker keeps renewing.
	TTLMillis int64 `json:"ttl_ms"`
}

// TTL returns the lease duration.
func (l *Lease) TTL() time.Duration { return time.Duration(l.TTLMillis) * time.Millisecond }

// RenewRequest extends a lease before it expires. Only the unit's
// current lease may renew; a renewal can also revive a lease that
// expired but whose unit has not yet been handed to anyone else (a late
// heartbeat from a live worker beats thrashing its work).
type RenewRequest struct {
	Worker      string `json:"worker"`
	LeaseID     uint64 `json:"lease_id"`
	Campaign    int    `json:"campaign"`
	Replication int    `json:"replication"`
}

// RenewResponse answers a renewal. A refused renewal (unit committed, or
// lease superseded by an expiry reassignment) tells the worker to stop
// heartbeating; the commit exchange then adjudicates what happened to
// the unit — a refused renewal on its own is never a worker error.
type RenewResponse struct {
	Renewed bool `json:"renewed"`
	// TTLMillis echoes the fresh deadline's TTL when Renewed.
	TTLMillis int64  `json:"ttl_ms,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// CommitRequest ships one finished unit back. Exactly one of Result or
// Error is set: Result carries the shard (measure.CampaignResult wire
// form, see measure.EncodeCampaignResult), Error reports a deterministic
// unit failure (a bad spec), which fails the whole sweep fast — the unit
// would fail identically on every machine that retried it.
type CommitRequest struct {
	Worker      string          `json:"worker"`
	LeaseID     uint64          `json:"lease_id"`
	Campaign    int             `json:"campaign"`
	Replication int             `json:"replication"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
	// BuildMillis, RunMillis and ShipMillis report the unit's wall
	// timings — network build, measurement campaign, and shard encoding —
	// for the coordinator's timing histograms. Additive and optional:
	// an old worker that omits them commits fine, the coordinator just
	// records nothing.
	BuildMillis int64 `json:"build_ms,omitempty"`
	RunMillis   int64 `json:"run_ms,omitempty"`
	ShipMillis  int64 `json:"ship_ms,omitempty"`
}

// CommitResponse acknowledges a commit. A *stale* rejection is not a
// worker error: the unit was already committed, or the lease was
// superseded after expiry — a routine consequence of failover, and the
// worker simply moves on. A rejection that is not stale (a shard the
// coordinator cannot decode, a fingerprint mismatch, a malformed unit
// reference) is a real fault: retrying the unit would reproduce it, so
// the worker must fail loudly instead of letting the unit cycle through
// lease expiry forever.
type CommitResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	// Stale marks the benign rejections (duplicate / superseded lease).
	Stale bool `json:"stale,omitempty"`
}

// StatusResponse reports queue progress.
type StatusResponse struct {
	// Units is the total unit count (sum of campaign replications).
	Units int `json:"units"`
	// Done, Leased, Expired and Pending partition Units. Leased counts
	// only live leases; Expired counts leases past their deadline whose
	// unit has not been reclaimed yet — a non-zero Expired that does not
	// drain is a stalled queue (dead workers, nobody polling), which a
	// combined "leased" count would mask.
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Expired int `json:"expired"`
	Pending int `json:"pending"`
	// Reassigned counts lease expiries that handed a unit to another
	// worker — each one is a survived worker failure.
	Reassigned int `json:"reassigned"`
	// Renewed counts granted heartbeat renewals.
	Renewed int `json:"renewed"`
	// Complete is true once every unit committed (or the sweep failed).
	Complete bool `json:"complete"`
	// Failed carries the sweep-fatal error, if any.
	Failed string `json:"failed,omitempty"`
	// Campaigns breaks unit progress down per campaign, in sweep order.
	// Additive (omitempty): old clients decode statuses without it.
	Campaigns []CampaignStatus `json:"campaigns,omitempty"`
	// CommitsPerMinute is the commit throughput over the coordinator's
	// sliding window (statusRateWindow); zero until two commits land.
	CommitsPerMinute float64 `json:"commits_per_minute,omitempty"`
	// EtaMillis extrapolates time-to-completion from CommitsPerMinute
	// and the uncommitted unit count; zero when the rate is unknown.
	EtaMillis int64 `json:"eta_ms,omitempty"`
}

// CampaignStatus is one campaign's slice of the unit partition.
type CampaignStatus struct {
	Name    string `json:"name"`
	Units   int    `json:"units"`
	Done    int    `json:"done"`
	Leased  int    `json:"leased"`
	Expired int    `json:"expired"`
	Pending int    `json:"pending"`
}
