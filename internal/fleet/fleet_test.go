package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/experiment"
	"repro/internal/measure"
)

// testSweep is the shared workload: two exact campaigns and one streaming
// campaign (so both shard encodings cross the wire), several replications
// each so the queue actually distributes.
func testSweep() []experiment.CampaignSpec {
	spec := func(seed int64, proto experiment.ProtocolKind) experiment.Spec {
		return experiment.Spec{Nodes: 40, Seed: seed, Protocol: proto}
	}
	return []experiment.CampaignSpec{
		{Name: "bitcoin", Spec: spec(21, experiment.ProtoBitcoin), Replications: 3, Runs: 3, Deadline: 30 * time.Second},
		{Name: "lbc", Spec: spec(21, experiment.ProtoLBC), Replications: 2, Runs: 3, Deadline: 30 * time.Second},
		{Name: "bitcoin-stream", Spec: spec(22, experiment.ProtoBitcoin), Replications: 2, Runs: 3, Deadline: 30 * time.Second, Streaming: true},
	}
}

// serialSweep runs the same specs through the local engine — the baseline
// every fleet result must match bit for bit.
func serialSweep(t *testing.T) []experiment.CampaignOutcome {
	t.Helper()
	out, err := experiment.NewRunner(1).Sweep(context.Background(), testSweep())
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	return out
}

// sameOutcomes asserts the fleet outcomes are bit-identical to the serial
// ones: distribution state, per-run results, loss counts, fingerprints.
func sameOutcomes(t *testing.T, fleet, serial []experiment.CampaignOutcome) {
	t.Helper()
	if len(fleet) != len(serial) {
		t.Fatalf("outcome count %d vs %d", len(fleet), len(serial))
	}
	for i := range serial {
		f, s := fleet[i], serial[i]
		if f.Name != s.Name || f.Replications != s.Replications {
			t.Errorf("outcome %d: (%q, %d reps) vs (%q, %d reps)", i, f.Name, f.Replications, s.Name, s.Replications)
		}
		if !f.Result.Dist.Equal(s.Result.Dist) {
			t.Errorf("campaign %s: distributions differ: %v vs %v", s.Name, f.Result.Dist, s.Result.Dist)
		}
		if f.Result.Lost != s.Result.Lost {
			t.Errorf("campaign %s: lost %d vs %d", s.Name, f.Result.Lost, s.Result.Lost)
		}
		if f.Result.Fingerprint != s.Result.Fingerprint {
			t.Errorf("campaign %s: fingerprint %x vs %x", s.Name, f.Result.Fingerprint, s.Result.Fingerprint)
		}
		if len(f.Result.PerRun) != len(s.Result.PerRun) {
			t.Errorf("campaign %s: per-run count %d vs %d", s.Name, len(f.Result.PerRun), len(s.Result.PerRun))
			continue
		}
		for r := range s.Result.PerRun {
			fr, sr := f.Result.PerRun[r], s.Result.PerRun[r]
			if fr.TxID != sr.TxID || fr.InjectedAt != sr.InjectedAt || len(fr.Deltas) != len(sr.Deltas) {
				t.Errorf("campaign %s run %d differs", s.Name, r)
				continue
			}
			for id, d := range sr.Deltas {
				if fr.Deltas[id] != d {
					t.Errorf("campaign %s run %d delta[%d]: %v vs %v", s.Name, r, id, fr.Deltas[id], d)
				}
			}
		}
	}
}

// startCoordinator serves a coordinator over loopback HTTP.
func startCoordinator(t *testing.T, campaigns []experiment.CampaignSpec, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(campaigns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return c, ts
}

// TestFleetMatchesSerialSweep is the subsystem's core guarantee: a sweep
// fanned over two workers merges bit-identical to the one-machine sweep.
func TestFleetMatchesSerialSweep(t *testing.T) {
	serial := serialSweep(t)
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	errc := make(chan error, 2)
	for i, name := range []string{"worker-a", "worker-b"} {
		w := &Worker{CoordinatorURL: ts.URL, Name: name, Parallelism: 1 + i, RetryInterval: 10 * time.Millisecond}
		go func() { errc <- w.Run(ctx) }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	out, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, out, serial)

	status, err := NewClient(ts.URL, nil).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Complete || status.Done != status.Units || status.Units != 7 {
		t.Errorf("status after completion: %+v", status)
	}
}

// TestFleetFailoverMatchesSerialSweep kills a worker mid-lease: a
// saboteur client leases a unit and goes silent, a real worker drains the
// queue, and after the lease TTL the abandoned unit is reassigned — the
// merged result must still be bit-identical to the serial sweep, and the
// dead worker's late commit must be rejected.
func TestFleetFailoverMatchesSerialSweep(t *testing.T) {
	serial := serialSweep(t)
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{LeaseTTL: 300 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	saboteur := NewClient(ts.URL, nil)
	dead, err := saboteur.Lease(ctx, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if dead.Status != LeaseGranted {
		t.Fatalf("saboteur lease status %q, want granted", dead.Status)
	}
	// The saboteur never commits: its unit must come back after the TTL.

	w := &Worker{CoordinatorURL: ts.URL, Name: "survivor", Parallelism: 2, RetryInterval: 20 * time.Millisecond}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	status := c.Status()
	if status.Reassigned < 1 {
		t.Errorf("no lease was reassigned; the saboteur's unit was never recovered (%+v)", status)
	}
	out, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, out, serial)

	// The dead worker comes back from the grave with a bit-identical
	// shard; at-most-once commit must turn it away.
	sweep := c.Sweep()
	res, err := experiment.RunUnit(ctx, sweep.Campaigns[dead.Lease.Campaign], dead.Lease.Replication)
	if err != nil {
		t.Fatal(err)
	}
	data, err := measure.EncodeCampaignResult(res)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := saboteur.Commit(ctx, CommitRequest{
		Worker:      "doomed",
		LeaseID:     dead.Lease.ID,
		Campaign:    dead.Lease.Campaign,
		Replication: dead.Lease.Replication,
		Result:      data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Error("late commit from an expired lease was accepted (double merge)")
	}
}

// TestCoordinatorRejectsForeignFingerprint: a shard measured under a
// different spec must be rejected at commit, not pooled.
func TestCoordinatorRejectsForeignFingerprint(t *testing.T) {
	_, ts := startCoordinator(t, testSweep(), CoordinatorConfig{})
	ctx := context.Background()
	client := NewClient(ts.URL, nil)
	lease, err := client.Lease(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := measure.EncodeCampaignResult(measure.CampaignResult{Fingerprint: 12345})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := client.Commit(ctx, CommitRequest{
		LeaseID:     lease.Lease.ID,
		Campaign:    lease.Lease.Campaign,
		Replication: lease.Lease.Replication,
		Result:      foreign,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted || !strings.Contains(ack.Reason, "fingerprint") {
		t.Errorf("foreign-fingerprint commit: %+v", ack)
	}
}

// TestWorkerRefusesVersionSkew: a worker whose binary derives different
// fingerprints than the coordinator must refuse before running anything.
func TestWorkerRefusesVersionSkew(t *testing.T) {
	c, err := NewCoordinator(testSweep(), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A man-in-the-middle coordinator whose sweep fingerprints are off by
	// one — standing in for a coordinator running different code.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathSweep {
			sweep := c.Sweep()
			tampered := append([]uint64(nil), sweep.Fingerprints...)
			for i := range tampered {
				tampered[i]++
			}
			json.NewEncoder(w).Encode(SweepResponse{Campaigns: sweep.Campaigns, Fingerprints: tampered})
			return
		}
		c.ServeHTTP(w, r)
	}))
	defer ts.Close()

	w := &Worker{CoordinatorURL: ts.URL, Name: "skewed", Parallelism: 1}
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Errorf("skewed worker ran anyway: %v", err)
	}
	if got := c.Status().Done; got != 0 {
		t.Errorf("skewed worker committed %d units", got)
	}
}

// TestFleetFailsFastOnBadSpec: a deterministically failing unit fails the
// sweep (it would fail identically on every machine) instead of cycling
// through the fleet forever.
func TestFleetFailsFastOnBadSpec(t *testing.T) {
	bad := []experiment.CampaignSpec{{
		Name: "bad",
		Spec: experiment.Spec{Nodes: 2, Seed: 1, Protocol: experiment.ProtoBitcoin},
		Runs: 2, Replications: 2, Deadline: time.Second,
	}}
	c, ts := startCoordinator(t, bad, CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	w := &Worker{CoordinatorURL: ts.URL, Name: "w", Parallelism: 1, RetryInterval: 10 * time.Millisecond}
	if err := w.Run(ctx); err == nil {
		t.Error("worker did not surface the unit failure")
	}
	if err := c.Wait(ctx); err == nil {
		t.Error("coordinator did not record the sweep failure")
	}
	if _, err := c.Outcomes(); err == nil {
		t.Error("outcomes of a failed sweep returned no error")
	}
}

// TestCoordinatorRejectsUnshippableSweep: specs that cannot serialize
// must be refused at construction, not discovered by a worker. A
// BaseUTXO-seeded spec would otherwise ship with a silently nil'd ledger
// and measure the wrong experiment.
func TestCoordinatorRejectsUnshippableSweep(t *testing.T) {
	if _, err := NewCoordinator(nil, CoordinatorConfig{}); err == nil {
		t.Error("empty sweep accepted")
	}
	utxoSweep := testSweep()
	utxoSweep[1].Spec.BaseUTXO = chain.NewUTXOSet()
	if _, err := NewCoordinator(utxoSweep, CoordinatorConfig{}); err == nil || !strings.Contains(err.Error(), "BaseUTXO") {
		t.Errorf("BaseUTXO-seeded sweep accepted (err = %v)", err)
	}
}
