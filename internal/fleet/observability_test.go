package fleet

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// commitFake drives one lease through a fake commit, optionally with
// worker-reported wall timings (the additive protocol fields).
func commitFake(t *testing.T, c *Coordinator, worker string, buildMS, runMS, shipMS int64) {
	t.Helper()
	r := c.leaseUnit(worker)
	if r.Status != LeaseGranted {
		t.Fatalf("lease status %q, want granted", r.Status)
	}
	l := r.Lease
	ack := c.commitUnit(CommitRequest{
		Worker: worker, LeaseID: l.ID,
		Campaign: l.Campaign, Replication: l.Replication,
		Result:      fakeShard(t, c, l.Campaign),
		BuildMillis: buildMS, RunMillis: runMS, ShipMillis: shipMS,
	})
	if !ack.Accepted {
		t.Fatalf("commit rejected: %+v", ack)
	}
}

// TestStatusProgressAndETA pins the dashboard arithmetic on a fake
// clock: per-campaign unit partitions, the sliding-window commit rate,
// and the ETA derived from it.
func TestStatusProgressAndETA(t *testing.T) {
	c, clock := stubbedCoordinator(t, testSweep(), time.Minute)

	// One commit alone must not extrapolate a rate from a tiny span.
	commitFake(t, c, "w", 0, 0, 0)
	if st := c.Status(); st.CommitsPerMinute != 0 || st.EtaMillis != 0 {
		t.Errorf("rate from a single commit: %+v", st)
	}

	// Three more commits, one per simulated minute: 4 commits over a
	// 3-minute span → 4/3 commits per minute, 3 units left.
	for i := 0; i < 3; i++ {
		*clock = clock.Add(time.Minute)
		commitFake(t, c, "w", 0, 0, 0)
	}
	st := c.Status()
	if st.Done != 4 || st.Pending != 3 {
		t.Fatalf("queue partition: %+v", st)
	}
	wantRate := 4.0 / 3.0
	if diff := st.CommitsPerMinute - wantRate; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("CommitsPerMinute = %v, want %v", st.CommitsPerMinute, wantRate)
	}
	// 3 units left at 4/3 per minute = 2.25 minutes.
	if want := int64(2.25 * 60 * 1000); st.EtaMillis != want {
		t.Errorf("EtaMillis = %d, want %d", st.EtaMillis, want)
	}

	// Per-campaign partition: testSweep is bitcoin=3, lbc=2,
	// bitcoin-stream=2 replications; queue order hands out bitcoin first.
	if len(st.Campaigns) != 3 {
		t.Fatalf("campaign breakdown: %+v", st.Campaigns)
	}
	bc := st.Campaigns[0]
	if bc.Name != "bitcoin" || bc.Units != 3 || bc.Done != 3 || bc.Pending != 0 {
		t.Errorf("campaign 0 status: %+v", bc)
	}
	if lbc := st.Campaigns[1]; lbc.Name != "lbc" || lbc.Done != 1 || lbc.Pending != 1 {
		t.Errorf("campaign 1 status: %+v", lbc)
	}

	// Commits beyond the rate window fall out of the rate; with the
	// queue idle for over statusRateWindow the oldest commits are
	// pruned and the remaining single commit yields no rate.
	*clock = clock.Add(statusRateWindow + time.Minute)
	if st := c.Status(); st.CommitsPerMinute != 0 {
		t.Errorf("rate survived the sliding window: %+v", st)
	}
}

// TestMetricsEndpoint scrapes GET /v1/metrics after a few fake commits
// and checks the Prometheus text exposition: queue gauges refreshed from
// Status, lease lifecycle counters, per-campaign labelled gauges, and
// the worker-reported timing summaries.
func TestMetricsEndpoint(t *testing.T) {
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{})
	commitFake(t, c, "w", 1200, 3400, 50)
	commitFake(t, c, "w", 800, 2600, 40)

	resp, err := http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", PathMetrics, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE bcbpt_fleet_units gauge",
		"bcbpt_fleet_units 7",
		"bcbpt_fleet_units_done 2",
		"bcbpt_fleet_units_pending 5",
		"# TYPE bcbpt_fleet_leases_granted_total counter",
		"bcbpt_fleet_leases_granted_total 2",
		"bcbpt_fleet_commits_accepted_total 2",
		`bcbpt_fleet_campaign_units{campaign="bitcoin"} 3`,
		`bcbpt_fleet_campaign_units_done{campaign="bitcoin"} 2`,
		`bcbpt_fleet_campaign_units_done{campaign="lbc"} 0`,
		"# TYPE bcbpt_fleet_unit_build_seconds summary",
		`bcbpt_fleet_unit_build_seconds{quantile="0.5"}`,
		"bcbpt_fleet_unit_build_seconds_count 2",
		"bcbpt_fleet_unit_run_seconds_count 2",
		"bcbpt_fleet_unit_ship_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// The run-seconds sum is worker wall time folded in seconds:
	// 3400ms + 2600ms = 6 seconds.
	if !strings.Contains(text, "bcbpt_fleet_unit_run_seconds_sum 6") {
		t.Errorf("run seconds sum not folded; exposition:\n%s", text)
	}
}
