package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
)

// Worker pulls units from a coordinator and executes them through
// experiment.RunUnit — the same code path the local engine uses, so a
// shard computed here is bit-identical to the one a single-machine sweep
// would have produced for the same unit.
type Worker struct {
	// CoordinatorURL is the coordinator's base URL.
	CoordinatorURL string
	// Name labels this worker in coordinator diagnostics.
	Name string
	// Parallelism is how many units run concurrently (<= 0 means
	// GOMAXPROCS). Each unit is itself single-threaded apart from the
	// build's sharded phases, so GOMAXPROCS saturates the machine.
	Parallelism int
	// RetryInterval backs off transient coordinator errors (default 1s).
	RetryInterval time.Duration
	// Token authenticates against a coordinator built with
	// CoordinatorConfig.Token (attached as a bearer token to every
	// request). Leave empty for an open coordinator.
	Token string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (w *Worker) parallelism() int {
	if w.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w.Parallelism
}

func (w *Worker) retryInterval() time.Duration {
	if w.RetryInterval <= 0 {
		return time.Second
	}
	return w.RetryInterval
}

// wallClock is the wall-time source handed to RunUnitObserved for the
// per-unit build/run timings reported in commits. Workers are outside
// the deterministic core, so reading the real clock here is fine — the
// timings never feed the simulation.
func wallClock() int64 { return time.Now().UnixNano() }

// sleep waits d respecting ctx.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run works the queue until the coordinator reports the sweep done, ctx
// is cancelled, or the worker hits an unrecoverable disagreement with the
// coordinator (fingerprint or seed mismatch — version skew). A unit whose
// execution fails for a non-cancellation reason is reported to the
// coordinator (failing the sweep fast) rather than retried: the failure
// is as deterministic as the results are.
//
// The first slot to hit a fatal error cancels its siblings: without
// that, a worker that has already decided to exit non-zero would keep
// leasing and computing units (or spin on LeaseWait) for a sweep it is
// about to report as failed. Sibling slots unwound by that cancellation
// are not themselves failures — Run returns the real errors only.
func (w *Worker) Run(ctx context.Context) error {
	client := NewClient(w.CoordinatorURL, w.HTTPClient)
	client.Token = w.Token
	sweep, err := w.fetchSweep(ctx, client)
	if err != nil {
		return err
	}
	// Refuse to compute for a coordinator we disagree with: if the local
	// binary derives a different fingerprint for any campaign, results
	// would be rejected (or worse, wrong) — fail before simulating.
	for i, cs := range sweep.Campaigns {
		if got, want := cs.Fingerprint(), sweep.Fingerprints[i]; got != want {
			return fmt.Errorf("fleet: campaign %q fingerprint %016x locally vs %016x at coordinator: version skew, refusing to work",
				cs.Name, got, want)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	par := w.parallelism()
	errs := make([]error, par)
	fatal := make([]bool, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			err := w.loop(runCtx, client, sweep.Campaigns)
			errs[slot] = err
			// Fatality is decided by the run's own state, never by
			// unwrapping the error chain: exhausted transport budgets
			// wrap the HTTP client's context.DeadlineExceeded, so "is
			// this a context error" cannot distinguish a real failure
			// from a slot unwound by cancellation — but a slot that
			// errored while the run was still live is always fatal
			// (version skew, persistent rejection, sweep failure, dead
			// coordinator). Cancel the sibling slots rather than letting
			// them drain a queue this worker will report as failed.
			if err != nil && runCtx.Err() == nil {
				fatal[slot] = true
				cancel()
			}
		}(i)
	}
	wg.Wait()

	var real []error
	for slot, err := range errs {
		if fatal[slot] {
			real = append(real, err)
		}
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	// No fatal slot error: either every slot saw LeaseDone (clean exit,
	// nil), or the slots were unwound by the caller's own cancellation.
	return ctx.Err()
}

// Transport-failure budgets. An unreachable coordinator must not spin a
// worker forever: startup tolerates a longer window (workers may come up
// before their coordinator), but once working, a coordinator that stays
// silent for maxLeaseFailures consecutive polls has almost certainly
// completed and exited (or died), and the worker gives up with an error.
const (
	maxSweepFetches  = 60
	maxLeaseFailures = 10
)

// fetchSweep retries the initial sweep fetch so workers can start before
// their coordinator, giving up after maxSweepFetches attempts.
func (w *Worker) fetchSweep(ctx context.Context, client *Client) (SweepResponse, error) {
	var lastErr error
	for i := 0; i < maxSweepFetches; i++ {
		sweep, err := client.Sweep(ctx)
		if err == nil {
			if len(sweep.Campaigns) != len(sweep.Fingerprints) {
				return SweepResponse{}, fmt.Errorf("fleet: malformed sweep: %d campaigns, %d fingerprints",
					len(sweep.Campaigns), len(sweep.Fingerprints))
			}
			return sweep, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return SweepResponse{}, err
		}
		// The coordinator itself serves the sweep unauthenticated, but a
		// fronting proxy may not — and a 401 never heals by retrying.
		if errors.Is(err, ErrUnauthorized) {
			return SweepResponse{}, err
		}
		if err := sleep(ctx, w.retryInterval()); err != nil {
			return SweepResponse{}, err
		}
	}
	return SweepResponse{}, fmt.Errorf("fleet: coordinator unreachable after %d attempts: %w", maxSweepFetches, lastErr)
}

// loop is one lease→run→commit slot.
func (w *Worker) loop(ctx context.Context, client *Client, campaigns []experiment.CampaignSpec) error {
	leaseFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Lease(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrUnauthorized) {
				// Retrying with the same (wrong or missing) token can
				// never succeed.
				return err
			}
			if leaseFailures++; leaseFailures >= maxLeaseFailures {
				return fmt.Errorf("fleet: coordinator unreachable for %d consecutive polls (sweep finished elsewhere, or coordinator died): %w",
					leaseFailures, err)
			}
			if err := sleep(ctx, w.retryInterval()); err != nil {
				return err
			}
			continue
		}
		leaseFailures = 0
		switch resp.Status {
		case LeaseDone:
			return nil
		case LeaseFailed:
			// The sweep failed on some unit — possibly on another worker
			// entirely. Exiting zero here would make a failed sweep look
			// clean on every machine but the one that ran the bad unit.
			return fmt.Errorf("fleet: sweep failed: %s", resp.Failure)
		case LeaseWait:
			retry := time.Duration(resp.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = w.retryInterval()
			}
			if err := sleep(ctx, retry); err != nil {
				return err
			}
		case LeaseGranted:
			if err := w.runLease(ctx, client, campaigns, resp.Lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: coordinator returned unknown lease status %q", resp.Status)
		}
	}
}

// runLease executes one granted unit and commits the shard. For the
// unit's whole run a heartbeat goroutine renews the lease at TTL/3
// cadence, so the lease stays live however slow the unit is; the
// heartbeat stops when the unit finishes (commit, error, or ctx cancel).
func (w *Worker) runLease(ctx context.Context, client *Client, campaigns []experiment.CampaignSpec, l *Lease) error {
	if l == nil || l.Campaign < 0 || l.Campaign >= len(campaigns) {
		return fmt.Errorf("fleet: coordinator granted lease for unknown campaign")
	}
	cs := campaigns[l.Campaign]
	if got := cs.ReplicationSeed(l.Replication); got != l.Seed {
		return fmt.Errorf("fleet: campaign %q replication %d derives seed %d locally vs %d at coordinator: version skew, refusing to work",
			cs.Name, l.Replication, got, l.Seed)
	}
	commit := CommitRequest{
		Worker:      w.Name,
		LeaseID:     l.ID,
		Campaign:    l.Campaign,
		Replication: l.Replication,
	}

	// unitCtx bounds the simulation: the heartbeat cancels it if the
	// coordinator refuses a renewal (lease superseded, or unit already
	// committed elsewhere) — from that moment every commit this worker
	// could send is provably stale, so finishing an hours-long unit
	// would be pure waste.
	unitCtx, cancelUnit := context.WithCancel(ctx)
	renewCtx, stopRenew := context.WithCancel(ctx)
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		w.renewLoop(renewCtx, client, l, cancelUnit)
	}()
	// The heartbeat spans the commit exchange too — a megabyte exact
	// shard takes a while to upload, and the lease must stay live until
	// the coordinator has adjudicated it — then stops when the unit is
	// settled, waited out so a slot never leaves a stray renewer behind.
	defer func() {
		stopRenew()
		renewWG.Wait()
		cancelUnit()
	}()

	res, uo, err := experiment.RunUnitObserved(unitCtx, cs, l.Replication, wallClock)
	commit.BuildMillis = uo.BuildNanos / int64(time.Millisecond)
	commit.RunMillis = uo.RunNanos / int64(time.Millisecond)
	switch {
	case err == nil:
		shipStart := time.Now()
		if commit.Result, err = measure.EncodeCampaignResult(res); err != nil {
			return err
		}
		commit.ShipMillis = time.Since(shipStart).Milliseconds()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if ctx.Err() != nil {
			// Our own shutdown, not the unit's fault: walk away and let
			// the lease expire so another worker picks the unit up.
			return ctx.Err()
		}
		// The heartbeat lost the lease: the unit is settled (reassigned
		// or already committed) elsewhere, and a commit from us would be
		// rejected as stale. Abandon it and lease fresh work.
		return nil
	default:
		commit.Error = err.Error()
	}
	ack, err := w.commitWithRetry(ctx, client, commit)
	if err != nil {
		return err
	}
	// A stale rejection is routine: our lease expired and the unit was
	// reassigned (and possibly already committed) elsewhere. The shard we
	// computed is bit-identical to the accepted one, so nothing is lost.
	// Any other rejection is persistent — recomputing the unit would be
	// rejected identically — so fail loudly rather than letting the unit
	// cycle through lease expiry forever.
	if !ack.Accepted && !ack.Stale {
		return fmt.Errorf("fleet: coordinator rejected unit %d/%d of campaign %q: %s",
			l.Replication+1, cs.Replications, cs.Name, ack.Reason)
	}
	if commit.Error != "" {
		return fmt.Errorf("fleet: unit failed: %s", commit.Error)
	}
	return nil
}

// renewLoop heartbeats one lease at TTL/3 cadence until ctx is cancelled
// or the coordinator refuses the renewal (unit committed elsewhere, or
// the lease was superseded). A refusal calls cancelUnit so the running
// simulation aborts instead of burning hours on a shard whose commit is
// already guaranteed a stale rejection. Transport errors are tolerated:
// the next beat retries, and the TTL/3 cadence means two beats can fail
// outright before the lease is even at risk. Renewal failures are never
// surfaced as worker errors — the worst a lost lease costs is one
// abandoned (re-runnable) unit, which is benign.
func (w *Worker) renewLoop(ctx context.Context, client *Client, l *Lease, cancelUnit context.CancelFunc) {
	interval := l.TTL() / 3
	if interval <= 0 {
		interval = time.Second
	}
	req := RenewRequest{Worker: w.Name, LeaseID: l.ID, Campaign: l.Campaign, Replication: l.Replication}
	for {
		if sleep(ctx, interval) != nil {
			return
		}
		// Bound each beat to its own slot in the cadence: a hung request
		// (blackholed packets — no RST) must be abandoned before the next
		// beat is due, or one stall would silently eat the whole TTL.
		beatCtx, cancelBeat := context.WithTimeout(ctx, interval)
		resp, err := client.Renew(beatCtx, req)
		cancelBeat()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, ErrUnauthorized) {
				// Auth failures are permanent: the lease will expire and
				// the commit would 401 too, so finishing the unit is as
				// futile as after a refused renewal.
				cancelUnit()
				return
			}
			continue
		}
		if !resp.Renewed {
			cancelUnit()
			return
		}
	}
}

// commitWithRetry retries transient transport errors; the at-most-once
// guarantee lives in the coordinator, so resending is always safe.
func (w *Worker) commitWithRetry(ctx context.Context, client *Client, req CommitRequest) (CommitResponse, error) {
	const attempts = 5
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := client.Commit(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return CommitResponse{}, ctx.Err()
		}
		if errors.Is(err, ErrUnauthorized) {
			return CommitResponse{}, err
		}
		if err := sleep(ctx, w.retryInterval()); err != nil {
			return CommitResponse{}, err
		}
	}
	return CommitResponse{}, fmt.Errorf("fleet: commit failed after %d attempts: %w", attempts, lastErr)
}
