package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
)

// Worker pulls units from a coordinator and executes them through
// experiment.RunUnit — the same code path the local engine uses, so a
// shard computed here is bit-identical to the one a single-machine sweep
// would have produced for the same unit.
type Worker struct {
	// CoordinatorURL is the coordinator's base URL.
	CoordinatorURL string
	// Name labels this worker in coordinator diagnostics.
	Name string
	// Parallelism is how many units run concurrently (<= 0 means
	// GOMAXPROCS). Each unit is itself single-threaded apart from the
	// build's sharded phases, so GOMAXPROCS saturates the machine.
	Parallelism int
	// RetryInterval backs off transient coordinator errors (default 1s).
	RetryInterval time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (w *Worker) parallelism() int {
	if w.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w.Parallelism
}

func (w *Worker) retryInterval() time.Duration {
	if w.RetryInterval <= 0 {
		return time.Second
	}
	return w.RetryInterval
}

// sleep waits d respecting ctx.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run works the queue until the coordinator reports the sweep done, ctx
// is cancelled, or the worker hits an unrecoverable disagreement with the
// coordinator (fingerprint or seed mismatch — version skew). A unit whose
// execution fails for a non-cancellation reason is reported to the
// coordinator (failing the sweep fast) rather than retried: the failure
// is as deterministic as the results are.
func (w *Worker) Run(ctx context.Context) error {
	client := NewClient(w.CoordinatorURL, w.HTTPClient)
	sweep, err := w.fetchSweep(ctx, client)
	if err != nil {
		return err
	}
	// Refuse to compute for a coordinator we disagree with: if the local
	// binary derives a different fingerprint for any campaign, results
	// would be rejected (or worse, wrong) — fail before simulating.
	for i, cs := range sweep.Campaigns {
		if got, want := cs.Fingerprint(), sweep.Fingerprints[i]; got != want {
			return fmt.Errorf("fleet: campaign %q fingerprint %016x locally vs %016x at coordinator: version skew, refusing to work",
				cs.Name, got, want)
		}
	}

	par := w.parallelism()
	errs := make([]error, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.loop(ctx, client, sweep.Campaigns)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Transport-failure budgets. An unreachable coordinator must not spin a
// worker forever: startup tolerates a longer window (workers may come up
// before their coordinator), but once working, a coordinator that stays
// silent for maxLeaseFailures consecutive polls has almost certainly
// completed and exited (or died), and the worker gives up with an error.
const (
	maxSweepFetches  = 60
	maxLeaseFailures = 10
)

// fetchSweep retries the initial sweep fetch so workers can start before
// their coordinator, giving up after maxSweepFetches attempts.
func (w *Worker) fetchSweep(ctx context.Context, client *Client) (SweepResponse, error) {
	var lastErr error
	for i := 0; i < maxSweepFetches; i++ {
		sweep, err := client.Sweep(ctx)
		if err == nil {
			if len(sweep.Campaigns) != len(sweep.Fingerprints) {
				return SweepResponse{}, fmt.Errorf("fleet: malformed sweep: %d campaigns, %d fingerprints",
					len(sweep.Campaigns), len(sweep.Fingerprints))
			}
			return sweep, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return SweepResponse{}, err
		}
		if err := sleep(ctx, w.retryInterval()); err != nil {
			return SweepResponse{}, err
		}
	}
	return SweepResponse{}, fmt.Errorf("fleet: coordinator unreachable after %d attempts: %w", maxSweepFetches, lastErr)
}

// loop is one lease→run→commit slot.
func (w *Worker) loop(ctx context.Context, client *Client, campaigns []experiment.CampaignSpec) error {
	leaseFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Lease(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if leaseFailures++; leaseFailures >= maxLeaseFailures {
				return fmt.Errorf("fleet: coordinator unreachable for %d consecutive polls (sweep finished elsewhere, or coordinator died): %w",
					leaseFailures, err)
			}
			if err := sleep(ctx, w.retryInterval()); err != nil {
				return err
			}
			continue
		}
		leaseFailures = 0
		switch resp.Status {
		case LeaseDone:
			return nil
		case LeaseWait:
			retry := time.Duration(resp.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = w.retryInterval()
			}
			if err := sleep(ctx, retry); err != nil {
				return err
			}
		case LeaseGranted:
			if err := w.runLease(ctx, client, campaigns, resp.Lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: coordinator returned unknown lease status %q", resp.Status)
		}
	}
}

// runLease executes one granted unit and commits the shard.
func (w *Worker) runLease(ctx context.Context, client *Client, campaigns []experiment.CampaignSpec, l *Lease) error {
	if l == nil || l.Campaign < 0 || l.Campaign >= len(campaigns) {
		return fmt.Errorf("fleet: coordinator granted lease for unknown campaign")
	}
	cs := campaigns[l.Campaign]
	if got := cs.ReplicationSeed(l.Replication); got != l.Seed {
		return fmt.Errorf("fleet: campaign %q replication %d derives seed %d locally vs %d at coordinator: version skew, refusing to work",
			cs.Name, l.Replication, got, l.Seed)
	}
	commit := CommitRequest{
		Worker:      w.Name,
		LeaseID:     l.ID,
		Campaign:    l.Campaign,
		Replication: l.Replication,
	}
	res, err := experiment.RunUnit(ctx, cs, l.Replication)
	switch {
	case err == nil:
		if commit.Result, err = measure.EncodeCampaignResult(res); err != nil {
			return err
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Our own shutdown, not the unit's fault: walk away and let the
		// lease expire so another worker picks the unit up.
		return ctx.Err()
	default:
		commit.Error = err.Error()
	}
	ack, err := w.commitWithRetry(ctx, client, commit)
	if err != nil {
		return err
	}
	// A stale rejection is routine: our lease expired and the unit was
	// reassigned (and possibly already committed) elsewhere. The shard we
	// computed is bit-identical to the accepted one, so nothing is lost.
	// Any other rejection is persistent — recomputing the unit would be
	// rejected identically — so fail loudly rather than letting the unit
	// cycle through lease expiry forever.
	if !ack.Accepted && !ack.Stale {
		return fmt.Errorf("fleet: coordinator rejected unit %d/%d of campaign %q: %s",
			l.Replication+1, cs.Replications, cs.Name, ack.Reason)
	}
	if commit.Error != "" {
		return fmt.Errorf("fleet: unit failed: %s", commit.Error)
	}
	return nil
}

// commitWithRetry retries transient transport errors; the at-most-once
// guarantee lives in the coordinator, so resending is always safe.
func (w *Worker) commitWithRetry(ctx context.Context, client *Client, req CommitRequest) (CommitResponse, error) {
	const attempts = 5
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := client.Commit(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return CommitResponse{}, ctx.Err()
		}
		if err := sleep(ctx, w.retryInterval()); err != nil {
			return CommitResponse{}, err
		}
	}
	return CommitResponse{}, fmt.Errorf("fleet: commit failed after %d attempts: %w", attempts, lastErr)
}
