package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
)

// fakeShard fabricates a commit body that passes the coordinator's
// decode and fingerprint checks — enough to drive the queue state
// machine without simulating anything.
func fakeShard(t *testing.T, c *Coordinator, campaign int) []byte {
	t.Helper()
	data, err := measure.EncodeCampaignResult(measure.CampaignResult{Fingerprint: c.prints[campaign]})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// oneUnitSweep is a single-unit queue, so expiry reassignment cannot be
// masked by pending units.
func oneUnitSweep() []experiment.CampaignSpec {
	return []experiment.CampaignSpec{{
		Name: "one",
		Spec: experiment.Spec{Nodes: 40, Seed: 21, Protocol: experiment.ProtoBitcoin},
		Runs: 1, Replications: 1, Deadline: 30 * time.Second,
	}}
}

// stubbedCoordinator builds a coordinator on a test-controlled clock.
func stubbedCoordinator(t *testing.T, campaigns []experiment.CampaignSpec, ttl time.Duration) (*Coordinator, *time.Time) {
	t.Helper()
	clock := time.Unix(1_700_000_000, 0)
	c, err := NewCoordinator(campaigns, CoordinatorConfig{
		LeaseTTL: ttl,
		now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, &clock
}

// TestRenewalKeepsSlowUnitAlive is the heartbeat's core promise: a unit
// whose wall time spans many TTLs is never reassigned as long as its
// worker keeps renewing — LeaseTTL can shrink to seconds without
// thrashing slow units.
func TestRenewalKeepsSlowUnitAlive(t *testing.T) {
	const ttl = 100 * time.Millisecond
	c, clock := stubbedCoordinator(t, testSweep(), ttl)

	granted := c.leaseUnit("slow")
	if granted.Status != LeaseGranted {
		t.Fatalf("lease status %q, want granted", granted.Status)
	}
	slow := granted.Lease

	// The slow unit outlives 18 TTLs, heartbeating at a safe cadence.
	for i := 0; i < 20; i++ {
		*clock = clock.Add(90 * time.Millisecond)
		r := c.renewLease(RenewRequest{Worker: "slow", LeaseID: slow.ID, Campaign: slow.Campaign, Replication: slow.Replication})
		if !r.Renewed {
			t.Fatalf("renewal %d refused: %s", i, r.Reason)
		}
	}

	// Drain the rest of the queue: the slow unit must never be handed
	// out again.
	for i := 0; i < len(c.units)-1; i++ {
		r := c.leaseUnit("drain")
		if r.Status != LeaseGranted {
			t.Fatalf("drain lease %d: status %q", i, r.Status)
		}
		if r.Lease.Campaign == slow.Campaign && r.Lease.Replication == slow.Replication {
			t.Fatalf("renewed slow unit was reassigned to another worker")
		}
	}
	if r := c.leaseUnit("drain"); r.Status != LeaseWait {
		t.Fatalf("fully leased queue returned %q, want wait", r.Status)
	}
	st := c.Status()
	if st.Reassigned != 0 || st.Renewed != 20 || st.Leased != st.Units {
		t.Errorf("status after renewals: %+v", st)
	}

	// The long-held lease still commits: the lease ID never changed.
	ack := c.commitUnit(CommitRequest{
		Worker: "slow", LeaseID: slow.ID,
		Campaign: slow.Campaign, Replication: slow.Replication,
		Result: fakeShard(t, c, slow.Campaign),
	})
	if !ack.Accepted {
		t.Fatalf("commit after 18 renewed TTLs rejected: %+v", ack)
	}
}

// TestRenewalRacesCommitAndExpiry pins the renewal edge cases: a
// committed unit refuses renewal, a superseded lease refuses renewal,
// and a lease that expired without being reclaimed is revived.
func TestRenewalRacesCommitAndExpiry(t *testing.T) {
	const ttl = 100 * time.Millisecond

	t.Run("after commit", func(t *testing.T) {
		c, _ := stubbedCoordinator(t, oneUnitSweep(), ttl)
		l := c.leaseUnit("w").Lease
		if ack := c.commitUnit(CommitRequest{
			Worker: "w", LeaseID: l.ID, Campaign: l.Campaign, Replication: l.Replication,
			Result: fakeShard(t, c, l.Campaign),
		}); !ack.Accepted {
			t.Fatalf("commit rejected: %+v", ack)
		}
		r := c.renewLease(RenewRequest{Worker: "w", LeaseID: l.ID, Campaign: l.Campaign, Replication: l.Replication})
		if r.Renewed || !strings.Contains(r.Reason, "committed") {
			t.Errorf("renewal after commit: %+v", r)
		}
	})

	t.Run("after expiry reassignment", func(t *testing.T) {
		c, clock := stubbedCoordinator(t, oneUnitSweep(), ttl)
		l1 := c.leaseUnit("w1").Lease
		*clock = clock.Add(ttl + time.Millisecond)
		l2 := c.leaseUnit("w2")
		if l2.Status != LeaseGranted {
			t.Fatalf("expired unit not reassigned: %q", l2.Status)
		}
		r := c.renewLease(RenewRequest{Worker: "w1", LeaseID: l1.ID, Campaign: l1.Campaign, Replication: l1.Replication})
		if r.Renewed || !strings.Contains(r.Reason, "superseded") {
			t.Errorf("renewal of superseded lease: %+v", r)
		}
		if r := c.renewLease(RenewRequest{Worker: "w2", LeaseID: l2.Lease.ID, Campaign: l2.Lease.Campaign, Replication: l2.Lease.Replication}); !r.Renewed {
			t.Errorf("current lease refused renewal: %+v", r)
		}
	})

	t.Run("revival before reassignment", func(t *testing.T) {
		c, clock := stubbedCoordinator(t, oneUnitSweep(), ttl)
		l := c.leaseUnit("w").Lease
		*clock = clock.Add(ttl + time.Millisecond)
		if st := c.Status(); st.Expired != 1 || st.Leased != 0 {
			t.Errorf("expired-unreclaimed status: %+v", st)
		}
		// A late heartbeat from a live worker revives the lease...
		r := c.renewLease(RenewRequest{Worker: "w", LeaseID: l.ID, Campaign: l.Campaign, Replication: l.Replication})
		if !r.Renewed {
			t.Fatalf("expired-but-unreclaimed lease not revived: %+v", r)
		}
		// ...so the unit is no longer up for grabs.
		if got := c.leaseUnit("thief"); got.Status != LeaseWait {
			t.Errorf("revived unit handed out anyway: %+v", got)
		}
		if st := c.Status(); st.Expired != 0 || st.Leased != 1 || st.Reassigned != 0 {
			t.Errorf("status after revival: %+v", st)
		}
	})
}

// TestFleetRenewalSurvivesTinyTTL is the acceptance bar end to end: with
// LeaseTTL far below a unit's wall time, a renewing worker completes the
// sweep with zero reassignments and output bit-identical to the serial
// engine.
func TestFleetRenewalSurvivesTinyTTL(t *testing.T) {
	sweep := []experiment.CampaignSpec{{
		Name: "slow-units",
		Spec: experiment.Spec{Nodes: 250, Seed: 31, Protocol: experiment.ProtoBitcoin},
		// Enough injections that one unit (~500ms wall) far outlives the
		// 200ms TTL — without renewal every unit would thrash through
		// expiry reassignment.
		Runs: 300, Replications: 2, Deadline: 30 * time.Second,
	}}
	serial, err := experiment.NewRunner(1).Sweep(context.Background(), sweep)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}

	c, ts := startCoordinator(t, sweep, CoordinatorConfig{LeaseTTL: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{CoordinatorURL: ts.URL, Name: "renewer", Parallelism: 1, RetryInterval: 10 * time.Millisecond}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("renewing worker: %v", err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	st := c.Status()
	if st.Reassigned != 0 {
		t.Errorf("slow units were reassigned %d times despite renewal", st.Reassigned)
	}
	if st.Renewed == 0 {
		t.Errorf("no renewals recorded — units did not outlive the TTL, test proves nothing")
	}
	out, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, out, serial)
}

// TestAuthGatesMutatingEndpoints: with a token configured, lease, renew
// and commit refuse unauthenticated and wrongly-authenticated requests;
// the read-only endpoints stay open; and a correctly-tokened worker
// completes the sweep.
func TestAuthGatesMutatingEndpoints(t *testing.T) {
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{Token: "s3cret"})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for _, path := range []string{PathLease, PathRenew, PathCommit} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("tokenless POST %s: status %d, want 401", path, resp.StatusCode)
		}
	}

	wrong := NewClient(ts.URL, nil)
	wrong.Token = "wr0ng"
	if _, err := wrong.Lease(ctx, "intruder"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("wrong-token lease error = %v, want ErrUnauthorized", err)
	}

	// Read-only endpoints serve without a token.
	open := NewClient(ts.URL, nil)
	if _, err := open.Sweep(ctx); err != nil {
		t.Errorf("tokenless sweep fetch: %v", err)
	}
	if _, err := open.Status(ctx); err != nil {
		t.Errorf("tokenless status fetch: %v", err)
	}

	// A worker with the wrong token fails fast — 401 is not a transport
	// blip, so the retry budgets must not be burned on it.
	start := time.Now()
	bad := &Worker{CoordinatorURL: ts.URL, Name: "bad", Parallelism: 2, Token: "wr0ng", RetryInterval: 10 * time.Millisecond}
	if err := bad.Run(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("wrong-token worker error = %v, want ErrUnauthorized", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("wrong-token worker took %v to fail — it retried instead of failing fast", d)
	}
	if got := c.Status().Done; got != 0 {
		t.Fatalf("unauthenticated traffic committed %d units", got)
	}

	// The right token runs the sweep to completion.
	good := &Worker{CoordinatorURL: ts.URL, Name: "good", Parallelism: 2, Token: "s3cret", RetryInterval: 10 * time.Millisecond}
	if err := good.Run(ctx); err != nil {
		t.Fatalf("tokened worker: %v", err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if st := c.Status(); st.Done != st.Units {
		t.Errorf("status after tokened sweep: %+v", st)
	}
}

// TestSpooledOutcomesMatchSerial: with a spool directory, committed
// shards live on disk — coordinator memory holds none of them — and the
// merged outcome is still bit-identical to the serial sweep. Stale
// commits leave no temp droppings behind.
func TestSpooledOutcomesMatchSerial(t *testing.T) {
	serial := serialSweep(t)
	dir := t.TempDir()
	// A reused spool directory: leftovers of a previous sweep — a
	// committed shard and a crash-orphaned temp file — must be cleaned
	// at startup, not interleaved with this sweep's shards.
	for _, stale := range []string{"campaign-000-rep-00000.json", "campaign-009-rep-00009.json.tmp-lease3"} {
		if err := os.WriteFile(filepath.Join(dir, stale), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{SpoolDir: dir})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	errc := make(chan error, 2)
	for i, name := range []string{"spool-a", "spool-b"} {
		w := &Worker{CoordinatorURL: ts.URL, Name: name, Parallelism: 1 + i, RetryInterval: 10 * time.Millisecond}
		go func() { errc <- w.Run(ctx) }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}

	// Every shard is on disk, none in memory.
	c.mu.Lock()
	for i := range c.units {
		if !c.units[i].spooled {
			t.Errorf("unit %d not spooled", i)
		}
		if c.units[i].result.Fingerprint != 0 {
			t.Errorf("unit %d retains an in-memory shard despite spooling", i)
		}
	}
	c.mu.Unlock()

	out, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, out, serial)

	// A late commit against the finished queue spools a temp file and
	// must clean it up when rejected as stale.
	ack := c.commitUnit(CommitRequest{
		Worker: "ghost", LeaseID: 9999, Campaign: 0, Replication: 0,
		Result: fakeShard(t, c, 0),
	})
	if ack.Accepted || !ack.Stale {
		t.Errorf("late commit: %+v", ack)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	units := c.Status().Units
	if len(entries) != units {
		t.Errorf("spool dir holds %d files, want %d shards", len(entries), units)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stale temp file left in spool dir: %s", e.Name())
		}
	}

	// The merge is re-readable: Outcomes a second time still matches.
	out, err = c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, out, serial)
}

// TestSpoolFaultFailsSweep: a coordinator that cannot persist shards
// cannot finish the sweep — a spool I/O fault fails it loudly for the
// whole fleet instead of killing workers one at a time through fatal
// commit rejections.
func TestSpoolFaultFailsSweep(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")
	c, err := NewCoordinator(oneUnitSweep(), CoordinatorConfig{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l := c.leaseUnit("w").Lease
	// The spool directory vanishes out from under the coordinator
	// (standing in for ENOSPC/EIO — any unwritable spool).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	ack := c.commitUnit(CommitRequest{
		Worker: "w", LeaseID: l.ID, Campaign: l.Campaign, Replication: l.Replication,
		Result: fakeShard(t, c, l.Campaign),
	})
	if ack.Accepted || ack.Stale || !strings.Contains(ack.Reason, "spool") {
		t.Errorf("commit against broken spool: %+v", ack)
	}
	if resp := c.leaseUnit("other"); resp.Status != LeaseFailed || !strings.Contains(resp.Failure, "spool") {
		t.Errorf("poll after spool fault: %+v", resp)
	}
	select {
	case <-c.Done():
	default:
		t.Error("spool fault did not complete the sweep as failed")
	}
}

// TestSweepFailureReachesIdleWorkers: when one unit fails the sweep,
// workers that never touched the failing unit must also exit non-zero
// carrying the cause — previously they saw "done" and exited 0.
func TestSweepFailureReachesIdleWorkers(t *testing.T) {
	c, ts := startCoordinator(t, testSweep(), CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	client := NewClient(ts.URL, nil)
	lease, err := client.Lease(ctx, "failing-worker")
	if err != nil || lease.Status != LeaseGranted {
		t.Fatalf("lease: %v %+v", err, lease)
	}
	if _, err := client.Commit(ctx, CommitRequest{
		Worker: "failing-worker", LeaseID: lease.Lease.ID,
		Campaign: lease.Lease.Campaign, Replication: lease.Lease.Replication,
		Error: "synthetic unit failure",
	}); err != nil {
		t.Fatal(err)
	}

	// The queue now answers polls with the failure, not "done".
	resp, err := client.Lease(ctx, "idle")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != LeaseFailed || !strings.Contains(resp.Failure, "synthetic unit failure") {
		t.Errorf("lease poll after failure: %+v", resp)
	}

	// A worker that never ran the bad unit exits non-zero with the cause.
	w := &Worker{CoordinatorURL: ts.URL, Name: "bystander", Parallelism: 2, RetryInterval: 10 * time.Millisecond}
	werr := w.Run(ctx)
	if werr == nil || !strings.Contains(werr.Error(), "synthetic unit failure") {
		t.Errorf("bystander worker error = %v, want the sweep failure", werr)
	}
	if err := c.Wait(ctx); err == nil {
		t.Error("coordinator did not record the failure")
	}
}

// TestLostLeaseAbortsUnit: when the coordinator refuses a renewal (the
// lease was superseded), the worker must abort the running simulation
// and move on — not finish an arbitrarily long unit whose commit is
// already guaranteed a stale rejection, and not treat the lost lease as
// an error.
func TestLostLeaseAbortsUnit(t *testing.T) {
	sweep := []experiment.CampaignSpec{{
		Name: "slow",
		Spec: experiment.Spec{Nodes: 250, Seed: 31, Protocol: experiment.ProtoBitcoin},
		Runs: 300, Replications: 1, Deadline: 30 * time.Second,
	}}
	c, err := NewCoordinator(sweep, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var leased, committed atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathSweep:
			json.NewEncoder(w).Encode(c.Sweep())
		case PathLease:
			if leased.Add(1) == 1 {
				json.NewEncoder(w).Encode(LeaseResponse{Status: LeaseGranted, Lease: &Lease{
					ID: 1, Campaign: 0, Replication: 0,
					Seed:      sweep[0].ReplicationSeed(0),
					TTLMillis: 150,
				}})
				return
			}
			json.NewEncoder(w).Encode(LeaseResponse{Status: LeaseDone})
		case PathRenew:
			json.NewEncoder(w).Encode(RenewResponse{Reason: "lease superseded"})
		case PathCommit:
			committed.Add(1)
			json.NewEncoder(w).Encode(CommitResponse{Reason: "lease superseded", Stale: true})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	w := &Worker{CoordinatorURL: ts.URL, Name: "loser", Parallelism: 1, RetryInterval: 10 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("losing a lease is not a worker error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker kept computing a unit whose lease it had lost")
	}
	if got := committed.Load(); got != 0 {
		t.Errorf("worker sent %d commits for a superseded lease", got)
	}
	if got := leased.Load(); got < 2 {
		t.Errorf("worker never came back for fresh work after the lost lease (%d lease polls)", got)
	}
}

// TestFatalSlotCancelsSiblings: a slot that hits a fatal error (here, a
// seed-skewed lease) must cancel its sibling slots instead of leaving
// them leasing and computing for a sweep the worker will report as
// failed. Before the fix the sibling spun on LeaseWait forever and Run
// never returned.
func TestFatalSlotCancelsSiblings(t *testing.T) {
	c, err := NewCoordinator(testSweep(), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var leases atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathSweep:
			json.NewEncoder(w).Encode(c.Sweep())
		case PathLease:
			if leases.Add(1) == 1 {
				// A skewed seed: the receiving slot must fail fatally.
				json.NewEncoder(w).Encode(LeaseResponse{Status: LeaseGranted, Lease: &Lease{
					ID: 1, Campaign: 0, Replication: 0, Seed: -12345, TTLMillis: 60_000,
				}})
				return
			}
			// Every other slot is strung along indefinitely.
			json.NewEncoder(w).Encode(LeaseResponse{Status: LeaseWait, RetryMillis: 10})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	w := &Worker{CoordinatorURL: ts.URL, Name: "skewed", Parallelism: 2, RetryInterval: 10 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "version skew") {
			t.Errorf("Run error = %v, want version skew", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sibling slot kept polling after a fatal slot error — Run never returned")
	}
}
