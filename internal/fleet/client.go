package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator protocol. Workers embed one; tests and
// failure injectors use it directly to hold leases without committing.
type Client struct {
	base string
	hc   *http.Client

	// Token, when non-empty, is attached to every request as
	// "Authorization: Bearer <Token>" — required by coordinators built
	// with CoordinatorConfig.Token.
	Token string
}

// ErrUnauthorized marks a 401 from the coordinator: the token is missing
// or wrong. Unlike a transport failure it can never heal by retrying, so
// workers fail immediately instead of burning their retry budgets.
var ErrUnauthorized = errors.New("fleet: coordinator refused the request: missing or wrong bearer token")

// defaultRequestTimeout bounds every protocol exchange when the caller
// does not supply its own http.Client. Without it, a coordinator that
// dies silently (powered-off host, dropped NAT entry — no RST) would
// hang a request forever and the worker's bounded-retry budgets would
// never fire. Two minutes is generous for the largest exchange, an exact
// shard commit of megabytes over a LAN.
const defaultRequestTimeout = 2 * time.Minute

// NewClient returns a client for the coordinator at baseURL (e.g.
// "http://10.0.0.5:9777"). httpClient nil means a client with
// defaultRequestTimeout; pass an explicit client to tune or remove it.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: defaultRequestTimeout}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// do runs one JSON request/response exchange.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: marshal %s request: %w", path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return fmt.Errorf("%w (%s)", ErrUnauthorized, path)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s: coordinator returned %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: %s: decode response: %w", path, err)
	}
	return nil
}

// Sweep fetches the sweep description.
func (c *Client) Sweep(ctx context.Context) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(ctx, http.MethodGet, PathSweep, nil, &out)
	return out, err
}

// Lease requests one unit of work.
func (c *Client) Lease(ctx context.Context, worker string) (LeaseResponse, error) {
	var out LeaseResponse
	err := c.do(ctx, http.MethodPost, PathLease, LeaseRequest{Worker: worker}, &out)
	return out, err
}

// Renew extends a lease's deadline — the worker heartbeat.
func (c *Client) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	var out RenewResponse
	err := c.do(ctx, http.MethodPost, PathRenew, req, &out)
	return out, err
}

// Commit ships a finished unit back.
func (c *Client) Commit(ctx context.Context, req CommitRequest) (CommitResponse, error) {
	var out CommitResponse
	err := c.do(ctx, http.MethodPost, PathCommit, req, &out)
	return out, err
}

// Status fetches queue progress.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx, http.MethodGet, PathStatus, nil, &out)
	return out, err
}
