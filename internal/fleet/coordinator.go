package fleet

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/obs"
)

// CoordinatorConfig tunes the work queue.
type CoordinatorConfig struct {
	// LeaseTTL is how long a lease lasts between heartbeats: workers
	// renew at TTL/3 cadence, so the TTL bounds failure detection, not
	// unit wall time. A dead worker's unit is reassigned at most one TTL
	// after its last heartbeat; a live worker renews a slow unit for
	// hours without it ever being reassigned. Size it to a few missed
	// heartbeats — seconds to tens of seconds; the 5-minute default is
	// deliberately conservative for clients (saboteur tests, old
	// binaries) that never renew.
	LeaseTTL time.Duration
	// RetryInterval caps the poll delay suggested to idle workers.
	// Default 2 seconds.
	RetryInterval time.Duration
	// Token, when non-empty, locks the mutating endpoints (lease, renew,
	// commit): requests must carry "Authorization: Bearer <Token>" or
	// are refused with 401. The read-only endpoints (sweep, status) stay
	// open — they expose progress, not the queue. Share the token with
	// workers out of band (bcbpt-fleet -token / BCBPT_FLEET_TOKEN).
	Token string
	// SpoolDir, when non-empty, streams committed shards to disk instead
	// of holding them in memory: each accepted shard is written to
	// SpoolDir (its wire-form JSON, measure.EncodeCampaignResult) and
	// re-read in replication order by Outcomes. Coordinator memory then
	// stays flat however deep the sweep; an exact paper-scale sweep is
	// gigabytes of samples. The directory is created if missing.
	SpoolDir string
	// Trace, when non-nil, records the queue's lease lifecycle — grant,
	// renew, expiry reassignment, commit — onto the tracer's shard 0,
	// stamped with wall time (the fleet runs in real time; there is no
	// simulation clock here). Every record happens under the queue mutex,
	// which is what makes the single-writer shard discipline hold across
	// concurrent HTTP handlers.
	Trace *obs.Tracer
	// now stubs the clock in tests.
	now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Minute
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// unitPhase is a unit's place in the queue lifecycle.
type unitPhase uint8

const (
	unitPending unitPhase = iota
	unitLeased
	unitDone
)

// unit is one (campaign, replication) work item and its queue state.
type unit struct {
	campaign    int
	replication int
	phase       unitPhase
	leaseID     uint64
	worker      string
	expires     time.Time
	// result holds the committed shard when the coordinator runs
	// in-memory; spooled coordinators leave it zero and set spooled.
	result  measure.CampaignResult
	spooled bool
}

// Coordinator owns a sweep's work queue and its committed shards. It is
// an http.Handler (the protocol endpoints) and is safe for concurrent
// use; serve it with net/http or drive leaseUnit/commitUnit through the
// handlers from in-process workers.
type Coordinator struct {
	cfg       CoordinatorConfig
	campaigns []experiment.CampaignSpec // defaulted
	prints    []uint64
	offsets   []int // unit index of each campaign's replication 0
	mux       *http.ServeMux
	metrics   *obs.Registry
	trace     *obs.Shard // nil unless cfg.Trace; written only under mu

	mu         sync.Mutex
	units      []unit
	remaining  int
	reassigned int
	renewed    int
	nextLease  uint64
	failure    error
	done       chan struct{}
	// commits holds recent commit times (pruned to statusRateWindow) for
	// the sliding-window throughput and ETA in Status.
	commits []time.Time
}

// NewCoordinator builds the work queue for a sweep: every replication of
// every campaign becomes one leasable unit, exactly the flat queue
// Runner.Sweep schedules locally. Campaigns must be shippable
// (CampaignSpec.CheckShippable).
func NewCoordinator(campaigns []experiment.CampaignSpec, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(campaigns) == 0 {
		return nil, errors.New("fleet: sweep has no campaigns")
	}
	c := &Coordinator{
		cfg:       cfg.withDefaults(),
		campaigns: make([]experiment.CampaignSpec, len(campaigns)),
		prints:    make([]uint64, len(campaigns)),
		offsets:   make([]int, len(campaigns)),
		metrics:   experiment.NewMetricsRegistry(),
		done:      make(chan struct{}),
	}
	if c.cfg.Trace != nil {
		c.trace = c.cfg.Trace.Shard(0)
	}
	for i, cs := range campaigns {
		if err := cs.CheckShippable(); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cs = cs.WithDefaults()
		c.campaigns[i] = cs
		c.prints[i] = cs.Fingerprint()
		c.offsets[i] = len(c.units)
		for rep := 0; rep < cs.Replications; rep++ {
			c.units = append(c.units, unit{campaign: i, replication: rep})
		}
	}
	c.remaining = len(c.units)
	if dir := c.cfg.SpoolDir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: create spool directory: %w", err)
		}
		if err := cleanSpoolDir(dir); err != nil {
			return nil, err
		}
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET "+PathSweep, c.handleSweep)
	c.mux.HandleFunc("POST "+PathLease, c.requireAuth(c.handleLease))
	c.mux.HandleFunc("POST "+PathRenew, c.requireAuth(c.handleRenew))
	c.mux.HandleFunc("POST "+PathCommit, c.requireAuth(c.handleCommit))
	c.mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	c.mux.HandleFunc("GET "+PathMetrics, c.handleMetrics)
	return c, nil
}

// Metrics returns the coordinator's registry — the same one PathMetrics
// serves — so frontends can fold their own counters in or print a final
// summary from it.
func (c *Coordinator) Metrics() *obs.Registry { return c.metrics }

// traceLease records one lease lifecycle event. Callers hold c.mu (the
// shard's writer serialization); a nil trace costs one branch.
func (c *Coordinator) traceLease(kind obs.Kind, campaign, rep int, leaseID uint64) {
	if c.trace == nil {
		return
	}
	c.trace.Record(obs.Event{
		Wall: c.cfg.now().UnixNano(),
		Kind: kind,
		P1:   uint64(campaign),
		P2:   uint64(rep),
		P3:   leaseID,
	})
}

// requireAuth gates a mutating endpoint behind the shared bearer token.
// No token configured means an open queue (trusted-LAN mode). The
// comparison is constant-time, so a rejected probe learns nothing about
// how much of its guess matched.
func (c *Coordinator) requireAuth(next http.HandlerFunc) http.HandlerFunc {
	if c.cfg.Token == "" {
		return next
	}
	want := []byte("Bearer " + c.cfg.Token)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="bcbpt-fleet"`)
			http.Error(w, "unauthorized: missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		next(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Sweep returns the sweep description workers fetch at startup.
func (c *Coordinator) Sweep() SweepResponse {
	return SweepResponse{Campaigns: c.campaigns, Fingerprints: c.prints}
}

// leaseUnit grants the next available unit: a never-leased one first,
// else the first unit whose lease has expired (the failover path). Units
// are scanned in queue order, so reassignment — like everything else —
// is deterministic given the same request sequence.
func (c *Coordinator) leaseUnit(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		// A failed sweep is not "done": every worker that polls must
		// learn the failure and exit non-zero, not report a clean sweep
		// it never saw fail.
		return LeaseResponse{Status: LeaseFailed, Failure: c.failure.Error()}
	}
	if c.remaining == 0 {
		return LeaseResponse{Status: LeaseDone}
	}
	now := c.cfg.now()
	grant := -1
	for i := range c.units {
		if c.units[i].phase == unitPending {
			grant = i
			break
		}
	}
	if grant < 0 {
		soonest := time.Duration(-1)
		for i := range c.units {
			u := &c.units[i]
			if u.phase != unitLeased {
				continue
			}
			if !now.Before(u.expires) {
				c.reassigned++
				c.metrics.Counter("bcbpt_fleet_leases_reassigned_total").Inc()
				c.traceLease(obs.KindLeaseExpire, u.campaign, u.replication, u.leaseID)
				grant = i
				break
			}
			if wait := u.expires.Sub(now); soonest < 0 || wait < soonest {
				soonest = wait
			}
		}
		if grant < 0 {
			// Everything is leased and live: come back around the time
			// the earliest lease could expire.
			retry := c.cfg.RetryInterval
			if soonest >= 0 && soonest < retry {
				retry = soonest
			}
			if retry < 10*time.Millisecond {
				retry = 10 * time.Millisecond
			}
			c.metrics.Counter("bcbpt_fleet_lease_waits_total").Inc()
			return LeaseResponse{Status: LeaseWait, RetryMillis: retry.Milliseconds()}
		}
	}
	u := &c.units[grant]
	c.nextLease++
	u.phase = unitLeased
	u.leaseID = c.nextLease
	u.worker = worker
	u.expires = now.Add(c.cfg.LeaseTTL)
	c.metrics.Counter("bcbpt_fleet_leases_granted_total").Inc()
	c.traceLease(obs.KindLeaseGrant, u.campaign, u.replication, u.leaseID)
	return LeaseResponse{Status: LeaseGranted, Lease: &Lease{
		ID:          u.leaseID,
		Campaign:    u.campaign,
		Replication: u.replication,
		Seed:        c.campaigns[u.campaign].ReplicationSeed(u.replication),
		TTLMillis:   c.cfg.LeaseTTL.Milliseconds(),
	}}
}

// renewLease extends a lease's deadline by a fresh LeaseTTL — the
// heartbeat that keeps a live slow unit from being reassigned. Only the
// unit's current lease may renew. A lease past its deadline whose unit
// nobody has reclaimed yet is revived rather than refused: the heartbeat
// proves the worker is alive, and reviving it beats thrashing the work
// (the at-most-once commit rule would keep the merge correct either
// way). After a reassignment or commit the renewal is refused, telling
// the worker to stop heartbeating.
func (c *Coordinator) renewLease(req RenewRequest) RenewResponse {
	if req.Campaign < 0 || req.Campaign >= len(c.campaigns) {
		return RenewResponse{Reason: fmt.Sprintf("unknown campaign %d", req.Campaign)}
	}
	if req.Replication < 0 || req.Replication >= c.campaigns[req.Campaign].Replications {
		return RenewResponse{Reason: fmt.Sprintf("campaign %d has no replication %d", req.Campaign, req.Replication)}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	u := &c.units[c.offsets[req.Campaign]+req.Replication]
	if u.phase == unitDone {
		return RenewResponse{Reason: "unit already committed"}
	}
	if u.phase != unitLeased || u.leaseID != req.LeaseID {
		return RenewResponse{Reason: "lease superseded"}
	}
	u.expires = c.cfg.now().Add(c.cfg.LeaseTTL)
	c.renewed++
	c.metrics.Counter("bcbpt_fleet_leases_renewed_total").Inc()
	c.traceLease(obs.KindLeaseRenew, u.campaign, u.replication, u.leaseID)
	return RenewResponse{Renewed: true, TTLMillis: c.cfg.LeaseTTL.Milliseconds()}
}

// commitUnit records a finished unit — at most once. The commit must name
// the unit's current lease: after an expiry-driven reassignment the
// superseded worker's commit is rejected, and once a unit is done every
// further commit is rejected, so a shard can never pool twice.
//
// Shard decoding — hundreds of milliseconds for an exact shard of a deep
// campaign — happens before the lock is taken (campaigns, prints and
// offsets are immutable after construction), so one large commit never
// stalls every other worker's lease poll behind the coordinator mutex.
// The lease is only checked under the lock, after the decode: a stale
// commit wastes its own decode, never anyone else's time.
//
// Spooling follows the same shape: the shard's bytes are written to a
// request-unique temp file before the lock, and acceptance is a rename —
// a metadata operation — under it, so a megabyte exact shard never
// serializes lease polls behind disk I/O. The temp name must be unique
// per request, not per lease: a worker whose commit times out resends
// it while the first handler may still be writing, and a shared name
// would let one handler truncate the file another is about to publish.
// A losing (stale) commit's temp file is removed.
func (c *Coordinator) commitUnit(req CommitRequest) CommitResponse {
	if req.Campaign < 0 || req.Campaign >= len(c.campaigns) {
		return CommitResponse{Reason: fmt.Sprintf("unknown campaign %d", req.Campaign)}
	}
	cs := c.campaigns[req.Campaign]
	if req.Replication < 0 || req.Replication >= cs.Replications {
		return CommitResponse{Reason: fmt.Sprintf("campaign %d has no replication %d", req.Campaign, req.Replication)}
	}
	var res measure.CampaignResult
	spoolTmp := ""
	if req.Error == "" {
		print, err := shardFingerprint(req.Result, c.cfg.SpoolDir == "", &res)
		if err != nil {
			return CommitResponse{Reason: err.Error()}
		}
		if print != c.prints[req.Campaign] {
			return CommitResponse{Reason: fmt.Sprintf(
				"shard fingerprint %016x does not match campaign %s (%016x): worker ran a different experiment",
				print, cs.Name, c.prints[req.Campaign])}
		}
		if c.cfg.SpoolDir != "" {
			spoolTmp, err = writeSpoolTemp(c.cfg.SpoolDir, req)
			if err != nil {
				return c.failSpool(err)
			}
		}
	}

	resp := c.finishCommit(req, cs, res, spoolTmp)
	if spoolTmp != "" && !resp.Accepted {
		// The losing temp file (stale lease, or a failed rename) is dead
		// weight; removal is best effort.
		os.Remove(spoolTmp)
	}
	return resp
}

// finishCommit is commitUnit's locked tail: lease adjudication and the
// at-most-once state transition.
func (c *Coordinator) finishCommit(req CommitRequest, cs experiment.CampaignSpec, res measure.CampaignResult, spoolTmp string) CommitResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := &c.units[c.offsets[req.Campaign]+req.Replication]
	if u.phase == unitDone {
		c.metrics.Counter("bcbpt_fleet_commits_stale_total").Inc()
		return CommitResponse{Reason: "unit already committed", Stale: true}
	}
	if u.phase != unitLeased || u.leaseID != req.LeaseID {
		c.metrics.Counter("bcbpt_fleet_commits_stale_total").Inc()
		return CommitResponse{Reason: "lease superseded", Stale: true}
	}
	if req.Error != "" {
		c.metrics.Counter("bcbpt_fleet_units_failed_total").Inc()
		// A deterministic unit failure fails the sweep fast: retrying the
		// unit elsewhere would reproduce it bit for bit.
		if c.failure == nil {
			c.failure = fmt.Errorf("fleet: unit %d/%d of campaign %s failed on worker %s: %s",
				req.Replication+1, cs.Replications, cs.Name, req.Worker, req.Error)
			close(c.done)
		}
		return CommitResponse{Accepted: true}
	}
	if spoolTmp != "" {
		//bcbptlint:allow lockio — rename-only atomic publish; the payload was written outside the lock
		if err := os.Rename(spoolTmp, c.spoolPath(req.Campaign, req.Replication)); err != nil {
			return c.failSpoolLocked(err)
		}
		u.spooled = true
	} else {
		u.result = res
	}
	u.phase = unitDone
	c.remaining--
	c.metrics.Counter("bcbpt_fleet_commits_accepted_total").Inc()
	c.observeUnitTimings(req)
	c.traceLease(obs.KindLeaseCommit, req.Campaign, req.Replication, req.LeaseID)
	c.commits = append(c.commits, c.cfg.now())
	c.pruneCommits(c.cfg.now())
	if c.remaining == 0 && c.failure == nil {
		// A failed sweep already closed done; in-flight commits after the
		// failure are still recorded, just not re-signalled.
		close(c.done)
	}
	return CommitResponse{Accepted: true}
}

// observeUnitTimings folds a commit's worker-reported wall timings into
// the registry. The fields are optional (additive protocol): an old
// worker omits them and nothing is recorded. Histogram handles carry
// their own locks; holding c.mu here is cheap and order-safe.
func (c *Coordinator) observeUnitTimings(req CommitRequest) {
	if req.BuildMillis > 0 {
		c.metrics.Histogram("bcbpt_fleet_unit_build_seconds").Observe(time.Duration(req.BuildMillis) * time.Millisecond)
	}
	if req.RunMillis > 0 {
		c.metrics.Histogram("bcbpt_fleet_unit_run_seconds").Observe(time.Duration(req.RunMillis) * time.Millisecond)
	}
	if req.ShipMillis > 0 {
		c.metrics.Histogram("bcbpt_fleet_unit_ship_seconds").Observe(time.Duration(req.ShipMillis) * time.Millisecond)
	}
}

// statusRateWindow is the sliding window for commit throughput: long
// enough to smooth bursty commits from parallel workers, short enough
// that the ETA tracks a fleet scaling up or down.
const statusRateWindow = 5 * time.Minute

// pruneCommits drops commit timestamps older than the rate window.
// Called with c.mu held.
func (c *Coordinator) pruneCommits(now time.Time) {
	cut := 0
	for cut < len(c.commits) && now.Sub(c.commits[cut]) > statusRateWindow {
		cut++
	}
	if cut > 0 {
		c.commits = append(c.commits[:0], c.commits[cut:]...)
	}
}

// spoolPath is the final on-disk name of a committed shard — one file
// per (campaign, replication), the exact wire bytes the worker shipped.
func (c *Coordinator) spoolPath(campaign, rep int) string {
	return filepath.Join(c.cfg.SpoolDir, fmt.Sprintf("campaign-%03d-rep-%05d.json", campaign, rep))
}

// shardFingerprint extracts a shard's fingerprint for the commit check.
// An in-memory coordinator (full=true) decodes the whole shard into
// *res — it is about to keep it anyway. A spooling coordinator only
// peeks at the fingerprint field: the spool keeps the raw bytes and the
// merge decodes them exactly once at Outcomes time, so fully decoding a
// megabyte exact shard here would do the expensive work twice per unit
// (a shard that is valid JSON but corrupt beyond its fingerprint still
// fails loudly, at merge instead of commit).
func shardFingerprint(data []byte, full bool, res *measure.CampaignResult) (uint64, error) {
	if full {
		var err error
		*res, err = measure.DecodeCampaignResult(data)
		return res.Fingerprint, err
	}
	var peek struct {
		Fingerprint uint64 `json:"fingerprint"`
	}
	if err := json.Unmarshal(data, &peek); err != nil {
		return 0, fmt.Errorf("measure: decode campaign result: %w", err)
	}
	return peek.Fingerprint, nil
}

// failSpool escalates a spool I/O error to a sweep failure: a
// coordinator that cannot persist shards cannot finish the sweep, and
// letting each worker discover the fault through a fatal commit
// rejection would kill the fleet one worker per lease TTL while the
// queue kept advertising reassignable units. Failing the sweep gives
// every worker the cause on its next poll (LeaseFailed) instead. The
// one commit that observed the fault still gets a rejection, so its
// worker exits with the disk error rather than a generic failure.
func (c *Coordinator) failSpool(err error) CommitResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failSpoolLocked(err)
}

// failSpoolLocked is failSpool for callers already holding c.mu. A
// fault observed after the sweep already finished (a stale commit's
// temp write) does not fail it retroactively — done may already be
// closed, and the merged result is safely on disk.
func (c *Coordinator) failSpoolLocked(err error) CommitResponse {
	if c.failure == nil && c.remaining > 0 {
		c.failure = fmt.Errorf("fleet: spool shard: %w", err)
		close(c.done)
	}
	return CommitResponse{Reason: fmt.Sprintf("spool shard: %v", err)}
}

// writeSpoolTemp lands a shard's bytes in a request-unique temp file
// (os.CreateTemp's random suffix) in the spool directory, named so
// cleanSpoolDir recognises orphans.
func writeSpoolTemp(dir string, req CommitRequest) (string, error) {
	f, err := os.CreateTemp(dir, fmt.Sprintf("campaign-%03d-rep-%05d.json.tmp-lease%d-*", req.Campaign, req.Replication, req.LeaseID))
	if err != nil {
		return "", err
	}
	_, werr := f.Write(req.Result)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return "", werr
	}
	return f.Name(), nil
}

// cleanSpoolDir empties a reused spool directory of the previous run's
// output — committed shards and temp files orphaned by a crash alike.
// The directory records exactly one sweep: without this, an operator
// pointing two sweeps at the same -spool-dir would leave it interleaving
// shards of both, and anything consuming the documented layout would
// pick up shards from the wrong sweep. Only names this coordinator
// writes are touched; foreign files are left alone (and will fail the
// run loudly only if they collide with a shard name, via the fingerprint
// recheck at merge).
func cleanSpoolDir(dir string) error {
	// Digit-leading wildcards rather than fixed widths: spoolPath's
	// %03d/%05d grow past three/five digits on huge sweeps, and those
	// shards must be cleaned too.
	const shard = "campaign-[0-9]*-rep-[0-9]*.json"
	for _, pattern := range []string{shard, shard + ".tmp-lease*"} {
		stale, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return fmt.Errorf("fleet: scan spool directory: %w", err)
		}
		for _, path := range stale {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("fleet: clean spool directory: %w", err)
			}
		}
	}
	return nil
}

// Done is closed when the sweep completes or fails.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the sweep completes, fails, or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.failure
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots queue progress. A lease past its deadline that no
// worker has reclaimed yet counts as Expired, not Leased: lumping the
// two together would make a queue full of dead workers' leases look
// busy when it is stalled.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	s := StatusResponse{Units: len(c.units), Reassigned: c.reassigned, Renewed: c.renewed}
	s.Campaigns = make([]CampaignStatus, len(c.campaigns))
	for ci, cs := range c.campaigns {
		s.Campaigns[ci] = CampaignStatus{Name: cs.Name, Units: cs.Replications}
	}
	for i := range c.units {
		u := &c.units[i]
		cs := &s.Campaigns[u.campaign]
		switch {
		case u.phase == unitDone:
			s.Done++
			cs.Done++
		case u.phase == unitLeased && now.Before(u.expires):
			s.Leased++
			cs.Leased++
		case u.phase == unitLeased:
			s.Expired++
			cs.Expired++
		default:
			s.Pending++
			cs.Pending++
		}
	}
	s.Complete = c.remaining == 0 || c.failure != nil
	if c.failure != nil {
		s.Failed = c.failure.Error()
	}
	// Sliding-window throughput and ETA: rate over the span from the
	// oldest in-window commit to now. Needs at least two commits so one
	// early commit does not extrapolate a wild rate from a tiny span.
	c.pruneCommits(now)
	if len(c.commits) >= 2 {
		span := now.Sub(c.commits[0])
		if span > 0 {
			perMin := float64(len(c.commits)) / span.Minutes()
			s.CommitsPerMinute = perMin
			if left := s.Units - s.Done; left > 0 && perMin > 0 {
				s.EtaMillis = int64(float64(left) / perMin * float64(time.Minute/time.Millisecond))
			}
		}
	}
	return s
}

// Outcomes merges the committed shards into campaign outcomes, in
// replication order — byte for byte what Runner.Sweep would have returned
// for the same specs on one machine. Spooled shards are re-read from the
// spool directory here, still in replication order, so spooling changes
// where shards wait, never how they merge. Incomplete campaigns merge
// their committed shards (mirroring Sweep's partial results); the
// sweep-fatal error, if any, is returned alongside.
//
// The queue mutex guards only the state snapshot: reading and decoding
// a deep spooled sweep takes long enough that holding the lock through
// it would stall every worker's "done" poll behind the merge — a
// committed spool file is immutable (only ever renamed into place, never
// rewritten), so reading it unlocked is safe.
//
// A spool file that fails to read back (clobbered by another process,
// corrupt beyond its fingerprint) is skipped like an uncommitted unit —
// its campaign merges partially and the read error is returned alongside
// — rather than discarding every healthy campaign's data with it.
func (c *Coordinator) Outcomes() ([]experiment.CampaignOutcome, error) {
	c.mu.Lock()
	done := make([]bool, len(c.units))
	spooled := make([]bool, len(c.units))
	results := make([]measure.CampaignResult, len(c.units))
	for i := range c.units {
		u := &c.units[i]
		done[i], spooled[i], results[i] = u.phase == unitDone, u.spooled, u.result
	}
	failure := c.failure
	c.mu.Unlock()

	var readErrs []error
	out := make([]experiment.CampaignOutcome, len(c.campaigns))
	for ci, cs := range c.campaigns {
		shards := make([]measure.CampaignResult, 0, cs.Replications)
		for rep := 0; rep < cs.Replications; rep++ {
			i := c.offsets[ci] + rep
			if !done[i] {
				continue
			}
			if spooled[i] {
				res, err := c.readSpooled(ci, rep)
				if err != nil {
					readErrs = append(readErrs, fmt.Errorf("fleet: campaign %s: %w", cs.Name, err))
					continue
				}
				shards = append(shards, res)
			} else {
				shards = append(shards, results[i])
			}
		}
		merged, err := measure.MergeCampaignResults(shards...)
		if err != nil {
			// Unreachable — commits with foreign fingerprints are
			// rejected — but never pool silently.
			return nil, fmt.Errorf("fleet: merge campaign %s: %w", cs.Name, err)
		}
		out[ci] = experiment.CampaignOutcome{Name: cs.Name, Result: merged, Replications: len(shards)}
	}
	if len(readErrs) > 0 {
		readErrs = append(readErrs, failure)
		return out, errors.Join(readErrs...)
	}
	return out, failure
}

// readSpooled loads one committed shard back from the spool directory,
// re-checking its fingerprint: a spool file tampered with (or clobbered
// by another process) between commit and merge must fail loudly, not
// pool.
func (c *Coordinator) readSpooled(campaign, rep int) (measure.CampaignResult, error) {
	path := c.spoolPath(campaign, rep)
	data, err := os.ReadFile(path)
	if err != nil {
		return measure.CampaignResult{}, fmt.Errorf("read spooled shard: %w", err)
	}
	res, err := measure.DecodeCampaignResult(data)
	if err != nil {
		return measure.CampaignResult{}, fmt.Errorf("decode spooled shard %s: %w", path, err)
	}
	if res.Fingerprint != c.prints[campaign] {
		return measure.CampaignResult{}, fmt.Errorf("spooled shard %s fingerprint %016x does not match campaign (%016x)",
			path, res.Fingerprint, c.prints[campaign])
	}
	return res, nil
}

// maxBody bounds request bodies: an exact shard of a deep campaign is
// megabytes of samples; 256 MiB leaves headroom without letting a rogue
// peer exhaust memory.
const maxBody = 256 << 20

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Sweep())
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.leaseUnit(req.Worker))
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.renewLease(req))
}

func (c *Coordinator) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.commitUnit(req))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Queue progress is refreshed from Status() into gauges first, so a
// scrape always sees the current partition of units — Status locks
// internally and the registry write never holds c.mu.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := c.Status()
	c.metrics.Gauge("bcbpt_fleet_units").Set(int64(st.Units))
	c.metrics.Gauge("bcbpt_fleet_units_done").Set(int64(st.Done))
	c.metrics.Gauge("bcbpt_fleet_units_leased").Set(int64(st.Leased))
	c.metrics.Gauge("bcbpt_fleet_units_expired").Set(int64(st.Expired))
	c.metrics.Gauge("bcbpt_fleet_units_pending").Set(int64(st.Pending))
	c.metrics.Gauge("bcbpt_fleet_commits_per_minute_x1000").Set(int64(st.CommitsPerMinute * 1000))
	c.metrics.Gauge("bcbpt_fleet_eta_seconds").Set(st.EtaMillis / 1000)
	for _, cs := range st.Campaigns {
		c.metrics.Gauge(`bcbpt_fleet_campaign_units_done{campaign="` + cs.Name + `"}`).Set(int64(cs.Done))
		c.metrics.Gauge(`bcbpt_fleet_campaign_units{campaign="` + cs.Name + `"}`).Set(int64(cs.Units))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.metrics.WritePrometheus(w)
}
