package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
)

// CoordinatorConfig tunes the work queue.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker holds a unit before it may be
	// reassigned. There is no renewal, so size it above the slowest
	// unit's wall time: too short wastes work on spurious reassignments
	// (harmless — commits are at-most-once — but slow), too long delays
	// recovery from a dead worker. Default 5 minutes.
	LeaseTTL time.Duration
	// RetryInterval caps the poll delay suggested to idle workers.
	// Default 2 seconds.
	RetryInterval time.Duration
	// now stubs the clock in tests.
	now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Minute
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// unitPhase is a unit's place in the queue lifecycle.
type unitPhase uint8

const (
	unitPending unitPhase = iota
	unitLeased
	unitDone
)

// unit is one (campaign, replication) work item and its queue state.
type unit struct {
	campaign    int
	replication int
	phase       unitPhase
	leaseID     uint64
	worker      string
	expires     time.Time
	result      measure.CampaignResult
}

// Coordinator owns a sweep's work queue and its committed shards. It is
// an http.Handler (the protocol endpoints) and is safe for concurrent
// use; serve it with net/http or drive leaseUnit/commitUnit through the
// handlers from in-process workers.
type Coordinator struct {
	cfg       CoordinatorConfig
	campaigns []experiment.CampaignSpec // defaulted
	prints    []uint64
	offsets   []int // unit index of each campaign's replication 0
	mux       *http.ServeMux

	mu         sync.Mutex
	units      []unit
	remaining  int
	reassigned int
	nextLease  uint64
	failure    error
	done       chan struct{}
}

// NewCoordinator builds the work queue for a sweep: every replication of
// every campaign becomes one leasable unit, exactly the flat queue
// Runner.Sweep schedules locally. Campaigns must be shippable
// (CampaignSpec.CheckShippable).
func NewCoordinator(campaigns []experiment.CampaignSpec, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(campaigns) == 0 {
		return nil, errors.New("fleet: sweep has no campaigns")
	}
	c := &Coordinator{
		cfg:       cfg.withDefaults(),
		campaigns: make([]experiment.CampaignSpec, len(campaigns)),
		prints:    make([]uint64, len(campaigns)),
		offsets:   make([]int, len(campaigns)),
		done:      make(chan struct{}),
	}
	for i, cs := range campaigns {
		if err := cs.CheckShippable(); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cs = cs.WithDefaults()
		c.campaigns[i] = cs
		c.prints[i] = cs.Fingerprint()
		c.offsets[i] = len(c.units)
		for rep := 0; rep < cs.Replications; rep++ {
			c.units = append(c.units, unit{campaign: i, replication: rep})
		}
	}
	c.remaining = len(c.units)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET "+PathSweep, c.handleSweep)
	c.mux.HandleFunc("POST "+PathLease, c.handleLease)
	c.mux.HandleFunc("POST "+PathCommit, c.handleCommit)
	c.mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Sweep returns the sweep description workers fetch at startup.
func (c *Coordinator) Sweep() SweepResponse {
	return SweepResponse{Campaigns: c.campaigns, Fingerprints: c.prints}
}

// leaseUnit grants the next available unit: a never-leased one first,
// else the first unit whose lease has expired (the failover path). Units
// are scanned in queue order, so reassignment — like everything else —
// is deterministic given the same request sequence.
func (c *Coordinator) leaseUnit(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining == 0 || c.failure != nil {
		return LeaseResponse{Status: LeaseDone}
	}
	now := c.cfg.now()
	grant := -1
	for i := range c.units {
		if c.units[i].phase == unitPending {
			grant = i
			break
		}
	}
	if grant < 0 {
		soonest := time.Duration(-1)
		for i := range c.units {
			u := &c.units[i]
			if u.phase != unitLeased {
				continue
			}
			if !now.Before(u.expires) {
				c.reassigned++
				grant = i
				break
			}
			if wait := u.expires.Sub(now); soonest < 0 || wait < soonest {
				soonest = wait
			}
		}
		if grant < 0 {
			// Everything is leased and live: come back around the time
			// the earliest lease could expire.
			retry := c.cfg.RetryInterval
			if soonest >= 0 && soonest < retry {
				retry = soonest
			}
			if retry < 10*time.Millisecond {
				retry = 10 * time.Millisecond
			}
			return LeaseResponse{Status: LeaseWait, RetryMillis: retry.Milliseconds()}
		}
	}
	u := &c.units[grant]
	c.nextLease++
	u.phase = unitLeased
	u.leaseID = c.nextLease
	u.worker = worker
	u.expires = now.Add(c.cfg.LeaseTTL)
	return LeaseResponse{Status: LeaseGranted, Lease: &Lease{
		ID:          u.leaseID,
		Campaign:    u.campaign,
		Replication: u.replication,
		Seed:        c.campaigns[u.campaign].ReplicationSeed(u.replication),
		TTLMillis:   c.cfg.LeaseTTL.Milliseconds(),
	}}
}

// commitUnit records a finished unit — at most once. The commit must name
// the unit's current lease: after an expiry-driven reassignment the
// superseded worker's commit is rejected, and once a unit is done every
// further commit is rejected, so a shard can never pool twice.
//
// Shard decoding — hundreds of milliseconds for an exact shard of a deep
// campaign — happens before the lock is taken (campaigns, prints and
// offsets are immutable after construction), so one large commit never
// stalls every other worker's lease poll behind the coordinator mutex.
// The lease is only checked under the lock, after the decode: a stale
// commit wastes its own decode, never anyone else's time.
func (c *Coordinator) commitUnit(req CommitRequest) CommitResponse {
	if req.Campaign < 0 || req.Campaign >= len(c.campaigns) {
		return CommitResponse{Reason: fmt.Sprintf("unknown campaign %d", req.Campaign)}
	}
	cs := c.campaigns[req.Campaign]
	if req.Replication < 0 || req.Replication >= cs.Replications {
		return CommitResponse{Reason: fmt.Sprintf("campaign %d has no replication %d", req.Campaign, req.Replication)}
	}
	var res measure.CampaignResult
	if req.Error == "" {
		var err error
		if res, err = measure.DecodeCampaignResult(req.Result); err != nil {
			return CommitResponse{Reason: err.Error()}
		}
		if res.Fingerprint != c.prints[req.Campaign] {
			return CommitResponse{Reason: fmt.Sprintf(
				"shard fingerprint %016x does not match campaign %s (%016x): worker ran a different experiment",
				res.Fingerprint, cs.Name, c.prints[req.Campaign])}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	u := &c.units[c.offsets[req.Campaign]+req.Replication]
	if u.phase == unitDone {
		return CommitResponse{Reason: "unit already committed", Stale: true}
	}
	if u.phase != unitLeased || u.leaseID != req.LeaseID {
		return CommitResponse{Reason: "lease superseded", Stale: true}
	}
	if req.Error != "" {
		// A deterministic unit failure fails the sweep fast: retrying the
		// unit elsewhere would reproduce it bit for bit.
		if c.failure == nil {
			c.failure = fmt.Errorf("fleet: unit %d/%d of campaign %s failed on worker %s: %s",
				req.Replication+1, cs.Replications, cs.Name, req.Worker, req.Error)
			close(c.done)
		}
		return CommitResponse{Accepted: true}
	}
	u.phase = unitDone
	u.result = res
	c.remaining--
	if c.remaining == 0 && c.failure == nil {
		// A failed sweep already closed done; in-flight commits after the
		// failure are still recorded, just not re-signalled.
		close(c.done)
	}
	return CommitResponse{Accepted: true}
}

// Done is closed when the sweep completes or fails.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the sweep completes, fails, or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.failure
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots queue progress.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := StatusResponse{Units: len(c.units), Reassigned: c.reassigned}
	for i := range c.units {
		switch c.units[i].phase {
		case unitDone:
			s.Done++
		case unitLeased:
			s.Leased++
		default:
			s.Pending++
		}
	}
	s.Complete = c.remaining == 0 || c.failure != nil
	if c.failure != nil {
		s.Failed = c.failure.Error()
	}
	return s
}

// Outcomes merges the committed shards into campaign outcomes, in
// replication order — byte for byte what Runner.Sweep would have returned
// for the same specs on one machine. Incomplete campaigns merge their
// committed shards (mirroring Sweep's partial results); the sweep-fatal
// error, if any, is returned alongside.
func (c *Coordinator) Outcomes() ([]experiment.CampaignOutcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]experiment.CampaignOutcome, len(c.campaigns))
	for ci, cs := range c.campaigns {
		shards := make([]measure.CampaignResult, 0, cs.Replications)
		for rep := 0; rep < cs.Replications; rep++ {
			if u := &c.units[c.offsets[ci]+rep]; u.phase == unitDone {
				shards = append(shards, u.result)
			}
		}
		merged, err := measure.MergeCampaignResults(shards...)
		if err != nil {
			// Unreachable — commits with foreign fingerprints are
			// rejected — but never pool silently.
			return nil, fmt.Errorf("fleet: merge campaign %s: %w", cs.Name, err)
		}
		out[ci] = experiment.CampaignOutcome{Name: cs.Name, Result: merged, Replications: len(shards)}
	}
	return out, c.failure
}

// maxBody bounds request bodies: an exact shard of a deep campaign is
// megabytes of samples; 256 MiB leaves headroom without letting a rogue
// peer exhaust memory.
const maxBody = 256 << 20

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Sweep())
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.leaseUnit(req.Worker))
}

func (c *Coordinator) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.commitUnit(req))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}
