package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fingerprint serialises everything the sharded build computes — node
// placement, the full peer graph, and (under BCBPT) every cluster
// assignment — so two builds can be compared bit for bit.
func fingerprint(b *Built) string {
	var sb strings.Builder
	for _, id := range b.Net.NodeIDs() {
		node, ok := b.Net.Node(id)
		if !ok {
			continue
		}
		loc := node.Location()
		fmt.Fprintf(&sb, "%d@%.9f,%.9f:", id, loc.Coord.LatDeg, loc.Coord.LonDeg)
		for _, p := range node.Peers() {
			fmt.Fprintf(&sb, "%d,", p)
		}
		if b.BCBPT != nil {
			c, _ := b.BCBPT.ClusterOf(id)
			fmt.Fprintf(&sb, "/c%d", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBuildShardedDeterminism is the tentpole invariant: the sharded
// build is bit-identical to the serial build for any worker count — same
// placement, same topology, same cluster registry, and same measurement
// output downstream.
func TestBuildShardedDeterminism(t *testing.T) {
	spec := Spec{
		Nodes:    700, // > placementShardSize, and wide enough for 2 join lanes
		Seed:     5,
		Protocol: ProtoBCBPT,
		BCBPT:    fastBCBPT(25 * time.Millisecond),
	}
	var baseFP string
	var baseDist string
	for _, workers := range []int{1, 4, 16} {
		spec.BuildWorkers = workers
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := fingerprint(b)
		res, err := b.Campaign(8, time.Minute)
		if err != nil {
			t.Fatalf("workers=%d campaign: %v", workers, err)
		}
		dist := res.Dist.String()
		if workers == 1 {
			baseFP, baseDist = fp, dist
			continue
		}
		if fp != baseFP {
			t.Errorf("workers=%d: topology differs from serial build", workers)
		}
		if dist != baseDist {
			t.Errorf("workers=%d: measurement output %s differs from serial %s", workers, dist, baseDist)
		}
	}
}

// TestBuildShardedDeterminismBaselines covers the non-BCBPT protocols:
// their bootstrap is serial, but placement still shards.
func TestBuildShardedDeterminismBaselines(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoLBC} {
		spec := Spec{Nodes: 600, Seed: 11, Protocol: proto}
		spec.BuildWorkers = 1
		serial, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s serial: %v", proto, err)
		}
		spec.BuildWorkers = 8
		sharded, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s sharded: %v", proto, err)
		}
		if fingerprint(serial) != fingerprint(sharded) {
			t.Errorf("%s: sharded build differs from serial", proto)
		}
	}
}

func TestBuildCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	b, err := Build(ctx, Spec{Nodes: 5000, Seed: 1, Protocol: ProtoBCBPT})
	if err == nil {
		t.Fatal("cancelled build returned nil error")
	}
	if b != nil {
		t.Error("cancelled build returned a network")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled build took %v, want immediate return", elapsed)
	}
}

func TestBuildCancelMidBootstrap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Big enough that the build cannot finish before cancel fires.
	_, err := Build(ctx, Spec{Nodes: 4000, Seed: 2, Protocol: ProtoBCBPT})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("build outran its cancellation; raise Nodes")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// "Promptly": orders of magnitude under the full build + bootstrap
	// run, far over any CI scheduling jitter.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled build returned after %v", elapsed)
	}
}

// TestFailedBuildLeavesNoGoroutines is the error-path leak regression
// guard: a build that dies mid-way (here: cancelled during the sharded
// phases) must join its worker pool and release the network before
// returning.
func TestFailedBuildLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		if _, err := Build(ctx, Spec{
			Nodes: 4000, Seed: int64(i), Protocol: ProtoBCBPT, BuildWorkers: 8,
		}); err == nil {
			t.Fatal("build outran its cancellation; raise Nodes")
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after failed builds, was %d before",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpecBCBPTConfigDetection pins the zero-value rule: only the exact
// zero config means "use the defaults"; a deliberately configured spec is
// used as given, and a partial one fails validation loudly instead of
// being silently replaced.
func TestSpecBCBPTConfigDetection(t *testing.T) {
	base := Spec{Nodes: 60, Seed: 3, Protocol: ProtoBCBPT}

	zero := base
	b, err := Build(context.Background(), zero)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.BCBPT.Config(), core.DefaultConfig(); got != want {
		t.Errorf("zero-value spec built config %+v, want defaults %+v", got, want)
	}

	custom := base
	custom.BCBPT = core.DefaultConfig()
	custom.BCBPT.ProbeCount = 7 // non-default probing, default threshold
	b, err = Build(context.Background(), custom)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.BCBPT.Config(); got.ProbeCount != 7 {
		t.Errorf("custom ProbeCount clobbered: got %+v", got)
	}

	partial := base
	partial.BCBPT = core.Config{ProbeCount: 5} // Threshold missing: invalid
	if _, err := Build(context.Background(), partial); err == nil {
		t.Error("partial BCBPT config silently accepted")
	} else if !strings.Contains(err.Error(), "Threshold") {
		t.Errorf("partial config error %q does not name the missing Threshold", err)
	}
}

// TestBuiltCloseIdempotent: Close must be safe to call repeatedly and on
// a fully built network.
func TestBuiltCloseIdempotent(t *testing.T) {
	b, err := Build(context.Background(), Spec{Nodes: 30, Seed: 9, Protocol: ProtoBitcoin})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close()
	if b.Net.Scheduler().Len() != 0 {
		t.Errorf("closed network still has %d pending events", b.Net.Scheduler().Len())
	}
	var nilBuilt *Built
	nilBuilt.Close() // must not panic
}
