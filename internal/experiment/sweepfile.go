// Sweep files: user-authored JSON campaign lists, the escape hatch that
// opens sweep frontends (bcbpt-fleet serve/run) to arbitrary scenarios
// beyond the built-in figure presets. The schema is the CampaignSpec
// wire form with two authoring conveniences: a top-level title, and
// durations written as Go duration strings ("25ms", "2m") anywhere a
// duration field appears. Unknown fields are rejected loudly — a typoed
// "replicatons" must not silently run a 1-replication sweep.
//
//	{
//	  "title": "BCBPT threshold sweep, 2000 nodes",
//	  "campaigns": [
//	    {
//	      "name": "bcbpt-25ms",
//	      "spec": {"nodes": 2000, "seed": 7, "protocol": "bcbpt"},
//	      "replications": 4, "runs": 200, "deadline": "2m",
//	      "streaming": true
//	    }
//	  ]
//	}
package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// SweepFile is a parsed, validated sweep definition.
type SweepFile struct {
	// Title heads the merged figure (optional; frontends fall back to a
	// generic title).
	Title string
	// Campaigns is the sweep, in series order. Every campaign has been
	// validated: shippable, buildable spec, unique non-empty name.
	Campaigns []CampaignSpec
}

// sweepFileWire is the strict on-disk form.
type sweepFileWire struct {
	Title     string         `json:"title,omitempty"`
	Campaigns []CampaignSpec `json:"campaigns"`
}

// sweepDurationKeys names every duration-typed field reachable from the
// sweep schema, by its lowercased JSON key: CampaignSpec.Deadline, the
// core.Config probe/threshold timings, and the churn model timings (the
// latter two structs serialize under their Go field names). Matching is
// case-insensitive because encoding/json's field matching is too — a
// user writing "Deadline" still hits the deadline field, so its duration
// string must still be rewritten. Only string values under these keys
// are rewritten, so a campaign *named* "25ms" stays a string.
var sweepDurationKeys = map[string]bool{
	"deadline":      true, // CampaignSpec.Deadline
	"threshold":     true, // core.Config
	"probegap":      true,
	"joinstagger":   true,
	"decisionslack": true,
	"sessionscale":  true, // churn.Model
	"meanarrival":   true,
	"minsession":    true,
}

// normalizeDurations rewrites Go duration strings under duration-typed
// keys into integer nanoseconds — the representation time.Duration
// fields decode — and leaves everything else untouched.
func normalizeDurations(v any) (any, error) {
	switch t := v.(type) {
	case map[string]any:
		for k, mv := range t {
			if s, ok := mv.(string); ok && sweepDurationKeys[strings.ToLower(k)] {
				d, err := time.ParseDuration(s)
				if err != nil {
					return nil, fmt.Errorf("field %q: %w", k, err)
				}
				t[k] = json.Number(strconv.FormatInt(int64(d), 10))
				continue
			}
			nv, err := normalizeDurations(mv)
			if err != nil {
				return nil, err
			}
			t[k] = nv
		}
		return t, nil
	case []any:
		for i, ev := range t {
			nv, err := normalizeDurations(ev)
			if err != nil {
				return nil, err
			}
			t[i] = nv
		}
		return t, nil
	default:
		return v, nil
	}
}

// ParseSweep parses and validates a sweep definition from its JSON
// bytes. Every problem — malformed JSON, an unknown field, a spec the
// engine would refuse to build, a campaign a fleet could not ship — is
// an error here, before any coordinator starts or any worker simulates.
func ParseSweep(data []byte) (SweepFile, error) {
	// First pass: generic decode (numbers kept verbatim) so duration
	// strings can be rewritten wherever they appear.
	var generic any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&generic); err != nil {
		return SweepFile{}, fmt.Errorf("experiment: sweep file: %w", err)
	}
	if dec.More() {
		// A second document (a botched paste, a concatenated file) would
		// otherwise be silently ignored — and the wrong sweep run.
		return SweepFile{}, errors.New("experiment: sweep file: trailing content after the sweep document")
	}
	generic, err := normalizeDurations(generic)
	if err != nil {
		return SweepFile{}, fmt.Errorf("experiment: sweep file: %w", err)
	}
	normalized, err := json.Marshal(generic)
	if err != nil {
		return SweepFile{}, fmt.Errorf("experiment: sweep file: %w", err)
	}

	// Second pass: strict decode into the typed schema.
	var wire sweepFileWire
	dec = json.NewDecoder(bytes.NewReader(normalized))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return SweepFile{}, fmt.Errorf("experiment: sweep file: %w", err)
	}

	if len(wire.Campaigns) == 0 {
		return SweepFile{}, errors.New(`experiment: sweep file defines no campaigns (want {"campaigns": [...]})`)
	}
	seen := make(map[string]bool, len(wire.Campaigns))
	for i, cs := range wire.Campaigns {
		where := fmt.Sprintf("campaign %d", i+1)
		if cs.Name != "" {
			where = fmt.Sprintf("campaign %d (%q)", i+1, cs.Name)
		}
		switch {
		case cs.Name == "":
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: missing name (the series label)", where)
		case seen[cs.Name]:
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: duplicate name", where)
		case cs.Replications < 0:
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: negative replications", where)
		case cs.Runs < 0:
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: negative runs", where)
		case cs.Deadline < 0:
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: negative deadline", where)
		}
		seen[cs.Name] = true
		if err := cs.CheckShippable(); err != nil {
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: %w", where, err)
		}
		if err := cs.Spec.validate(); err != nil {
			return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: %w", where, err)
		}
		if cs.Spec.Churn != nil {
			if err := cs.Spec.Churn.Validate(); err != nil {
				return SweepFile{}, fmt.Errorf("experiment: sweep file: %s: %w", where, err)
			}
		}
	}
	return SweepFile{Title: wire.Title, Campaigns: wire.Campaigns}, nil
}

// LoadSweepFile reads and validates the sweep definition at path.
func LoadSweepFile(path string) (SweepFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepFile{}, fmt.Errorf("experiment: sweep file: %w", err)
	}
	sf, err := ParseSweep(data)
	if err != nil {
		return SweepFile{}, fmt.Errorf("%w (%s)", err, path)
	}
	return sf, nil
}
