package experiment

import (
	"context"
	"testing"
	"time"
)

func TestDoubleSpendRaceBasics(t *testing.T) {
	res, err := DoubleSpend(context.Background(), DoubleSpendSpec{
		Nodes:    60,
		Seed:     21,
		Protocol: ProtoBitcoin,
		Offsets:  []time.Duration{0, 500 * time.Millisecond},
		Trials:   3,
		Deadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AttackerShare < 0 || p.AttackerShare > 1 {
			t.Errorf("offset %v: share %v out of range", p.Offset, p.AttackerShare)
		}
		if p.Success < 0 || p.Success > 1 {
			t.Errorf("offset %v: success %v out of range", p.Offset, p.Success)
		}
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestDoubleSpendShareFallsWithOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-race experiment")
	}
	// The defining relationship: the longer the victim tx's head start,
	// the smaller the attacker's share of the network.
	res, err := DoubleSpend(context.Background(), DoubleSpendSpec{
		Nodes:    80,
		Seed:     22,
		Protocol: ProtoBitcoin,
		Offsets:  []time.Duration{0, 2 * time.Second},
		Trials:   4,
		Deadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	early := res.Points[0].AttackerShare
	late := res.Points[1].AttackerShare
	t.Logf("attacker share: offset 0 -> %.3f, offset 2s -> %.3f", early, late)
	if late >= early && early > 0.02 {
		t.Errorf("attacker share did not fall with offset: %.3f -> %.3f", early, late)
	}
	// With a 2-second head start on a sub-second-propagation network,
	// the attack should be essentially dead.
	if late > 0.15 {
		t.Errorf("attacker share %.3f after 2s head start; propagation too slow", late)
	}
}

func TestDoubleSpendBCBPTShrinksWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	// At a mid offset, the faster protocol should leave the attacker a
	// smaller share — the paper's security argument, end to end.
	const offset = 150 * time.Millisecond
	run := func(kind ProtocolKind) float64 {
		res, err := DoubleSpend(context.Background(), DoubleSpendSpec{
			Nodes:    80,
			Seed:     23,
			Protocol: kind,
			BCBPT:    fastBCBPT(25 * time.Millisecond),
			Offsets:  []time.Duration{offset},
			Trials:   4,
			Deadline: time.Minute,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		t.Logf("%s attacker share at %v offset: %.3f", kind, offset, res.Points[0].AttackerShare)
		return res.Points[0].AttackerShare
	}
	bitcoin := run(ProtoBitcoin)
	bcbpt := run(ProtoBCBPT)
	if bcbpt > bitcoin+0.05 {
		t.Errorf("BCBPT attacker share %.3f above Bitcoin %.3f; faster propagation should shrink the window", bcbpt, bitcoin)
	}
}
