package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// The fork-rate experiment connects the paper's propagation-delay result
// to its consensus consequence. The paper (§I) warns that slow
// propagation lets "two blocks be created simultaneously, each one as a
// possible addition to the same sub-chain" — a blockchain fork, the
// precondition for double spending. Decker & Wattenhofer (the paper's
// ref [9]) measured that the fork probability is governed by the ratio of
// block propagation delay to block interval.
//
// Here, block discoveries arrive as a Poisson process split uniformly
// across miner nodes. A discovery is a FORK when the winning miner has
// not yet received the previous block — it extends stale state. Faster
// relay (BCBPT) must therefore yield a lower fork rate at the same block
// interval.

// ForkSpec parameterises the mining race.
type ForkSpec struct {
	// Nodes, Seed, Protocol, BCBPT: network build parameters.
	Nodes    int
	Seed     int64
	Protocol ProtocolKind
	BCBPT    core.Config
	// Miners is how many nodes mine (spread uniformly at random).
	Miners int
	// Blocks is how many block discoveries to simulate.
	Blocks int
	// BlockInterval is the mean time between discoveries. Small
	// intervals (seconds, not Bitcoin's 10 minutes) stress propagation
	// so fork rates are measurable in few blocks.
	BlockInterval time.Duration
	// BlockTxs pads each block with this many transactions, scaling its
	// wire size and verification cost.
	BlockTxs int
}

// ForkResult reports the race outcome for one protocol.
type ForkResult struct {
	Protocol string
	Blocks   int
	Forks    int
	// ForkRate is Forks/Blocks.
	ForkRate float64
	// Coverage90 is the distribution of per-block times to reach 90% of
	// nodes.
	Coverage90 measure.Distribution
}

// String renders the result.
func (r ForkResult) String() string {
	return fmt.Sprintf("%-10s blocks=%d forks=%d rate=%.3f cover90{p50=%v p90=%v}",
		r.Protocol, r.Blocks, r.Forks, r.ForkRate,
		r.Coverage90.Median().Round(time.Millisecond),
		r.Coverage90.Percentile(90).Round(time.Millisecond))
}

// ForkRace runs the mining race under one protocol. ctx cancels the
// network build; the race itself runs to completion once built.
func ForkRace(ctx context.Context, spec ForkSpec) (ForkResult, error) {
	if spec.Miners < 2 {
		return ForkResult{}, errors.New("experiment: need at least 2 miners")
	}
	if spec.Blocks < 1 {
		return ForkResult{}, errors.New("experiment: need at least 1 block")
	}
	if spec.BlockInterval <= 0 {
		spec.BlockInterval = 10 * time.Second
	}
	built, err := Build(ctx, Spec{
		Nodes:    spec.Nodes,
		Seed:     spec.Seed,
		Protocol: spec.Protocol,
		BCBPT:    spec.BCBPT,
	})
	if err != nil {
		return ForkResult{}, err
	}
	net := built.Net

	// Pick miners deterministically.
	ids := net.NodeIDs()
	r := rand.New(rand.NewSource(spec.Seed + 999))
	perm := r.Perm(len(ids))
	miners := make([]p2p.NodeID, 0, spec.Miners)
	for _, i := range perm[:spec.Miners] {
		miners = append(miners, ids[i])
	}
	sort.Slice(miners, func(i, j int) bool { return miners[i] < miners[j] })

	key, err := chain.GenerateKey(rand.New(rand.NewSource(spec.Seed + 998)))
	if err != nil {
		return ForkResult{}, err
	}

	// Track per-block arrival times for coverage statistics.
	type blockTrack struct {
		foundAt  sim.Time
		arrivals []sim.Time
	}
	tracks := make(map[chain.Hash]*blockTrack)
	var mined []chain.Hash // tracks keys in mined order, for deterministic iteration
	net.OnBlockFirstSeen = func(node p2p.NodeID, h chain.Hash, at sim.Time) {
		if t, ok := tracks[h]; ok {
			t.arrivals = append(t.arrivals, at)
		}
	}

	res := ForkResult{Protocol: string(spec.Protocol)}
	var lastBlock chain.Hash
	height := uint64(0)
	mineR := net.Streams().Stream("mining")

	var scheduleFind func()
	found := 0
	scheduleFind = func() {
		gap := time.Duration(sim.Exponential(mineR, float64(spec.BlockInterval)))
		net.Scheduler().After(gap, func() {
			if found >= spec.Blocks {
				return
			}
			found++
			miner := miners[mineR.Intn(len(miners))]
			node, ok := net.Node(miner)
			if !ok {
				scheduleFind()
				return
			}
			// Fork test: the winner extends stale state if it has not
			// yet received the previous block.
			if !lastBlock.IsZero() {
				if _, seen := node.FirstSeen(lastBlock); !seen {
					res.Forks++
				}
			}
			height++
			blk := makeBlock(height, spec.BlockTxs, key.Address())
			h := blk.Header.Hash()
			tracks[h] = &blockTrack{foundAt: net.Now()}
			mined = append(mined, h)
			lastBlock = h
			if err := node.SubmitBlock(blk); err == nil {
				// Submission counts as the miner's own first-seen; record
				// it for coverage (OnBlockFirstSeen fired inside Submit).
				_ = h
			}
			res.Blocks++
			scheduleFind()
		})
	}
	scheduleFind()

	// Run long enough for all finds plus final propagation.
	deadline := time.Duration(spec.Blocks+2)*spec.BlockInterval + 2*time.Minute
	if err := net.RunUntil(context.Background(), net.Now()+sim.Time(deadline)); err != nil {
		return ForkResult{}, err
	}

	// Coverage: per block, time until 90% of nodes had it.
	var cover []time.Duration
	total := net.NumNodes()
	for _, h := range mined {
		t := tracks[h]
		if len(t.arrivals) < total*9/10 {
			continue // block never reached 90% (churn or cut): skip
		}
		arr := append([]sim.Time(nil), t.arrivals...)
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		idx := total*9/10 - 1
		if idx >= len(arr) {
			idx = len(arr) - 1
		}
		cover = append(cover, time.Duration(arr[idx]-t.foundAt))
	}
	res.Coverage90 = measure.NewDistribution(cover)
	if res.Blocks > 0 {
		res.ForkRate = float64(res.Forks) / float64(res.Blocks)
	}
	return res, nil
}

// makeBlock builds a structurally valid block (zero PoW target) carrying
// txCount padding transactions.
func makeBlock(height uint64, txCount int, to chain.Address) *chain.Block {
	txs := make([]*chain.Tx, 0, txCount+1)
	txs = append(txs, chain.Coinbase(height<<20, 50_000, to))
	for i := 0; i < txCount; i++ {
		txs = append(txs, chain.Coinbase(height<<20|uint64(i+1), chain.Amount(i+1), to))
	}
	return &chain.Block{
		Header: chain.BlockHeader{
			Version:    1,
			MerkleRoot: chain.MerkleRoot(txs),
			TimeUnix:   height,
			TargetBits: 0, // structural validity without hashing work
		},
		Txs: txs,
	}
}
