package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
)

// Options tune experiment scale. Zero values take paper-faithful defaults
// scaled down to laptop size (use cmd/bcbpt-sim flags for full scale).
type Options struct {
	// Nodes is the network size (default 1000; paper ~5000).
	Nodes int
	// Runs is the number of measurement injections (default 200;
	// paper ~1000).
	Runs int
	// Seed roots all randomness (default 1).
	Seed int64
	// Deadline bounds each measurement run (default 2 minutes virtual).
	Deadline time.Duration
	// ChurnOn enables join/leave dynamics during measurement, as in the
	// paper's simulator.
	ChurnOn bool
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 1000
	}
	if o.Runs == 0 {
		o.Runs = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Deadline == 0 {
		o.Deadline = 2 * time.Minute
	}
	return o
}

// Series is one named Δt distribution (a curve of Fig. 3/4).
type Series struct {
	Name string
	Dist measure.Distribution
	// Lost counts connection-runs that missed the deadline.
	Lost int
}

// FigureResult aggregates the series of one figure.
type FigureResult struct {
	Title  string
	Series []Series
}

// String renders the figure as a quantile table plus summary lines.
func (f FigureResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	names := make([]string, len(f.Series))
	dists := make([]measure.Distribution, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
		dists[i] = s.Dist
	}
	b.WriteString(measure.ASCIICDF(names, dists, 11))
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-14s %s (lost %d)\n", s.Name, s.Dist, s.Lost)
	}
	return b.String()
}

// buildSpec assembles a Spec for one protocol under the shared options.
func buildSpec(o Options, proto ProtocolKind, bcbpt core.Config) Spec {
	spec := Spec{
		Nodes:    o.Nodes,
		Seed:     o.Seed,
		Protocol: proto,
		BCBPT:    bcbpt,
	}
	if o.ChurnOn {
		m := defaultChurn(o.Nodes)
		spec.Churn = &m
	}
	return spec
}

// runSeries builds one network and runs the campaign on it.
func runSeries(name string, spec Spec, o Options) (Series, error) {
	b, err := Build(spec)
	if err != nil {
		return Series{}, fmt.Errorf("experiment: build %s: %w", name, err)
	}
	res, err := b.Campaign(o.Runs, o.Deadline)
	if err != nil {
		return Series{}, fmt.Errorf("experiment: campaign %s: %w", name, err)
	}
	return Series{Name: name, Dist: res.Dist, Lost: res.Lost}, nil
}

// Figure3 regenerates Fig. 3: the Δt(m,n) distribution of the simulated
// Bitcoin protocol vs LBC vs BCBPT at dt = 25ms. The expected shape (the
// paper's headline result): BCBPT's distribution sits left of LBC's,
// which sits left of Bitcoin's.
func Figure3(o Options) (FigureResult, error) {
	o = o.withDefaults()
	bcbptCfg := core.DefaultConfig()
	bcbptCfg.Threshold = 25 * time.Millisecond

	out := FigureResult{Title: "Fig. 3 — Δt(m,n) distribution: Bitcoin vs LBC vs BCBPT (dt=25ms)"}
	for _, p := range []struct {
		name  string
		kind  ProtocolKind
		bcbpt core.Config
	}{
		{"bitcoin", ProtoBitcoin, core.Config{}},
		{"lbc", ProtoLBC, core.Config{}},
		{"bcbpt-25ms", ProtoBCBPT, bcbptCfg},
	} {
		s, err := runSeries(p.name, buildSpec(o, p.kind, p.bcbpt), o)
		if err != nil {
			return FigureResult{}, err
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Figure4 regenerates Fig. 4: BCBPT Δt distributions at thresholds 30,
// 50 and 100 ms. Expected shape: smaller dt → tighter distribution
// ("less distance threshold performs less variance of delays", §V.C).
func Figure4(o Options) (FigureResult, error) {
	return ThresholdSweep(o, []time.Duration{
		30 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	})
}

// ThresholdSweep generalises Fig. 4 to any threshold set.
func ThresholdSweep(o Options, thresholds []time.Duration) (FigureResult, error) {
	o = o.withDefaults()
	out := FigureResult{Title: "Fig. 4 — BCBPT Δt(m,n) distribution by threshold dt"}
	for _, dt := range thresholds {
		cfg := core.DefaultConfig()
		cfg.Threshold = dt
		name := fmt.Sprintf("bcbpt-%v", dt)
		s, err := runSeries(name, buildSpec(o, ProtoBCBPT, cfg), o)
		if err != nil {
			return FigureResult{}, err
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// VariancePoint is one (connections, spread) sample of the §V.C claim.
type VariancePoint struct {
	Protocol    string
	Connections int
	Std         time.Duration
	Mean        time.Duration
}

// VarianceResult is the connection-count sweep.
type VarianceResult struct {
	Points []VariancePoint
}

// String renders the sweep as a table.
func (v VarianceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== §V.C — Δt spread vs measuring-node connections ==\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %14s\n", "protocol", "connections", "std(Δt)", "mean(Δt)")
	pts := append([]VariancePoint(nil), v.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Protocol != pts[j].Protocol {
			return pts[i].Protocol < pts[j].Protocol
		}
		return pts[i].Connections < pts[j].Connections
	})
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %12d %14v %14v\n",
			p.Protocol, p.Connections, p.Std.Round(time.Microsecond), p.Mean.Round(time.Microsecond))
	}
	return b.String()
}

// VarianceVsConnections reproduces the §V.C observation: "the Bitcoin
// protocol performs variances of delays that grow linearly with the
// number of connected nodes, whereas BCBPT maintains lower variances of
// delays regardless of the number of connected nodes."
func VarianceVsConnections(o Options, connections []int) (VarianceResult, error) {
	o = o.withDefaults()
	if len(connections) == 0 {
		connections = []int{8, 16, 24, 32, 48, 64}
	}
	var out VarianceResult
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoBCBPT} {
		for _, k := range connections {
			spec := buildSpec(o, proto, core.DefaultConfig())
			spec.MeasuringConnections = k
			b, err := Build(spec)
			if err != nil {
				return VarianceResult{}, fmt.Errorf("experiment: variance build %s/%d: %w", proto, k, err)
			}
			res, err := b.Campaign(o.Runs, o.Deadline)
			if err != nil {
				return VarianceResult{}, err
			}
			out.Points = append(out.Points, VariancePoint{
				Protocol:    string(proto),
				Connections: k,
				Std:         res.Dist.Std(),
				Mean:        res.Dist.Mean(),
			})
		}
	}
	return out, nil
}

// OverheadResult quantifies the measurement overhead of §IV.A.
type OverheadResult struct {
	Protocol          string
	Nodes             int
	BootstrapMsgs     uint64
	BootstrapBytes    uint64
	PingMsgs          uint64
	PingBytes         uint64
	PingMsgsPerNode   float64
	CampaignMsgs      uint64
	CampaignTxTraffic uint64
}

// String renders the overhead comparison.
func (o OverheadResult) String() string {
	return fmt.Sprintf("%-10s nodes=%d bootstrap=%d msgs (%d B), ping=%d msgs (%d B, %.1f/node), campaign=%d msgs",
		o.Protocol, o.Nodes, o.BootstrapMsgs, o.BootstrapBytes, o.PingMsgs, o.PingBytes,
		o.PingMsgsPerNode, o.CampaignMsgs)
}

// Overhead measures the extra traffic BCBPT's ping measurement adds
// relative to the random baseline — the cost the paper defers to future
// work ("this overhead will be evaluated in our future work", §IV.A).
func Overhead(o Options) ([]OverheadResult, error) {
	o = o.withDefaults()
	var out []OverheadResult
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoBCBPT} {
		spec := buildSpec(o, proto, core.DefaultConfig())
		b, err := Build(spec)
		if err != nil {
			return nil, err
		}
		boot := b.Net.Stats()
		pingMsgs, pingBytes := boot.PingTraffic()
		res := OverheadResult{
			Protocol:        string(proto),
			Nodes:           o.Nodes,
			BootstrapMsgs:   boot.TotalMessages(),
			BootstrapBytes:  boot.TotalBytes(),
			PingMsgs:        pingMsgs,
			PingBytes:       pingBytes,
			PingMsgsPerNode: float64(pingMsgs) / float64(o.Nodes),
		}
		campaign, err := b.Campaign(o.Runs, o.Deadline)
		if err != nil {
			return nil, err
		}
		_ = campaign
		delta := b.Net.Stats().Sub(boot)
		res.CampaignMsgs = delta.TotalMessages()
		res.CampaignTxTraffic = delta.TotalBytes()
		out = append(out, res)
	}
	return out, nil
}
