package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/obs"
)

// Options tune experiment scale. Zero values take paper-faithful defaults
// scaled down to laptop size (use cmd/bcbpt-sim flags for full scale).
type Options struct {
	// Nodes is the network size (default 1000; paper ~5000).
	Nodes int
	// Runs is the number of measurement injections per replication
	// (default 200; paper ~1000).
	Runs int
	// Seed roots all randomness (default 1).
	Seed int64
	// Deadline bounds each measurement run (default 2 minutes virtual).
	Deadline time.Duration
	// ChurnOn enables join/leave dynamics during measurement, as in the
	// paper's simulator.
	ChurnOn bool
	// Workers bounds campaign-engine concurrency (default GOMAXPROCS).
	Workers int
	// BuildWorkers bounds the sharding concurrency inside each network
	// build (see Spec.BuildWorkers; <= 0 means GOMAXPROCS). Results are
	// identical for any value.
	BuildWorkers int
	// SimWorkers enables conservative parallel event dispatch during the
	// measurement phase when >= 2 (see Spec.SimWorkers). Results are
	// identical for any value.
	SimWorkers int
	// Replications fans each campaign over this many independently
	// seeded networks (default 1); samples pool across replications.
	Replications int
	// Streaming pools samples into bounded-memory sketches instead of
	// retaining every Δt (see measure.Campaign.Streaming): figures carry
	// ~1% value error on quantiles/std but a sweep's memory no longer
	// grows with Runs × Replications.
	Streaming bool
	// Trace, when non-empty, exports a sim-time event trace of the
	// figure's first campaign (replication 0) as Chrome trace_event JSON
	// at this path plus a binary spool at path+".bin" (see
	// CampaignSpec.Trace). Purely observational: figure output is
	// byte-identical with it on or off.
	Trace string
	// Metrics and Clock configure the campaign engine's telemetry (see
	// Runner.Metrics and Runner.Clock). Both optional and observational.
	Metrics *obs.Registry
	Clock   func() int64
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 1000
	}
	if o.Runs == 0 {
		o.Runs = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Deadline == 0 {
		o.Deadline = 2 * time.Minute
	}
	if o.Replications == 0 {
		o.Replications = 1
	}
	return o
}

// runner returns the campaign engine configured by the options.
func (o Options) runner() *Runner {
	r := NewRunner(o.Workers)
	r.Metrics = o.Metrics
	r.Clock = o.Clock
	return r
}

// campaign assembles a CampaignSpec for one series under the shared
// options.
func (o Options) campaign(name string, spec Spec) CampaignSpec {
	return CampaignSpec{
		Name:         name,
		Spec:         spec,
		Replications: o.Replications,
		Runs:         o.Runs,
		Deadline:     o.Deadline,
		Streaming:    o.Streaming,
	}
}

// FigureCSVPoints is the canonical CDF resolution of exported figure
// CSVs. Every frontend (bcbpt-sim, bcbpt-fleet) writes through
// FigureResult.WriteCSV, so outputs of the same sweep diff byte for byte
// — the contract the fleet CI smoke asserts.
const FigureCSVPoints = 101

// WriteCSV writes the figure's CDF series in the canonical export
// encoding (see measure.WriteCDFCSV).
func (f FigureResult) WriteCSV(w io.Writer) error {
	names := make([]string, len(f.Series))
	dists := make([]measure.Distribution, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
		dists[i] = s.Dist
	}
	return measure.WriteCDFCSV(w, names, dists, FigureCSVPoints)
}

// Series is one named Δt distribution (a curve of Fig. 3/4).
type Series struct {
	Name string
	Dist measure.Distribution
	// Lost counts connection-runs that missed the deadline.
	Lost int
}

// FigureResult aggregates the series of one figure.
type FigureResult struct {
	Title  string
	Series []Series
}

// String renders the figure as a quantile table plus summary lines.
func (f FigureResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	names := make([]string, len(f.Series))
	dists := make([]measure.Distribution, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
		dists[i] = s.Dist
	}
	b.WriteString(measure.ASCIICDF(names, dists, 11))
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-14s %s (lost %d)\n", s.Name, s.Dist, s.Lost)
	}
	return b.String()
}

// buildSpec assembles a Spec for one protocol under the shared options.
func buildSpec(o Options, proto ProtocolKind, bcbpt core.Config) Spec {
	spec := Spec{
		Nodes:        o.Nodes,
		Seed:         o.Seed,
		Protocol:     proto,
		BCBPT:        bcbpt,
		BuildWorkers: o.BuildWorkers,
		SimWorkers:   o.SimWorkers,
	}
	if o.ChurnOn {
		m := defaultChurn(o.Nodes)
		spec.Churn = &m
	}
	return spec
}

// sweepFigure runs the campaigns through the engine and assembles the
// outcomes, in spec order, into a figure. A cancelled sweep returns the
// partial figure together with the ErrPartialResult-wrapping error, so
// callers can render what completed.
func sweepFigure(ctx context.Context, o Options, title string, campaigns []CampaignSpec) (FigureResult, error) {
	if o.Trace != "" && len(campaigns) > 0 {
		// One canonical trace per figure: the first campaign's
		// replication 0 — tracing every series would race for the file.
		campaigns[0].Trace = o.Trace
	}
	outcomes, err := o.runner().Sweep(ctx, campaigns)
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return FigureResult{}, err
	}
	out := FigureResult{Title: title}
	for _, oc := range outcomes {
		if oc.Replications == 0 {
			// Cancelled before any replication finished: an all-zero
			// series would masquerade as measured data.
			continue
		}
		out.Series = append(out.Series, Series{Name: oc.Name, Dist: oc.Result.Dist, Lost: oc.Result.Lost})
	}
	return out, err
}

// Figure3 regenerates Fig. 3: the Δt(m,n) distribution of the simulated
// Bitcoin protocol vs LBC vs BCBPT at dt = 25ms. The expected shape (the
// paper's headline result): BCBPT's distribution sits left of LBC's,
// which sits left of Bitcoin's.
func Figure3(o Options) (FigureResult, error) {
	return Figure3Ctx(context.Background(), o)
}

// Figure3Campaigns returns the campaign list behind Fig. 3 — the three
// protocol series under the shared options. Exported so sweep frontends
// other than Figure3Ctx (the fleet coordinator, a saved sweep file) run
// exactly the same experiment definition.
func Figure3Campaigns(o Options) []CampaignSpec {
	o = o.withDefaults()
	bcbptCfg := core.DefaultConfig()
	bcbptCfg.Threshold = 25 * time.Millisecond

	var campaigns []CampaignSpec
	for _, p := range []struct {
		name  string
		kind  ProtocolKind
		bcbpt core.Config
	}{
		{"bitcoin", ProtoBitcoin, core.Config{}},
		{"lbc", ProtoLBC, core.Config{}},
		{"bcbpt-25ms", ProtoBCBPT, bcbptCfg},
	} {
		campaigns = append(campaigns, o.campaign(p.name, buildSpec(o, p.kind, p.bcbpt)))
	}
	return campaigns
}

// Figure3Title is the figure heading shared by every Fig. 3 frontend.
const Figure3Title = "Fig. 3 — Δt(m,n) distribution: Bitcoin vs LBC vs BCBPT (dt=25ms)"

// Figure3Ctx is Figure3 on the campaign engine: the three series (and
// their replications) are scheduled as one work queue.
func Figure3Ctx(ctx context.Context, o Options) (FigureResult, error) {
	o = o.withDefaults()
	return sweepFigure(ctx, o, Figure3Title, Figure3Campaigns(o))
}

// Figure4 regenerates Fig. 4: BCBPT Δt distributions at thresholds 30,
// 50 and 100 ms. Expected shape: smaller dt → tighter distribution
// ("less distance threshold performs less variance of delays", §V.C).
func Figure4(o Options) (FigureResult, error) {
	return Figure4Ctx(context.Background(), o)
}

// Figure4Ctx is Figure4 on the campaign engine; it owns the paper's
// canonical threshold set.
func Figure4Ctx(ctx context.Context, o Options) (FigureResult, error) {
	return ThresholdSweepCtx(ctx, o, Figure4Thresholds())
}

// ThresholdSweep generalises Fig. 4 to any threshold set.
func ThresholdSweep(o Options, thresholds []time.Duration) (FigureResult, error) {
	return ThresholdSweepCtx(context.Background(), o, thresholds)
}

// ThresholdSweepCampaigns returns the campaign list of a threshold sweep:
// one BCBPT series per dt under the shared options. Exported for the same
// reason as Figure3Campaigns.
func ThresholdSweepCampaigns(o Options, thresholds []time.Duration) []CampaignSpec {
	o = o.withDefaults()
	var campaigns []CampaignSpec
	for _, dt := range thresholds {
		cfg := core.DefaultConfig()
		cfg.Threshold = dt
		campaigns = append(campaigns, o.campaign(fmt.Sprintf("bcbpt-%v", dt), buildSpec(o, ProtoBCBPT, cfg)))
	}
	return campaigns
}

// Figure4Thresholds is the paper's canonical Fig. 4 threshold set.
func Figure4Thresholds() []time.Duration {
	return []time.Duration{30 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
}

// Figure4Title is the figure heading shared by every Fig. 4 frontend.
const Figure4Title = "Fig. 4 — BCBPT Δt(m,n) distribution by threshold dt"

// ThresholdSweepCtx schedules the whole threshold set as one engine work
// queue.
func ThresholdSweepCtx(ctx context.Context, o Options, thresholds []time.Duration) (FigureResult, error) {
	o = o.withDefaults()
	return sweepFigure(ctx, o, Figure4Title, ThresholdSweepCampaigns(o, thresholds))
}

// VariancePoint is one (connections, spread) sample of the §V.C claim.
type VariancePoint struct {
	Protocol    string
	Connections int
	Std         time.Duration
	Mean        time.Duration
}

// VarianceResult is the connection-count sweep.
type VarianceResult struct {
	Points []VariancePoint
}

// String renders the sweep as a table.
func (v VarianceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== §V.C — Δt spread vs measuring-node connections ==\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %14s\n", "protocol", "connections", "std(Δt)", "mean(Δt)")
	pts := append([]VariancePoint(nil), v.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Protocol != pts[j].Protocol {
			return pts[i].Protocol < pts[j].Protocol
		}
		return pts[i].Connections < pts[j].Connections
	})
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %12d %14v %14v\n",
			p.Protocol, p.Connections, p.Std.Round(time.Microsecond), p.Mean.Round(time.Microsecond))
	}
	return b.String()
}

// VarianceVsConnections reproduces the §V.C observation: "the Bitcoin
// protocol performs variances of delays that grow linearly with the
// number of connected nodes, whereas BCBPT maintains lower variances of
// delays regardless of the number of connected nodes."
func VarianceVsConnections(o Options, connections []int) (VarianceResult, error) {
	return VarianceVsConnectionsCtx(context.Background(), o, connections)
}

// VarianceVsConnectionsCtx schedules the full protocol × connection-count
// grid as one engine work queue.
func VarianceVsConnectionsCtx(ctx context.Context, o Options, connections []int) (VarianceResult, error) {
	o = o.withDefaults()
	if len(connections) == 0 {
		connections = []int{8, 16, 24, 32, 48, 64}
	}
	type point struct {
		proto ProtocolKind
		k     int
	}
	var grid []point
	var campaigns []CampaignSpec
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoBCBPT} {
		for _, k := range connections {
			spec := buildSpec(o, proto, core.DefaultConfig())
			spec.MeasuringConnections = k
			grid = append(grid, point{proto: proto, k: k})
			campaigns = append(campaigns, o.campaign(fmt.Sprintf("%s/%d", proto, k), spec))
		}
	}
	outcomes, err := o.runner().Sweep(ctx, campaigns)
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return VarianceResult{}, fmt.Errorf("experiment: variance sweep: %w", err)
	}
	var out VarianceResult
	for i, oc := range outcomes {
		if oc.Replications == 0 {
			continue // cancelled before this grid point produced data
		}
		out.Points = append(out.Points, VariancePoint{
			Protocol:    string(grid[i].proto),
			Connections: grid[i].k,
			Std:         oc.Result.Dist.Std(),
			Mean:        oc.Result.Dist.Mean(),
		})
	}
	return out, err
}

// OverheadResult quantifies the measurement overhead of §IV.A.
type OverheadResult struct {
	Protocol          string
	Nodes             int
	BootstrapMsgs     uint64
	BootstrapBytes    uint64
	PingMsgs          uint64
	PingBytes         uint64
	PingMsgsPerNode   float64
	CampaignMsgs      uint64
	CampaignTxTraffic uint64
}

// String renders the overhead comparison.
func (o OverheadResult) String() string {
	return fmt.Sprintf("%-10s nodes=%d bootstrap=%d msgs (%d B), ping=%d msgs (%d B, %.1f/node), campaign=%d msgs",
		o.Protocol, o.Nodes, o.BootstrapMsgs, o.BootstrapBytes, o.PingMsgs, o.PingBytes,
		o.PingMsgsPerNode, o.CampaignMsgs)
}

// Overhead measures the extra traffic BCBPT's ping measurement adds
// relative to the random baseline — the cost the paper defers to future
// work ("this overhead will be evaluated in our future work", §IV.A).
func Overhead(o Options) ([]OverheadResult, error) {
	return OverheadCtx(context.Background(), o)
}

// OverheadCtx runs the two protocol builds concurrently on the engine's
// pool. Each unit needs its own network handle for before/after traffic
// stats, so it uses Runner.Each directly rather than the campaign sweep.
// On cancellation it returns the units that completed together with an
// error wrapping ErrPartialResult and ctx.Err(), matching Sweep.
func OverheadCtx(ctx context.Context, o Options) ([]OverheadResult, error) {
	o = o.withDefaults()
	protos := []ProtocolKind{ProtoBitcoin, ProtoBCBPT}
	slots := make([]OverheadResult, len(protos))
	completed, unitErr := o.runner().runUnits(ctx, len(protos), func(ctx context.Context, i int) error {
		proto := protos[i]
		spec := buildSpec(o, proto, core.DefaultConfig())
		b, err := Build(ctx, spec)
		if err != nil {
			return err
		}
		boot := b.Net.Stats()
		pingMsgs, pingBytes := boot.PingTraffic()
		res := OverheadResult{
			Protocol:        string(proto),
			Nodes:           o.Nodes,
			BootstrapMsgs:   boot.TotalMessages(),
			BootstrapBytes:  boot.TotalBytes(),
			PingMsgs:        pingMsgs,
			PingBytes:       pingBytes,
			PingMsgsPerNode: float64(pingMsgs) / float64(o.Nodes),
		}
		if _, err := b.CampaignContext(ctx, o.Runs, o.Deadline); err != nil {
			return err
		}
		delta := b.Net.Stats().Sub(boot)
		res.CampaignMsgs = delta.TotalMessages()
		res.CampaignTxTraffic = delta.TotalBytes()
		slots[i] = res
		return nil
	})
	var out []OverheadResult
	for i, done := range completed {
		if done {
			out = append(out, slots[i])
		}
	}
	if unitErr != nil {
		return out, unitErr
	}
	return out, partialError(ctx, len(out) == len(protos))
}
