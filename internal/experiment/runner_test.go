package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/measure"
)

// engineOpts keeps engine tests quick: small networks, few runs, several
// replications so the work queue actually fans out.
func engineOpts() Options {
	return Options{Nodes: 40, Runs: 4, Seed: 21, Deadline: 30 * time.Second, Replications: 3}
}

// sameCampaignResult asserts bitwise-equal merged results.
func sameCampaignResult(t *testing.T, label string, a, b measure.CampaignResult) {
	t.Helper()
	if !a.Dist.Equal(b.Dist) {
		t.Errorf("%s: distributions differ: %v vs %v", label, a.Dist, b.Dist)
	}
	if a.Lost != b.Lost {
		t.Errorf("%s: lost %d vs %d", label, a.Lost, b.Lost)
	}
	if len(a.PerRun) != len(b.PerRun) {
		t.Fatalf("%s: per-run count %d vs %d", label, len(a.PerRun), len(b.PerRun))
	}
	for i := range a.PerRun {
		if a.PerRun[i].TxID != b.PerRun[i].TxID || a.PerRun[i].InjectedAt != b.PerRun[i].InjectedAt {
			t.Errorf("%s: run %d differs: %+v vs %+v", label, i, a.PerRun[i], b.PerRun[i])
		}
		if len(a.PerRun[i].Deltas) != len(b.PerRun[i].Deltas) {
			t.Errorf("%s: run %d delta count differs", label, i)
			continue
		}
		for id, d := range a.PerRun[i].Deltas {
			if b.PerRun[i].Deltas[id] != d {
				t.Errorf("%s: run %d delta[%d] %v vs %v", label, i, id, d, b.PerRun[i].Deltas[id])
			}
		}
	}
}

// TestEngineDeterministicAcrossWorkerCounts is the engine's core
// guarantee: same seed ⇒ identical merged results at 1, 4 and 16 workers.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	o := engineOpts()
	campaigns := []CampaignSpec{
		o.campaign("bitcoin", buildSpec(o, ProtoBitcoin, fastBCBPT(25*time.Millisecond))),
		o.campaign("bcbpt", buildSpec(o, ProtoBCBPT, fastBCBPT(25*time.Millisecond))),
	}
	var baseline []CampaignOutcome
	for _, workers := range []int{1, 4, 16} {
		out, err := NewRunner(workers).Sweep(context.Background(), campaigns)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(campaigns) {
			t.Fatalf("workers=%d: outcomes = %d, want %d", workers, len(out), len(campaigns))
		}
		if baseline == nil {
			baseline = out
			for _, oc := range out {
				if oc.Result.Dist.N() == 0 {
					t.Fatalf("campaign %s produced no samples", oc.Name)
				}
				if oc.Replications != o.Replications {
					t.Fatalf("campaign %s completed %d replications, want %d", oc.Name, oc.Replications, o.Replications)
				}
			}
			continue
		}
		for i := range out {
			if out[i].Name != baseline[i].Name {
				t.Errorf("workers=%d: outcome %d name %q, want %q", workers, i, out[i].Name, baseline[i].Name)
			}
			sameCampaignResult(t, fmt.Sprintf("workers=%d campaign=%s", workers, out[i].Name),
				out[i].Result, baseline[i].Result)
		}
	}
}

// TestEngineSingleReplicationMatchesSerialPath pins back-compatibility:
// one replication through the engine must reproduce the direct
// Build+Campaign result bit for bit (replication 0 keeps the base seed).
func TestEngineSingleReplicationMatchesSerialPath(t *testing.T) {
	o := engineOpts()
	o.Replications = 1
	spec := buildSpec(o, ProtoBitcoin, fastBCBPT(25*time.Millisecond))

	b, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := b.Campaign(o.Runs, o.Deadline)
	if err != nil {
		t.Fatal(err)
	}

	engine, err := NewRunner(4).RunCampaign(context.Background(), o.campaign("bitcoin", spec))
	if err != nil {
		t.Fatal(err)
	}
	sameCampaignResult(t, "serial-vs-engine", serial, engine)
}

// TestEngineReplicationSeedsAreDistinct guards the seed-derivation chain:
// replications must explore genuinely different networks.
func TestEngineReplicationSeedsAreDistinct(t *testing.T) {
	cs := CampaignSpec{Spec: Spec{Seed: 9}}
	seen := map[int64]int{}
	for i := 0; i < 100; i++ {
		s := cs.ReplicationSeed(i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replications %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if cs.ReplicationSeed(0) != 9 {
		t.Errorf("replication 0 seed = %d, want base seed 9", cs.ReplicationSeed(0))
	}
}

// TestEngineCancellation: a cancelled sweep must return promptly with a
// partial-result error, keeping the replications that completed.
func TestEngineCancellation(t *testing.T) {
	o := engineOpts()
	o.Replications = 8
	o.Runs = 10
	campaigns := []CampaignSpec{
		o.campaign("bitcoin", buildSpec(o, ProtoBitcoin, fastBCBPT(25*time.Millisecond))),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep even starts: nothing may run
	start := time.Now()
	out, err := NewRunner(4).Sweep(ctx, campaigns)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, ErrPartialResult) {
		t.Errorf("error %v does not wrap ErrPartialResult", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(out) != 1 {
		t.Fatalf("outcomes = %d, want 1 (partial)", len(out))
	}
	if out[0].Replications != 0 || out[0].Result.Dist.N() != 0 {
		t.Errorf("pre-cancelled sweep completed work: %+v", out[0])
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled sweep took %v, want prompt return", elapsed)
	}
}

// TestEngineMidFlightCancellation cancels after the first completed unit
// and checks the engine stops early, keeps completed shards, and reports
// the partial-result error.
func TestEngineMidFlightCancellation(t *testing.T) {
	o := engineOpts()
	o.Replications = 12
	campaigns := []CampaignSpec{
		o.campaign("bitcoin", buildSpec(o, ProtoBitcoin, fastBCBPT(25*time.Millisecond))),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(1) // serial pool: cancellation lands between units
	var fired atomic.Bool
	// Cancel from a watcher as soon as the first unit could have finished;
	// the serial fast path checks ctx between units, so at most a couple
	// of replications complete.
	go func() {
		time.Sleep(50 * time.Millisecond)
		fired.Store(true)
		cancel()
	}()
	out, err := r.Sweep(ctx, campaigns)
	if !fired.Load() {
		t.Skip("sweep finished before cancellation fired; machine too fast for this race")
	}
	if err == nil {
		// The whole sweep legitimately finished before cancel fired.
		t.Skip("sweep completed before cancellation")
	}
	if !errors.Is(err, ErrPartialResult) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap ErrPartialResult and context.Canceled", err)
	}
	if len(out) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(out))
	}
	if out[0].Replications >= o.Replications {
		t.Errorf("all %d replications completed despite cancellation", out[0].Replications)
	}
}

// TestEngineUnitFailureIsDeterministic: a failing spec must surface the
// lowest-indexed unit's error regardless of worker count.
func TestEngineUnitFailureIsDeterministic(t *testing.T) {
	bad := CampaignSpec{Name: "bad", Spec: Spec{Nodes: 2, Seed: 1, Protocol: ProtoBitcoin}, Replications: 2, Runs: 2, Deadline: time.Second}
	good := CampaignSpec{Name: "good", Spec: Spec{Nodes: 20, Seed: 1, Protocol: ProtoBitcoin}, Replications: 2, Runs: 2, Deadline: 30 * time.Second}
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := NewRunner(workers).Sweep(context.Background(), []CampaignSpec{good, bad})
		if err == nil {
			t.Fatalf("workers=%d: sweep with invalid spec succeeded", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs by worker count:\n  %s\n  %s", msgs[0], msgs[1])
	}
}

// TestEachBoundsAndCompletes exercises the generic pool primitive.
func TestEachBoundsAndCompletes(t *testing.T) {
	const n = 64
	var ran [n]atomic.Bool
	var inFlight, peak atomic.Int32
	NewRunner(4).Each(context.Background(), n, func(ctx context.Context, i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		ran[i].Store(true)
		inFlight.Add(-1)
	})
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("unit %d never ran", i)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("concurrency peaked at %d, want <= 4", p)
	}
}

// TestCampaignContextPartial checks the measure-layer half of prompt
// cancellation: a campaign stopped mid-flight keeps its completed runs.
func TestCampaignContextPartial(t *testing.T) {
	b, err := Build(context.Background(), Spec{Nodes: 30, Seed: 5, Protocol: ProtoBitcoin})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := b.CampaignContext(ctx, 10, 30*time.Second)
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(res.PerRun) != 0 {
		t.Errorf("pre-cancelled campaign ran %d injections", len(res.PerRun))
	}
}

// TestCampaignSpecFingerprint pins the fingerprint's contract: stable
// under defaulting and result-neutral knobs (Name, BuildWorkers),
// sensitive to anything that changes the measured data.
func TestCampaignSpecFingerprint(t *testing.T) {
	base := CampaignSpec{Name: "a", Spec: Spec{Nodes: 40, Seed: 21, Protocol: ProtoBitcoin}}
	fp := base.Fingerprint()
	if fp == 0 {
		t.Fatal("fingerprint is zero (reserved for unstamped results)")
	}

	defaulted := base
	defaulted.Replications = 1
	defaulted.Runs = 200
	defaulted.Deadline = 2 * time.Minute
	if defaulted.Fingerprint() != fp {
		t.Error("explicit defaults changed the fingerprint")
	}
	renamed := base
	renamed.Name = "b"
	if renamed.Fingerprint() != fp {
		t.Error("series name changed the fingerprint")
	}
	sharded := base
	sharded.Spec.BuildWorkers = 16
	if sharded.Fingerprint() != fp {
		t.Error("BuildWorkers changed the fingerprint (results are identical for any value)")
	}

	for label, mutate := range map[string]func(*CampaignSpec){
		"seed":      func(c *CampaignSpec) { c.Spec.Seed = 22 },
		"nodes":     func(c *CampaignSpec) { c.Spec.Nodes = 41 },
		"protocol":  func(c *CampaignSpec) { c.Spec.Protocol = ProtoLBC },
		"runs":      func(c *CampaignSpec) { c.Runs = 100 },
		"streaming": func(c *CampaignSpec) { c.Streaming = true },
	} {
		m := base
		mutate(&m)
		if m.Fingerprint() == fp {
			t.Errorf("changing %s did not change the fingerprint", label)
		}
	}
}

// TestRunUnitStampsFingerprint: shards leaving the shared execution path
// must carry the spec fingerprint Sweep and the fleet merge on.
func TestRunUnitStampsFingerprint(t *testing.T) {
	cs := CampaignSpec{Name: "unit", Spec: Spec{Nodes: 20, Seed: 3, Protocol: ProtoBitcoin}, Runs: 2, Deadline: 30 * time.Second}
	res, err := RunUnit(context.Background(), cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != cs.Fingerprint() {
		t.Errorf("shard fingerprint %x, want %x", res.Fingerprint, cs.Fingerprint())
	}
	if res.Dist.N() == 0 {
		t.Error("unit produced no samples")
	}
	if _, err := RunUnit(context.Background(), cs, 5); err == nil {
		t.Error("out-of-range replication index accepted")
	}
}
