package experiment

import (
	"bytes"
	"context"
	"testing"
)

// TestParallelDispatchEngages pins that the spec knob actually switches
// the network onto the parallel dispatcher for cluster-forming protocols
// (a silent fallback everywhere would make the byte-identity test below
// vacuous), and that the serial default leaves it off.
func TestParallelDispatchEngages(t *testing.T) {
	for _, tc := range []struct {
		proto   ProtocolKind
		workers int
		want    bool
	}{
		{ProtoLBC, 4, true},
		{ProtoBCBPT, 4, true},
		{ProtoBitcoin, 4, true}, // geographic-region fallback partition
		{ProtoLBC, 1, false},
	} {
		b, err := Build(context.Background(), Spec{
			Nodes: 80, Seed: 1, Protocol: tc.proto, SimWorkers: tc.workers,
		})
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.proto, tc.workers, err)
		}
		_, on := b.Net.ParallelLookahead()
		if on != tc.want {
			t.Errorf("%s with SimWorkers=%d: parallel dispatch engaged = %v, want %v",
				tc.proto, tc.workers, on, tc.want)
		}
		b.Close()
	}
}

// TestParallelDispatchMatchesSerial is the tentpole contract: the figure3
// CSV must be byte-identical between the serial kernel and parallel
// dispatch at every worker count. Same sweep parameters as the golden
// smoke test, so this transitively pins the parallel output to the
// checked-in golden file too.
func TestParallelDispatchMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep; skipped in -short")
	}
	render := func(simWorkers int) []byte {
		t.Helper()
		fig, err := Figure3Ctx(context.Background(), Options{
			Nodes: 120, Runs: 5, Seed: 1, Replications: 2, SimWorkers: simWorkers,
		})
		if err != nil {
			t.Fatalf("figure3 with SimWorkers=%d: %v", simWorkers, err)
		}
		var buf bytes.Buffer
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatalf("render CSV: %v", err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{2, 4, 16} {
		got := render(workers)
		if !bytes.Equal(got, serial) {
			i := 0
			for i < len(got) && i < len(serial) && got[i] == serial[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			show := func(b []byte) []byte {
				hi := i + 80
				if hi > len(b) {
					hi = len(b)
				}
				return b[lo:hi]
			}
			t.Fatalf("figure3 CSV diverged at SimWorkers=%d (byte %d of %d vs %d):\nserial: …%s…\nparallel: …%s…",
				workers, i, len(serial), len(got), show(serial), show(got))
		}
	}
}
