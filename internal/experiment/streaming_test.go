package experiment

import (
	"context"
	"testing"
	"time"
)

// TestSweepStreamingBoundedMemory is the bounded-memory acceptance
// contract: a Figure-3-shaped sweep run with Streaming enabled produces
// sketch-backed pooled distributions that retain zero raw samples and no
// per-run results — O(buckets) per replication instead of
// O(runs × connections) — while still pooling every measured sample
// (same N and Lost as the exact sweep) and staying deterministic across
// worker counts.
func TestSweepStreamingBoundedMemory(t *testing.T) {
	o := engineOpts()
	o.Streaming = true
	campaigns := []CampaignSpec{
		o.campaign("bitcoin", buildSpec(o, ProtoBitcoin, fastBCBPT(25*time.Millisecond))),
		o.campaign("bcbpt", buildSpec(o, ProtoBCBPT, fastBCBPT(25*time.Millisecond))),
	}

	exactOpts := engineOpts() // same seeds, exact pooling
	exactCampaigns := []CampaignSpec{
		exactOpts.campaign("bitcoin", buildSpec(exactOpts, ProtoBitcoin, fastBCBPT(25*time.Millisecond))),
		exactOpts.campaign("bcbpt", buildSpec(exactOpts, ProtoBCBPT, fastBCBPT(25*time.Millisecond))),
	}
	exact, err := NewRunner(2).Sweep(context.Background(), exactCampaigns)
	if err != nil {
		t.Fatal(err)
	}

	var baseline []CampaignOutcome
	for _, workers := range []int{1, 4} {
		out, err := NewRunner(workers).Sweep(context.Background(), campaigns)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, oc := range out {
			d := oc.Result.Dist
			if !d.Streaming() {
				t.Fatalf("workers=%d: campaign %s pooled exactly despite Streaming", workers, oc.Name)
			}
			if d.Retained() != 0 {
				t.Fatalf("workers=%d: campaign %s retained %d raw samples", workers, oc.Name, d.Retained())
			}
			if len(oc.Result.PerRun) != 0 {
				t.Fatalf("workers=%d: campaign %s retained %d per-run results", workers, oc.Name, len(oc.Result.PerRun))
			}
			// Same samples measured, just summarised: N and Lost match the
			// exact sweep bit for bit.
			if d.N() != exact[i].Result.Dist.N() || oc.Result.Lost != exact[i].Result.Lost {
				t.Fatalf("workers=%d: campaign %s pooled n=%d lost=%d, exact n=%d lost=%d",
					workers, oc.Name, d.N(), oc.Result.Lost, exact[i].Result.Dist.N(), exact[i].Result.Lost)
			}
			if d.N() == 0 {
				t.Fatalf("workers=%d: campaign %s empty", workers, oc.Name)
			}
		}
		if baseline == nil {
			baseline = out
			continue
		}
		for i := range out {
			if !out[i].Result.Dist.Equal(baseline[i].Result.Dist) {
				t.Errorf("workers=%d: campaign %s sketch differs from 1-worker baseline", workers, out[i].Name)
			}
		}
	}
}

// TestCampaignStreamingMethod exercises the Built-level entry point.
func TestCampaignStreamingMethod(t *testing.T) {
	b, err := Build(context.Background(), Spec{Nodes: 30, Seed: 5, Protocol: ProtoBitcoin})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.CampaignStreaming(context.Background(), 3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dist.Streaming() || res.Dist.Retained() != 0 || res.Dist.N() == 0 {
		t.Fatalf("streaming campaign: streaming=%v retained=%d n=%d",
			res.Dist.Streaming(), res.Dist.Retained(), res.Dist.N())
	}
}
