package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/churn"
)

func TestParseSweepValid(t *testing.T) {
	sf, err := ParseSweep([]byte(`{
		"title": "two ways to write a duration",
		"campaigns": [
			{
				"name": "bcbpt-50ms",
				"spec": {
					"nodes": 500, "seed": 7, "protocol": "bcbpt",
					"bcbpt": {
						"Threshold": "50ms", "ProbeCount": 3, "ProbeGap": "20ms",
						"Candidates": 16, "LongLinks": 2, "JoinStagger": "100ms",
						"DecisionSlack": "2s", "MemberSample": 64
					}
				},
				"replications": 4, "runs": 100, "deadline": "90s", "streaming": true
			},
			{
				"name": "bitcoin",
				"spec": {"nodes": 500, "seed": 7, "protocol": "bitcoin"},
				"deadline": 120000000000
			}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Title != "two ways to write a duration" || len(sf.Campaigns) != 2 {
		t.Fatalf("parsed %q with %d campaigns", sf.Title, len(sf.Campaigns))
	}
	b := sf.Campaigns[0]
	if b.Name != "bcbpt-50ms" || b.Deadline != 90*time.Second || !b.Streaming || b.Replications != 4 {
		t.Errorf("campaign 0 parsed as %+v", b)
	}
	if got := b.Spec.BCBPT; got.Threshold != 50*time.Millisecond || got.ProbeGap != 20*time.Millisecond ||
		got.JoinStagger != 100*time.Millisecond || got.DecisionSlack != 2*time.Second {
		t.Errorf("bcbpt durations parsed as %+v", got)
	}
	// A name that merely looks like a duration must stay a string.
	if sf.Campaigns[1].Deadline != 2*time.Minute {
		t.Errorf("integer-nanosecond deadline parsed as %v", sf.Campaigns[1].Deadline)
	}
}

// TestParseSweepDurationKeysCaseInsensitive: encoding/json matches
// struct fields case-insensitively, so duration rewriting must too — a
// "Deadline" key still lands in the deadline field and its duration
// string must still parse.
func TestParseSweepDurationKeysCaseInsensitive(t *testing.T) {
	sf, err := ParseSweep([]byte(`{
		"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}, "Deadline": "45s"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Campaigns[0].Deadline != 45*time.Second {
		t.Errorf(`"Deadline": "45s" parsed as %v`, sf.Campaigns[0].Deadline)
	}
}

// TestParseSweepTraceKey: a sweep file can request a trace export for a
// campaign via the "trace" key, and — like Name — the path must not
// move the campaign's fingerprint: a traced worker and an untraced
// coordinator still agree on what experiment they are running.
func TestParseSweepTraceKey(t *testing.T) {
	sf, err := ParseSweep([]byte(`{
		"campaigns": [{
			"name": "traced",
			"spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"},
			"trace": "out/trace.json"
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	traced := sf.Campaigns[0]
	if traced.Trace != "out/trace.json" {
		t.Fatalf("trace key parsed as %q", traced.Trace)
	}
	bare := traced
	bare.Trace = ""
	if traced.Fingerprint() != bare.Fingerprint() {
		t.Error("Trace path changed the campaign fingerprint; it must be excluded like Name")
	}
}

func TestParseSweepErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"malformed", `{"campaigns": [`, "unexpected EOF"},
		{"trailing document", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}}]}
			{"campaigns": []}`, "trailing content"},
		{"no campaigns", `{"campaigns": []}`, "no campaigns"},
		{"unknown field", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}, "replicatons": 3}]}`, "unknown field"},
		{"unknown spec field", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocl": "bitcoin"}}]}`, "unknown field"},
		{"missing name", `{"campaigns": [{"spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}}]}`, "missing name"},
		{"duplicate names", `{"campaigns": [
			{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}},
			{"name": "a", "spec": {"nodes": 40, "seed": 2, "protocol": "bitcoin"}}]}`, "duplicate name"},
		{"too few nodes", `{"campaigns": [{"name": "a", "spec": {"nodes": 2, "seed": 1, "protocol": "bitcoin"}}]}`, "at least 3 nodes"},
		{"bad protocol", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "gossipmax"}}]}`, "unknown protocol"},
		{"negative replications", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}, "replications": -1}]}`, "negative replications"},
		{"bad duration", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin"}, "deadline": "soonish"}]}`, "invalid duration"},
		{"partial bcbpt config", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bcbpt", "bcbpt": {"Threshold": "25ms"}}}]}`, "ProbeCount"},
		{"bad churn", `{"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "bitcoin", "churn": {"SessionShape": 0.5}}}]}`, "SessionScale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSweep([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestLoadSweepFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(`{
		"campaigns": [{"name": "a", "spec": {"nodes": 40, "seed": 1, "protocol": "lbc"}, "runs": 3}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := LoadSweepFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Campaigns) != 1 || sf.Campaigns[0].Spec.Protocol != ProtoLBC {
		t.Errorf("loaded %+v", sf)
	}

	if _, err := LoadSweepFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded without error")
	}
	// A failing file names itself in the error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"campaigns": []}`), 0o644)
	if _, err := LoadSweepFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("load error does not name the file: %v", err)
	}
}

// TestParseSweepChurnDurations: churn model timings accept duration
// strings too.
func TestParseSweepChurnDurations(t *testing.T) {
	sf, err := ParseSweep([]byte(`{
		"campaigns": [{
			"name": "churny",
			"spec": {
				"nodes": 40, "seed": 1, "protocol": "bitcoin",
				"churn": {"SessionScale": "40m", "SessionShape": 0.6, "MeanArrival": "5s", "MinSession": "30s"}
			}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := churn.Model{SessionScale: 40 * time.Minute, SessionShape: 0.6, MeanArrival: 5 * time.Second, MinSession: 30 * time.Second}
	if got := sf.Campaigns[0].Spec.Churn; got == nil || *got != want {
		t.Errorf("churn parsed as %+v, want %+v", got, want)
	}
}

// TestParseSweepSimWorkers: sweep files can ask fleet workers for
// parallel event dispatch. The knob must round-trip through the strict
// schema and must NOT enter the spec fingerprint — it is a
// host-parallelism setting with bit-identical results, so a worker
// running a campaign at a different worker count must still merge into
// the same sweep.
func TestParseSweepSimWorkers(t *testing.T) {
	sf, err := ParseSweep([]byte(`{
		"campaigns": [{
			"name": "lbc-parallel",
			"spec": {"nodes": 500, "seed": 7, "protocol": "lbc", "sim_workers": 4},
			"runs": 50
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cs := sf.Campaigns[0]
	if cs.Spec.SimWorkers != 4 {
		t.Fatalf("sim_workers parsed as %d, want 4", cs.Spec.SimWorkers)
	}
	serial := cs
	serial.Spec.SimWorkers = 0
	if cs.Fingerprint() != serial.Fingerprint() {
		t.Errorf("fingerprint depends on sim_workers: %016x (workers=4) != %016x (serial)",
			cs.Fingerprint(), serial.Fingerprint())
	}
}

// TestExampleSweepMatchesFigure3Preset pins the checked-in example sweep
// to the figure3 preset it claims to reproduce: same series names, same
// spec fingerprints. scripts/fleetsmoke.sh byte-diffs the two outputs,
// which only holds while this stays true.
func TestExampleSweepMatchesFigure3Preset(t *testing.T) {
	sf, err := LoadSweepFile("../../examples/sweeps/figure3-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	want := Figure3Campaigns(Options{Nodes: 120, Runs: 5, Seed: 1, Replications: 2})
	if len(sf.Campaigns) != len(want) {
		t.Fatalf("example defines %d campaigns, preset %d", len(sf.Campaigns), len(want))
	}
	for i := range want {
		if sf.Campaigns[i].Name != want[i].Name {
			t.Errorf("campaign %d named %q, preset %q", i, sf.Campaigns[i].Name, want[i].Name)
		}
		if got, exp := sf.Campaigns[i].Fingerprint(), want[i].Fingerprint(); got != exp {
			t.Errorf("campaign %q fingerprint %016x, preset %016x — the example has drifted from the preset",
				want[i].Name, got, exp)
		}
	}
}
