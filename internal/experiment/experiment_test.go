package experiment

import (
	"context"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/p2p"
)

// smallOpts keeps unit-test experiments quick while preserving shape.
func smallOpts() Options {
	return Options{Nodes: 150, Runs: 25, Seed: 42, Deadline: time.Minute}
}

// fastBCBPT returns a BCBPT config with short bootstrap timings.
func fastBCBPT(dt time.Duration) core.Config {
	cfg := core.DefaultConfig()
	cfg.Threshold = dt
	cfg.JoinStagger = 20 * time.Millisecond
	cfg.DecisionSlack = 500 * time.Millisecond
	return cfg
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(context.Background(), Spec{Nodes: 2}); err == nil {
		t.Error("accepted 2-node network")
	}
	if _, err := Build(context.Background(), Spec{Nodes: 10, Protocol: "nonsense"}); err == nil {
		t.Error("accepted unknown protocol")
	}
}

func TestBuildEachProtocol(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoLBC, ProtoBCBPT} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			b, err := Build(context.Background(), Spec{
				Nodes:    80,
				Seed:     7,
				Protocol: proto,
				BCBPT:    fastBCBPT(25 * time.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			if b.Net.NumNodes() != 80 {
				t.Errorf("nodes = %d, want 80", b.Net.NumNodes())
			}
			if b.Measurer == nil {
				t.Fatal("no measuring node")
			}
			node, _ := b.Net.Node(b.Measurer.ID())
			if node.NumPeers() == 0 {
				t.Error("measuring node has no connections")
			}
			if proto == ProtoBCBPT && b.BCBPT == nil {
				t.Error("BCBPT handle missing")
			}
		})
	}
}

func TestCampaignProducesSamples(t *testing.T) {
	b, err := Build(context.Background(), Spec{Nodes: 60, Seed: 8, Protocol: ProtoBitcoin})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Campaign(10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.N() == 0 {
		t.Fatal("campaign produced no samples")
	}
	if res.Dist.Mean() <= 0 {
		t.Error("non-positive mean Δt")
	}
}

func TestForceDegree(t *testing.T) {
	for _, k := range []int{4, 20, 40} {
		spec := Spec{
			Nodes:                100,
			Seed:                 9,
			Protocol:             ProtoBitcoin,
			MeasuringConnections: k,
		}
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		node, _ := b.Net.Node(b.Measurer.ID())
		if node.NumPeers() != k {
			t.Errorf("k=%d: measuring node has %d peers", k, node.NumPeers())
		}
	}
}

func TestChurnKeepsPopulationRoughlyStable(t *testing.T) {
	m := defaultChurn(100)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Nodes: 100, Seed: 10, Protocol: ProtoBitcoin, Churn: &m}
	b, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.ChurnDriver == nil {
		t.Fatal("churn driver missing")
	}
	start := b.Net.NumNodes()
	if err := b.Net.RunUntil(context.Background(), b.Net.Now()+10*time.Minute); err != nil {
		t.Fatal(err)
	}
	b.ChurnDriver.Stop()
	end := b.Net.NumNodes()
	if end < start/2 || end > start*2 {
		t.Errorf("population drifted %d -> %d over 10 virtual minutes", start, end)
	}
	leaves, arrivals := b.ChurnDriver.Stats()
	if leaves == 0 || arrivals == 0 {
		t.Errorf("churn inactive: %d leaves, %d arrivals", leaves, arrivals)
	}
}

// TestFigure3Shape is the headline reproduction check: BCBPT beats LBC
// beats Bitcoin on median and spread of Δt.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	o := smallOpts()
	// Use fast bootstrap timings via ThresholdSweep-equivalent manual
	// build to keep CI fast while preserving protocol behaviour.
	series := map[string]struct {
		kind ProtocolKind
		cfg  core.Config
	}{
		"bitcoin": {ProtoBitcoin, core.Config{}},
		"lbc":     {ProtoLBC, core.Config{}},
		"bcbpt":   {ProtoBCBPT, fastBCBPT(25 * time.Millisecond)},
	}
	medians := map[string]time.Duration{}
	stds := map[string]time.Duration{}
	for name, s := range series {
		spec := buildSpec(o, s.kind, s.cfg)
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := b.Campaign(o.Runs, o.Deadline)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		medians[name] = res.Dist.Median()
		stds[name] = res.Dist.Std()
		t.Logf("%-8s %s", name, res.Dist)
	}
	if !(medians["bcbpt"] < medians["lbc"] && medians["lbc"] < medians["bitcoin"]) {
		t.Errorf("median ordering violated: bcbpt=%v lbc=%v bitcoin=%v",
			medians["bcbpt"], medians["lbc"], medians["bitcoin"])
	}
	if stds["bcbpt"] >= stds["bitcoin"] {
		t.Errorf("BCBPT spread %v >= Bitcoin spread %v", stds["bcbpt"], stds["bitcoin"])
	}
}

// TestFigure4Shape checks the threshold sweep ordering: smaller dt gives
// a tighter, faster distribution.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	o := smallOpts()
	var medians []time.Duration
	for _, dt := range []time.Duration{30 * time.Millisecond, 100 * time.Millisecond} {
		spec := buildSpec(o, ProtoBCBPT, fastBCBPT(dt))
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("dt=%v: %v", dt, err)
		}
		res, err := b.Campaign(o.Runs, o.Deadline)
		if err != nil {
			t.Fatalf("dt=%v: %v", dt, err)
		}
		t.Logf("dt=%v %s", dt, res.Dist)
		medians = append(medians, res.Dist.Median())
	}
	if medians[0] >= medians[1] {
		t.Errorf("median(dt=30ms)=%v >= median(dt=100ms)=%v", medians[0], medians[1])
	}
}

// TestVarianceVsConnectionsShape checks the §V.C claim in miniature.
func TestVarianceVsConnectionsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	o := smallOpts()
	o.Runs = 20
	spread := func(kind ProtocolKind, k int) time.Duration {
		spec := buildSpec(o, kind, fastBCBPT(25*time.Millisecond))
		spec.MeasuringConnections = k
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s/%d: %v", kind, k, err)
		}
		res, err := b.Campaign(o.Runs, o.Deadline)
		if err != nil {
			t.Fatalf("%s/%d: %v", kind, k, err)
		}
		t.Logf("%s k=%d: %v", kind, k, res.Dist)
		return res.Dist.Std()
	}
	btcGrowth := float64(spread(ProtoBitcoin, 40)) / float64(spread(ProtoBitcoin, 8)+1)
	bcbptAt40 := spread(ProtoBCBPT, 40)
	btcAt40 := spread(ProtoBitcoin, 40)
	if bcbptAt40 >= btcAt40 {
		t.Errorf("BCBPT spread at 40 connections (%v) >= Bitcoin (%v)", bcbptAt40, btcAt40)
	}
	_ = btcGrowth // growth factor logged implicitly; ordering is the hard assertion
}

func TestOverheadShowsBCBPTPingCost(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	o := smallOpts()
	o.Runs = 5
	results := make(map[string]OverheadResult)
	for _, proto := range []ProtocolKind{ProtoBitcoin, ProtoBCBPT} {
		spec := buildSpec(o, proto, fastBCBPT(25*time.Millisecond))
		b, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		boot := b.Net.Stats()
		ping, bytes := boot.PingTraffic()
		results[string(proto)] = OverheadResult{
			Protocol: string(proto), PingMsgs: ping, PingBytes: bytes,
			BootstrapMsgs: boot.TotalMessages(),
		}
	}
	if results["bcbpt"].PingMsgs <= results["bitcoin"].PingMsgs {
		t.Errorf("BCBPT ping traffic (%d) not above baseline (%d) — measurement overhead missing",
			results["bcbpt"].PingMsgs, results["bitcoin"].PingMsgs)
	}
	if results["bcbpt"].String() == "" {
		t.Error("OverheadResult.String empty")
	}
}

func TestFigureResultString(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	o := Options{Nodes: 60, Runs: 5, Seed: 3, Deadline: 30 * time.Second}
	spec := buildSpec(o, ProtoBitcoin, core.Config{})
	b, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Campaign(o.Runs, o.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	fig := FigureResult{Title: "test", Series: []Series{{Name: "bitcoin", Dist: res.Dist}}}
	if fig.String() == "" {
		t.Error("FigureResult.String empty")
	}
	var v VarianceResult
	v.Points = append(v.Points, VariancePoint{Protocol: "x", Connections: 8})
	if v.String() == "" {
		t.Error("VarianceResult.String empty")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes == 0 || o.Runs == 0 || o.Seed == 0 || o.Deadline == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestChurnDuringCampaignStillMeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	m := churn.Model{
		SessionScale: 5 * time.Minute,
		SessionShape: 0.6,
		MeanArrival:  2 * time.Second,
		MinSession:   30 * time.Second,
	}
	spec := Spec{Nodes: 100, Seed: 11, Protocol: ProtoBitcoin, Churn: &m}
	b, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Campaign(15, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Under churn some losses are expected and tolerated (§V.B mentions
	// errors such as loss of connection); the distribution must still
	// carry most samples.
	if res.Dist.N() == 0 {
		t.Fatal("no samples under churn")
	}
	node, _ := b.Net.Node(b.Measurer.ID())
	if node == nil {
		t.Fatal("measuring node churned away despite exemption")
	}
	_ = p2p.NodeID(0)
}
