// Package experiment composes the substrates into the paper's evaluation
// (§V): network construction under each protocol, the measuring-node
// campaign, and one generator per figure/claim:
//
//   - Figure3: Δt distributions for simulated Bitcoin vs LBC vs BCBPT
//     (dt = 25ms);
//   - Figure4: Δt distributions for BCBPT at dt ∈ {30, 50, 100}ms;
//   - VarianceVsConnections: the §V.C claim that Bitcoin's delay spread
//     grows with the measuring node's connection count while BCBPT's
//     stays flat;
//   - Overhead: the §IV.A ping-measurement overhead deferred by the paper
//     to future work.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ProtocolKind names a neighbour-selection protocol.
type ProtocolKind string

// Supported protocols.
const (
	ProtoBitcoin ProtocolKind = "bitcoin" // vanilla random selection
	ProtoLBC     ProtocolKind = "lbc"     // geographic clustering
	ProtoBCBPT   ProtocolKind = "bcbpt"   // ping-time clustering
)

// Spec describes one simulated network build.
//
// Specs serialize with encoding/json — the form the fleet subsystem ships
// to workers and the form CampaignSpec.Fingerprint hashes. Every field is
// plain data except BaseUTXO, which is excluded (`json:"-"`): a seeded
// ledger cannot ship over the wire, so fleet coordinators reject specs
// that set it (see CampaignSpec.CheckShippable).
type Spec struct {
	// Nodes is the network size. The paper matches the measured real-
	// network size (~5000 reachable peers); tests use smaller worlds.
	Nodes int `json:"nodes"`
	// Seed roots all randomness for the build.
	Seed int64 `json:"seed"`
	// Protocol selects neighbour selection.
	Protocol ProtocolKind `json:"protocol"`
	// BCBPT configures the BCBPT protocol (ignored otherwise). The zero
	// value means core.DefaultConfig; any non-zero configuration is used
	// exactly as given (a partially filled config fails validation loudly
	// rather than being silently replaced).
	BCBPT core.Config `json:"bcbpt"`
	// BuildWorkers bounds the goroutines the build may use for its
	// sharded phases (geo placement, BCBPT candidate ranking). <= 0
	// means GOMAXPROCS; 1 forces the serial path. Purely a wall-clock
	// knob: every worker count produces a bit-identical network.
	BuildWorkers int `json:"build_workers,omitempty"`
	// SimWorkers selects the event-dispatch mode for the measurement
	// phase: <= 1 (default) runs the serial kernel; >= 2 enables
	// conservative parallel dispatch across that many workers, with the
	// network partitioned along the protocol's cluster structure. Like
	// BuildWorkers this is purely a wall-clock knob — every worker count
	// produces bit-identical output — and it silently falls back to the
	// serial kernel when the build offers no usable partition (churn
	// enabled, protocol without cluster structure, fewer than two
	// groups).
	SimWorkers int `json:"sim_workers,omitempty"`
	// Churn, when non-nil, enables join/leave dynamics during the
	// measurement phase.
	Churn *churn.Model `json:"churn,omitempty"`
	// MeasuringConnections, if > 0, forces the measuring node to have
	// exactly this many connections (used by the variance sweep). The
	// p2p MaxPeers cap is raised accordingly.
	MeasuringConnections int `json:"measuring_connections,omitempty"`
	// Validation selects per-node validation depth (default Light).
	Validation p2p.ValidationMode `json:"validation,omitempty"`
	// BaseUTXO seeds every node's ledger view (Full validation only).
	// Not serializable: fleet sweeps must leave it nil.
	BaseUTXO *chain.UTXOSet `json:"-"`
	// Relay overrides the propagation exchange (default RelayInv).
	Relay p2p.RelayMode `json:"relay,omitempty"`
	// LossProb injects message loss (see p2p.Config.LossProb).
	LossProb float64 `json:"loss_prob,omitempty"`
}

// Built is a constructed, bootstrapped network ready for measurement.
type Built struct {
	Net      *p2p.Network
	Protocol topology.Protocol
	Seed     *topology.DNSSeed
	// BCBPT is non-nil when Spec.Protocol was ProtoBCBPT.
	BCBPT *core.BCBPT
	// Measurer is the measuring node m of Fig. 2.
	Measurer *measure.MeasuringNode
	// ChurnDriver is non-nil when churn was enabled.
	ChurnDriver *churn.Driver
}

// buildWorkers resolves the sharding concurrency for a spec.
func (s Spec) buildWorkers() int {
	if s.BuildWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.BuildWorkers
}

// validate runs every cheap spec check up front, before Build spends any
// work — and crucially before its first ctx checkpoint. The campaign
// engine's fail-fast path promises a scheduling-independent error for a
// bad spec: that only holds if a doomed unit reaches its real validation
// error rather than aborting at a ctx poll once a sibling's failure has
// cancelled the sweep, so nothing ctx-dependent may precede these checks.
func (s Spec) validate() error {
	if s.Nodes < 3 {
		return errors.New("experiment: need at least 3 nodes")
	}
	switch s.Protocol {
	case ProtoBitcoin, "", ProtoLBC:
	case ProtoBCBPT:
		if cfg := s.BCBPT; cfg != (core.Config{}) {
			if err := cfg.Validate(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("experiment: unknown protocol %q", s.Protocol)
	}
	return nil
}

// placementShardSize is how many nodes one placement shard covers. Each
// shard draws from its own random stream derived via sim.DeriveSeed from
// (spec seed, shard index), and shard boundaries depend only on the
// population — so placements are a pure function of the spec, identical
// for every worker count including the serial path.
const placementShardSize = 512

// shardedPlacements samples the bootstrap population's locations across
// the build worker pool.
func shardedPlacements(ctx context.Context, placer *geo.Placer, seed int64, n, workers int) ([]geo.Location, error) {
	locs := make([]geo.Location, n)
	shards := (n + placementShardSize - 1) / placementShardSize
	err := sim.ParallelFor(ctx, shards, workers, func(s int) {
		r := rand.New(rand.NewSource(sim.DeriveSeed(seed, fmt.Sprintf("placement/shard/%d", s))))
		lo := s * placementShardSize
		hi := lo + placementShardSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			locs[i] = placer.Place(r)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: placement (%d shards): %w", shards, err)
	}
	return locs, nil
}

// Build constructs and bootstraps a network per spec. On return the
// overlay is wired and virtual time has advanced past bootstrap.
//
// ctx cancels the build cooperatively at every expensive phase —
// placement sharding, candidate precompute, and the virtual-time
// bootstrap run — returning promptly with an error wrapping ctx.Err().
// The placement and BCBPT candidate-ranking phases shard across up to
// Spec.BuildWorkers goroutines; the resulting network is bit-identical
// for every worker count. On any error the partially built network is
// closed before returning, so a failed build leaves no scheduled work,
// no running goroutines, and nothing pinning node state alive.
func Build(ctx context.Context, spec Spec) (*Built, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	pcfg := p2p.DefaultConfig()
	pcfg.Seed = spec.Seed
	pcfg.Validation = spec.Validation
	pcfg.BaseUTXO = spec.BaseUTXO
	pcfg.Relay = spec.Relay
	pcfg.LossProb = spec.LossProb
	if spec.MeasuringConnections > pcfg.MaxPeers {
		pcfg.MaxPeers = spec.MeasuringConnections + 8
	}
	net, err := p2p.NewNetwork(pcfg)
	if err != nil {
		return nil, err
	}
	net.Reserve(spec.Nodes)
	b := &Built{Net: net, Seed: topology.NewDNSSeed()}
	if err := b.build(ctx, spec); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// build runs the construction phases against an already-allocated
// network. Split out of Build so every error path funnels through the
// single Close in Build — each early return here used to abandon a
// half-bootstrapped network with its event queue still loaded.
func (b *Built) build(ctx context.Context, spec Spec) error {
	net := b.Net
	seed := b.Seed
	placer := geo.DefaultPlacer()
	locs, err := shardedPlacements(ctx, placer, spec.Seed, spec.Nodes, spec.buildWorkers())
	if err != nil {
		return err
	}
	ids := make([]p2p.NodeID, spec.Nodes)
	for i := range ids {
		ids[i] = net.AddNode(locs[i]).ID()
	}

	switch spec.Protocol {
	case ProtoBitcoin, "":
		b.Protocol = topology.NewRandom(net, seed, 0)
		if err := b.Protocol.Bootstrap(ctx, ids); err != nil {
			return err
		}
	case ProtoLBC:
		b.Protocol = topology.NewLBC(net, seed, topology.LBCConfig{})
		if err := b.Protocol.Bootstrap(ctx, ids); err != nil {
			return err
		}
	case ProtoBCBPT:
		cfg := spec.BCBPT
		if cfg == (core.Config{}) {
			cfg = core.DefaultConfig()
		}
		proto, err := core.New(net, seed, cfg)
		if err != nil {
			return err
		}
		proto.SetBuildWorkers(spec.BuildWorkers)
		b.BCBPT = proto
		b.Protocol = proto
		if err := proto.Bootstrap(ctx, ids); err != nil {
			return err
		}
		if err := net.RunUntil(ctx, proto.BootstrapDeadline(len(ids))); err != nil {
			return err
		}
		if proto.NumClustered() != len(ids) {
			return fmt.Errorf("experiment: bootstrap clustered %d of %d nodes",
				proto.NumClustered(), len(ids))
		}
	default:
		return fmt.Errorf("experiment: unknown protocol %q", spec.Protocol)
	}
	net.OnDisconnect = b.Protocol.OnDisconnect

	// Pick the measuring node: the best-connected node, so Δt samples
	// cover many connections (Fig. 2 wants m's connections 1..n).
	mID := bestConnected(net)
	if spec.MeasuringConnections > 0 {
		if err := forceDegree(net, b, mID, spec.MeasuringConnections); err != nil {
			return err
		}
	}
	measurer, err := measure.NewMeasuringNode(net, mID)
	if err != nil {
		return err
	}
	b.Measurer = measurer

	if spec.Churn != nil {
		drv, err := churn.NewDriver(*spec.Churn, net.Scheduler(), net.Streams().Stream("churn"))
		if err != nil {
			return err
		}
		// Churn arrivals keep their own serial placement stream: they are
		// placed one at a time inside the single-threaded event loop.
		r := net.Streams().Stream("placement")
		drv.OnLeave = func(id uint64) {
			nid := p2p.NodeID(id)
			if nid == mID {
				return // the measuring node must survive the campaign
			}
			b.Protocol.OnLeave(nid)
			net.RemoveNode(nid)
		}
		drv.OnArrive = func() (uint64, bool) {
			node := net.AddNode(placer.Place(r))
			b.Protocol.OnJoin(node.ID())
			return uint64(node.ID()), true
		}
		for _, id := range net.NodeIDs() {
			if id != mID {
				drv.ScheduleSession(uint64(id))
			}
		}
		drv.Start()
		b.ChurnDriver = drv
	}
	if spec.SimWorkers > 1 {
		if _, err := b.EnableParallelDispatch(spec.SimWorkers); err != nil {
			return err
		}
	}
	return nil
}

// EnableParallelDispatch switches the built network onto the conservative
// parallel event dispatcher (p2p.Network.EnableParallelDispatch),
// partitioned along the protocol's cluster structure. It reports whether
// parallel dispatch actually engaged: the serial kernel is kept — not an
// error — when workers <= 1, churn is active (topology mutation is
// incompatible with a frozen partition map), the protocol exposes no
// partition structure, or the structure yields fewer than two groups.
// Either way the measurement output is bit-identical; this is purely a
// wall-clock switch.
func (b *Built) EnableParallelDispatch(workers int) (bool, error) {
	if workers <= 1 || b.ChurnDriver != nil {
		return false, nil
	}
	part, ok := b.Protocol.(topology.Partitioner)
	if !ok {
		return false, nil
	}
	groups := part.Partitions()
	if len(groups) < 2 {
		return false, nil
	}
	// Fold the protocol's groups into contiguous partition blocks. More
	// partitions than workers keeps the pool busy when cluster sizes are
	// uneven (a worker finishing a small partition claims the next), but
	// each extra partition costs a heap and barrier bookkeeping, so cap
	// at a small multiple of the worker count.
	parts := 4 * workers
	if parts > len(groups) {
		parts = len(groups)
	}
	if parts < 2 {
		parts = 2
	}
	plan := p2p.PartitionPlan{Parts: parts, Of: make([]int32, b.Net.SlotCap())}
	for gi, g := range groups {
		p := int32(gi * parts / len(groups))
		for _, id := range g {
			if slot, ok := b.Net.SlotOf(id); ok {
				plan.Of[slot] = p
			}
		}
	}
	if err := b.Net.EnableParallelDispatch(plan, workers); err != nil {
		return false, fmt.Errorf("experiment: enabling parallel dispatch: %w", err)
	}
	return true, nil
}

// Close releases a built (or part-built) network: churn stops scheduling
// sessions and the network drops its pending event queue and hooks. Build
// calls it on every error path; callers that are done measuring may call
// it too. Idempotent.
func (b *Built) Close() {
	if b == nil {
		return
	}
	if b.ChurnDriver != nil {
		b.ChurnDriver.Stop()
	}
	if b.Net != nil {
		b.Net.Close()
	}
}

// bestConnected returns the live node with the most peers (ties to the
// lowest ID for determinism).
func bestConnected(net *p2p.Network) p2p.NodeID {
	var best p2p.NodeID
	bestN := -1
	for _, id := range net.NodeIDs() {
		node, ok := net.Node(id)
		if !ok {
			continue
		}
		if n := node.NumPeers(); n > bestN {
			best, bestN = id, n
		}
	}
	return best
}

// forceDegree adjusts the measuring node's connection count to exactly k,
// adding protocol-appropriate extra links or dropping excess ones. The
// protocol's refill hook is suspended for the duration — this is
// measurement instrumentation, not protocol behaviour.
func forceDegree(net *p2p.Network, b *Built, id p2p.NodeID, k int) error {
	node, ok := net.Node(id)
	if !ok {
		return errors.New("experiment: measuring node vanished")
	}
	prevHook := net.OnDisconnect
	net.OnDisconnect = nil
	defer func() { net.OnDisconnect = prevHook }()

	// Drop excess (shedding the highest IDs first, deterministically).
	for node.NumPeers() > k {
		peers := node.Peers()
		net.Disconnect(id, peers[len(peers)-1])
	}
	if node.NumPeers() == k {
		return nil
	}
	// Add connections, bypassing outbound caps: the paper's Fig. 2
	// instrument observes n connections regardless of client policy.
	// Under BCBPT, m's connections are "proximity based" — the k
	// latency-nearest nodes, as the protocol's own measurement would
	// have selected. Under the baselines, m's extra connections are
	// uniformly random, matching vanilla neighbour selection.
	if b.BCBPT != nil {
		type cand struct {
			id  p2p.NodeID
			rtt time.Duration
		}
		var cands []cand
		for _, other := range net.NodeIDs() {
			if other == id {
				continue
			}
			if rtt, ok := net.BaseRTT(id, other); ok {
				cands = append(cands, cand{id: other, rtt: rtt})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].rtt != cands[j].rtt {
				return cands[i].rtt < cands[j].rtt
			}
			return cands[i].id < cands[j].id
		})
		for _, c := range cands {
			if node.NumPeers() >= k {
				break
			}
			_ = net.ConnectUnbounded(id, c.id)
		}
	} else {
		all := net.NodeIDs()
		r := rand.New(rand.NewSource(int64(id) * 7919))
		attempts := 0
		for node.NumPeers() < k && attempts < 200*k {
			attempts++
			target := all[r.Intn(len(all))]
			if target == id {
				continue
			}
			_ = net.ConnectUnbounded(id, target)
		}
	}
	if node.NumPeers() != k {
		return fmt.Errorf("experiment: could not force degree %d (got %d)", k, node.NumPeers())
	}
	return nil
}

// defaultChurn returns a churn model whose arrival rate balances the
// expected departure rate for a network of n nodes, so the population
// stays roughly stable across the measurement window (the paper keeps the
// simulated size matched to the measured real-network size).
func defaultChurn(n int) churn.Model {
	m := churn.Default()
	// Weibull(scale, k=0.6) has mean scale*Gamma(1+1/0.6) ≈ 1.50*scale.
	meanSession := 1.5 * float64(m.SessionScale)
	departRate := float64(n) / meanSession // departures per ns
	if departRate > 0 {
		m.MeanArrival = time.Duration(1 / departRate)
	}
	return m
}

// txFactory builds distinct dummy transactions for measurement runs.
// In Light/None validation modes the content is irrelevant; IDs must be
// unique so runs are independent.
func txFactory(seed int64) func(i int) *chain.Tx {
	key, err := chain.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("experiment: keygen: %v", err)) // P-256 keygen from a live reader cannot fail
	}
	return func(i int) *chain.Tx {
		return chain.Coinbase(uint64(i)+1, chain.Amount(seed%1000+1), key.Address())
	}
}

// Campaign runs the standard measurement campaign against a built
// network and returns the pooled Δt distribution.
func (b *Built) Campaign(runs int, deadline time.Duration) (measure.CampaignResult, error) {
	return b.CampaignContext(context.Background(), runs, deadline)
}

// CampaignContext is Campaign with cooperative cancellation: the campaign
// stops between injections once ctx is done, returning the partial result
// together with an error wrapping ctx.Err(). Samples pool exactly.
func (b *Built) CampaignContext(ctx context.Context, runs int, deadline time.Duration) (measure.CampaignResult, error) {
	return b.campaignContext(ctx, runs, deadline, false)
}

// CampaignStreaming is CampaignContext on the bounded-memory measurement
// path: samples fold into a fixed-size sketch as each run completes and
// per-run results are not retained, so a replication's footprint is
// O(sketch buckets) instead of O(runs × connections). Use for paper-scale
// sweeps; the exact path remains the default for tests and analyses that
// need raw samples.
func (b *Built) CampaignStreaming(ctx context.Context, runs int, deadline time.Duration) (measure.CampaignResult, error) {
	return b.campaignContext(ctx, runs, deadline, true)
}

func (b *Built) campaignContext(ctx context.Context, runs int, deadline time.Duration, streaming bool) (measure.CampaignResult, error) {
	return b.Measurer.RunContext(ctx, measure.Campaign{
		Runs:      runs,
		Deadline:  deadline,
		MakeTx:    txFactory(1000),
		Streaming: streaming,
	})
}
