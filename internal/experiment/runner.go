// The campaign engine: the paper's evaluation is built from repeated
// measuring-node campaigns over independently seeded networks — work that
// is embarrassingly parallel. Runner fans those replications out across a
// bounded worker pool while keeping results bit-identical regardless of
// worker count or completion order:
//
//   - every unit of work (one replication of one campaign) is
//     self-contained: it builds its own network from a seed derived with
//     sim.DeriveSeed, so no randomness is shared across goroutines;
//   - results land in pre-indexed slots and merge in replication order,
//     so scheduling never influences the aggregate;
//   - cancellation is cooperative: workers stop picking up units and
//     campaigns stop between injections, returning partial results with
//     an error wrapping ErrPartialResult and ctx.Err().
package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// ErrPartialResult marks a sweep that was cancelled mid-flight: the
// returned outcomes carry only the replications that completed.
var ErrPartialResult = errors.New("experiment: partial campaign results")

// CampaignSpec describes one campaign of a sweep: a network Spec measured
// over Replications independently seeded builds of Runs injections each,
// pooled into a single result. It serializes with encoding/json (the
// fleet wire form; see Spec).
type CampaignSpec struct {
	// Name labels the campaign in outcomes (series name in figures).
	Name string `json:"name"`
	// Spec is the network build; Spec.Seed roots replication 0 and seeds
	// the derivation chain for the rest.
	Spec Spec `json:"spec"`
	// Replications is the number of independently seeded networks
	// (default 1). Samples pool across replications.
	Replications int `json:"replications,omitempty"`
	// Runs is the number of measurement injections per replication
	// (default 200, as Options).
	Runs int `json:"runs,omitempty"`
	// Deadline bounds each injection in virtual time (default 2 minutes).
	Deadline time.Duration `json:"deadline,omitempty"`
	// Streaming pools each replication's samples into a bounded-memory
	// sketch instead of retaining them all (see measure.Campaign.Streaming
	// and StreamingDistribution). Shard results and their merge stay
	// deterministic and order-independent; per-run results are dropped.
	Streaming bool `json:"streaming,omitempty"`
	// Trace, when non-empty, exports a sim-time event trace of this
	// campaign's replication 0 — one canonical trace per campaign, not
	// one per replication racing for the same file — as Chrome
	// trace_event JSON at this path plus a compact binary spool at
	// path+".bin". Tracing is purely observational (the golden-CSV tests
	// pin byte-identical results with it on), so like Name it is excluded
	// from Fingerprint.
	Trace string `json:"trace,omitempty"`
}

// WithDefaults returns the spec with the engine's defaults filled in —
// the canonical form sweep frontends (the fleet coordinator) normalise to
// before expanding units, so coordinator and workers agree on replication
// counts and fingerprints.
func (c CampaignSpec) WithDefaults() CampaignSpec { return c.withDefaults() }

func (c CampaignSpec) withDefaults() CampaignSpec {
	if c.Replications <= 0 {
		c.Replications = 1
	}
	if c.Runs <= 0 {
		c.Runs = 200
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Minute
	}
	return c
}

// ReplicationSeed returns the root seed of replication i. Replication 0
// keeps the spec's own seed, so a single-replication campaign reproduces
// the serial Build+Campaign path exactly; later replications derive
// FNV-hashed seeds that are stable functions of (base seed, index).
func (c CampaignSpec) ReplicationSeed(i int) int64 {
	if i == 0 {
		return c.Spec.Seed
	}
	return sim.DeriveSeed(c.Spec.Seed, fmt.Sprintf("replication/%d", i))
}

// Fingerprint returns a stable hash identifying the experiment this
// campaign defines: an FNV-64a of the canonical JSON of the defaulted
// spec, with the fields that cannot influence results excluded — Name (a
// display label), Trace (an observational export path), and the
// host-parallelism knobs Spec.BuildWorkers and Spec.SimWorkers, both
// bit-identical for every value. Spec.BaseUTXO is excluded too (it does
// not serialize); fleet sweeps reject it via CheckShippable.
//
// The campaign engine stamps every shard result with this fingerprint and
// measure.MergeCampaignResults refuses to blend shards whose fingerprints
// differ, so results from different experiments — a different seed, node
// count, threshold, anything — can never silently pool. Never zero.
func (c CampaignSpec) Fingerprint() uint64 {
	c = c.withDefaults()
	c.Name = ""
	c.Trace = ""
	c.Spec.BuildWorkers = 0
	c.Spec.SimWorkers = 0
	data, err := json.Marshal(c)
	if err != nil {
		// Every serializable field is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("experiment: fingerprint marshal: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	v := h.Sum64()
	if v == 0 {
		v = 1 // zero means "unstamped"
	}
	return v
}

// CheckShippable reports whether the campaign can be serialized for a
// fleet worker without losing anything. The one non-wire field is
// Spec.BaseUTXO: full-validation campaigns with a seeded ledger must run
// on a single machine.
func (c CampaignSpec) CheckShippable() error {
	if c.Spec.BaseUTXO != nil {
		return fmt.Errorf("experiment: campaign %q sets Spec.BaseUTXO, which does not serialize; run it locally", c.Name)
	}
	return nil
}

// CampaignOutcome is one campaign's merged result.
type CampaignOutcome struct {
	// Name echoes CampaignSpec.Name.
	Name string
	// Result pools every completed replication, merged in replication
	// order.
	Result measure.CampaignResult
	// Replications counts the replications that completed (equals the
	// spec's Replications unless the sweep was cancelled).
	Replications int
}

// Runner executes campaign sweeps on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives per-unit telemetry as the sweep
	// runs: completed-unit counters, build/run duration histograms (when
	// Clock is set), and the p2p traffic counters folded post-run via
	// Stats.AddToRegistry. Construct it with NewMetricsRegistry so
	// histograms have a sketch backend. Purely observational: the merged
	// campaign results are bit-identical with or without it.
	Metrics *obs.Registry
	// Clock supplies wall-clock nanoseconds for unit timings. It is
	// injected because experiment is a deterministic package (bcbpt-lint
	// detrand bans time.Now here); non-deterministic frontends pass e.g.
	// a time.Now().UnixNano wrapper. nil leaves timings zero.
	Clock func() int64
}

// NewMetricsRegistry returns a registry whose histograms are backed by
// measure.StreamingDistribution sketches — the standard backend for
// Runner.Metrics and the fleet coordinator.
func NewMetricsRegistry() *obs.Registry {
	return obs.NewRegistry(func() obs.Sketch { return measure.NewStreamingDistribution() })
}

// NewRunner returns a Runner with the given worker bound (<= 0 for
// GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workerCount() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// Each runs fn(ctx, i) for every i in [0, n) on up to Workers goroutines.
// Units are handed out in index order; once ctx is cancelled no new unit
// starts. Each returns only after every started unit has returned. fn is
// responsible for recording its own results and errors (into per-index
// slots — Each provides no synchronisation beyond the completion barrier).
func (r *Runner) Each(ctx context.Context, n int, fn func(ctx context.Context, i int)) {
	if n <= 0 {
		return
	}
	workers := r.workerCount()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutine or channel overhead.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(ctx, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(ctx, i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Check ctx before offering the unit: when both a worker and
		// cancellation are ready the select below picks randomly, and an
		// already-cancelled pool must not start new work.
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
}

// unitRef addresses one replication of one campaign in a sweep.
type unitRef struct {
	campaign    int
	replication int
}

// UnitObservation is the non-result telemetry of one unit run: wall
// timings (zero unless a clock was supplied) and the unit network's
// cumulative traffic counters, snapshotted before the network closes.
type UnitObservation struct {
	// BuildNanos is the wall time of the network build; RunNanos the
	// wall time of the measurement campaign.
	BuildNanos int64
	RunNanos   int64
	// Stats is the unit's total p2p traffic (bootstrap + measurement).
	Stats p2p.Stats
	// Profile carries the unit's PDES window timings when the unit ran
	// parallel dispatch (Spec.SimWorkers > 1) and a clock was supplied;
	// nil otherwise.
	Profile *sim.WindowProfile
}

// RunUnit executes one self-contained unit of a sweep — replication rep
// of campaign cs — and returns its shard result, stamped with the
// campaign's fingerprint. This is the single execution path shared by the
// local Runner.Sweep and the fleet worker: a unit derives every bit of
// randomness from its replication seed, so running it twice — or on two
// different machines — produces bit-identical results, which is what
// makes lease reassignment after a worker failure idempotent.
func RunUnit(ctx context.Context, cs CampaignSpec, rep int) (measure.CampaignResult, error) {
	res, _, err := RunUnitObserved(ctx, cs, rep, nil)
	return res, err
}

// RunUnitObserved is RunUnit plus telemetry: wall timings via the
// injected clock (nil leaves them zero — experiment itself may not read
// the wall clock), the unit's traffic counters, and — when the campaign
// names a Trace path and rep is 0 — a sim-time event trace exported as
// trace_event JSON at cs.Trace and a binary spool at cs.Trace+".bin".
// The observation is returned even on error so callers can count the
// wall time a failed unit burned.
func RunUnitObserved(ctx context.Context, cs CampaignSpec, rep int, clock func() int64) (measure.CampaignResult, UnitObservation, error) {
	var uo UnitObservation
	cs = cs.withDefaults()
	if rep < 0 || rep >= cs.Replications {
		return measure.CampaignResult{}, uo, fmt.Errorf("experiment: replication %d outside [0, %d)", rep, cs.Replications)
	}
	spec := cs.Spec
	spec.Seed = cs.ReplicationSeed(rep)
	var t0 int64
	if clock != nil {
		t0 = clock()
	}
	b, err := Build(ctx, spec)
	if clock != nil {
		uo.BuildNanos = clock() - t0
	}
	if err != nil {
		return measure.CampaignResult{}, uo, fmt.Errorf("experiment: build %s replication %d: %w", cs.Name, rep, err)
	}
	defer b.Close()
	var tracer *obs.Tracer
	if cs.Trace != "" && rep == 0 {
		tracer = obs.NewTracer(obs.DefaultShardEvents, 1)
		b.Net.EnableTrace(tracer)
		b.Measurer.Trace = tracer.Shard(0)
	}
	if clock != nil {
		// Profiling costs two clock reads per window and nothing when the
		// unit dispatches serially (EnableWindowProfile returns nil).
		uo.Profile = b.Net.EnableWindowProfile(clock)
	}
	if clock != nil {
		t0 = clock()
	}
	res, err := b.campaignContext(ctx, cs.Runs, cs.Deadline, cs.Streaming)
	if clock != nil {
		uo.RunNanos = clock() - t0
	}
	uo.Stats = b.Net.Stats()
	if err != nil {
		return measure.CampaignResult{}, uo, fmt.Errorf("experiment: campaign %s replication %d: %w", cs.Name, rep, err)
	}
	if tracer != nil {
		if err := exportTrace(tracer, cs.Trace); err != nil {
			return measure.CampaignResult{}, uo, fmt.Errorf("experiment: campaign %s: %w", cs.Name, err)
		}
	}
	res.Fingerprint = cs.Fingerprint()
	return res, uo, nil
}

// exportTrace writes the tracer's merged stream as trace_event JSON at
// path and as a binary spool at path+".bin".
func exportTrace(tr *obs.Tracer, path string) error {
	jf, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	if err := tr.WriteTraceJSON(jf); err != nil {
		jf.Close()
		return fmt.Errorf("trace export %s: %w", path, err)
	}
	if err := jf.Close(); err != nil {
		return fmt.Errorf("trace export %s: %w", path, err)
	}
	sf, err := os.Create(path + ".bin")
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	if err := tr.WriteSpool(sf); err != nil {
		sf.Close()
		return fmt.Errorf("trace export %s.bin: %w", path, err)
	}
	return sf.Close()
}

// observeUnit folds one unit's telemetry into the runner's registry.
// Counter and histogram handles are concurrency-safe, so sweep workers
// fold directly.
func (r *Runner) observeUnit(uo UnitObservation, failed bool) {
	if r == nil || r.Metrics == nil {
		return
	}
	if failed {
		r.Metrics.Counter("bcbpt_sweep_units_failed_total").Inc()
	} else {
		r.Metrics.Counter("bcbpt_sweep_units_completed_total").Inc()
	}
	uo.Stats.AddToRegistry(r.Metrics)
	if r.Clock != nil {
		r.Metrics.Histogram("bcbpt_sweep_unit_build_seconds").Observe(time.Duration(uo.BuildNanos))
		r.Metrics.Histogram("bcbpt_sweep_unit_run_seconds").Observe(time.Duration(uo.RunNanos))
	}
	if p := uo.Profile; p != nil {
		r.Metrics.Counter("bcbpt_pdes_windows_total").Add(p.Windows)
		r.Metrics.Counter("bcbpt_pdes_staged_events_total").Add(p.StagedEvents)
		r.Metrics.Counter("bcbpt_pdes_busy_nanos_total").Add(uint64(p.BusyNanos()))
		r.Metrics.Counter("bcbpt_pdes_barrier_wait_nanos_total").Add(uint64(p.BarrierWaitNanos()))
		for i, busy := range p.PartBusyNanos {
			r.Metrics.Counter(fmt.Sprintf(`bcbpt_pdes_partition_busy_nanos_total{partition="%d"}`, i)).Add(uint64(busy))
		}
	}
}

// isCancellation reports whether err is a context cancellation rather
// than a real unit failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runUnits executes n self-contained units on the pool with fail-fast
// semantics: the first real (non-cancellation) failure cancels the
// remaining units so a bad spec does not burn the rest of the sweep's
// wall-clock. It reports which units completed and the lowest-indexed
// real failure among the units that ran (nil if none).
//
// Every dispatched unit runs fn even if fail-fast cancellation has
// already fired — fn's own ctx polling keeps that cheap (a cancelled
// build aborts at its first phase) and it is what makes the reported
// failure stable across worker counts: units are handed out in index
// order, so every unit below the failing one has been dispatched and
// gets to record its own real error (a spec that fails validation fails
// identically however the pool is scheduled) rather than a scheduling-
// dependent "cancelled before start". Without this, two replications of
// one bad spec could race to be the reported failure.
func (r *Runner) runUnits(ctx context.Context, n int, fn func(ctx context.Context, i int) error) ([]bool, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	completed := make([]bool, n)
	errs := make([]error, n)
	r.Each(runCtx, n, func(ctx context.Context, i int) {
		if err := fn(ctx, i); err != nil {
			errs[i] = err
			if !isCancellation(err) {
				cancel()
			}
			return
		}
		completed[i] = true
	})
	for i, err := range errs {
		if err != nil && !isCancellation(err) {
			return completed, fmt.Errorf("unit %d/%d: %w", i+1, n, err)
		}
	}
	return completed, nil
}

// partialError wraps ctx.Err() in ErrPartialResult when work is missing;
// a cancellation that fired after the last unit finished is not partial.
func partialError(ctx context.Context, allDone bool) error {
	if err := ctx.Err(); err != nil && !allDone {
		return fmt.Errorf("%w: %w", ErrPartialResult, err)
	}
	return nil
}

// Sweep schedules every replication of every campaign as one flat work
// queue — N specs × M replications saturate the pool with no per-spec
// barriers — and merges each campaign's shards in replication order.
//
// Determinism: for a fixed set of specs the returned outcomes are
// bit-identical for any worker count, because every unit derives all of
// its randomness from its own replication seed and merging ignores
// completion order.
//
// On cancellation Sweep returns the outcomes merged from the completed
// replications plus an error wrapping ErrPartialResult and ctx.Err(). A
// real unit failure cancels the remaining units (fail fast) and returns
// the lowest-indexed failure alongside the outcomes completed so far.
func (r *Runner) Sweep(ctx context.Context, campaigns []CampaignSpec) ([]CampaignOutcome, error) {
	specs := make([]CampaignSpec, len(campaigns))
	var units []unitRef
	for ci := range campaigns {
		specs[ci] = campaigns[ci].withDefaults()
		for rep := 0; rep < specs[ci].Replications; rep++ {
			units = append(units, unitRef{campaign: ci, replication: rep})
		}
	}

	results := make([]measure.CampaignResult, len(units))
	completed, unitErr := r.runUnits(ctx, len(units), func(ctx context.Context, i int) error {
		u := units[i]
		res, uo, err := RunUnitObserved(ctx, specs[u.campaign], u.replication, r.Clock)
		r.observeUnit(uo, err != nil)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})

	out := make([]CampaignOutcome, len(campaigns))
	allDone := true
	base := 0
	for ci := range specs {
		shards := make([]measure.CampaignResult, 0, specs[ci].Replications)
		for rep := 0; rep < specs[ci].Replications; rep++ {
			if completed[base+rep] {
				shards = append(shards, results[base+rep])
			} else {
				allDone = false
			}
		}
		base += specs[ci].Replications
		merged, err := measure.MergeCampaignResults(shards...)
		if err != nil {
			// Unreachable from this path — every shard of a campaign is
			// stamped with the same fingerprint — but a corrupted shard
			// must fail loudly, not pool.
			return nil, fmt.Errorf("experiment: merge campaign %s: %w", specs[ci].Name, err)
		}
		out[ci] = CampaignOutcome{
			Name:         specs[ci].Name,
			Result:       merged,
			Replications: len(shards),
		}
	}
	if unitErr != nil {
		return out, unitErr
	}
	// Partiality is a fact about the slots, not the context: a timeout
	// that fires after the last unit finished delivered complete results.
	return out, partialError(ctx, allDone)
}

// RunCampaign runs a single campaign through the engine: its replications
// fan out across the pool and merge into one result.
func (r *Runner) RunCampaign(ctx context.Context, cs CampaignSpec) (measure.CampaignResult, error) {
	out, err := r.Sweep(ctx, []CampaignSpec{cs})
	if len(out) == 1 {
		return out[0].Result, err
	}
	return measure.CampaignResult{}, err
}
