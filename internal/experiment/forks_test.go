package experiment

import (
	"context"
	"testing"
	"time"
)

func TestForkRaceValidation(t *testing.T) {
	if _, err := ForkRace(context.Background(), ForkSpec{Nodes: 50, Miners: 1, Blocks: 5}); err == nil {
		t.Error("accepted one miner")
	}
	if _, err := ForkRace(context.Background(), ForkSpec{Nodes: 50, Miners: 3, Blocks: 0}); err == nil {
		t.Error("accepted zero blocks")
	}
}

func TestForkRaceBasics(t *testing.T) {
	res, err := ForkRace(context.Background(), ForkSpec{
		Nodes:         60,
		Seed:          31,
		Protocol:      ProtoBitcoin,
		Miners:        8,
		Blocks:        30,
		BlockInterval: 2 * time.Second,
		BlockTxs:      20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 30 {
		t.Errorf("blocks = %d, want 30", res.Blocks)
	}
	if res.ForkRate < 0 || res.ForkRate > 1 {
		t.Errorf("fork rate %v out of range", res.ForkRate)
	}
	if res.Coverage90.N() == 0 {
		t.Error("no coverage samples; blocks did not propagate")
	}
	if res.Coverage90.Median() <= 0 {
		t.Error("non-positive coverage time")
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestForkRateRisesWithShorterInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-race experiment")
	}
	// Decker-Wattenhofer: fork probability grows as the block interval
	// approaches the propagation delay.
	rate := func(interval time.Duration) float64 {
		res, err := ForkRace(context.Background(), ForkSpec{
			Nodes:         80,
			Seed:          32,
			Protocol:      ProtoBitcoin,
			Miners:        10,
			Blocks:        60,
			BlockInterval: interval,
			BlockTxs:      50,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("interval %v: %s", interval, res)
		return res.ForkRate
	}
	fast := rate(300 * time.Millisecond)
	slow := rate(20 * time.Second)
	if fast <= slow {
		t.Errorf("fork rate at 300ms interval (%.3f) <= at 20s (%.3f)", fast, slow)
	}
	if slow > 0.1 {
		t.Errorf("fork rate %.3f at 20s interval; propagation too slow", slow)
	}
}

func TestForkRateLongLinkTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network experiment")
	}
	// Finding recorded in EXPERIMENTS.md: BCBPT optimises neighbourhood
	// delivery (the paper's Δt metric) but its clustered overlay has a
	// larger hop diameter, so WHOLE-NETWORK block coverage regresses at
	// the default long-link budget (2) and recovers with a larger one.
	// This test pins both halves of that finding.
	run := func(longLinks int) time.Duration {
		cfg := fastBCBPT(100 * time.Millisecond)
		cfg.LongLinks = longLinks
		cfg.IntraLinks = 6
		res, err := ForkRace(context.Background(), ForkSpec{
			Nodes:         100,
			Seed:          33,
			Protocol:      ProtoBCBPT,
			BCBPT:         cfg,
			Miners:        12,
			Blocks:        60,
			BlockInterval: 500 * time.Millisecond,
			BlockTxs:      5,
		})
		if err != nil {
			t.Fatalf("longLinks=%d: %v", longLinks, err)
		}
		t.Logf("longLinks=%d %s", longLinks, res)
		return res.Coverage90.Median()
	}
	sparse := run(1)
	dense := run(4)
	if dense >= sparse {
		t.Errorf("coverage with 4 long links (%v) not faster than with 1 (%v)", dense, sparse)
	}
}
