package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// The double-spend experiment quantifies the paper's motivation (§I, §III):
// "this issue can be avoided if transactions are propagated quickly enough
// through the network ... reducing the probability of performing a
// successful double spending attack" (paper's ref [4]).
//
// Setup: the attacker owns an unspent output and crafts two conflicting
// transactions — txV paying the victim (a zero-confirmation merchant) and
// txA paying itself. txV is handed to the victim's node; txA is injected
// at the topologically farthest node, offset seconds later. Every node
// runs full mempool validation, so each keeps whichever transaction
// arrived first (ErrMempoolConflict rejects the loser). When the race
// settles, the attacker has "won" a node if that node holds txA; the
// attack succeeds overall if the majority of the network (the miners)
// holds txA while the victim still sees txV.
//
// Faster propagation shrinks the window: the attacker's share should fall
// off more steeply with offset under BCBPT than under vanilla Bitcoin.

// DoubleSpendSpec parameterises the race.
type DoubleSpendSpec struct {
	// Nodes, Seed: network build parameters.
	Nodes int
	Seed  int64
	// Protocol selects neighbour selection.
	Protocol ProtocolKind
	// BCBPT configures BCBPT when selected.
	BCBPT core.Config
	// Offsets are the head starts given to the victim transaction.
	Offsets []time.Duration
	// Trials per offset (distinct funded outputs each).
	Trials int
	// Deadline bounds each race in virtual time.
	Deadline time.Duration
}

// DoubleSpendPoint is the outcome at one offset.
type DoubleSpendPoint struct {
	Offset time.Duration
	// AttackerShare is the mean fraction of nodes holding txA when the
	// race settles.
	AttackerShare float64
	// Success is the fraction of trials where the majority held txA
	// while the victim node held txV (the merchant is deceived).
	Success float64
}

// DoubleSpendResult is the sweep outcome for one protocol.
type DoubleSpendResult struct {
	Protocol string
	Points   []DoubleSpendPoint
}

// String renders the sweep as a table.
func (r DoubleSpendResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %15s %10s\n", "protocol", "offset", "attackerShare", "success")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %12v %15.3f %10.2f\n", r.Protocol, p.Offset, p.AttackerShare, p.Success)
	}
	return b.String()
}

// DoubleSpend runs the race sweep for one protocol. ctx cancels the
// network build; the race itself runs to completion once built.
func DoubleSpend(ctx context.Context, spec DoubleSpendSpec) (DoubleSpendResult, error) {
	if spec.Trials <= 0 {
		spec.Trials = 5
	}
	if len(spec.Offsets) == 0 {
		spec.Offsets = []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond, time.Second}
	}
	if spec.Deadline <= 0 {
		spec.Deadline = 2 * time.Minute
	}

	// Fund the attacker: one coinbase output per (offset, trial).
	attacker, err := chain.GenerateKey(rand.New(rand.NewSource(spec.Seed + 5000)))
	if err != nil {
		return DoubleSpendResult{}, err
	}
	victim, err := chain.GenerateKey(rand.New(rand.NewSource(spec.Seed + 5001)))
	if err != nil {
		return DoubleSpendResult{}, err
	}
	need := len(spec.Offsets) * spec.Trials
	base := chain.NewUTXOSet()
	outpoints := make([]chain.Outpoint, 0, need)
	for i := 0; i < need; i++ {
		cb := chain.Coinbase(uint64(i)+1, 100_000, attacker.Address())
		if err := base.AddCoinbase(cb); err != nil {
			return DoubleSpendResult{}, err
		}
		outpoints = append(outpoints, chain.Outpoint{TxID: cb.ID(), Index: 0})
	}

	built, err := Build(ctx, Spec{
		Nodes:      spec.Nodes,
		Seed:       spec.Seed,
		Protocol:   spec.Protocol,
		BCBPT:      spec.BCBPT,
		Validation: p2p.ValidationFull,
		BaseUTXO:   base,
	})
	if err != nil {
		return DoubleSpendResult{}, err
	}
	net := built.Net
	victimID := built.Measurer.ID()
	attackerID := farthestFrom(net, victimID)

	res := DoubleSpendResult{Protocol: string(spec.Protocol)}
	idx := 0
	for _, offset := range spec.Offsets {
		var shareSum, successSum float64
		for trial := 0; trial < spec.Trials; trial++ {
			op := outpoints[idx]
			idx++
			share, deceived, err := raceOnce(net, victimID, attackerID, attacker, victim, op, offset, spec.Deadline)
			if err != nil {
				return DoubleSpendResult{}, fmt.Errorf("experiment: race offset %v trial %d: %w", offset, trial, err)
			}
			shareSum += share
			if deceived {
				successSum++
			}
		}
		res.Points = append(res.Points, DoubleSpendPoint{
			Offset:        offset,
			AttackerShare: shareSum / float64(spec.Trials),
			Success:       successSum / float64(spec.Trials),
		})
	}
	return res, nil
}

// raceOnce runs one double-spend race and reports the attacker's node
// share and whether the victim was deceived.
func raceOnce(net *p2p.Network, victimID, attackerID p2p.NodeID,
	attacker, victim *chain.KeyPair, op chain.Outpoint,
	offset, deadline time.Duration) (share float64, deceived bool, err error) {

	net.ResetInventory()

	txV := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{PrevOut: op}},
		Outputs: []chain.TxOut{{Value: 99_000, To: victim.Address()}},
	}
	if err := txV.SignAllInputs([]*chain.KeyPair{attacker}); err != nil {
		return 0, false, err
	}
	txA := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{PrevOut: op}},
		Outputs: []chain.TxOut{{Value: 99_000, To: attacker.Address()}},
	}
	if err := txA.SignAllInputs([]*chain.KeyPair{attacker}); err != nil {
		return 0, false, err
	}

	vNode, ok := net.Node(victimID)
	if !ok {
		return 0, false, errors.New("victim node gone")
	}
	aNode, ok := net.Node(attackerID)
	if !ok {
		return 0, false, errors.New("attacker node gone")
	}
	start := net.Now()
	net.Scheduler().After(0, func() { _ = vNode.SubmitTx(txV) })
	net.Scheduler().After(offset, func() { _ = aNode.SubmitTx(txA) })
	if err := net.RunUntil(context.Background(), start+sim.Time(deadline)); err != nil {
		return 0, false, err
	}

	var holdA, holdV int
	for _, id := range net.NodeIDs() {
		node, ok := net.Node(id)
		if !ok {
			continue
		}
		_, hasA := node.FirstSeen(txA.ID())
		_, hasV := node.FirstSeen(txV.ID())
		switch {
		case hasA && !hasV:
			holdA++
		case hasV && !hasA:
			holdV++
		case hasA && hasV:
			// Both seen: mempool conflict resolution kept the first;
			// FirstSeen tracks acceptance, so this cannot happen under
			// full validation — count as attacker reach anyway.
			holdA++
		}
	}
	total := holdA + holdV
	if total == 0 {
		return 0, false, errors.New("race produced no holders")
	}
	share = float64(holdA) / float64(total)
	_, victimSawV := vNode.FirstSeen(txV.ID())
	deceived = victimSawV && holdA > holdV
	return share, deceived, nil
}

// farthestFrom returns the live node with the largest base RTT from ref.
func farthestFrom(net *p2p.Network, ref p2p.NodeID) p2p.NodeID {
	ids := net.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var best p2p.NodeID
	var bestRTT time.Duration = -1
	for _, id := range ids {
		if id == ref {
			continue
		}
		rtt, ok := net.BaseRTT(ref, id)
		if !ok {
			continue
		}
		if rtt > bestRTT {
			best, bestRTT = id, rtt
		}
	}
	return best
}
