package experiment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestFigure3CSVGolden pins the figure3 smoke sweep (the fleetsmoke.sh
// parameters) byte-for-byte against a checked-in golden CSV. This is the
// end-to-end determinism contract: topology bootstrap, flood relay,
// measurement and CSV rendering must all be bit-stable — across code
// changes (the flat node layout was landed under this pin) and across
// toolchains (the CI oldstable matrix leg runs it too). If an
// intentional behaviour change moves the numbers, regenerate with:
//
//	go run ./cmd/bcbpt-sim -experiment figure3 -nodes 120 -runs 5 \
//	  -replications 2 -seed 1 -csv internal/experiment/testdata/figure3_smoke_golden.csv
func TestFigure3CSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep; skipped in -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "figure3_smoke_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure3Ctx(context.Background(), Options{
		Nodes:        120,
		Runs:         5,
		Replications: 2,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := fig.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("figure3 CSV diverged from golden (%d bytes vs %d): first differing region:\n%s",
			got.Len(), len(want), firstDiff(got.Bytes(), want))
	}
}

// TestFigure3CSVGoldenTraced re-runs the golden sweep with tracing
// enabled and demands the same bytes: tracing hooks observe the
// simulation, they may never perturb it. The exported trace pair is then
// sanity-checked (JSON non-empty, spool round-trips with events) so the
// test also pins that a traced sweep actually produces a trace.
func TestFigure3CSVGoldenTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep; skipped in -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "figure3_smoke_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(t.TempDir(), "trace.json")
	fig, err := Figure3Ctx(context.Background(), Options{
		Nodes:        120,
		Runs:         5,
		Replications: 2,
		Seed:         1,
		Trace:        trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := fig.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("traced figure3 CSV diverged from golden — tracing perturbed the simulation:\n%s",
			firstDiff(got.Bytes(), want))
	}
	jf, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace JSON not exported: %v", err)
	}
	if !bytes.Contains(jf, []byte(`"traceEvents":[{`)) {
		t.Fatal("trace JSON has no events")
	}
	sf, err := os.Open(trace + ".bin")
	if err != nil {
		t.Fatalf("trace spool not exported: %v", err)
	}
	defer sf.Close()
	events, err := obs.ReadSpool(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace spool has no events")
	}
}

// firstDiff renders a small window around the first byte difference.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := max(0, i-60)
	end := func(s []byte) int { return min(len(s), i+60) }
	return "got:  ..." + string(a[lo:end(a)]) + "...\nwant: ..." + string(b[lo:end(b)]) + "..."
}
