package experiment

import (
	"context"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps the full figure pipelines quick enough for unit tests.
func tinyOpts() Options {
	return Options{Nodes: 50, Runs: 5, Seed: 77, Deadline: 30 * time.Second}
}

func TestFigure3Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network pipeline")
	}
	fig, err := Figure3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	names := map[string]bool{}
	for _, s := range fig.Series {
		names[s.Name] = true
		if s.Dist.N() == 0 {
			t.Errorf("series %s has no samples", s.Name)
		}
	}
	for _, want := range []string{"bitcoin", "lbc", "bcbpt-25ms"} {
		if !names[want] {
			t.Errorf("missing series %s", want)
		}
	}
	out := fig.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "bitcoin") {
		t.Error("figure rendering incomplete")
	}
}

func TestFigure4Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network pipeline")
	}
	fig, err := Figure4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 thresholds", len(fig.Series))
	}
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Name, "bcbpt-") {
			t.Errorf("unexpected series name %s", s.Name)
		}
	}
}

func TestThresholdSweepCustom(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network pipeline")
	}
	fig, err := ThresholdSweep(tinyOpts(), []time.Duration{40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || fig.Series[0].Name != "bcbpt-40ms" {
		t.Fatalf("unexpected sweep series: %+v", fig.Series)
	}
}

func TestVarianceVsConnectionsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network pipeline")
	}
	o := tinyOpts()
	res, err := VarianceVsConnections(o, []int{6, 12})
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols x 2 connection counts.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Std < 0 || p.Mean <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	if !strings.Contains(res.String(), "connections") {
		t.Error("variance table rendering incomplete")
	}
}

func TestOverheadPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network pipeline")
	}
	res, err := Overhead(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	var bitcoin, bcbpt OverheadResult
	for _, r := range res {
		switch r.Protocol {
		case "bitcoin":
			bitcoin = r
		case "bcbpt":
			bcbpt = r
		}
	}
	if bcbpt.PingMsgs <= bitcoin.PingMsgs {
		t.Errorf("bcbpt pings %d <= bitcoin %d", bcbpt.PingMsgs, bitcoin.PingMsgs)
	}
	if bcbpt.PingMsgsPerNode <= 0 {
		t.Error("per-node ping rate missing")
	}
	if bcbpt.CampaignMsgs == 0 || bitcoin.CampaignMsgs == 0 {
		t.Error("campaign traffic not measured")
	}
}

func TestBuildRelayAndLossPlumbing(t *testing.T) {
	// Spec.Relay and Spec.LossProb must reach the p2p config.
	b, err := Build(context.Background(), Spec{Nodes: 10, Seed: 3, Protocol: ProtoBitcoin, LossProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Net.Config().LossProb; got != 0.1 {
		t.Errorf("LossProb = %v, want 0.1", got)
	}
	b, err = Build(context.Background(), Spec{Nodes: 10, Seed: 3, Protocol: ProtoBitcoin, Relay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Net.Config().Relay; got != 1 {
		t.Errorf("Relay = %v, want direct", got)
	}
}

func TestDefaultChurnBalances(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		m := defaultChurn(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Arrival rate should roughly equal departure rate n/meanSession.
		meanSession := 1.5 * float64(m.SessionScale)
		wantGap := time.Duration(meanSession / float64(n))
		ratio := float64(m.MeanArrival) / float64(wantGap)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("n=%d: arrival gap %v, want ~%v", n, m.MeanArrival, wantGap)
		}
	}
}
