package attack

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/topology"
)

// buildBCBPTWorld bootstraps a BCBPT network for attack analysis.
func buildBCBPTWorld(t testing.TB, n int, seed int64, dt time.Duration) (*p2p.Network, *core.BCBPT, []p2p.NodeID) {
	t.Helper()
	pcfg := p2p.DefaultConfig()
	pcfg.Validation = p2p.ValidationNone
	pcfg.Seed = seed
	net, err := p2p.NewNetwork(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("placement")
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = net.AddNode(placer.Place(r)).ID()
	}
	cfg := core.DefaultConfig()
	cfg.Threshold = dt
	cfg.JoinStagger = 20 * time.Millisecond
	cfg.DecisionSlack = 500 * time.Millisecond
	proto, err := core.New(net, topology.NewDNSSeed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	if err := net.RunUntil(context.Background(), proto.BootstrapDeadline(n)); err != nil {
		t.Fatal(err)
	}
	return net, proto, ids
}

func TestEclipseValidation(t *testing.T) {
	net, proto, ids := buildBCBPTWorld(t, 30, 1, 25*time.Millisecond)
	if _, err := Eclipse(net, proto, ids[0], EclipseSpec{Adversaries: 0}); err == nil {
		t.Error("accepted zero adversaries")
	}
	if _, err := Eclipse(net, proto, 9999, EclipseSpec{Adversaries: 1}); err == nil {
		t.Error("accepted unknown victim")
	}
}

func TestEclipsePenetratesVictimCluster(t *testing.T) {
	net, proto, ids := buildBCBPTWorld(t, 80, 2, 25*time.Millisecond)
	victim := ids[0]
	res, err := Eclipse(net, proto, victim, EclipseSpec{
		Adversaries:  20,
		JitterMeters: 5_000,
		SettleTime:   5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("eclipse: %s", res)
	if res.AdversariesInCluster == 0 {
		t.Error("no adversaries penetrated the victim cluster despite co-location")
	}
	if res.TotalPeers == 0 {
		t.Error("victim has no connections after turnover")
	}
	if res.AdversarialPeers == 0 {
		t.Error("victim has no adversarial connections despite a flooded cluster")
	}
	if res.Fraction() < 0 || res.Fraction() > 1 {
		t.Errorf("Fraction = %v out of range", res.Fraction())
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestEclipseExposureGrowsWithBudget(t *testing.T) {
	// §V.C: concentrating more bad peers in a small cluster raises the
	// chance the victim selects them.
	frac := func(budget int) float64 {
		net, proto, ids := buildBCBPTWorld(t, 60, 3, 25*time.Millisecond)
		res, err := Eclipse(net, proto, ids[0], EclipseSpec{
			Adversaries:  budget,
			JitterMeters: 5_000,
			SettleTime:   5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fraction()
	}
	small := frac(2)
	large := frac(40)
	t.Logf("bad fraction: budget=2 -> %.2f, budget=40 -> %.2f", small, large)
	if large <= small {
		t.Errorf("exposure did not grow with budget: %.2f -> %.2f", small, large)
	}
}

func TestPartitionAnalysis(t *testing.T) {
	net, proto, _ := buildBCBPTWorld(t, 100, 4, 25*time.Millisecond)
	res, err := Partition(net, proto)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partition: %s", res)
	if res.Clusters < 2 {
		t.Skip("single cluster; nothing to partition")
	}
	if res.Isolated != 0 {
		t.Errorf("%d clusters already isolated; long links failed", res.Isolated)
	}
	if res.MinCut <= 0 {
		t.Errorf("MinCut = %d, want > 0", res.MinCut)
	}
	if res.MeanCut < float64(res.MinCut) {
		t.Errorf("MeanCut %.1f < MinCut %d", res.MeanCut, res.MinCut)
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestPartitionNoClusters(t *testing.T) {
	pcfg := p2p.DefaultConfig()
	pcfg.Validation = p2p.ValidationNone
	net, err := p2p.NewNetwork(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(net, topology.NewDNSSeed(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(net, proto); err == nil {
		t.Error("accepted empty network")
	}
}

func TestSweepTable(t *testing.T) {
	out := SweepTable([]SweepResult{
		{Adversaries: 2, Trials: 3, MeanBadFrac: 0.1, Eclipses: 0},
		{Adversaries: 20, Trials: 3, MeanBadFrac: 0.8, Eclipses: 2},
	})
	if out == "" {
		t.Error("empty table")
	}
}
