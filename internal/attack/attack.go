// Package attack evaluates the security implications the paper raises in
// §V.C and defers to future work: eclipse attacks ("an attacker [may]
// more easily launch eclipse attacks by concentrating its bad peers
// within a small cluster") and partition attacks ("partition attacks seem
// to have a great potential").
//
// Both analyses run against a bootstrapped network + clustering protocol
// and report structural exposure, not packet-level exploitation:
//
//   - Eclipse: the adversary places colluding nodes at the victim's
//     location; exposure is the fraction of the victim's connections that
//     end up adversarial, and the probability of total isolation.
//   - Partition: exposure is the inter-cluster edge cut — the number of
//     links an adversary must sever to split a cluster from the rest of
//     the network. Fewer long links (smaller dt, fewer LongLinks) mean a
//     cheaper partition.
package attack

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/p2p"
)

// EclipseSpec parameterises an eclipse trial.
type EclipseSpec struct {
	// Adversaries is how many malicious nodes join near the victim.
	Adversaries int
	// JitterMeters spreads adversary placement around the victim
	// (small: a hosting facility in the same metro).
	JitterMeters float64
	// SettleTime is virtual time allowed for the adversarial joins to
	// complete.
	SettleTime time.Duration
}

// EclipseResult reports one eclipse trial.
type EclipseResult struct {
	// Victim is the targeted node.
	Victim p2p.NodeID
	// VictimCluster is the victim's cluster after the attack.
	VictimCluster core.ClusterID
	// ClusterSize is the victim cluster's population (honest + bad).
	ClusterSize int
	// AdversariesInCluster counts attackers that penetrated the cluster.
	AdversariesInCluster int
	// AdversarialPeers counts the victim's connections to attackers.
	AdversarialPeers int
	// TotalPeers is the victim's connection count.
	TotalPeers int
	// Eclipsed is true when every victim connection is adversarial.
	Eclipsed bool
}

// Fraction returns the adversarial share of the victim's connections.
func (r EclipseResult) Fraction() float64 {
	if r.TotalPeers == 0 {
		return 0
	}
	return float64(r.AdversarialPeers) / float64(r.TotalPeers)
}

// String renders the trial outcome.
func (r EclipseResult) String() string {
	return fmt.Sprintf("victim=%d cluster=%d size=%d badInCluster=%d badPeers=%d/%d eclipsed=%v",
		r.Victim, r.VictimCluster, r.ClusterSize, r.AdversariesInCluster,
		r.AdversarialPeers, r.TotalPeers, r.Eclipsed)
}

// Eclipse runs one eclipse trial against a BCBPT network: adversaries
// join at the victim's coordinates (so their measured RTT to the victim's
// cluster is minimal) and then victim connectivity is re-examined after
// the victim is forced to refresh its links (modelling natural connection
// turnover the attacker can wait for, or induce).
func Eclipse(net *p2p.Network, proto *core.BCBPT, victim p2p.NodeID, spec EclipseSpec) (EclipseResult, error) {
	if spec.Adversaries <= 0 {
		return EclipseResult{}, errors.New("attack: need at least one adversary")
	}
	vNode, ok := net.Node(victim)
	if !ok {
		return EclipseResult{}, errors.New("attack: unknown victim")
	}
	if spec.SettleTime <= 0 {
		spec.SettleTime = 2 * time.Minute
	}
	vLoc := vNode.Location()
	r := net.Streams().Stream("attack/eclipse")

	bad := make(map[p2p.NodeID]bool, spec.Adversaries)
	for i := 0; i < spec.Adversaries; i++ {
		loc := geo.Location{
			Coord:   jitterCoord(vLoc.Coord, spec.JitterMeters, r.Float64(), r.Float64()),
			City:    vLoc.City,
			Country: vLoc.Country,
			Region:  vLoc.Region,
		}
		node := net.AddNode(loc)
		bad[node.ID()] = true
		proto.OnJoin(node.ID())
	}
	if err := net.RunUntil(context.Background(), net.Now()+spec.SettleTime); err != nil {
		return EclipseResult{}, err
	}

	// Connection turnover: the victim's links are dropped one by one and
	// the protocol refills them from the (now partly adversarial)
	// cluster. This models the eclipse end-game without packet forgery.
	prev := net.OnDisconnect
	net.OnDisconnect = proto.OnDisconnect
	for _, p := range vNode.Peers() {
		net.Disconnect(victim, p)
	}
	net.OnDisconnect = prev

	res := EclipseResult{Victim: victim}
	if c, ok := proto.ClusterOf(victim); ok {
		res.VictimCluster = c
		members := proto.Clusters()[c]
		res.ClusterSize = len(members)
		for _, m := range members {
			if bad[m] {
				res.AdversariesInCluster++
			}
		}
	}
	for _, p := range vNode.Peers() {
		res.TotalPeers++
		if bad[p] {
			res.AdversarialPeers++
		}
	}
	res.Eclipsed = res.TotalPeers > 0 && res.AdversarialPeers == res.TotalPeers
	return res, nil
}

// jitterCoord displaces a coordinate by up to radius meters using two
// uniform draws (kept dependency-free for the attack stream).
func jitterCoord(c geo.Coord, radius, u1, u2 float64) geo.Coord {
	if radius <= 0 {
		return c
	}
	// Square jitter is fine here; only the scale matters.
	dLat := (u1 - 0.5) * 2 * radius / geo.EarthRadiusMeters * 180 / 3.14159265
	dLon := (u2 - 0.5) * 2 * radius / geo.EarthRadiusMeters * 180 / 3.14159265
	out := geo.Coord{LatDeg: c.LatDeg + dLat, LonDeg: c.LonDeg + dLon}
	if !out.Valid() {
		return c
	}
	return out
}

// PartitionResult reports the structural partition exposure of a network.
type PartitionResult struct {
	// Clusters is the cluster count.
	Clusters int
	// MinCut is the smallest inter-cluster edge cut over all clusters:
	// the cheapest cluster for an adversary to sever.
	MinCut int
	// MinCutCluster is the cluster achieving MinCut.
	MinCutCluster core.ClusterID
	// MeanCut is the average inter-cluster edge count per cluster.
	MeanCut float64
	// Isolated counts clusters with zero outgoing links (already
	// partitioned — a protocol failure).
	Isolated int
}

// String renders the analysis.
func (r PartitionResult) String() string {
	return fmt.Sprintf("clusters=%d minCut=%d (cluster %d) meanCut=%.1f isolated=%d",
		r.Clusters, r.MinCut, r.MinCutCluster, r.MeanCut, r.Isolated)
}

// Partition analyses the inter-cluster cut structure of a BCBPT network.
func Partition(net *p2p.Network, proto *core.BCBPT) (PartitionResult, error) {
	clusters := proto.Clusters()
	if len(clusters) == 0 {
		return PartitionResult{}, errors.New("attack: no clusters")
	}
	cuts := make(map[core.ClusterID]int, len(clusters))
	for c, members := range clusters {
		for _, id := range members {
			node, ok := net.Node(id)
			if !ok {
				continue
			}
			for _, p := range node.Peers() {
				if pc, ok := proto.ClusterOf(p); ok && pc != c {
					cuts[c]++
				}
			}
		}
	}
	res := PartitionResult{Clusters: len(clusters), MinCut: 1 << 30}
	var total int
	ids := make([]core.ClusterID, 0, len(clusters))
	for c := range clusters {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, c := range ids {
		cut := cuts[c]
		total += cut
		if cut == 0 {
			res.Isolated++
		}
		if cut < res.MinCut {
			res.MinCut = cut
			res.MinCutCluster = c
		}
	}
	res.MeanCut = float64(total) / float64(len(clusters))
	return res, nil
}

// SweepResult is one row of an eclipse budget sweep.
type SweepResult struct {
	Adversaries int
	Trials      int
	MeanBadFrac float64
	Eclipses    int
}

// SweepTable renders sweep rows.
func SweepTable(rows []SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %8s %14s %10s\n", "adversaries", "trials", "meanBadFrac", "eclipses")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %8d %14.3f %10d\n", r.Adversaries, r.Trials, r.MeanBadFrac, r.Eclipses)
	}
	return b.String()
}
