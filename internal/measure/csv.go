package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCDFCSV writes named distributions as a long-format CSV with
// columns (series, fraction, delay_ms) — the file a plotting script needs
// to redraw Figs. 3 and 4.
func WriteCDFCSV(w io.Writer, names []string, dists []Distribution, points int) error {
	if len(names) != len(dists) {
		return fmt.Errorf("measure: %d names for %d distributions", len(names), len(dists))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "fraction", "delay_ms"}); err != nil {
		return err
	}
	for i, d := range dists {
		for _, p := range d.CDF(points) {
			rec := []string{
				names[i],
				strconv.FormatFloat(p.Fraction, 'f', 4, 64),
				strconv.FormatFloat(float64(p.Value)/float64(time.Millisecond), 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSamplesCSV writes the raw samples of one distribution, one value
// per row in milliseconds. Streaming distributions retain no raw samples
// and are rejected — export their CDF instead.
func WriteSamplesCSV(w io.Writer, name string, d Distribution) error {
	if d.Streaming() {
		return fmt.Errorf("measure: %s is sketch-backed and retains no samples; use WriteCDFCSV", name)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "delay_ms"}); err != nil {
		return err
	}
	for _, v := range d.sorted {
		rec := []string{name, strconv.FormatFloat(float64(v)/float64(time.Millisecond), 'f', 3, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
