// Package measure implements the paper's evaluation methodology (§V):
// the measuring node m that injects transactions and records Δt(m,n) for
// each of its connections (eq. 5), the distribution statistics the
// figures report, and a synthetic network crawler reproducing the
// ping/pong measurement campaign that parameterised the simulator.
package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Distribution summarises a sample of durations. It has two backing
// representations behind one API:
//
//   - exact: built with NewDistribution, retaining every (sorted) sample —
//     O(samples) memory, bit-exact statistics. The right choice for tests
//     and small campaigns, and the default everywhere.
//   - streaming: built with StreamingDistribution.Dist, retaining a fixed
//     log-bucket sketch — O(buckets) memory, ~1% value accuracy on
//     quantiles/std, exact N/mean/min/max. The choice for paper-scale
//     sweeps whose pooled samples would not fit in memory.
//
// Both kinds are immutable once built, merge deterministically and
// order-independently via MergeDistributions, and render identically
// through CDF/ASCIICDF/CSV. Use Streaming to tell them apart.
type Distribution struct {
	sorted []time.Duration
	mean   time.Duration
	std    time.Duration
	// sketch, when non-nil, backs the distribution instead of sorted.
	sketch *StreamingDistribution
}

// NewDistribution copies and summarises samples. Empty input yields a
// zero Distribution.
func NewDistribution(samples []time.Duration) Distribution {
	if len(samples) == 0 {
		return Distribution{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	mean := sum / float64(len(s))
	var sq float64
	for _, v := range s {
		d := float64(v) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(s)))
	return Distribution{
		sorted: s,
		mean:   time.Duration(mean),
		std:    time.Duration(std),
	}
}

// N returns the sample count.
func (d Distribution) N() int {
	if d.sketch != nil {
		return d.sketch.N()
	}
	return len(d.sorted)
}

// Streaming reports whether the distribution is sketch-backed (bounded
// memory, ~1% value accuracy) rather than exact.
func (d Distribution) Streaming() bool { return d.sketch != nil }

// Retained returns how many raw samples the distribution holds in memory:
// N() for an exact distribution, 0 for a sketch-backed one. Memory-bound
// tests assert against it.
func (d Distribution) Retained() int { return len(d.sorted) }

// Samples returns a copy of the sorted sample slice. Exposed so callers
// (tests, serializers, merge layers) can compare distributions for exact
// equality without reaching into internals. Sketch-backed distributions
// retain no samples and return nil.
func (d Distribution) Samples() []time.Duration {
	if d.sketch != nil {
		return nil
	}
	return append([]time.Duration(nil), d.sorted...)
}

// Equal reports whether two distributions carry exactly the same state:
// identical samples for exact distributions, bit-identical sketch state
// for streaming ones. An exact and a streaming distribution are never
// equal, even over the same samples.
func (d Distribution) Equal(o Distribution) bool {
	if (d.sketch != nil) != (o.sketch != nil) {
		return false
	}
	if d.sketch != nil {
		return d.sketch.equal(o.sketch)
	}
	if len(d.sorted) != len(o.sorted) || d.mean != o.mean || d.std != o.std {
		return false
	}
	for i, v := range d.sorted {
		if v != o.sorted[i] {
			return false
		}
	}
	return true
}

// MergeDistributions pools the given distributions into one. The result
// depends only on the multiset of samples, never on the argument order,
// so sharded computations merge deterministically. If every input is
// exact the merge is exact; if any input is sketch-backed the merge is a
// sketch (exact inputs fold their samples into it bucket-wise, which is
// itself order-independent).
func MergeDistributions(ds ...Distribution) Distribution {
	streaming := false
	for _, d := range ds {
		if d.sketch != nil {
			streaming = true
			break
		}
	}
	if streaming {
		s := NewStreamingDistribution()
		for _, d := range ds {
			if d.sketch != nil {
				s.Merge(d.sketch)
				continue
			}
			for _, v := range d.sorted {
				s.Add(v)
			}
		}
		return s.Dist()
	}
	var samples []time.Duration
	for _, d := range ds {
		samples = append(samples, d.sorted...)
	}
	return NewDistribution(samples)
}

// Mean returns the arithmetic mean.
func (d Distribution) Mean() time.Duration { return d.mean }

// Std returns the population standard deviation. The paper's figures
// compare "variances of delays"; Std is the comparable spread measure in
// time units.
func (d Distribution) Std() time.Duration { return d.std }

// Variance returns the population variance in seconds squared.
func (d Distribution) Variance() float64 {
	s := float64(d.std) / float64(time.Second)
	return s * s
}

// Min returns the smallest sample (0 if empty). Exact for both kinds.
func (d Distribution) Min() time.Duration {
	if d.sketch != nil {
		return d.sketch.Min()
	}
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample (0 if empty). Exact for both kinds.
func (d Distribution) Max() time.Duration {
	if d.sketch != nil {
		return d.sketch.Max()
	}
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100): linear
// interpolation between closest ranks for exact distributions, the
// closest-rank bucket representative (~1% value accuracy) for streaming
// ones.
func (d Distribution) Percentile(p float64) time.Duration {
	if d.sketch != nil {
		return d.sketch.Percentile(p)
	}
	n := len(d.sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 100 {
		return d.sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.sorted[lo]
	}
	frac := rank - float64(lo)
	return d.sorted[lo] + time.Duration(frac*float64(d.sorted[hi]-d.sorted[lo]))
}

// Median returns the 50th percentile.
func (d Distribution) Median() time.Duration { return d.Percentile(50) }

// CDF returns (value, cumulative fraction) pairs at the given number of
// evenly spaced quantiles — the series Figs. 3 and 4 plot.
func (d Distribution) CDF(points int) []CDFPoint {
	if points < 2 || d.N() == 0 {
		return nil
	}
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		out[i] = CDFPoint{
			Fraction: frac,
			Value:    d.Percentile(frac * 100),
		}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Fraction float64
	Value    time.Duration
}

// Histogram buckets the samples into n equal-width bins over [Min, Max].
// For streaming distributions each log bucket contributes its count at
// its representative value.
func (d Distribution) Histogram(bins int) []HistBin {
	if bins < 1 || d.N() == 0 {
		return nil
	}
	lo, hi := d.Min(), d.Max()
	width := (hi - lo) / time.Duration(bins)
	if width <= 0 {
		width = 1
	}
	out := make([]HistBin, bins)
	for i := range out {
		out[i].Low = lo + time.Duration(i)*width
		out[i].High = out[i].Low + width
	}
	place := func(v time.Duration, count int) {
		idx := int((v - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		out[idx].Count += count
	}
	if d.sketch != nil {
		for i, c := range d.sketch.counts {
			if c != 0 {
				place(d.sketch.clampRep(i), int(c))
			}
		}
		return out
	}
	for _, v := range d.sorted {
		place(v, 1)
	}
	return out
}

// HistBin is one histogram bucket.
type HistBin struct {
	Low, High time.Duration
	Count     int
}

// String renders a one-line summary.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d mean=%v std=%v p50=%v p90=%v max=%v",
		d.N(), d.Mean().Round(time.Microsecond), d.Std().Round(time.Microsecond),
		d.Median().Round(time.Microsecond), d.Percentile(90).Round(time.Microsecond),
		d.Max().Round(time.Microsecond))
}

// ASCIICDF renders CDFs side by side as an ASCII chart for terminal
// output: one row per quantile, one column per named series.
func ASCIICDF(names []string, dists []Distribution, rows int) string {
	if len(names) != len(dists) || len(names) == 0 || rows < 2 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "CDF")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteByte('\n')
	for i := 0; i < rows; i++ {
		frac := float64(i) / float64(rows-1)
		fmt.Fprintf(&b, "%7.0f%%", frac*100)
		for _, d := range dists {
			fmt.Fprintf(&b, " %14v", d.Percentile(frac*100).Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
