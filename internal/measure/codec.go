// JSON codec for campaign results: the serialization the fleet subsystem
// ships over the wire. A CampaignResult marshals with encoding/json
// directly — every field is plain data except Distribution, whose two
// backing representations hide behind unexported fields, so Distribution
// implements json.Marshaler/Unmarshaler here.
//
// Round-trip contract: decode(encode(r)) is bit-identical to r — the
// property the fleet's "merged outcome equals a single-machine sweep"
// guarantee rests on. Exact distributions ship their sorted samples and
// rebuild through NewDistribution (same samples, same summation order,
// same float bits); streaming distributions ship the sketch's integer
// state (n, sum, min, max, sparse non-zero buckets) and rebuild it
// verbatim. Integers ship as JSON integer literals, which Go decodes
// exactly into int64/uint64 fields.
package measure

import (
	"encoding/json"
	"fmt"
	"time"
)

// distKind tags the wire form of a Distribution.
const (
	distKindExact     = "exact"
	distKindStreaming = "streaming"
)

// sketchBucket is one non-zero log bucket on the wire. Sparse encoding:
// a campaign's samples cluster in a narrow latency band, so shipping the
// ~2200-bucket dense array would waste most of the shard's bytes.
type sketchBucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"c"`
}

// distJSON is the wire form of a Distribution.
type distJSON struct {
	Kind string `json:"kind"`
	// Samples carries the sorted samples of an exact distribution, in
	// nanoseconds.
	Samples []time.Duration `json:"samples_ns,omitempty"`
	// Sketch state of a streaming distribution.
	N       uint64         `json:"n,omitempty"`
	Sum     int64          `json:"sum_ns,omitempty"`
	Min     time.Duration  `json:"min_ns,omitempty"`
	Max     time.Duration  `json:"max_ns,omitempty"`
	Buckets []sketchBucket `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d Distribution) MarshalJSON() ([]byte, error) {
	if d.sketch == nil {
		return json.Marshal(distJSON{Kind: distKindExact, Samples: d.sorted})
	}
	s := d.sketch
	w := distJSON{
		Kind: distKindStreaming,
		N:    s.n,
		Sum:  s.sum,
		Min:  s.min,
		Max:  s.max,
	}
	for i, c := range s.counts {
		if c != 0 {
			w.Buckets = append(w.Buckets, sketchBucket{Index: i, Count: c})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Distribution) UnmarshalJSON(data []byte) error {
	var w distJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Kind {
	case distKindExact:
		*d = NewDistribution(w.Samples)
		return nil
	case distKindStreaming:
		s := NewStreamingDistribution()
		for _, b := range w.Buckets {
			if b.Index < 0 || b.Index >= len(s.counts) {
				return fmt.Errorf("measure: sketch bucket index %d outside [0, %d)", b.Index, len(s.counts))
			}
			s.counts[b.Index] = b.Count
		}
		s.n, s.sum, s.min, s.max = w.N, w.Sum, w.Min, w.Max
		*d = s.Dist()
		return nil
	default:
		return fmt.Errorf("measure: unknown distribution kind %q", w.Kind)
	}
}

// EncodeCampaignResult serializes a shard result for shipping. Both exact
// and streaming results round-trip; streaming shards serialize compactly
// (the fixed sketch, not the samples).
func EncodeCampaignResult(r CampaignResult) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeCampaignResult parses a serialized shard back into a result that
// is bit-identical to the one encoded.
func DecodeCampaignResult(data []byte) (CampaignResult, error) {
	var r CampaignResult
	if err := json.Unmarshal(data, &r); err != nil {
		return CampaignResult{}, fmt.Errorf("measure: decode campaign result: %w", err)
	}
	return r, nil
}
