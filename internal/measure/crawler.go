package measure

import (
	"context"
	"errors"
	"time"

	"repro/internal/p2p"
	"repro/internal/sim"
)

// Crawler reproduces the measurement campaign the paper's simulator was
// parameterised with (§V.A, refs [5],[12]): a client that connects to the
// reachable network and observes ping/pong round trips — "connected to
// approximately 5000 network peers and observing a total of 20,000
// ping/pong messages" — plus a census of reachable nodes.
//
// In this repository the crawler runs against the simulated network; its
// output (an RTT distribution) is exactly the kind of data that would be
// fed back into the latency model to calibrate it against a live network.
type Crawler struct {
	net *p2p.Network
	// vantage is the node the crawler measures from.
	vantage p2p.NodeID
}

// NewCrawler creates a crawler measuring from the given vantage node.
func NewCrawler(net *p2p.Network, vantage p2p.NodeID) (*Crawler, error) {
	if _, ok := net.Node(vantage); !ok {
		return nil, errors.New("measure: crawler vantage node unknown")
	}
	return &Crawler{net: net, vantage: vantage}, nil
}

// CrawlResult is the outcome of a crawl.
type CrawlResult struct {
	// Reachable is the node census at crawl start.
	Reachable int
	// RTTs pools every observed ping round trip.
	RTTs Distribution
	// PerTarget maps each probed node to its smoothed estimate.
	PerTarget map[p2p.NodeID]time.Duration
}

// Crawl probes every reachable node `pingsPer` times, spaced by gap, and
// aggregates the observed round trips. Runs the network until all probes
// resolve or the deadline passes.
func (c *Crawler) Crawl(pingsPer int, gap, deadline time.Duration) (CrawlResult, error) {
	if pingsPer < 1 {
		return CrawlResult{}, errors.New("measure: pingsPer must be >= 1")
	}
	node, ok := c.net.Node(c.vantage)
	if !ok {
		return CrawlResult{}, errors.New("measure: vantage churned away")
	}
	targets := c.net.NodeIDs()
	res := CrawlResult{
		Reachable: len(targets),
		PerTarget: make(map[p2p.NodeID]time.Duration),
	}
	var samples []time.Duration
	for _, t := range targets {
		if t == c.vantage {
			continue
		}
		target := t
		for i := 0; i < pingsPer; i++ {
			delay := time.Duration(i) * gap
			c.net.Scheduler().After(delay, func() {
				nd, ok := c.net.Node(c.vantage)
				if !ok {
					return
				}
				nd.Probe(target, func(rtt time.Duration) {
					samples = append(samples, rtt)
				})
			})
		}
	}
	start := c.net.Now()
	if err := c.net.RunUntil(context.Background(), start+sim.Time(deadline)); err != nil && !errors.Is(err, sim.ErrStopped) {
		return CrawlResult{}, err
	}
	for _, t := range targets {
		if est, ok := node.Estimator(t); ok && est.Samples() > 0 {
			res.PerTarget[t] = est.RTT()
		}
	}
	res.RTTs = NewDistribution(samples)
	return res, nil
}
