package measure

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// MeasuringNode implements the experiment of Fig. 2: a node m with
// proximity-based connections that "creates a valid transaction Tx and
// sends it to one node of its connected nodes, and then tracks the
// transaction in order to record the time by which each node of its
// connections announces the transaction".
//
// Δt(m,n) = Tn − Tm (eq. 5), where Tm is the injection time and Tn the
// time connection n first has the transaction.
type MeasuringNode struct {
	net  *p2p.Network
	node *p2p.Node
	r    *rand.Rand

	// watchGen and watchID form MeasureOnce's per-run wait set as a flat
	// array keyed by dense node slot: slot s is watched this run iff
	// watchGen[s] == watchRun and watchID[s] still names the node that
	// occupied the slot when the run started (slots recycle under churn).
	// Starting a run is a generation bump plus one write per connection —
	// no map to clear or rehash across thousands of injections.
	watchGen []uint32
	watchID  []p2p.NodeID
	watchRun uint32
	// deltaAt records, per consumed slot, the first-seen time the hook
	// observed. The hook writes a flat Time cell instead of a map entry so
	// it stays safe under parallel dispatch, where it fires concurrently
	// from different partitions: each slot belongs to exactly one
	// partition, so the per-slot write is single-writer, and the result
	// map is assembled after the run on the driving goroutine.
	deltaAt []sim.Time
	// deltaPool and missingPool recycle per-run result state in streaming
	// campaigns, where a run's RunResult is folded into the sketch and
	// discarded: the campaign's thousandth run then allocates no result
	// map or missing slice the first run did not. Exact campaigns retain
	// every RunResult, so nothing is ever recycled into these pools and
	// MeasureOnce allocates fresh state as before.
	deltaPool   []map[p2p.NodeID]time.Duration
	missingPool [][]p2p.NodeID
	// idScratch is the reusable sort buffer for streaming folds.
	idScratch []p2p.NodeID

	// Trace, when non-nil, records one KindInject event per measurement
	// run (the injected transaction's hash prefix and run index, stamped
	// at the injection's simulation time). Point it at the driving
	// goroutine's shard — obs shard 0 by convention — alongside
	// Network.EnableTrace; nil keeps measurement byte-for-byte free of
	// observability work.
	Trace *obs.Shard

	// runIndex counts MeasureOnce calls for the inject event's P3.
	runIndex uint64
}

// NewMeasuringNode wraps an existing, already-wired node as the measuring
// node m.
func NewMeasuringNode(net *p2p.Network, id p2p.NodeID) (*MeasuringNode, error) {
	node, ok := net.Node(id)
	if !ok {
		return nil, fmt.Errorf("measure: unknown node %d", id)
	}
	return &MeasuringNode{net: net, node: node, r: net.Streams().Stream("measure")}, nil
}

// ID returns the measuring node's ID.
func (m *MeasuringNode) ID() p2p.NodeID { return m.node.ID() }

// RunResult is one measurement run: per-connection Δt values.
type RunResult struct {
	// TxID identifies the injected transaction.
	TxID chain.Hash
	// InjectedAt is Tm.
	InjectedAt sim.Time
	// Deltas holds Δt(m,n) per connected node n that received the
	// transaction within the deadline.
	Deltas map[p2p.NodeID]time.Duration
	// Missing lists connections that never announced within the deadline
	// ("errors such as loss of connection ... are expected", §V.B).
	Missing []p2p.NodeID
}

// All returns the Δt values in ascending connection-ID order.
func (r RunResult) All() []time.Duration {
	out := make([]time.Duration, 0, len(r.Deltas))
	for _, id := range sortedIDs(r.Deltas) {
		out = append(out, r.Deltas[id])
	}
	return out
}

func sortedIDs(m map[p2p.NodeID]time.Duration) []p2p.NodeID {
	return appendSortedIDs(make([]p2p.NodeID, 0, len(m)), m)
}

// appendSortedIDs appends m's keys to ids in ascending order, reusing the
// caller's backing array (streaming folds pass a per-campaign scratch).
func appendSortedIDs(ids []p2p.NodeID, m map[p2p.NodeID]time.Duration) []p2p.NodeID {
	for id := range m {
		ids = append(ids, id) //bcbptlint:allow maporder — the insertion sort below canonicalises the order
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// ErrNoConnections means the measuring node has no peers to measure.
var ErrNoConnections = errors.New("measure: measuring node has no connections")

// MeasureOnce injects one transaction to a single randomly chosen
// connection (per Fig. 2: "the transaction is propagated from node m to
// one connected node only") and runs the network until every connection
// has received it or deadline virtual time has passed. ctx cancels the
// run mid-flood: the partial run is discarded and the error wraps
// ctx.Err().
func (m *MeasuringNode) MeasureOnce(ctx context.Context, tx *chain.Tx, deadline time.Duration) (RunResult, error) {
	peers := m.node.Peers()
	if len(peers) == 0 {
		return RunResult{}, ErrNoConnections
	}
	txID := tx.ID()
	start := m.net.Now()
	res := RunResult{TxID: txID, InjectedAt: start, Deltas: m.newDeltas()}

	m.watchRun++
	if m.watchRun == 0 {
		// Generation wrap: stale stamps could alias, so hard-reset once.
		clear(m.watchGen)
		m.watchRun = 1
	}
	if sc := m.net.SlotCap(); len(m.watchGen) < sc {
		m.watchGen = append(m.watchGen, make([]uint32, sc-len(m.watchGen))...)
		m.watchID = append(m.watchID, make([]p2p.NodeID, sc-len(m.watchID))...)
		m.deltaAt = append(m.deltaAt, make([]sim.Time, sc-len(m.deltaAt))...)
	}
	var remaining atomic.Int32
	for _, p := range peers {
		slot, ok := m.net.SlotOf(p)
		if !ok {
			continue
		}
		if m.watchGen[slot] != m.watchRun {
			m.watchGen[slot] = m.watchRun
			m.watchID[slot] = p
			remaining.Add(1)
		}
	}

	prevHook := m.net.OnTxFirstSeen
	// Under parallel dispatch this hook fires concurrently from different
	// partition workers, so it must only touch single-writer state: the
	// watched slot's cells (a node's slot is touched only by its own
	// partition) and the atomic remaining counter. The Deltas map is
	// assembled after the run.
	m.net.OnTxFirstSeen = func(id p2p.NodeID, h chain.Hash, at sim.Time) {
		if prevHook != nil {
			prevHook(id, h, at)
		}
		if h != txID {
			return
		}
		slot, ok := m.net.SlotOf(id)
		if !ok || slot >= len(m.watchGen) || m.watchGen[slot] != m.watchRun || m.watchID[slot] != id {
			return
		}
		// Consume the slot: first sight per connection per run, dup-proof
		// without a map lookup.
		m.watchGen[slot] = m.watchRun - 1
		m.deltaAt[slot] = at
		if remaining.Add(-1) == 0 {
			m.net.StopRun()
		}
	}
	defer func() { m.net.OnTxFirstSeen = prevHook }()

	// Inject: hand the tx to ONE connection, not to m's relay logic —
	// m itself does not broadcast (Fig. 2). The submission runs directly at
	// the current simulation time; it must not detour through the serial
	// scheduler, which is parked while parallel dispatch is enabled.
	first := peers[m.r.Intn(len(peers))]
	firstNode, ok := m.net.Node(first)
	if !ok {
		return RunResult{}, fmt.Errorf("measure: connection %d vanished", first)
	}
	if m.Trace != nil {
		m.Trace.Record(obs.Event{At: start, Kind: obs.KindInject,
			P1: uint64(first), P2: binary.LittleEndian.Uint64(txID[:8]), P3: m.runIndex})
	}
	m.runIndex++
	_ = firstNode.SubmitTx(tx)

	err := m.net.RunUntil(ctx, start+sim.Time(deadline))
	if err != nil && !errors.Is(err, sim.ErrStopped) {
		return RunResult{}, err
	}
	// Drain any still-pending events up to the deadline if we stopped
	// early; later runs must not inherit a half-flooded network. Letting
	// the flood finish keeps runs independent after ResetInventory.
	if errors.Is(err, sim.ErrStopped) {
		if err := m.net.RunUntil(ctx, start+sim.Time(deadline)); err != nil && !errors.Is(err, sim.ErrStopped) {
			return RunResult{}, err
		}
	}
	// Assemble the result from the flat slot cells, on the driving
	// goroutine (the run's barrier established happens-before for every
	// hook write). A watched slot still stamped with this run's generation
	// was never consumed: that connection missed the deadline.
	for _, p := range peers {
		if _, dup := res.Deltas[p]; dup {
			continue
		}
		slot, ok := m.net.SlotOf(p)
		if ok && slot < len(m.watchGen) && m.watchGen[slot] == m.watchRun-1 && m.watchID[slot] == p {
			res.Deltas[p] = time.Duration(m.deltaAt[slot] - start)
			continue
		}
		if res.Missing == nil {
			res.Missing = m.newMissing()
		}
		res.Missing = append(res.Missing, p)
	}
	return res, nil
}

// newDeltas pops a recycled (cleared) per-run delta map, or allocates one.
func (m *MeasuringNode) newDeltas() map[p2p.NodeID]time.Duration {
	if last := len(m.deltaPool) - 1; last >= 0 {
		d := m.deltaPool[last]
		m.deltaPool = m.deltaPool[:last]
		return d
	}
	return make(map[p2p.NodeID]time.Duration)
}

// newMissing pops a recycled zero-length missing slice, or allocates one.
func (m *MeasuringNode) newMissing() []p2p.NodeID {
	if last := len(m.missingPool) - 1; last >= 0 {
		s := m.missingPool[last]
		m.missingPool = m.missingPool[:last]
		return s
	}
	return make([]p2p.NodeID, 0, 4)
}

// recycleRun returns a folded-and-forgotten run's state to the pools.
// Only the streaming campaign path calls it: the exact path retains every
// RunResult, and a retained result must never share its map or slice with
// a later run.
func (m *MeasuringNode) recycleRun(res RunResult) {
	clear(res.Deltas)
	m.deltaPool = append(m.deltaPool, res.Deltas)
	if res.Missing != nil {
		m.missingPool = append(m.missingPool, res.Missing[:0])
	}
}

// Campaign runs the full §V.B methodology: `runs` independent injections
// (the paper averages ~1000), resetting inventory between runs, and
// pools all Δt samples into a Distribution.
type Campaign struct {
	// Runs is the number of transaction injections.
	Runs int
	// Deadline bounds each run in virtual time.
	Deadline time.Duration
	// MakeTx supplies the transaction for run i. Transactions must have
	// distinct IDs across runs.
	MakeTx func(i int) *chain.Tx
	// Streaming switches the campaign onto the bounded-memory measurement
	// path: Δt samples fold into a StreamingDistribution as each run
	// completes (O(buckets) memory instead of O(Runs × connections)) and
	// per-run results are not retained. The exactness escape hatch is the
	// default: leave Streaming false and the campaign pools every sample
	// exactly, as tests and small campaigns expect.
	Streaming bool
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Dist pools every Δt(m,n) sample — exactly, or as a bounded sketch
	// when the campaign ran with Streaming set.
	Dist Distribution
	// PerRun keeps each run's result for variance-vs-connection analyses.
	// Empty in Streaming mode, whose point is not to retain per-sample
	// state.
	PerRun []RunResult
	// Lost counts connection-runs that missed the deadline.
	Lost int
	// Fingerprint identifies the campaign spec this result was measured
	// under (a stable hash stamped by the campaign engine). Zero means
	// unstamped. MergeCampaignResults refuses to blend shards carrying
	// different non-zero fingerprints — the guard that keeps a distributed
	// sweep from silently pooling two different experiments.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
}

// Run executes the campaign on the measuring node.
func (m *MeasuringNode) Run(c Campaign) (CampaignResult, error) {
	return m.RunContext(context.Background(), c)
}

// RunContext executes the campaign, checking ctx between injections and
// inside each injection's event loop. On cancellation it returns the
// partial result accumulated from the runs that completed, together with
// an error wrapping ctx.Err(): runs already measured stay valid, and the
// caller decides whether a partial distribution is usable. A run cut off
// mid-flood contributes no samples (a half-measured run would bias the
// distribution towards its fastest connections).
func (m *MeasuringNode) RunContext(ctx context.Context, c Campaign) (CampaignResult, error) {
	if c.Runs <= 0 {
		return CampaignResult{}, errors.New("measure: campaign needs Runs > 0")
	}
	if c.MakeTx == nil {
		return CampaignResult{}, errors.New("measure: campaign needs MakeTx")
	}
	var out CampaignResult
	var samples []time.Duration
	var sketch *StreamingDistribution
	if c.Streaming {
		sketch = NewStreamingDistribution()
	}
	pool := func() Distribution {
		if c.Streaming {
			return sketch.Dist()
		}
		return NewDistribution(samples)
	}
	for i := 0; i < c.Runs; i++ {
		if err := ctx.Err(); err != nil {
			out.Dist = pool()
			return out, fmt.Errorf("measure: campaign stopped after %d of %d runs: %w", i, c.Runs, err)
		}
		m.net.ResetInventory()
		res, err := m.MeasureOnce(ctx, c.MakeTx(i), c.Deadline)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				out.Dist = pool()
				return out, fmt.Errorf("measure: campaign stopped during run %d of %d: %w", i+1, c.Runs, err)
			}
			return CampaignResult{}, fmt.Errorf("measure: run %d: %w", i, err)
		}
		out.Lost += len(res.Missing)
		if c.Streaming {
			// Fold and forget: neither the samples nor the run survive.
			// The run's map and slice go back to the pools.
			m.idScratch = appendSortedIDs(m.idScratch[:0], res.Deltas)
			for _, id := range m.idScratch {
				sketch.Add(res.Deltas[id])
			}
			m.recycleRun(res)
			continue
		}
		out.PerRun = append(out.PerRun, res)
		samples = append(samples, res.All()...)
	}
	out.Dist = pool()
	return out, nil
}

// MergeCampaignResults combines shard results from independent campaign
// replications into one pooled result. The merge is deterministic: given
// the same shards in the same order it produces an identical result, and
// the pooled Distribution depends only on the multiset of samples — so
// shards computed by any number of workers, merged in replication order,
// yield a bit-identical aggregate.
//
// Shards carrying different non-zero Fingerprints are different
// experiments; merging them would silently blend incomparable samples, so
// the merge fails instead. Unstamped shards (fingerprint zero) merge with
// anything; the output carries the common non-zero fingerprint, if any.
func MergeCampaignResults(shards ...CampaignResult) (CampaignResult, error) {
	var out CampaignResult
	dists := make([]Distribution, len(shards))
	for i, s := range shards {
		if s.Fingerprint != 0 {
			if out.Fingerprint == 0 {
				out.Fingerprint = s.Fingerprint
			} else if s.Fingerprint != out.Fingerprint {
				return CampaignResult{}, fmt.Errorf(
					"measure: shard %d has spec fingerprint %016x, previous shards %016x: refusing to merge different experiments",
					i, s.Fingerprint, out.Fingerprint)
			}
		}
		out.PerRun = append(out.PerRun, s.PerRun...)
		out.Lost += s.Lost
		dists[i] = s.Dist
	}
	out.Dist = MergeDistributions(dists...)
	return out, nil
}
