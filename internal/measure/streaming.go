package measure

import (
	"math"
	"time"
)

// StreamingDistribution is a bounded-memory summary of a duration sample:
// a fixed-size log-scale histogram (DDSketch-style) plus exact count, sum,
// min and max. It is the campaign engine's memory-diet alternative to
// NewDistribution, which retains every sample: a sketch holds O(buckets)
// memory (sketchBuckets counters, ~18 KiB) no matter how many samples are
// added, so an N-specs × M-replications sweep no longer scales its
// footprint with Runs × Connections × Replications.
//
// Accuracy contract: quantiles are value-relative-accurate to
// sketchRelativeError (about 1%) — each positive sample lands in the
// bucket [γ^(i-1), γ^i) ns and is reported as the bucket's geometric
// midpoint. Mean is exact (integer sum / count). Std is computed from the
// bucket midpoints and inherits the ~1% value error. Min and Max are
// exact. Exact zero (and clamped negatives) occupy a dedicated bucket.
//
// Determinism contract: the sketch state is integers only (bucket counts,
// n, sum, min, max), merged by commutative integer addition, and every
// derived statistic iterates buckets in a fixed order — so Merge is
// order-independent bit for bit, matching MergeDistributions. The
// documented sum capacity is ~2^63 ns ≈ 292 sample-years, far beyond any
// campaign.
type StreamingDistribution struct {
	counts []uint64 // len sketchBuckets; bucket 0 is the exact-zero bucket
	n      uint64
	sum    int64 // exact total in nanoseconds
	min    time.Duration
	max    time.Duration
}

const (
	// sketchGamma is the log-bucket growth factor; quantile values are
	// accurate to within ±(γ-1)/2 ≈ 1% relative error.
	sketchGamma = 1.02
	// sketchBuckets covers exact zero (bucket 0) plus [1ns, 2^63 ns) in
	// γ-wide buckets: ceil(ln(2^63)/ln(γ)) = 2206 log buckets.
	sketchBuckets = 2208
	// sketchRelativeError documents the quantile/std value accuracy.
	sketchRelativeError = (sketchGamma - 1) / 2
)

var invLnGamma = 1 / math.Log(sketchGamma)

// sketchIndex maps a sample to its bucket.
func sketchIndex(v time.Duration) int {
	if v <= 0 {
		return 0
	}
	idx := 1 + int(math.Floor(math.Log(float64(v))*invLnGamma))
	if idx < 1 {
		idx = 1 // guard rounding at v == 1ns
	}
	if idx >= sketchBuckets {
		idx = sketchBuckets - 1
	}
	return idx
}

// sketchValue returns the representative (geometric midpoint) of bucket i.
// The top bucket's midpoint γ^(i-0.5) can exceed MaxInt64 (its upper edge
// is beyond the int64 range), so the result is clamped before the float
// conversion would wrap negative.
func sketchValue(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	v := math.Exp((float64(i) - 0.5) / invLnGamma)
	if v >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v)
}

// NewStreamingDistribution returns an empty sketch.
func NewStreamingDistribution() *StreamingDistribution {
	return &StreamingDistribution{counts: make([]uint64, sketchBuckets)}
}

// Add folds one sample into the sketch. Negative durations clamp to the
// zero bucket (Δt samples are never negative by construction).
func (s *StreamingDistribution) Add(v time.Duration) { s.AddN(v, 1) }

// AddN folds count copies of one sample into the sketch.
func (s *StreamingDistribution) AddN(v time.Duration, count uint64) {
	if count == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	s.counts[sketchIndex(v)] += count
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n += count
	s.sum += int64(v) * int64(count)
}

// Merge folds another sketch into this one. Pure integer addition:
// merging any permutation of sketches yields bit-identical state.
func (s *StreamingDistribution) Merge(o *StreamingDistribution) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}

// Clone returns an independent copy of the sketch.
func (s *StreamingDistribution) Clone() *StreamingDistribution {
	c := *s
	c.counts = append([]uint64(nil), s.counts...)
	return &c
}

// N returns the number of samples folded in.
func (s *StreamingDistribution) N() int { return int(s.n) }

// Buckets returns the fixed bucket count — the sketch's memory bound,
// independent of N. Tests assert against it.
func (s *StreamingDistribution) Buckets() int { return len(s.counts) }

// Min returns the exact smallest sample (0 if empty).
func (s *StreamingDistribution) Min() time.Duration {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact largest sample (0 if empty).
func (s *StreamingDistribution) Max() time.Duration {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Sum returns the exact integer sum of all samples. Together with N it
// lets the sketch back an obs.Sketch histogram, whose exposition needs
// the running total.
func (s *StreamingDistribution) Sum() time.Duration { return time.Duration(s.sum) }

// Mean returns the exact arithmetic mean (integer sum over count).
func (s *StreamingDistribution) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / int64(s.n))
}

// Std returns the population standard deviation computed from bucket
// midpoints (value accuracy ~sketchRelativeError). Buckets are iterated
// in fixed index order, so the result is a pure function of the sketch
// state.
func (s *StreamingDistribution) Std() time.Duration {
	if s.n == 0 {
		return 0
	}
	mean := float64(s.sum) / float64(s.n)
	var sq float64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		d := float64(s.clampRep(i)) - mean
		sq += d * d * float64(c)
	}
	return time.Duration(math.Sqrt(sq / float64(s.n)))
}

// clampRep is the representative of bucket i clamped into [min, max], so
// bucket-edge effects never report values outside the observed range.
func (s *StreamingDistribution) clampRep(i int) time.Duration {
	v := sketchValue(i)
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// rankValue returns the bucket representative of the k-th order statistic
// (0-based).
func (s *StreamingDistribution) rankValue(k uint64) time.Duration {
	var cum uint64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > k {
			return s.clampRep(i)
		}
	}
	return s.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) with the same
// closest-rank linear interpolation as the exact Distribution, applied to
// bucket representatives — so exact and streaming percentiles agree to
// within the sketch's value error, even on heavy-tailed samples where
// neighbouring order statistics differ by multiples. p=0 and p=100 return
// the exact min and max.
func (s *StreamingDistribution) Percentile(p float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := p / 100 * float64(s.n-1)
	lo := uint64(math.Floor(rank))
	hi := uint64(math.Ceil(rank))
	vlo := s.rankValue(lo)
	if lo == hi {
		return vlo
	}
	vhi := s.rankValue(hi)
	frac := rank - float64(lo)
	return vlo + time.Duration(frac*float64(vhi-vlo))
}

// equal reports bit-identical sketch state.
func (s *StreamingDistribution) equal(o *StreamingDistribution) bool {
	if s.n != o.n || s.sum != o.sum || s.min != o.min || s.max != o.max {
		return false
	}
	for i, c := range s.counts {
		if c != o.counts[i] {
			return false
		}
	}
	return true
}

// Dist wraps an independent snapshot of the sketch in the Distribution
// API, so figure renderers, CSV writers and merge layers consume exact
// and streaming summaries interchangeably. Later Adds to s do not affect
// the returned Distribution.
func (s *StreamingDistribution) Dist() Distribution {
	c := s.Clone()
	return Distribution{sketch: c, mean: c.Mean(), std: c.Std()}
}
