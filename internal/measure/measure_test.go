package measure

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/topology"
)

func buildNet(t testing.TB, n int, seed int64) (*p2p.Network, []p2p.NodeID) {
	t.Helper()
	cfg := p2p.DefaultConfig()
	cfg.Validation = p2p.ValidationNone
	cfg.Seed = seed
	net, err := p2p.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("placement")
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = net.AddNode(placer.Place(r)).ID()
	}
	return net, ids
}

func wireRandom(t testing.TB, net *p2p.Network, ids []p2p.NodeID) {
	t.Helper()
	proto := topology.NewRandom(net, topology.NewDNSSeed(), 0)
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
}

func mkTx(t testing.TB, i int) *chain.Tx {
	t.Helper()
	key, err := chain.GenerateKey(rand.New(rand.NewSource(int64(i) + 1)))
	if err != nil {
		t.Fatal(err)
	}
	return chain.Coinbase(uint64(i), 1000, key.Address())
}

// --- Distribution ---

func TestDistributionBasics(t *testing.T) {
	samples := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond,
	}
	d := NewDistribution(samples)
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if d.Mean() != 30*time.Millisecond {
		t.Errorf("Mean = %v, want 30ms", d.Mean())
	}
	if d.Median() != 30*time.Millisecond {
		t.Errorf("Median = %v, want 30ms", d.Median())
	}
	if d.Min() != 10*time.Millisecond || d.Max() != 50*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	// Population std of {10..50 step 10} ms = sqrt(200) ms ≈ 14.14ms.
	want := time.Duration(14.142 * float64(time.Millisecond))
	if diff := d.Std() - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Std = %v, want ~%v", d.Std(), want)
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.N() != 0 || d.Mean() != 0 || d.Std() != 0 || d.Median() != 0 {
		t.Error("zero distribution not empty")
	}
	if d.CDF(10) != nil || d.Histogram(5) != nil {
		t.Error("empty distribution produced curves")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	d := NewDistribution([]time.Duration{0, 100 * time.Millisecond})
	if got := d.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := d.Percentile(0); got != 0 {
		t.Errorf("p0 = %v, want 0", got)
	}
	if got := d.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := d.Percentile(-5); got != 0 {
		t.Errorf("p-5 = %v, want clamp to min", got)
	}
	if got := d.Percentile(150); got != 100*time.Millisecond {
		t.Errorf("p150 = %v, want clamp to max", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Millisecond
		}
		cdf := NewDistribution(samples).CDF(21)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramCountsAllSamples(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		bins := NewDistribution(samples).Histogram(7)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestASCIICDF(t *testing.T) {
	d1 := NewDistribution([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	d2 := NewDistribution([]time.Duration{3 * time.Millisecond})
	out := ASCIICDF([]string{"a", "b"}, []Distribution{d1, d2}, 5)
	if out == "" {
		t.Fatal("empty chart")
	}
	if ASCIICDF([]string{"a"}, []Distribution{d1, d2}, 5) != "" {
		t.Error("mismatched names/dists should return empty")
	}
}

// --- MeasuringNode ---

func TestMeasureOnceRecordsAllConnections(t *testing.T) {
	net, ids := buildNet(t, 40, 1)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	node, _ := net.Node(ids[0])
	res, err := m.MeasureOnce(context.Background(), mkTx(t, 1), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 {
		t.Errorf("missing connections: %v", res.Missing)
	}
	if len(res.Deltas) != node.NumPeers() {
		t.Errorf("measured %d of %d connections", len(res.Deltas), node.NumPeers())
	}
	for id, dt := range res.Deltas {
		if dt < 0 {
			t.Errorf("connection %d has negative Δt %v", id, dt)
		}
	}
	// At least one connection (the first hop) should be strictly > 0 and
	// small; all deltas should be bounded by the deadline.
	for _, dt := range res.Deltas {
		if dt > time.Minute {
			t.Errorf("Δt %v exceeds deadline", dt)
		}
	}
}

func TestMeasuringNodeDoesNotBroadcastItself(t *testing.T) {
	// Fig. 2: m sends to ONE connection only. The direct recipient gets
	// the tx at its verification delay; others strictly later via relay.
	net, ids := buildNet(t, 30, 2)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.MeasureOnce(context.Background(), mkTx(t, 2), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	deltas := res.All()
	if len(deltas) < 2 {
		t.Skip("measuring node has one connection; nothing to compare")
	}
	// If m broadcast to everyone, all deltas would be one-hop and nearly
	// equal; via single-injection relay the spread must be substantial.
	d := NewDistribution(deltas)
	if d.Max() < d.Min()*2 && d.Max()-d.Min() < 5*time.Millisecond {
		t.Errorf("delta spread too tight (min=%v max=%v); did m broadcast?", d.Min(), d.Max())
	}
}

func TestCampaignPoolsRuns(t *testing.T) {
	net, ids := buildNet(t, 30, 3)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	node, _ := net.Node(ids[0])
	const runs = 10
	res, err := m.Run(Campaign{
		Runs:     runs,
		Deadline: time.Minute,
		MakeTx:   func(i int) *chain.Tx { return mkTx(t, 100+i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRun) != runs {
		t.Fatalf("PerRun = %d, want %d", len(res.PerRun), runs)
	}
	want := runs * node.NumPeers()
	if res.Dist.N()+res.Lost != want {
		t.Errorf("samples %d + lost %d != %d", res.Dist.N(), res.Lost, want)
	}
	if res.Dist.Mean() <= 0 {
		t.Error("non-positive mean Δt")
	}
}

func TestCampaignValidation(t *testing.T) {
	net, ids := buildNet(t, 5, 4)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Campaign{Runs: 0, MakeTx: func(int) *chain.Tx { return mkTx(t, 0) }}); err == nil {
		t.Error("accepted Runs=0")
	}
	if _, err := m.Run(Campaign{Runs: 1}); err == nil {
		t.Error("accepted nil MakeTx")
	}
	if _, err := NewMeasuringNode(net, 9999); err == nil {
		t.Error("accepted unknown node")
	}
}

func TestMeasureOnceNoConnections(t *testing.T) {
	net, ids := buildNet(t, 2, 5)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeasureOnce(context.Background(), mkTx(t, 1), time.Second); err != ErrNoConnections {
		t.Errorf("error = %v, want ErrNoConnections", err)
	}
}

// --- Crawler ---

func TestCrawlerCollectsRTTs(t *testing.T) {
	net, ids := buildNet(t, 50, 6)
	c, err := NewCrawler(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Crawl(4, 10*time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable != 50 {
		t.Errorf("Reachable = %d, want 50", res.Reachable)
	}
	want := 49 * 4
	if res.RTTs.N() != want {
		t.Errorf("observed %d RTTs, want %d", res.RTTs.N(), want)
	}
	if len(res.PerTarget) != 49 {
		t.Errorf("PerTarget = %d, want 49", len(res.PerTarget))
	}
	if res.RTTs.Min() <= 0 {
		t.Error("non-positive RTT sample")
	}
	// Heavy-tailed world: p90 should exceed median substantially.
	if res.RTTs.Percentile(90) <= res.RTTs.Median() {
		t.Error("RTT distribution has no tail")
	}
}

func TestCrawlerValidation(t *testing.T) {
	net, _ := buildNet(t, 3, 7)
	if _, err := NewCrawler(net, 999); err == nil {
		t.Error("accepted unknown vantage")
	}
	c, err := NewCrawler(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Crawl(0, time.Millisecond, time.Second); err == nil {
		t.Error("accepted pingsPer=0")
	}
}

func TestWriteCDFCSV(t *testing.T) {
	d1 := NewDistribution([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	d2 := NewDistribution([]time.Duration{2 * time.Millisecond})
	var buf strings.Builder
	if err := WriteCDFCSV(&buf, []string{"a", "b"}, []Distribution{d1, d2}, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,fraction,delay_ms\n") {
		t.Errorf("missing header: %q", out[:40])
	}
	// 2 series x 5 points + header = 11 lines.
	if got := strings.Count(out, "\n"); got != 11 {
		t.Errorf("line count = %d, want 11", got)
	}
	if err := WriteCDFCSV(&buf, []string{"a"}, []Distribution{d1, d2}, 5); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	d := NewDistribution([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	var buf strings.Builder
	if err := WriteSamplesCSV(&buf, "x", d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if lines[1] != "x,1.000" || lines[2] != "x,2.000" {
		t.Errorf("unexpected rows: %v", lines[1:])
	}
}

func TestMergeDistributionsOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mk := func(n int) Distribution {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(r.Intn(1_000_000))
		}
		return NewDistribution(s)
	}
	a, b, c := mk(13), mk(1), mk(40)
	abc := MergeDistributions(a, b, c)
	cba := MergeDistributions(c, b, a)
	if !abc.Equal(cba) {
		t.Errorf("merge order changed result: %v vs %v", abc, cba)
	}
	if abc.N() != a.N()+b.N()+c.N() {
		t.Errorf("merged N = %d, want %d", abc.N(), a.N()+b.N()+c.N())
	}
	// Merging must equal building the distribution from the pooled
	// samples directly.
	pooled := NewDistribution(append(append(a.Samples(), b.Samples()...), c.Samples()...))
	if !abc.Equal(pooled) {
		t.Errorf("merge differs from pooled build: %v vs %v", abc, pooled)
	}
	if !MergeDistributions().Equal(NewDistribution(nil)) {
		t.Error("empty merge not the zero distribution")
	}
}

func TestMergeCampaignResults(t *testing.T) {
	net, ids := buildNet(t, 20, 9)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	run := func(base int) CampaignResult {
		res, err := m.Run(Campaign{
			Runs:     3,
			Deadline: time.Minute,
			MakeTx:   func(i int) *chain.Tx { return mkTx(t, base+i) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(100), run(200)
	merged, err := MergeCampaignResults(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(merged.PerRun), len(a.PerRun)+len(b.PerRun); got != want {
		t.Errorf("PerRun = %d, want %d", got, want)
	}
	if merged.Lost != a.Lost+b.Lost {
		t.Errorf("Lost = %d, want %d", merged.Lost, a.Lost+b.Lost)
	}
	if !merged.Dist.Equal(MergeDistributions(a.Dist, b.Dist)) {
		t.Error("merged distribution does not pool shard samples")
	}
}

func TestRunContextCancelKeepsPartial(t *testing.T) {
	net, ids := buildNet(t, 20, 11)
	wireRandom(t, net, ids)
	m, err := NewMeasuringNode(net, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runsDone := 0
	res, err := m.RunContext(ctx, Campaign{
		Runs:     10,
		Deadline: time.Minute,
		MakeTx: func(i int) *chain.Tx {
			runsDone = i
			if i == 2 {
				cancel()
			}
			return mkTx(t, 300+i)
		},
	})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// Cancel fired while building run 2's tx, so runs 0..1 completed and
	// run 2 was cut off mid-flood: a half-measured run contributes no
	// samples (it would bias the pool towards its fastest connections).
	if len(res.PerRun) != 2 || runsDone != 2 {
		t.Errorf("completed %d runs (last MakeTx %d), want 2 completed runs", len(res.PerRun), runsDone)
	}
	if res.Dist.N() == 0 {
		t.Error("partial result lost its samples")
	}
}
