package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
)

// relErr is the |a-b|/b relative error (b != 0).
func relErr(a, b time.Duration) float64 {
	if b == 0 {
		return math.Abs(float64(a))
	}
	return math.Abs(float64(a)-float64(b)) / math.Abs(float64(b))
}

// sketchTolerance is the asserted accuracy bound: the documented
// per-sample value error is sketchRelativeError (~1%); closest-rank vs
// interpolated percentile semantics add at most one bucket more.
const sketchTolerance = 3 * sketchRelativeError

func randomSamples(r *rand.Rand, n int) []time.Duration {
	s := make([]time.Duration, n)
	for i := range s {
		// Span microseconds to minutes — the range Δt and RTT samples live in.
		exp := 3 + r.Float64()*8 // 10^3 .. 10^11 ns
		s[i] = time.Duration(math.Pow(10, exp))
	}
	return s
}

// TestStreamingTracksExact is the error-bound contract: on the same
// pooled samples the sketch's quantiles and std stay within the
// documented relative error of NewDistribution, and N/mean/min/max are
// (near-)exact.
func TestStreamingTracksExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 50; round++ {
		samples := randomSamples(r, 1+r.Intn(2000))
		exact := NewDistribution(samples)
		s := NewStreamingDistribution()
		for _, v := range samples {
			s.Add(v)
		}
		d := s.Dist()
		if !d.Streaming() || d.Retained() != 0 {
			t.Fatal("sketch-backed distribution retained samples")
		}
		if d.N() != exact.N() {
			t.Fatalf("N = %d, exact %d", d.N(), exact.N())
		}
		if d.Min() != exact.Min() || d.Max() != exact.Max() {
			t.Fatalf("min/max = %v/%v, exact %v/%v", d.Min(), d.Max(), exact.Min(), exact.Max())
		}
		// Mean is integer-exact in the sketch; NewDistribution's float64
		// pathway may round the last nanoseconds.
		if relErr(d.Mean(), exact.Mean()) > 1e-9 {
			t.Fatalf("mean = %v, exact %v", d.Mean(), exact.Mean())
		}
		if relErr(d.Std(), exact.Std()) > sketchTolerance {
			t.Fatalf("std = %v, exact %v (rel %.4f)", d.Std(), exact.Std(), relErr(d.Std(), exact.Std()))
		}
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99} {
			if e := relErr(d.Percentile(p), exact.Percentile(p)); e > sketchTolerance {
				t.Fatalf("p%.0f = %v, exact %v (rel %.4f)", p, d.Percentile(p), exact.Percentile(p), e)
			}
		}
	}
}

// TestStreamingMergeOrderIndependent is the determinism contract: any
// permutation of shard merges yields a bit-identical sketch, and matches
// folding the pooled samples into one sketch directly.
func TestStreamingMergeOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	mkSketch := func(samples []time.Duration) *StreamingDistribution {
		s := NewStreamingDistribution()
		for _, v := range samples {
			s.Add(v)
		}
		return s
	}
	for round := 0; round < 20; round++ {
		shards := make([][]time.Duration, 3)
		var pooled []time.Duration
		for i := range shards {
			shards[i] = randomSamples(r, 1+r.Intn(200))
			pooled = append(pooled, shards[i]...)
		}
		a, b, c := mkSketch(shards[0]), mkSketch(shards[1]), mkSketch(shards[2])
		abc := NewStreamingDistribution()
		abc.Merge(a)
		abc.Merge(b)
		abc.Merge(c)
		cba := NewStreamingDistribution()
		cba.Merge(c)
		cba.Merge(b)
		cba.Merge(a)
		if !abc.Dist().Equal(cba.Dist()) {
			t.Fatal("merge order changed sketch state")
		}
		if !abc.Dist().Equal(mkSketch(pooled).Dist()) {
			t.Fatal("merged sketch differs from direct pooled fold")
		}
		// The Distribution-level merge must agree too, including with
		// exact distributions mixed in (their samples fold bucket-wise).
		mixed1 := MergeDistributions(a.Dist(), NewDistribution(shards[1]), c.Dist())
		mixed2 := MergeDistributions(c.Dist(), a.Dist(), NewDistribution(shards[1]))
		if !mixed1.Equal(mixed2) {
			t.Fatal("mixed exact/sketch merge is order-dependent")
		}
		if !mixed1.Streaming() {
			t.Fatal("merge containing a sketch did not stay sketch-backed")
		}
	}
}

// TestStreamingMergeMatchesAddProperty quick-checks that AddN, Add and
// Merge agree for arbitrary durations, including zero and negatives
// (which clamp to the zero bucket).
func TestStreamingMergeMatchesAddProperty(t *testing.T) {
	f := func(raw []int64) bool {
		a := NewStreamingDistribution()
		b := NewStreamingDistribution()
		whole := NewStreamingDistribution()
		for i, v := range raw {
			d := time.Duration(v)
			if i%2 == 0 {
				a.Add(d)
			} else {
				b.Add(d)
			}
			whole.Add(d)
		}
		a.Merge(b)
		return a.Dist().Equal(whole.Dist())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamingEmptyAndZero(t *testing.T) {
	s := NewStreamingDistribution()
	d := s.Dist()
	if d.N() != 0 || d.Mean() != 0 || d.Std() != 0 || d.Percentile(50) != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Error("empty sketch not zero-valued")
	}
	s.Add(0)
	s.Add(-time.Second) // clamps to the zero bucket
	d = s.Dist()
	if d.N() != 2 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Errorf("zero-bucket handling: n=%d max=%v p50=%v", d.N(), d.Max(), d.Percentile(50))
	}
	if s.Buckets() != sketchBuckets {
		t.Errorf("Buckets = %d, want %d", s.Buckets(), sketchBuckets)
	}
}

// TestStreamingTopBucketDoesNotWrap pins the documented [1ns, 2^63ns)
// coverage: a sample near MaxInt64 lands in the top bucket, whose raw
// geometric midpoint exceeds MaxInt64 — the representative must clamp
// instead of wrapping negative (which clampRep would then silently pull
// up to min, misreporting huge samples as tiny ones).
func TestStreamingTopBucketDoesNotWrap(t *testing.T) {
	s := NewStreamingDistribution()
	huge := time.Duration(math.MaxInt64)
	s.Add(time.Nanosecond)
	s.Add(huge)
	s.Add(huge)
	d := s.Dist()
	if d.Max() != huge {
		t.Fatalf("Max = %v, want %v", d.Max(), huge)
	}
	if p := d.Percentile(90); p < huge/2 {
		t.Errorf("p90 = %v collapsed toward min; top bucket representative wrapped", p)
	}
}

func TestExactAndSketchNeverEqual(t *testing.T) {
	samples := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	exact := NewDistribution(samples)
	s := NewStreamingDistribution()
	for _, v := range samples {
		s.Add(v)
	}
	if exact.Equal(s.Dist()) || s.Dist().Equal(exact) {
		t.Error("exact and sketch-backed distributions compared equal")
	}
}

// TestCampaignStreamingBoundedMemory runs the same campaign exactly and
// streaming, and asserts the streaming result (a) retains no raw samples
// and no per-run results, (b) has a fixed sketch footprint, and (c) stays
// within the documented error of the exact pooled distribution.
func TestCampaignStreamingBoundedMemory(t *testing.T) {
	campaign := func(streaming bool) CampaignResult {
		net, ids := buildNet(t, 30, 21)
		wireRandom(t, net, ids)
		m, err := NewMeasuringNode(net, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(Campaign{
			Runs:      8,
			Deadline:  time.Minute,
			MakeTx:    func(i int) *chain.Tx { return mkTx(t, 500+i) },
			Streaming: streaming,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := campaign(false)
	stream := campaign(true)

	if !stream.Dist.Streaming() {
		t.Fatal("streaming campaign produced an exact distribution")
	}
	if stream.Dist.Retained() != 0 {
		t.Fatalf("streaming campaign retained %d samples", stream.Dist.Retained())
	}
	if len(stream.PerRun) != 0 {
		t.Fatalf("streaming campaign retained %d per-run results", len(stream.PerRun))
	}
	if stream.Dist.N() != exact.Dist.N() || stream.Lost != exact.Lost {
		t.Fatalf("streaming (n=%d lost=%d) vs exact (n=%d lost=%d)",
			stream.Dist.N(), stream.Lost, exact.Dist.N(), exact.Lost)
	}
	if relErr(stream.Dist.Median(), exact.Dist.Median()) > sketchTolerance {
		t.Errorf("streaming median %v strays from exact %v", stream.Dist.Median(), exact.Dist.Median())
	}

	// Shard merging stays deterministic and bounded.
	merged, err := MergeCampaignResults(stream, stream)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Dist.Streaming() || merged.Dist.N() != 2*stream.Dist.N() {
		t.Error("merged streaming shards lost sketch backing or samples")
	}
}
