package measure

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// roundTrip pushes a result through the wire codec and back.
func roundTrip(t *testing.T, r CampaignResult) CampaignResult {
	t.Helper()
	data, err := EncodeCampaignResult(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCampaignResult(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestCodecExactRoundTrip: an exact result — samples, per-run maps,
// fingerprint — must survive the wire bit for bit.
func TestCodecExactRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 500)
	for i := range samples {
		samples[i] = time.Duration(r.Int63n(int64(3 * time.Second)))
	}
	res := CampaignResult{
		Dist: NewDistribution(samples),
		PerRun: []RunResult{
			{
				TxID:       chain.Hash{1, 2, 3},
				InjectedAt: sim.Time(42 * time.Second),
				Deltas: map[p2p.NodeID]time.Duration{
					3: 120 * time.Millisecond,
					9: 310 * time.Millisecond,
				},
				Missing: []p2p.NodeID{5},
			},
			{
				TxID:       chain.Hash{0xff},
				InjectedAt: sim.Time(time.Minute),
				Deltas:     map[p2p.NodeID]time.Duration{3: time.Millisecond},
			},
		},
		Lost:        1,
		Fingerprint: 0xdeadbeefcafef00d,
	}
	got := roundTrip(t, res)
	if !got.Dist.Equal(res.Dist) {
		t.Errorf("distribution changed over the wire: %v vs %v", got.Dist, res.Dist)
	}
	if !reflect.DeepEqual(got.PerRun, res.PerRun) {
		t.Errorf("per-run results changed over the wire:\n%+v\nvs\n%+v", got.PerRun, res.PerRun)
	}
	if got.Lost != res.Lost || got.Fingerprint != res.Fingerprint {
		t.Errorf("Lost/Fingerprint = %d/%x, want %d/%x", got.Lost, got.Fingerprint, res.Lost, res.Fingerprint)
	}
}

// TestCodecStreamingRoundTrip: a sketch-backed result must ship its
// integer state exactly, including the zero bucket, the extremes, and a
// heavy tail, and come back Equal.
func TestCodecStreamingRoundTrip(t *testing.T) {
	s := NewStreamingDistribution()
	s.Add(0)
	s.Add(1)
	s.AddN(17*time.Millisecond, 12345)
	s.Add(2 * time.Hour)
	s.Add(time.Duration(1) << 60)
	res := CampaignResult{Dist: s.Dist(), Lost: 3, Fingerprint: 99}
	got := roundTrip(t, res)
	if !got.Dist.Equal(res.Dist) {
		t.Errorf("sketch changed over the wire: %v vs %v", got.Dist, res.Dist)
	}
	if !got.Dist.Streaming() {
		t.Error("streaming distribution came back exact")
	}
	if got.Lost != res.Lost || got.Fingerprint != res.Fingerprint {
		t.Errorf("Lost/Fingerprint lost in transit")
	}
	// Compact shipping is the point: 5 distinct values must not serialize
	// the dense bucket array.
	data, err := EncodeCampaignResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 1024 {
		t.Errorf("streaming shard serialized to %d bytes; sparse encoding expected", len(data))
	}
}

// TestCodecEmptyRoundTrip: the zero result must round-trip to the zero
// result (merging relies on zero-value shards being inert).
func TestCodecEmptyRoundTrip(t *testing.T) {
	got := roundTrip(t, CampaignResult{})
	if !got.Dist.Equal(Distribution{}) || got.Lost != 0 || got.Fingerprint != 0 || len(got.PerRun) != 0 {
		t.Errorf("zero result changed over the wire: %+v", got)
	}
}

// TestCodecRejectsUnknownKind guards the decoder against version drift.
func TestCodecRejectsUnknownKind(t *testing.T) {
	var d Distribution
	if err := json.Unmarshal([]byte(`{"kind":"tdigest"}`), &d); err == nil {
		t.Error("unknown distribution kind decoded without error")
	}
	if err := json.Unmarshal([]byte(`{"kind":"streaming","buckets":[{"i":99999,"c":1}]}`), &d); err == nil {
		t.Error("out-of-range bucket index decoded without error")
	}
}

// TestMergeRejectsMismatchedFingerprints: shards from different specs
// must not blend; unstamped shards merge with anything.
func TestMergeRejectsMismatchedFingerprints(t *testing.T) {
	a := CampaignResult{Dist: NewDistribution([]time.Duration{1}), Fingerprint: 10}
	b := CampaignResult{Dist: NewDistribution([]time.Duration{2}), Fingerprint: 20}
	if _, err := MergeCampaignResults(a, b); err == nil {
		t.Fatal("merging shards with different fingerprints succeeded")
	}
	unstamped := CampaignResult{Dist: NewDistribution([]time.Duration{3})}
	merged, err := MergeCampaignResults(a, unstamped, a)
	if err != nil {
		t.Fatalf("merging stamped with unstamped shards: %v", err)
	}
	if merged.Fingerprint != a.Fingerprint {
		t.Errorf("merged fingerprint = %x, want %x", merged.Fingerprint, a.Fingerprint)
	}
	if merged.Dist.N() != 3 {
		t.Errorf("merged N = %d, want 3", merged.Dist.N())
	}
}
