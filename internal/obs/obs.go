// Package obs is the repo's telemetry layer: a fixed-capacity sim-time
// event tracer and a registry of counters, gauges and sketch-backed
// histograms with Prometheus text exposition.
//
// The package is deliberately leaf-level — it imports nothing but the
// standard library and internal/wire (for command names in trace
// exports) — so every layer from the event kernel up through the fleet
// can depend on it without cycles. It is also registered as a
// deterministic package for bcbpt-lint: nothing in here may read the
// wall clock or global randomness. Simulation code stamps events with
// virtual time; non-deterministic callers (the fleet, cmd binaries) may
// fill the separate Wall field from their own clocks.
//
// Recording is built to observe without perturbing: a Shard is a
// single-writer ring of fixed-size Event cells, so the enabled hot path
// costs one bounds-checked store and the disabled path one nil check.
// Tracing must never change simulation output — the golden-CSV and
// allocs/op gates pin that contract.
package obs

import "time"

// Kind classifies a trace event. The numeric values are part of the
// binary spool format; append new kinds, never renumber.
type Kind uint8

const (
	// KindNone is the zero Kind; it never appears in a recorded event.
	KindNone Kind = iota
	// KindSend is a message framed for delivery. Code is the wire
	// command, P1/P2 the source/destination node IDs, P3 the framed size
	// in bytes.
	KindSend
	// KindDeliver is a message arriving at its destination handler.
	// Code is the wire command, P1/P2 the source/destination node IDs.
	KindDeliver
	// KindDrop is a message dropped because an endpoint churned away
	// before delivery. Fields as KindDeliver.
	KindDrop
	// KindLoss is a message dropped by failure injection
	// (Config.LossProb). Fields as KindSend.
	KindLoss
	// KindFirstSeen is a node's inventory accepting a transaction for
	// the first time. P1 is the node ID, P2 the first 8 bytes of the
	// transaction hash.
	KindFirstSeen
	// KindInject is a measurement run handing its transaction to the
	// first connection. P1 is the receiving node ID, P2 the hash prefix,
	// P3 the run index.
	KindInject
	// KindWindowOpen is a parallel-dispatch lookahead window opening.
	// P1 is the window index, P2 the window span in nanoseconds
	// (horizon − open + 1).
	KindWindowOpen
	// KindWindowBarrier is all partition workers reaching the window
	// barrier. P1 is the window index, P2 the window's wall-clock span
	// in nanoseconds (zero when no profile clock is installed).
	KindWindowBarrier
	// KindWindowCommit is a window's staged cross-partition deliveries
	// committing in canonical order. P1 is the window index, P2 the
	// number of staged events committed.
	KindWindowCommit
	// KindLeaseGrant is a fleet coordinator granting a unit lease.
	// P1 is the lease ID, P2 the unit ordinal. Sim time is zero; Wall
	// carries the coordinator clock.
	KindLeaseGrant
	// KindLeaseRenew is a heartbeat renewal. Fields as KindLeaseGrant.
	KindLeaseRenew
	// KindLeaseExpire is a lease passing its TTL and becoming
	// reassignable. Fields as KindLeaseGrant.
	KindLeaseExpire
	// KindLeaseCommit is a unit result committing. Fields as
	// KindLeaseGrant.
	KindLeaseCommit

	numKinds
)

// kindNames maps kinds to the names used in trace exports.
var kindNames = [numKinds]string{
	KindNone:          "none",
	KindSend:          "send",
	KindDeliver:       "deliver",
	KindDrop:          "drop",
	KindLoss:          "loss",
	KindFirstSeen:     "first-seen",
	KindInject:        "inject",
	KindWindowOpen:    "window-open",
	KindWindowBarrier: "window-barrier",
	KindWindowCommit:  "window-commit",
	KindLeaseGrant:    "lease-grant",
	KindLeaseRenew:    "lease-renew",
	KindLeaseExpire:   "lease-expire",
	KindLeaseCommit:   "lease-commit",
}

// String names the kind for exports and errors.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. The struct is fixed-size and value-typed
// so a ring of them is a single flat allocation and recording is one
// store — no pointers, nothing for the GC to scan.
type Event struct {
	// At is the simulation time of the event (sim.Time is an alias for
	// time.Duration). Zero for events outside simulation, e.g. fleet
	// lease lifecycle.
	At time.Duration
	// Wall is the wall-clock time in Unix nanoseconds, stamped only by
	// non-deterministic callers. Zero inside the simulation.
	Wall int64
	// P1, P2, P3 are kind-specific payload words; see the Kind docs.
	P1, P2, P3 uint64
	// Kind classifies the event.
	Kind Kind
	// Code is a kind-specific sub-code: the wire command for message
	// events, zero otherwise.
	Code uint8
}
