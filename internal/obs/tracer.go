package obs

import "sort"

// Shard is a single-writer ring buffer of trace events. Exactly one
// goroutine may call Record on a given shard at a time; the repo's
// convention is shard 0 for the driving goroutine (serial dispatch,
// window control, measurement) and shard 1+i for parallel-dispatch
// partition i, whose events are only read after a window barrier has
// established happens-before.
//
// Record never allocates and never blocks: when the ring is full the
// oldest event is overwritten and counted as dropped. Capacity is
// rounded up to a power of two so the ring index is a mask, not a
// division.
type Shard struct {
	id   int
	buf  []Event
	mask uint64
	// n counts every Record call; buf[(n-1)&mask] is the newest event
	// and max(0, n-len(buf)) events have been overwritten.
	n uint64
}

// Record appends ev to the ring, overwriting the oldest event when
// full. Single-writer; callers nil-check the shard pointer so the
// disabled path is one branch.
func (s *Shard) Record(ev Event) {
	s.buf[s.n&s.mask] = ev
	s.n++
}

// ID returns the shard's index within its Tracer.
func (s *Shard) ID() int { return s.id }

// Len returns the number of events currently retained.
func (s *Shard) Len() int {
	if s.n < uint64(len(s.buf)) {
		return int(s.n)
	}
	return len(s.buf)
}

// Dropped returns how many events were overwritten because the ring
// was full.
func (s *Shard) Dropped() uint64 {
	if s.n <= uint64(len(s.buf)) {
		return 0
	}
	return s.n - uint64(len(s.buf))
}

// reset forgets all recorded events, keeping the buffer.
func (s *Shard) reset() { s.n = 0 }

// events appends the retained events in record order.
func (s *Shard) events(dst []Event) []Event {
	if s.n <= uint64(len(s.buf)) {
		return append(dst, s.buf[:s.n]...)
	}
	// The ring wrapped: oldest retained event is at n&mask.
	start := s.n & s.mask
	dst = append(dst, s.buf[start:]...)
	return append(dst, s.buf[:start]...)
}

// DefaultShardEvents is the per-shard ring capacity used when the
// caller does not choose one: 64 Ki events ≈ 3 MiB per shard.
const DefaultShardEvents = 1 << 16

// Tracer owns a set of shards and merges them into one canonical event
// stream for export. Create it disabled-by-default infrastructure-side:
// the hooks it feeds are nil until a shard is handed out, so an absent
// tracer costs nothing.
type Tracer struct {
	shards []*Shard
	cap    int
}

// NewTracer returns a tracer with the given per-shard ring capacity
// (rounded up to a power of two; DefaultShardEvents if <= 0) and an
// initial shard count. Shards grow on demand via Shard.
func NewTracer(eventsPerShard, shards int) *Tracer {
	if eventsPerShard <= 0 {
		eventsPerShard = DefaultShardEvents
	}
	capPow2 := 1
	for capPow2 < eventsPerShard {
		capPow2 <<= 1
	}
	t := &Tracer{cap: capPow2}
	t.Shard(shards - 1)
	return t
}

// Shard returns shard i, growing the shard set if needed. Growing is a
// setup-time operation: callers attach shards before a run, never
// during one.
func (t *Tracer) Shard(i int) *Shard {
	for len(t.shards) <= i {
		t.shards = append(t.shards, &Shard{
			id:   len(t.shards),
			buf:  make([]Event, t.cap),
			mask: uint64(t.cap) - 1,
		})
	}
	return t.shards[i]
}

// Shards returns the current shard count.
func (t *Tracer) Shards() int { return len(t.shards) }

// Dropped sums overwritten events across shards.
func (t *Tracer) Dropped() uint64 {
	var d uint64
	for _, s := range t.shards {
		d += s.Dropped()
	}
	return d
}

// Len sums retained events across shards.
func (t *Tracer) Len() int {
	var n int
	for _, s := range t.shards {
		n += s.Len()
	}
	return n
}

// Reset forgets all recorded events on every shard.
func (t *Tracer) Reset() {
	for _, s := range t.shards {
		s.reset()
	}
}

// Events merges every shard's retained events into canonical order:
// ascending sim time, then wall time, then shard ID, then record order
// within the shard. The order is deterministic for a deterministic
// simulation, so exported traces diff cleanly across runs.
func (t *Tracer) Events() []Event {
	type tagged struct {
		shard int
		pos   int
	}
	var out []Event
	var tags []tagged
	for _, s := range t.shards {
		base := len(out)
		out = s.events(out)
		for p := base; p < len(out); p++ {
			tags = append(tags, tagged{shard: s.id, pos: p - base})
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := out[idx[a]], out[idx[b]]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Wall != eb.Wall {
			return ea.Wall < eb.Wall
		}
		ta, tb := tags[idx[a]], tags[idx[b]]
		if ta.shard != tb.shard {
			return ta.shard < tb.shard
		}
		return ta.pos < tb.pos
	})
	sorted := make([]Event, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}
