package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sketch is the quantile backend a Histogram records into. It is
// satisfied by *measure.StreamingDistribution; obs declares the
// interface instead of importing measure so packages below measure in
// the dependency graph (p2p, sim) can still import obs.
type Sketch interface {
	AddN(v time.Duration, count uint64)
	N() int
	Sum() time.Duration
	Min() time.Duration
	Max() time.Duration
	Percentile(p float64) time.Duration
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records durations into a Sketch under a mutex. It is meant
// for control-plane rates (per-unit timings, per-window profiles), not
// per-message hot paths — those use the Tracer or flat counters.
type Histogram struct {
	mu sync.Mutex
	s  Sketch
}

// Observe records one duration.
func (h *Histogram) Observe(v time.Duration) { h.ObserveN(v, 1) }

// ObserveN records a duration count times.
func (h *Histogram) ObserveN(v time.Duration, count uint64) {
	h.mu.Lock()
	h.s.AddN(v, count)
	h.mu.Unlock()
}

// quantiles exposed per histogram, ascending.
var histQuantiles = []float64{0.5, 0.9, 0.99}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Metric names follow Prometheus conventions and may
// carry inline labels: `bcbpt_messages_total{command="inv"}`. Lookup is
// mutex-guarded; the returned handles are lock-free atomics, so callers
// resolve them once at setup and update them freely after.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	newSketch func() Sketch
}

// NewRegistry returns an empty registry. newSketch constructs the
// backend for each histogram (pass nil for a registry that uses no
// histograms; Histogram then panics, loudly, at registration).
func NewRegistry(newSketch func() Sketch) *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		newSketch: newSketch,
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if r.newSketch == nil {
			panic(fmt.Sprintf("obs: registry has no sketch constructor for histogram %q", name))
		}
		h = &Histogram{s: r.newSketch()}
		r.hists[name] = h
	}
	return h
}

// CounterValue is one (name, value) pair from CounterValues.
type CounterValue struct {
	Name  string
	Value uint64
}

// CounterValues snapshots every registered counter, sorted by name — for
// frontends that render human summaries without scraping the Prometheus
// text format.
func (r *Registry) CounterValues() []CounterValue {
	r.mu.Lock()
	out := make([]CounterValue, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, CounterValue{Name: name, Value: c.Value()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// baseName strips an inline label set: `foo{bar="x"}` → `foo`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges an extra label into a possibly-labeled name:
// withLabel(`foo{a="1"}`, `quantile`, `0.5`) → `foo{a="1",quantile="0.5"}`.
func withLabel(name, key, val string) string {
	label := key + `="` + val + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// withSuffix inserts a suffix before an inline label set:
// withSuffix(`foo{a="1"}`, `_sum`) → `foo_sum{a="1"}`.
func withSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name so output is
// deterministic. Histograms render as summaries: quantile series plus
// _sum (seconds) and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type line struct {
		name  string
		value string
	}
	type block struct {
		base  string
		typ   string
		lines []line
	}
	blocks := make(map[string]*block)
	get := func(base, typ string) *block {
		b, ok := blocks[base]
		if !ok {
			b = &block{base: base, typ: typ}
			blocks[base] = b
		}
		return b
	}

	r.mu.Lock()
	for name, c := range r.counters {
		b := get(baseName(name), "counter")
		b.lines = append(b.lines, line{name, strconv.FormatUint(c.Value(), 10)})
	}
	for name, g := range r.gauges {
		b := get(baseName(name), "gauge")
		b.lines = append(b.lines, line{name, strconv.FormatInt(g.Value(), 10)})
	}
	for name, h := range r.hists {
		b := get(baseName(name), "summary")
		h.mu.Lock()
		for _, q := range histQuantiles {
			b.lines = append(b.lines, line{
				withLabel(name, "quantile", strconv.FormatFloat(q, 'g', -1, 64)),
				formatSeconds(h.s.Percentile(q)),
			})
		}
		b.lines = append(b.lines, line{withSuffix(name, "_sum"), formatSeconds(h.s.Sum())})
		b.lines = append(b.lines, line{withSuffix(name, "_count"), strconv.Itoa(h.s.N())})
		h.mu.Unlock()
	}
	r.mu.Unlock()

	ordered := make([]*block, 0, len(blocks))
	for _, b := range blocks {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].base < ordered[j].base })
	for _, b := range ordered {
		sort.Slice(b.lines, func(i, j int) bool { return b.lines[i].name < b.lines[j].name })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b.base, b.typ); err != nil {
			return err
		}
		for _, l := range b.lines {
			if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatSeconds renders a duration as decimal seconds, Prometheus's
// base unit for time series.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
