package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeSketch is a minimal Sketch for registry tests.
type fakeSketch struct {
	n   uint64
	sum time.Duration
	min time.Duration
	max time.Duration
}

func (f *fakeSketch) AddN(v time.Duration, count uint64) {
	if f.n == 0 || v < f.min {
		f.min = v
	}
	if v > f.max {
		f.max = v
	}
	f.n += count
	f.sum += v * time.Duration(count)
}
func (f *fakeSketch) N() int                             { return int(f.n) }
func (f *fakeSketch) Sum() time.Duration                 { return f.sum }
func (f *fakeSketch) Min() time.Duration                 { return f.min }
func (f *fakeSketch) Max() time.Duration                 { return f.max }
func (f *fakeSketch) Percentile(p float64) time.Duration { return f.max }

func TestShardRingWrap(t *testing.T) {
	tr := NewTracer(4, 1)
	s := tr.Shard(0)
	for i := 0; i < 10; i++ {
		s.Record(Event{At: time.Duration(i), Kind: KindSend, P1: uint64(i)})
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("merged %d events, want 4", len(events))
	}
	// The four newest survive, in order.
	for i, ev := range events {
		if want := uint64(6 + i); ev.P1 != want {
			t.Fatalf("event %d: P1 = %d, want %d", i, ev.P1, want)
		}
	}
}

func TestTracerMergeCanonicalOrder(t *testing.T) {
	tr := NewTracer(16, 3)
	// Interleave: shard 2 records earlier sim times than shard 1.
	tr.Shard(1).Record(Event{At: 30, Kind: KindDeliver, P1: 1})
	tr.Shard(2).Record(Event{At: 10, Kind: KindSend, P1: 2})
	tr.Shard(0).Record(Event{At: 20, Kind: KindInject, P1: 3})
	tr.Shard(2).Record(Event{At: 20, Kind: KindDeliver, P1: 4})
	events := tr.Events()
	var order []uint64
	for _, ev := range events {
		order = append(order, ev.P1)
	}
	// Sort by At, ties broken by shard ID (shard 0 before shard 2).
	want := []uint64{2, 3, 4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(8, 2)
	tr.Shard(1).Record(Event{At: 1, Kind: KindSend})
	tr.Reset()
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatalf("Reset left %d events", tr.Len())
	}
}

func TestWriteTraceJSONShape(t *testing.T) {
	tr := NewTracer(16, 1)
	s := tr.Shard(0)
	s.Record(Event{At: 1500 * time.Nanosecond, Kind: KindSend, Code: 3, P1: 1, P2: 2, P3: 61})
	s.Record(Event{At: 2 * time.Microsecond, Kind: KindWindowOpen, P1: 0, P2: 5000})
	s.Record(Event{Wall: 12345, Kind: KindLeaseGrant, P1: 7})
	var buf bytes.Buffer
	if err := tr.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
			Args map[string]uint64
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d trace events, want 3", len(doc.TraceEvents))
	}
	first := doc.TraceEvents[1] // lease event sorts first (At 0), send second
	if !strings.HasPrefix(first.Name, "send/") {
		t.Fatalf("send event name = %q, want send/<command>", first.Name)
	}
	if first.Ts != 1.5 {
		t.Fatalf("send ts = %v µs, want 1.5", first.Ts)
	}
	win := doc.TraceEvents[2]
	if win.Ph != "X" || win.Dur != 5 {
		t.Fatalf("window event ph=%q dur=%v, want X / 5µs", win.Ph, win.Dur)
	}
}

func TestSpoolRoundTrip(t *testing.T) {
	tr := NewTracer(16, 2)
	tr.Shard(0).Record(Event{At: 5, Kind: KindFirstSeen, P1: 9, P2: 0xdeadbeef})
	tr.Shard(1).Record(Event{At: 3, Wall: 77, Kind: KindDeliver, Code: 4, P1: 1, P2: 2, P3: 3})
	var buf bytes.Buffer
	if err := tr.WriteSpool(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("%d events round-tripped, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := ReadSpool(bytes.NewReader([]byte("NOTMAGIC00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1024, 1)
	s := tr.Shard(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Record(Event{At: 1, Kind: KindSend, Code: 2, P1: 3, P2: 4, P3: 5})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry(func() Sketch { return &fakeSketch{} })
	r.Counter(`bcbpt_messages_total{command="inv"}`).Add(41)
	r.Counter(`bcbpt_messages_total{command="inv"}`).Inc()
	r.Counter(`bcbpt_messages_total{command="tx"}`).Add(7)
	r.Gauge("bcbpt_fleet_units_pending").Set(12)
	h := r.Histogram(`bcbpt_unit_run_seconds{campaign="bitcoin"}`)
	h.Observe(2 * time.Second)
	h.Observe(4 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bcbpt_fleet_units_pending gauge\n",
		"bcbpt_fleet_units_pending 12\n",
		"# TYPE bcbpt_messages_total counter\n",
		`bcbpt_messages_total{command="inv"} 42` + "\n",
		`bcbpt_messages_total{command="tx"} 7` + "\n",
		"# TYPE bcbpt_unit_run_seconds summary\n",
		`bcbpt_unit_run_seconds{campaign="bitcoin",quantile="0.5"} 4` + "\n",
		`bcbpt_unit_run_seconds_sum{campaign="bitcoin"} 6` + "\n",
		`bcbpt_unit_run_seconds_count{campaign="bitcoin"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition is not deterministic")
	}
}
