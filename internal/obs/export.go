package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/wire"
)

// eventName renders the display name for a trace export: message kinds
// carry the wire command ("send/inv"), everything else the bare kind.
func eventName(ev Event) string {
	switch ev.Kind {
	case KindSend, KindDeliver, KindDrop, KindLoss:
		return ev.Kind.String() + "/" + wire.Command(ev.Code).String()
	default:
		return ev.Kind.String()
	}
}

// eventCat groups events into Perfetto categories.
func eventCat(k Kind) string {
	switch k {
	case KindSend, KindDeliver, KindDrop, KindLoss:
		return "p2p"
	case KindFirstSeen, KindInject:
		return "measure"
	case KindWindowOpen, KindWindowBarrier, KindWindowCommit:
		return "pdes"
	case KindLeaseGrant, KindLeaseRenew, KindLeaseExpire, KindLeaseCommit:
		return "fleet"
	default:
		return "obs"
	}
}

// WriteTraceJSON exports the merged event stream as Chrome trace_event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Timestamps are microseconds of simulation time; events recorded
// outside the simulation (At zero, Wall set) fall back to wall time
// relative to the earliest wall stamp. Window-open events are emitted
// as complete ("X") slices spanning their lookahead window; everything
// else is an instant.
//
// The JSON is handwritten field-by-field — no reflection, no maps — so
// the byte output is deterministic and cheap even for full rings.
func (t *Tracer) WriteTraceJSON(w io.Writer) error {
	events := t.Events()
	var wallBase int64
	for _, ev := range events {
		if ev.At == 0 && ev.Wall != 0 && (wallBase == 0 || ev.Wall < wallBase) {
			wallBase = ev.Wall
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	var scratch [32]byte
	for i, ev := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		// tid is P1 — the source node for message events, giving one
		// Perfetto track per sender.
		ph, tid := "i", ev.P1
		if ev.Kind == KindWindowOpen {
			ph = "X"
		}
		tsNanos := int64(ev.At)
		if tsNanos == 0 && ev.Wall != 0 {
			tsNanos = ev.Wall - wallBase
		}
		bw.WriteString(`{"name":"`)
		bw.WriteString(eventName(ev))
		bw.WriteString(`","cat":"`)
		bw.WriteString(eventCat(ev.Kind))
		bw.WriteString(`","ph":"`)
		bw.WriteString(ph)
		bw.WriteString(`","ts":`)
		bw.Write(appendMicros(scratch[:0], tsNanos))
		if ev.Kind == KindWindowOpen {
			bw.WriteString(`,"dur":`)
			bw.Write(appendMicros(scratch[:0], int64(ev.P2)))
		} else if ph == "i" {
			bw.WriteString(`,"s":"p"`)
		}
		bw.WriteString(`,"pid":0,"tid":`)
		bw.Write(strconv.AppendUint(scratch[:0], tid, 10))
		bw.WriteString(`,"args":{"p1":`)
		bw.Write(strconv.AppendUint(scratch[:0], ev.P1, 10))
		bw.WriteString(`,"p2":`)
		bw.Write(strconv.AppendUint(scratch[:0], ev.P2, 10))
		bw.WriteString(`,"p3":`)
		bw.Write(strconv.AppendUint(scratch[:0], ev.P3, 10))
		bw.WriteString(`}}`)
	}
	if _, err := bw.WriteString(`],"otherData":{"droppedEvents":` +
		strconv.FormatUint(t.Dropped(), 10) + `}}`); err != nil {
		return err
	}
	return bw.Flush()
}

// appendMicros renders nanos as decimal microseconds with three
// fractional digits ("12.345"), avoiding float formatting entirely.
func appendMicros(dst []byte, nanos int64) []byte {
	if nanos < 0 {
		dst = append(dst, '-')
		nanos = -nanos
	}
	dst = strconv.AppendInt(dst, nanos/1000, 10)
	frac := nanos % 1000
	dst = append(dst, '.', byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return dst
}

// Binary spool format: an 8-byte magic, a little-endian uint64 event
// count, then fixed 42-byte records (At, Wall int64; P1..P3 uint64;
// Kind, Code uint8). ~23x denser than the JSON and loadable without a
// JSON parser for post-hoc analysis.
const spoolMagic = "BCBPTTR1"

const spoolRecordSize = 8*5 + 2

// WriteSpool exports the merged event stream in the compact binary
// spool format.
func (t *Tracer) WriteSpool(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(spoolMagic); err != nil {
		return err
	}
	var rec [spoolRecordSize]byte
	binary.LittleEndian.PutUint64(rec[:8], uint64(len(events)))
	bw.Write(rec[:8])
	for _, ev := range events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(int64(ev.At)))
		binary.LittleEndian.PutUint64(rec[8:], uint64(ev.Wall))
		binary.LittleEndian.PutUint64(rec[16:], ev.P1)
		binary.LittleEndian.PutUint64(rec[24:], ev.P2)
		binary.LittleEndian.PutUint64(rec[32:], ev.P3)
		rec[40] = byte(ev.Kind)
		rec[41] = ev.Code
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpool parses a binary spool back into events, validating the
// magic and record framing.
func ReadSpool(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: spool header: %w", err)
	}
	if string(hdr[:8]) != spoolMagic {
		return nil, fmt.Errorf("obs: bad spool magic %q", hdr[:8])
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	events := make([]Event, 0, n)
	var rec [spoolRecordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("obs: spool record %d of %d: %w", i, n, err)
		}
		events = append(events, Event{
			At:   time.Duration(binary.LittleEndian.Uint64(rec[0:])),
			Wall: int64(binary.LittleEndian.Uint64(rec[8:])),
			P1:   binary.LittleEndian.Uint64(rec[16:]),
			P2:   binary.LittleEndian.Uint64(rec[24:]),
			P3:   binary.LittleEndian.Uint64(rec[32:]),
			Kind: Kind(rec[40]),
			Code: rec[41],
		})
	}
	return events, nil
}
