package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Maporder flags `range` over a map whose body does order-sensitive
// work: scheduling or delivering events, writing output, or building a
// slice that is never sorted afterwards in the same function. Go map
// iteration order is deliberately randomized, so any of these turns
// into run-to-run nondeterminism that the differential suites and
// golden CSVs exist to prevent.
//
// The sanctioned idioms pass untouched: collect-keys-then-sort loops
// (the append is followed by a sort.*/slices.Sort* call on the same
// slice later in the function), pure aggregation (sums, counts, min/max
// with explicit tie-breaks), and building another map or set.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive work (event scheduling, output writes, unsorted slice building) " +
		"inside range-over-map; sort keys first or aggregate order-independently",
	Run: runMaporder,
}

// schedulerOrderMethods are *sim.Scheduler methods whose relative call
// order is observable in dispatch order (same-tick events dispatch in
// insertion sequence).
var schedulerOrderMethods = map[string]bool{
	"At": true, "After": true, "AtCall": true, "AfterCall": true,
}

// p2pOrderMethods are p2p Network/Node entry points that enqueue
// deliveries or mutate adjacency; calling them in map order reorders
// the event stream.
var p2pOrderMethods = map[string]bool{
	// *p2p.Network
	"Connect": true, "ConnectUnbounded": true, "Disconnect": true,
	"AddNode": true, "RemoveNode": true,
	"send": true, "deliver": true, "connect": true, "teardown": true,
	// *p2p.Node
	"Send": true, "SubmitTx": true, "SubmitBlock": true,
	"Probe": true, "ProbeN": true, "announce": true, "announceBlock": true,
}

// fmtOutputFuncs are fmt package functions that emit formatted output.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names that append to an ordered sink when
// invoked on a writer-shaped receiver (io.Writer implementations, CSV
// writers, hash.Hash, string builders).
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteAll": true,
}

// encoderTypes are stream-encoder types whose Encode method emits in
// call order.
var encoderTypes = map[[2]string]bool{
	{"encoding/json", "Encoder"}: true,
	{"encoding/gob", "Encoder"}:  true,
	{"encoding/xml", "Encoder"}:  true,
}

func runMaporder(pass *analysis.Pass) error {
	if !mapOrderScope(pass.Path()) {
		return nil
	}
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *analysis.Pass, scope *ast.BlockStmt) {
	info := pass.TypesInfo()
	ast.Inspect(scope, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, scope, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, scope *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo()
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := orderSensitiveCall(info, n); why != "" {
				pass.Reportf(n.Pos(),
					"%s inside range over map (iteration order is randomized): sort the keys first or restructure order-independently",
					why)
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, scope, rng, n)
		}
		return true
	})
}

// orderSensitiveCall classifies a call whose per-iteration order is
// observable, returning a short description or "".
func orderSensitiveCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if pkg := funcPkgPath(fn); pkg == "fmt" && fmtOutputFuncs[name] {
		return "output write fmt." + name
	}
	pkgPath, typeName, isMethod := recvNamed(fn)
	if !isMethod {
		return ""
	}
	switch {
	case pkgPath == modulePath+"/internal/sim" && typeName == "Scheduler" && schedulerOrderMethods[name]:
		return "event-scheduling call (*sim.Scheduler)." + name
	case pkgPath == modulePath+"/internal/p2p" && (typeName == "Network" || typeName == "Node") && p2pOrderMethods[name]:
		return "event-ordering call (*p2p." + typeName + ")." + name
	case encoderTypes[[2]string{pkgPath, typeName}] && name == "Encode":
		return "stream encode (*" + pkgPath + "." + typeName + ").Encode"
	case writerMethods[name] && hasWriteMethod(fn):
		return "ordered sink write (*" + typeName + ")." + name
	}
	return ""
}

// hasWriteMethod reports whether fn's receiver type also has a Write
// method — the signature of an ordered byte sink (io.Writer, hash.Hash,
// bytes.Buffer, csv.Writer) as opposed to an incidental WriteX name.
func hasWriteMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), "Write")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// checkMapRangeAppend flags `x = append(x, ...)` in a map-range body
// when x outlives the loop and is never sorted later in the enclosing
// function — the slice inherits map iteration order.
func checkMapRangeAppend(pass *analysis.Pass, scope *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo()
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objOf(info, lhs)
		if obj == nil {
			continue
		}
		// Slices born inside the loop body don't carry order out of it.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if sortedAfter(info, scope, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside range over map builds a map-ordered slice: sort it before use (sort.*/slices.Sort*) or iterate sorted keys",
			lhs.Name)
	}
}

// sortFuncs are the package-level sorting entry points recognized as
// restoring determinism to a collected slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether some sort call mentioning obj appears in
// the enclosing function after the range loop ends.
func sortedAfter(info *types.Info, scope *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		names := sortFuncs[funcPkgPath(fn)]
		if names == nil || !names[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(info, arg, obj) {
				found = true
				break
			}
		}
		return true
	})
	return found
}
