package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Seedflow is a conservative taint analysis over seed values in the
// deterministic packages: every explicit-seed RNG sink — the integer
// arguments of math/rand.NewSource, math/rand/v2.NewPCG/NewChaCha8, and
// sim.KeyedSource.SeedKey/Seed — must be fed from the replication seed
// chain (sim.DeriveSeed, sim.Mix64/MixKey2/MixKey3, or values derived
// from parameters/fields that carry chained seeds). Flagged classes:
//
//   - fresh: a literal or otherwise constant seed, including arithmetic
//     over nothing but constants and loop counters. Fresh seeds make
//     replications share (or trivially correlate) their streams instead
//     of deriving independent ones from the campaign seed.
//   - wall-clock: anything computed from time.Now/Since/Until or a
//     time.Time Unix* reading — nondeterministic by construction.
//
// Values of unknown provenance (parameters, struct fields, results of
// other calls) pass: the analysis flags only what it can prove fresh or
// clock-derived, so mixing an unknown base with a constant offset
// (`spec.Seed + 999`) stays clean while `NewSource(42)` and
// `NewSource(time.Now().UnixNano())` do not.
var Seedflow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flag literal, arithmetic-fresh, or wall-clock seeds at explicit-seed RNG sinks in " +
		"deterministic packages; derive seeds from sim.DeriveSeed / sim.MixKey chains",
	Run: runSeedflow,
}

// The seed lattice, ordered by join escalation: a variable bound both
// fresh and unknown is unknown (some binding had real provenance), any
// derived binding marks the chain, and wall clock dominates everything.
const (
	seedFresh = iota
	seedUnknown
	seedDerived
	seedWallClock
)

func joinSeed(a, b int) int { return max(a, b) }

// seedChainFuncs are the sim package functions that mint chain-derived
// seeds.
var seedChainFuncs = map[string]bool{
	"DeriveSeed": true, "Mix64": true, "MixKey2": true, "MixKey3": true,
}

// wallClockMethods are the time.Time / time.Duration readings that turn
// a value wall-clock-tainted.
var timeTimeMethods = map[string]bool{
	"Unix": true, "UnixNano": true, "UnixMilli": true, "UnixMicro": true,
}
var timeDurationMethods = map[string]bool{
	"Nanoseconds": true, "Microseconds": true, "Milliseconds": true, "Seconds": true,
}

func runSeedflow(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	lintableFuncs(pass, func(fd *ast.FuncDecl) {
		checkSeedflow(pass, info, fd.Body)
	})
	return nil
}

func checkSeedflow(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	var eval func(env analysis.Env, e ast.Expr) int
	eval = func(env analysis.Env, e ast.Expr) int {
		e = ast.Unparen(e)
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return seedFresh // constant-folded: a literal seed however spelled
		}
		switch t := e.(type) {
		case *ast.Ident:
			obj := objOf(info, t)
			if obj == nil {
				return seedUnknown
			}
			if v, ok := env[obj]; ok {
				return v
			}
			return seedUnknown // parameter, field, global: provenance unknown
		case *ast.UnaryExpr:
			return eval(env, t.X)
		case *ast.BinaryExpr:
			return joinSeed(eval(env, t.X), eval(env, t.Y))
		case *ast.CallExpr:
			if tv, ok := info.Types[t.Fun]; ok && tv.IsType() {
				if len(t.Args) == 1 {
					return eval(env, t.Args[0]) // conversion: provenance passes through
				}
				return seedUnknown
			}
			fn := calleeFunc(info, t)
			if fn == nil {
				return seedUnknown
			}
			pkg := funcPkgPath(fn)
			if pkg == modulePath+"/internal/sim" && seedChainFuncs[fn.Name()] {
				return seedDerived
			}
			if pkg == "time" && wallClockFuncs[fn.Name()] {
				return seedWallClock
			}
			if p, typ, ok := recvNamed(fn); ok && p == "time" {
				if typ == "Time" && timeTimeMethods[fn.Name()] {
					return seedWallClock
				}
				if typ == "Duration" && timeDurationMethods[fn.Name()] {
					// Duration readings inherit the duration's provenance
					// (time.Since(t0).Nanoseconds() is wall clock; a
					// virtual-time difference is not).
					if sel, ok := ast.Unparen(t.Fun).(*ast.SelectorExpr); ok {
						return eval(env, sel.X)
					}
				}
			}
			return seedUnknown
		}
		return seedUnknown
	}

	env := analysis.FlowLocals(info, body, analysis.FlowHooks{
		Eval: eval,
		Join: joinSeed,
		Range: func(_ analysis.Env, _ ast.Expr, isKey bool) int {
			if isKey {
				return seedFresh // loop indices are arithmetic-fresh
			}
			return seedUnknown
		},
	})

	flag := func(arg ast.Expr, sink string) {
		switch eval(env, arg) {
		case seedFresh:
			pass.Reportf(arg.Pos(),
				"%s seeded with a literal/arithmetic-fresh value: derive the seed from the replication chain (sim.DeriveSeed / sim.MixKey2/MixKey3)",
				sink)
		case seedWallClock:
			pass.Reportf(arg.Pos(),
				"%s seeded from the wall clock: deterministic packages must derive seeds from the replication chain (sim.DeriveSeed / sim.MixKey2/MixKey3)",
				sink)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isPkgFunc(fn, "math/rand", "NewSource") && len(call.Args) == 1:
			flag(call.Args[0], "rand.NewSource")
		case isPkgFunc(fn, "math/rand/v2", "NewPCG") && len(call.Args) == 2:
			flag(call.Args[0], "rand.NewPCG")
			flag(call.Args[1], "rand.NewPCG")
		case isPkgFunc(fn, "math/rand/v2", "NewChaCha8") && len(call.Args) == 1:
			flag(call.Args[0], "rand.NewChaCha8")
		case isMethodOn(fn, modulePath+"/internal/sim", "KeyedSource", "SeedKey") && len(call.Args) == 1:
			flag(call.Args[0], "KeyedSource.SeedKey")
		case isMethodOn(fn, modulePath+"/internal/sim", "KeyedSource", "Seed") && len(call.Args) == 1:
			flag(call.Args[0], "KeyedSource.Seed")
		}
		return true
	})
}
