package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// Lockio flags file/network I/O, JSON encode/decode, and sleeps
// reachable while a sync.Mutex/RWMutex is held, in the packages listed
// in lockIOPkgs. A coordinator that touches the disk or a socket under
// its queue mutex serializes every concurrent lease poll behind that
// syscall — the bug class fixed by hand twice in PRs 4–5 (shard decode
// under the commit lock, spool writes stalling lease traffic).
//
// Detection is package-local but transitive: a function that performs
// I/O directly (or calls a same-package function that does) is treated
// as an I/O call at its call sites. Lock regions are tracked lexically
// within each function: from <expr>.Lock()/.RLock() to the matching
// .Unlock()/.RUnlock(), with `defer <expr>.Unlock()` holding to the end
// of the function. Calls inside `go` statements and non-invoked
// function literals run outside the lexical region and are not charged
// to it.
//
// The one sanctioned exception in-tree — os.Rename as an atomic publish
// under the queue mutex, with the data written beforehand outside the
// lock — carries a //bcbptlint:allow lockio annotation at the site.
var Lockio = &analysis.Analyzer{
	Name: "lockio",
	Doc: "flag file/network I/O and JSON encode/decode reachable while a sync mutex is held " +
		"in fleet packages; move the work outside the critical section",
	Run: runLockio,
}

// ioPkgFuncs classifies package-level functions that block on the
// outside world (or burn unbounded CPU marshalling) as I/O.
var ioPkgFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
		"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
		"ReadDir": true, "Stat": true, "Lstat": true, "Chmod": true, "Truncate": true,
	},
	"io":            {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "WriteString": true, "ReadFull": true},
	"net/http":      {"Get": true, "Head": true, "Post": true, "PostForm": true},
	"net":           {"Dial": true, "DialTimeout": true, "Listen": true},
	"encoding/json": {"Marshal": true, "MarshalIndent": true, "Unmarshal": true},
	"time":          {"Sleep": true},
	"path/filepath": {"Glob": true, "Walk": true, "WalkDir": true},
}

// ioMethodTypes classifies methods by receiver type: "*" means any
// method on the type blocks (files, sockets), otherwise the named set.
var ioMethodTypes = map[[2]string]map[string]bool{
	{"os", "File"}:                 nil, // any method
	{"net", "Conn"}:                nil,
	{"net", "TCPConn"}:             nil,
	{"net", "Listener"}:            nil,
	{"net/http", "ResponseWriter"}: nil,
	{"net/http", "Client"}:         {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	{"encoding/json", "Encoder"}:   {"Encode": true},
	{"encoding/json", "Decoder"}:   {"Decode": true},
}

func runLockio(pass *analysis.Pass) error {
	if !lockIOPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()

	// Pass 1: classify package functions that reach I/O, to a fixpoint.
	type declFunc struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []declFunc
	byFunc := map[*types.Func]*ast.FuncDecl{}
	lintableFuncs(pass, func(fd *ast.FuncDecl) {
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			decls = append(decls, declFunc{fn, fd})
			byFunc[fn] = fd
		}
	})
	sort.Slice(decls, func(i, j int) bool { return decls[i].decl.Pos() < decls[j].decl.Pos() })

	reaches := map[*types.Func]string{} // fn → description of the I/O it reaches
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if _, done := reaches[d.fn]; done {
				continue
			}
			what := firstIOCall(info, d.decl.Body, reaches, byFunc)
			if what != "" {
				reaches[d.fn] = what
				changed = true
			}
		}
	}

	// Pass 2: walk lock regions and flag I/O-reaching calls inside them.
	w := &lockWalker{pass: pass, info: info, reaches: reaches, byFunc: byFunc}
	lintableFuncs(pass, func(fd *ast.FuncDecl) { w.walkBody(fd.Body) })
	return nil
}

// firstIOCall returns a description of the first direct or transitive
// I/O call in body (source order), or "". Function-literal bodies and
// `go` statements are skipped: their work does not run on the caller's
// stack inside the caller's critical section.
func firstIOCall(info *types.Info, body *ast.BlockStmt, reaches map[*types.Func]string, byFunc map[*types.Func]*ast.FuncDecl) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if w := classifyIOCall(info, n, reaches, byFunc); w != "" {
				what = w
			}
		}
		return true
	})
	return what
}

// classifyIOCall describes the I/O performed or reached by call, or "".
func classifyIOCall(info *types.Info, call *ast.CallExpr, reaches map[*types.Func]string, byFunc map[*types.Func]*ast.FuncDecl) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if names, ok := ioPkgFuncs[funcPkgPath(fn)]; ok && names[fn.Name()] {
		if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() == nil {
			return funcPkgPath(fn) + "." + fn.Name()
		}
	}
	if pkgPath, typeName, ok := recvNamed(fn); ok {
		if names, hit := ioMethodTypes[[2]string{pkgPath, typeName}]; hit && (names == nil || names[fn.Name()]) {
			return "(" + typeName + ")." + fn.Name()
		}
	}
	if _, local := byFunc[fn]; local {
		if what, ok := reaches[fn]; ok {
			return fn.Name() + " (which reaches " + what + ")"
		}
	}
	return ""
}

// heldLock is one lexically held mutex.
type heldLock struct {
	key  string // source text of the receiver expression, e.g. "c.mu"
	line int
}

type lockWalker struct {
	pass    *analysis.Pass
	info    *types.Info
	reaches map[*types.Func]string
	byFunc  map[*types.Func]*ast.FuncDecl
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	w.walkStmts(body.List, nil)
}

// walkStmts walks a statement list in source order, threading the held
// set through lock/unlock transitions; nested control flow gets a copy
// so branch-local releases don't leak out.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := w.lockTransition(s.X); ok {
			if acquire {
				return append(append([]heldLock{}, held...), heldLock{key: key, line: w.pass.Fset().Position(s.Pos()).Line})
			}
			return releaseLock(held, key)
		}
		w.checkCalls(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() is the canonical release idiom: the lock
		// stays held for the remainder of the walk, which matches the
		// function's actual critical section. Any other deferred call
		// runs before that unlock, so it is still charged to the region.
		if _, acquire, ok := w.lockTransition(s.Call); ok && !acquire {
			return held
		}
		w.checkCalls(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkCalls(e, held)
		}
	case *ast.DeclStmt:
		w.checkCalls(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkCalls(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.checkCalls(s.Cond, held)
		w.walkStmts(s.Body.List, held)
		if s.Else != nil {
			w.walkStmt(s.Else, held)
		}
	case *ast.BlockStmt:
		held = w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkCalls(s.Cond, held)
		}
		w.walkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		w.checkCalls(s.X, held)
		w.walkStmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkCalls(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// Runs on its own goroutine outside this critical section.
	}
	return held
}

// lockTransition recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver's source
// text and whether the call acquires.
func (w *lockWalker) lockTransition(e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", false, false
	}
	pkgPath, typeName, named := recvNamed(fn)
	if !named || pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

func releaseLock(held []heldLock, key string) []heldLock {
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		if h.key != key {
			out = append(out, h)
		}
	}
	return out
}

// checkCalls reports every I/O-reaching call lexically inside n while
// any lock is held. Function literals and `go` statements are skipped —
// they execute outside this critical section.
func (w *lockWalker) checkCalls(n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if what := classifyIOCall(w.info, node, w.reaches, w.byFunc); what != "" {
				h := held[len(held)-1]
				w.pass.Reportf(node.Pos(),
					"I/O call %s while %s is held (locked at line %d): move it outside the critical section",
					what, h.key, h.line)
			}
		}
		return true
	})
}
