package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Lockio flags file/network I/O, JSON encode/decode, and sleeps
// reachable while a sync.Mutex/RWMutex is held, in the packages listed
// in lockIOPkgs. A coordinator that touches the disk or a socket under
// its queue mutex serializes every concurrent lease poll behind that
// syscall — the bug class fixed by hand twice in PRs 4–5 (shard decode
// under the commit lock, spool writes stalling lease traffic).
//
// Detection is package-local but transitive, built on the shared
// interprocedural engine: analysis.CallGraph.Reaches classifies a
// function that performs I/O directly (or calls a same-package function
// that does) so it counts as an I/O call at its call sites, and
// analysis.WalkLockRegions tracks the lexical critical sections — from
// <expr>.Lock()/.RLock() to the matching .Unlock()/.RUnlock(), with
// `defer <expr>.Unlock()` holding to the end of the function. Calls
// inside `go` statements and non-invoked function literals run outside
// the lexical region and are not charged to it.
//
// The one sanctioned exception in-tree — os.Rename as an atomic publish
// under the queue mutex, with the data written beforehand outside the
// lock — carries a //bcbptlint:allow lockio annotation at the site.
var Lockio = &analysis.Analyzer{
	Name: "lockio",
	Doc: "flag file/network I/O and JSON encode/decode reachable while a sync mutex is held " +
		"in fleet packages; move the work outside the critical section",
	Run: runLockio,
}

// ioPkgFuncs classifies package-level functions that block on the
// outside world (or burn unbounded CPU marshalling) as I/O.
var ioPkgFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
		"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
		"ReadDir": true, "Stat": true, "Lstat": true, "Chmod": true, "Truncate": true,
	},
	"io":            {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "WriteString": true, "ReadFull": true},
	"net/http":      {"Get": true, "Head": true, "Post": true, "PostForm": true},
	"net":           {"Dial": true, "DialTimeout": true, "Listen": true},
	"encoding/json": {"Marshal": true, "MarshalIndent": true, "Unmarshal": true},
	"time":          {"Sleep": true},
	"path/filepath": {"Glob": true, "Walk": true, "WalkDir": true},
}

// ioMethodTypes classifies methods by receiver type: "*" means any
// method on the type blocks (files, sockets), otherwise the named set.
var ioMethodTypes = map[[2]string]map[string]bool{
	{"os", "File"}:                 nil, // any method
	{"net", "Conn"}:                nil,
	{"net", "TCPConn"}:             nil,
	{"net", "Listener"}:            nil,
	{"net/http", "ResponseWriter"}: nil,
	{"net/http", "Client"}:         {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	{"encoding/json", "Encoder"}:   {"Encode": true},
	{"encoding/json", "Decoder"}:   {"Decode": true},
}

func runLockio(pass *analysis.Pass) error {
	if !lockIOPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()

	// Pass 1: classify package functions that reach I/O, to a fixpoint.
	// sameStack: work inside `go` statements and non-invoked literals
	// does not run inside the caller's critical section.
	g := analysis.NewCallGraph(pass, true)
	direct := func(call *ast.CallExpr) string { return directIOCall(info, call) }
	reaches := g.Reaches(direct)

	// Pass 2: walk lock regions and flag I/O-reaching calls inside them.
	for _, fd := range g.Funcs() {
		analysis.WalkLockRegions(pass.Fset(), info, fd.Body, func(n ast.Node, held []analysis.HeldLock) {
			if len(held) == 0 {
				return
			}
			ast.Inspect(n, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					if what := g.Describe(node, direct, reaches); what != "" {
						h := held[len(held)-1]
						pass.Reportf(node.Pos(),
							"I/O call %s while %s is held (locked at line %d): move it outside the critical section",
							what, h.Key, h.Line)
					}
				}
				return true
			})
		})
	}
	return nil
}

// directIOCall describes the I/O performed by call itself (not through
// same-package callees — the call graph layers that on), or "".
func directIOCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if names, ok := ioPkgFuncs[funcPkgPath(fn)]; ok && names[fn.Name()] {
		if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() == nil {
			return funcPkgPath(fn) + "." + fn.Name()
		}
	}
	if pkgPath, typeName, ok := recvNamed(fn); ok {
		if names, hit := ioMethodTypes[[2]string{pkgPath, typeName}]; hit && (names == nil || names[fn.Name()]) {
			return "(" + typeName + ")." + fn.Name()
		}
	}
	return ""
}
