package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full bcbpt-lint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detrand, Maporder, Hotalloc, Lockio,
		Partiso, Seedflow, Hookcost, Ctxpoll,
	}
}

// Names returns every analyzer name valid in a //bcbptlint:allow
// directive.
func Names() []string {
	as := Analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the whole suite over one loaded package.
func Check(pkg *analysis.Package) ([]analysis.Diagnostic, error) {
	return analysis.Run(pkg, Analyzers(), Names())
}
