package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the defining package path of fn, or "" for
// builtins/error methods.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function pkg.name
// (no receiver).
func isPkgFunc(fn *types.Func, pkg, name string) bool {
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != pkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the package path and type name of fn's receiver's
// named type (pointers dereferenced), or ok=false for non-methods and
// methods on unnamed receivers.
func recvNamed(fn *types.Func) (pkgPath, typeName string, ok bool) {
	if fn == nil {
		return "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, nok := t.(*types.Named)
	if !nok {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isMethodOn reports whether fn is a method named name on pkg.typeName.
func isMethodOn(fn *types.Func, pkg, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	p, t, ok := recvNamed(fn)
	return ok && p == pkg && t == typeName
}

// lintableFuncs yields every function body in the package's lintable
// files: declared functions and methods (function literals inside them
// are visited as part of the enclosing body by inspecting it).
func lintableFuncs(pass *analysis.Pass, visit func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// mentionsObj reports whether expr references obj anywhere.
func mentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
