// Package lint hosts bcbpt-lint: the repo-specific static analyzers
// that machine-enforce the invariants every shipped result depends on —
// figure CSVs byte-identical across worker counts, fleet merges
// bit-identical to serial sweeps, flood hot paths holding their pinned
// allocation budgets, and the fleet coordinator never doing I/O while
// its queue mutex is held.
//
// Each analyzer is scoped by import path through the tables in this
// file, so "which packages must be deterministic" is declared exactly
// once. See the README section "Static analysis & determinism rules"
// for the analyzer-by-analyzer contract and the //bcbptlint:allow
// escape-hatch policy.
package lint

// modulePath is this repo's module path; the scope tables below and the
// analyzers' own-package checks key off it.
const modulePath = "repro"

// deterministicPkgs lists the packages whose observable behavior must be
// a pure function of their seeds: they feed the differential suites
// (ReferenceScheduler / ReferenceNetwork), the figure golden CSVs, and
// the fleet's bit-identical merges. Wall-clock reads and the global
// math/rand source are banned here (detrand), as is order-sensitive
// work inside unsorted map iteration (maporder).
//
// internal/fleet and internal/netnode are deliberately absent: the
// fleet schedules real work on real clocks (lease TTLs are wall-clock
// failure-detection windows) and netnode fronts live sockets.
var deterministicPkgs = map[string]bool{
	modulePath + "/internal/sim":        true,
	modulePath + "/internal/p2p":        true,
	modulePath + "/internal/chain":      true,
	modulePath + "/internal/experiment": true,
	modulePath + "/internal/measure":    true,
	modulePath + "/internal/topology":   true,
	modulePath + "/internal/geo":        true,
	modulePath + "/internal/latency":    true,
	modulePath + "/internal/churn":      true,
	modulePath + "/internal/attack":     true,
	// obs records events stamped with simulation time: the tracer and
	// registry live inside deterministic packages' hot paths, so any
	// wall-clock read here would leak into trace output ordering. Wall
	// timestamps enter only through caller-supplied values (fleet) or
	// injected clocks.
	modulePath + "/internal/obs": true,
}

// hotPathPkgs lists the packages whose steady state is benchmarked at a
// pinned allocs/op budget (benchdiff.sh holds the line at zero growth).
// Closure-form scheduling and fmt string building are banned here
// (hotalloc) in favor of the pooled AtCall/AfterCall + message-pool
// idioms PR 3/6 established.
var hotPathPkgs = map[string]bool{
	modulePath + "/internal/p2p": true,
}

// lockIOPkgs lists the packages where file/network I/O and JSON
// encode/decode must never be reachable while a sync mutex is held
// (lockio) — the coordinator-stall bug class fixed by hand twice in
// PRs 4–5.
var lockIOPkgs = map[string]bool{
	modulePath + "/internal/fleet": true,
}

// mapOrderPkgs scopes maporder: every deterministic package, plus the
// fleet — whose merges and spool publishes are order-contracted even
// though its clocks are real.
func mapOrderScope(path string) bool {
	return deterministicPkgs[path] || lockIOPkgs[path]
}

// partIsoPkgs scopes partiso: the packages carrying the PDES
// parallel-dispatch surface, where the single-writer discipline (every
// delivery touches only partition-local state through its dispatch
// context) is what makes parallel output bit-identical to serial.
var partIsoPkgs = map[string]bool{
	modulePath + "/internal/p2p": true,
}

// hookCostPkgs scopes hookcost: the packages whose hot paths carry obs
// hook call sites pinned non-perturbing by the PR 9 bench-parity and
// traced-vs-untraced golden-CSV gates. A hook site here must stay
// nil-guarded and allocation-free or tracing stops being zero-cost when
// disabled and starts perturbing allocs/op when enabled.
var hookCostPkgs = map[string]bool{
	modulePath + "/internal/p2p":     true,
	modulePath + "/internal/sim":     true,
	modulePath + "/internal/measure": true,
}

// ctxPollPkgs scopes ctxpoll: packages whose event/run loops must stay
// cancelable — the PR 2 contract that every long build/run loop polls
// its context on a bounded cadence.
func ctxPollScope(path string) bool {
	return deterministicPkgs[path]
}
