package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package-level time functions that read or react
// to the machine clock. Simulation code runs on virtual time
// (sim.Scheduler.Now); any of these in a deterministic package makes
// output depend on host scheduling.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededConstructors are, per rand package, the package-level functions
// that do NOT draw from the process-global source: constructors for
// explicitly seeded generators, which are exactly the sanctioned idiom.
// Matching is by full identity — defining package, name, and a first
// result whose named type is declared by that same rand package — so a
// look-alike helper that merely shares a constructor's name (or a
// future rand function that returns something other than a generator)
// cannot claim the exemption.
var seededConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true},
}

// isSeededConstructor applies the seededConstructors identity check.
func isSeededConstructor(fn *types.Func) bool {
	names, ok := seededConstructors[funcPkgPath(fn)]
	if !ok || !names[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Results().Len() == 0 {
		return false
	}
	t := sig.Results().At(0).Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == funcPkgPath(fn)
}

// Detrand bans wall-clock reads and the global math/rand source in the
// deterministic packages (see deterministicPkgs). Every replication
// must be a pure function of its seed chain: draw randomness from a
// seed-chained *rand.Rand (sim.Streams / sim.DeriveSeed) and timestamps
// from the scheduler clock.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "ban time.Now/time.Since and global math/rand in deterministic packages; " +
		"use sim.Scheduler.Now and seed-chained RNG streams instead",
	Run: runDetrand,
}

func runDetrand(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the sanctioned form
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in deterministic package %s: derive time from the scheduler clock (sim.Scheduler.Now / virtual delays)",
						fn.Name(), pass.Path())
				}
			case "math/rand", "math/rand/v2":
				if !isSeededConstructor(fn) {
					pass.Reportf(sel.Pos(),
						"global %s.%s draws from the process-wide source in deterministic package %s: use a seed-chained stream (sim.Streams / rand.New(rand.NewSource(seed)))",
						fn.Pkg().Path(), fn.Name(), pass.Path())
				}
			}
			return true
		})
	}
	return nil
}
