package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package-level time functions that read or react
// to the machine clock. Simulation code runs on virtual time
// (sim.Scheduler.Now); any of these in a deterministic package makes
// output depend on host scheduling.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// globalRandExempt are the math/rand (and v2) package-level functions
// that do NOT draw from the process-global source: constructors for
// explicitly seeded generators, which are exactly the sanctioned idiom.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Detrand bans wall-clock reads and the global math/rand source in the
// deterministic packages (see deterministicPkgs). Every replication
// must be a pure function of its seed chain: draw randomness from a
// seed-chained *rand.Rand (sim.Streams / sim.DeriveSeed) and timestamps
// from the scheduler clock.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "ban time.Now/time.Since and global math/rand in deterministic packages; " +
		"use sim.Scheduler.Now and seed-chained RNG streams instead",
	Run: runDetrand,
}

func runDetrand(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the sanctioned form
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in deterministic package %s: derive time from the scheduler clock (sim.Scheduler.Now / virtual delays)",
						fn.Name(), pass.Path())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandExempt[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s draws from the process-wide source in deterministic package %s: use a seed-chained stream (sim.Streams / rand.New(rand.NewSource(seed)))",
						fn.Pkg().Path(), fn.Name(), pass.Path())
				}
			}
			return true
		})
	}
	return nil
}
