// Package analysis is a minimal, dependency-free sibling of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass plumbing to
// host this repo's custom lint suite (internal/lint) without pulling a
// module dependency into the build. The repo's invariants — determinism,
// hot-path allocation discipline, lock hygiene — are enforced by
// analyzers written against this API and driven either standalone
// (cmd/bcbpt-lint PATTERN...) or through `go vet -vettool`.
//
// The deliberate differences from x/tools are small: no facts, no
// sub-analyzer dependencies, and suppression via the repo-wide
// `//bcbptlint:allow <analyzer> — <reason>` directive is handled here in
// the framework so every analyzer gets the escape hatch for free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. Run inspects a fully
// type-checked package through the Pass and reports findings via
// Pass.Reportf; it must be deterministic (no map-order-dependent output —
// the framework sorts diagnostics, but messages must not depend on
// iteration order either).
type Analyzer struct {
	Name string // short lower-case identifier, used in //bcbptlint:allow
	Doc  string // one-paragraph description of what it catches and the sanctioned fix
	Run  func(*Pass) error
}

// Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(rawDiag)
}

// Path returns the canonical import path under analysis (any `go vet`
// test-variant suffix already stripped).
func (p *Pass) Path() string { return p.Pkg.Path }

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package syntax. It may include _test.go files when
// driven by `go vet` (which type-checks test variants); analyzers that
// walk files themselves should skip files where Lintable reports false —
// diagnostics landing in non-lintable files are dropped regardless.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Lintable reports whether diagnostics in f are in scope (non-test
// files only).
func (p *Pass) Lintable(f *ast.File) bool { return p.Pkg.Lintable[f] }

// TypesInfo returns the type-checker fact tables for the package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the type-checked package object.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(rawDiag{pos: pos, analyzer: p.Analyzer.Name, message: fmt.Sprintf(format, args...)})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path     string // canonical import path ("repro/internal/sim", test-variant suffix stripped)
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	Lintable map[*ast.File]bool // files eligible for diagnostics (non-test)
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

type rawDiag struct {
	pos      token.Pos
	analyzer string
	message  string
}

// CanonicalPath strips the `go vet` test-variant suffix from an import
// path: "repro/internal/sim [repro/internal/sim.test]" → "repro/internal/sim".
func CanonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// Run executes analyzers over pkg and returns position-sorted
// diagnostics. Findings in non-lintable (test) files are dropped; the
// //bcbptlint:allow directives in lintable files then suppress matching
// findings. knownNames is the full registry of analyzer names (possibly
// wider than the analyzers actually run) so a directive naming a
// misspelled analyzer is itself reported; an allow for an analyzer that
// did run but suppressed nothing is reported as unused.
func Run(pkg *Package, analyzers []*Analyzer, knownNames []string) ([]Diagnostic, error) {
	var raw []rawDiag
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d rawDiag) { raw = append(raw, d) }}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}

	lintableFile := make(map[string]bool, len(pkg.Files))
	for f, ok := range pkg.Lintable {
		if ok {
			lintableFile[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool, len(knownNames))
	for _, n := range knownNames {
		known[n] = true
	}

	allows := collectAllows(pkg, known)

	var diags []Diagnostic
	for _, d := range raw {
		pos := pkg.Fset.Position(d.pos)
		if !lintableFile[pos.Filename] {
			continue
		}
		if suppressed(allows, d.analyzer, pos) {
			continue
		}
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: d.analyzer, Message: d.message})
	}

	for _, a := range allows {
		switch {
		case a.problem != "":
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(a.pos),
				Analyzer: DirectiveAnalyzerName,
				Message:  a.problem,
			})
		case ran[a.analyzer] && !a.used:
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(a.pos),
				Analyzer: DirectiveAnalyzerName,
				Message: fmt.Sprintf("unused //bcbptlint:allow %s directive: no %s finding on this line or the next",
					a.analyzer, a.analyzer),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}
