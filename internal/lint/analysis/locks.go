package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lexical critical-section tracking, generalized from lockio's original
// in-analyzer walker so any analyzer can ask "which mutexes are held at
// this node". Regions run from <expr>.Lock()/.RLock() to the matching
// .Unlock()/.RUnlock() on a sync.Mutex/RWMutex receiver, with
// `defer <expr>.Unlock()` holding to the end of the function. Nested
// control flow gets a copy of the held set so branch-local releases
// don't leak out, and `go` statement bodies are never visited — they
// run outside the caller's critical section. Function-literal interiors
// ARE visited (with the surrounding held set): whether a deferred or
// stored closure runs inside the region is the analyzer's call, so the
// visitor can discard or keep FuncLit subtrees as its invariant demands.

// HeldLock is one lexically held mutex.
type HeldLock struct {
	Key  string // source text of the receiver expression, e.g. "c.mu"
	Line int    // line of the acquiring call
}

// HeldKey reports whether key is in held.
func HeldKey(held []HeldLock, key string) bool {
	for _, h := range held {
		if h.Key == key {
			return true
		}
	}
	return false
}

// WalkLockRegions walks body in source order, invoking visit on every
// expression (and declaration statement) that executes on the caller's
// stack, with the set of locks lexically held at that point. Lock and
// unlock calls themselves are transitions, not visited nodes.
func WalkLockRegions(fset *token.FileSet, info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held []HeldLock)) {
	w := &regionWalker{fset: fset, info: info, visit: visit}
	w.walkStmts(body.List, nil)
}

type regionWalker struct {
	fset  *token.FileSet
	info  *types.Info
	visit func(n ast.Node, held []HeldLock)
}

func (w *regionWalker) see(n ast.Node, held []HeldLock) {
	if n != nil {
		w.visit(n, held)
	}
}

// walkStmts walks a statement list in source order, threading the held
// set through lock/unlock transitions.
func (w *regionWalker) walkStmts(stmts []ast.Stmt, held []HeldLock) []HeldLock {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *regionWalker) walkStmt(s ast.Stmt, held []HeldLock) []HeldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockTransition(w.info, s.X); ok {
			if acquire {
				return append(append([]HeldLock{}, held...), HeldLock{Key: key, Line: w.fset.Position(s.Pos()).Line})
			}
			return releaseLock(held, key)
		}
		w.see(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() is the canonical release idiom: the lock
		// stays held for the remainder of the walk, which matches the
		// function's actual critical section. Any other deferred call
		// runs before that unlock, so it is still charged to the region.
		if _, acquire, ok := lockTransition(w.info, s.Call); ok && !acquire {
			return held
		}
		w.see(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			w.see(e, held)
		}
		for _, e := range s.Rhs {
			w.see(e, held)
		}
	case *ast.IncDecStmt:
		w.see(s.X, held)
	case *ast.SendStmt:
		w.see(s.Chan, held)
		w.see(s.Value, held)
	case *ast.DeclStmt:
		w.see(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.see(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.see(s.Cond, held)
		w.walkStmts(s.Body.List, held)
		if s.Else != nil {
			w.walkStmt(s.Else, held)
		}
	case *ast.BlockStmt:
		held = w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.see(s.Cond, held)
		}
		w.walkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		w.see(s.X, held)
		w.walkStmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.see(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// Runs on its own goroutine outside this critical section.
	}
	return held
}

// lockTransition recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver's source
// text and whether the call acquires.
func lockTransition(info *types.Info, e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", false, false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

func releaseLock(held []HeldLock, key string) []HeldLock {
	out := make([]HeldLock, 0, len(held))
	for _, h := range held {
		if h.Key != key {
			out = append(out, h)
		}
	}
	return out
}
