package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// Package-local interprocedural machinery: a static call graph over the
// package's declared functions, a forward transitive-reachability
// closure, and a backward description-propagating fixpoint. This
// generalizes the ad-hoc fixpoint lockio grew in PR 7 so every analyzer
// that needs "what does this function reach" gets it from one engine:
// lockio propagates I/O descriptions backward to call sites, partiso
// computes the set of functions reachable forward from the PDES dispatch
// roots. The graph is deliberately conservative and package-local —
// calls through function values, interface methods, and other packages
// are not edges; analyzers that need cross-package facts classify the
// call site directly instead.

// Callee resolves a call expression to the *types.Func it statically
// invokes (package function or method), or nil for builtins, type
// conversions, and calls through function-typed values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CallGraph is the static, package-local call graph of one checked
// package: one node per declared function or method in a lintable file,
// one edge per syntactic call that resolves to another declared function
// of the same package.
type CallGraph struct {
	info *types.Info

	// decls holds every declared function in source order — fixpoints
	// iterate it so diagnostics and descriptions are deterministic.
	decls []*ast.FuncDecl
	// DeclOf maps a package function to its declaration (nil for
	// functions without bodies).
	DeclOf map[*types.Func]*ast.FuncDecl
	// fnOf is the inverse of DeclOf.
	fnOf map[*ast.FuncDecl]*types.Func
	// sameStack records which walk mode built the graph (see NewCallGraph).
	sameStack bool
}

// NewCallGraph builds the call graph over pass's lintable files.
//
// sameStack selects the edge semantics. When true, calls inside `go`
// statements and non-invoked function literals are NOT edges: the walk
// models work performed on the caller's stack, which is what lexical
// critical-section analyses need. When false, every syntactic call in
// the body is an edge, including those inside function literals — a
// literal scheduled for later still executes in whatever domain invokes
// it, which is what reachability analyses need.
func NewCallGraph(pass *Pass, sameStack bool) *CallGraph {
	g := &CallGraph{
		info:      pass.TypesInfo(),
		DeclOf:    map[*types.Func]*ast.FuncDecl{},
		fnOf:      map[*ast.FuncDecl]*types.Func{},
		sameStack: sameStack,
	}
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := g.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls = append(g.decls, fd)
			g.DeclOf[fn] = fd
			g.fnOf[fd] = fn
		}
	}
	sort.Slice(g.decls, func(i, j int) bool { return g.decls[i].Pos() < g.decls[j].Pos() })
	return g
}

// Funcs returns every declared function in source order.
func (g *CallGraph) Funcs() []*ast.FuncDecl { return g.decls }

// FuncOf returns the *types.Func a declaration defines, or nil.
func (g *CallGraph) FuncOf(fd *ast.FuncDecl) *types.Func { return g.fnOf[fd] }

// walkCalls visits every call expression in body that the graph's edge
// semantics include, in source order.
func (g *CallGraph) walkCalls(body *ast.BlockStmt, visit func(*ast.CallExpr) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			if g.sameStack {
				return false
			}
		case *ast.CallExpr:
			return visit(n)
		}
		return true
	})
}

// Reachable returns the forward transitive closure of roots over the
// graph: every declared function that a root can reach through static
// package-local calls, roots included (when declared in this package).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	reached := make(map[*types.Func]bool, len(roots))
	var frontier []*types.Func
	for _, r := range roots {
		if _, ok := g.DeclOf[r]; ok && !reached[r] {
			reached[r] = true
			frontier = append(frontier, r)
		}
	}
	for len(frontier) > 0 {
		fn := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		g.walkCalls(g.DeclOf[fn].Body, func(call *ast.CallExpr) bool {
			callee := Callee(g.info, call)
			if callee == nil {
				return true
			}
			if _, local := g.DeclOf[callee]; local && !reached[callee] {
				reached[callee] = true
				frontier = append(frontier, callee)
			}
			return true
		})
	}
	return reached
}

// Reaches computes, for every declared function, a description of the
// first call (in source order) that either classifies directly via
// direct(call) or invokes a same-package function already known to
// reach one, iterating to a fixpoint. This is the backward propagation
// lockio uses: direct classifies "os.Rename" at its call site, and the
// fixpoint labels every transitive caller with "f (which reaches
// os.Rename)". Functions that reach nothing are absent from the result.
func (g *CallGraph) Reaches(direct func(call *ast.CallExpr) string) map[*types.Func]string {
	reaches := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, fd := range g.decls {
			fn := g.fnOf[fd]
			if _, done := reaches[fn]; done {
				continue
			}
			what := g.describeFirst(fd.Body, direct, reaches)
			if what != "" {
				reaches[fn] = what
				changed = true
			}
		}
	}
	return reaches
}

// describeFirst returns the description of the first classifying call in
// body under the graph's edge semantics, or "".
func (g *CallGraph) describeFirst(body *ast.BlockStmt, direct func(*ast.CallExpr) string, reaches map[*types.Func]string) string {
	what := ""
	g.walkCalls(body, func(call *ast.CallExpr) bool {
		if what != "" {
			return false
		}
		what = g.Describe(call, direct, reaches)
		return what == ""
	})
	return what
}

// Describe classifies one call site: direct(call) if non-empty, else
// "callee (which reaches <desc>)" for a same-package callee present in
// reaches, else "".
func (g *CallGraph) Describe(call *ast.CallExpr, direct func(*ast.CallExpr) string, reaches map[*types.Func]string) string {
	if what := direct(call); what != "" {
		return what
	}
	fn := Callee(g.info, call)
	if fn == nil {
		return ""
	}
	if _, local := g.DeclOf[fn]; local {
		if what, ok := reaches[fn]; ok {
			return fn.Name() + " (which reaches " + what + ")"
		}
	}
	return ""
}
