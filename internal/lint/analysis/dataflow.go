package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Conservative intra-procedural dataflow over go/types-resolved locals.
// Analyzers define a small integer lattice (the meaning of each value is
// theirs — seedflow uses unknown/derived/fresh/wall-clock), an Eval that
// classifies one expression under an environment, and a monotone Join;
// FlowLocals iterates the function body's bindings to a fixpoint so a
// value's classification survives flowing through local variables:
//
//	seed := time.Now().UnixNano()  // env[seed] = wallclock
//	s := seed + 3                  // env[s]    = wallclock (via Eval)
//	rand.NewSource(s)              // sink reads env[s]
//
// The analysis is flow-insensitive per variable (one value per object,
// joined over every binding in the body, loops included) which is sound
// for "may be tainted" questions and terminates because Join is monotone
// over a finite lattice. Closures are descended into: their locals are
// distinct objects and their captures see the outer environment.

// Env maps local objects to lattice values. Absent means "never bound in
// this body" — Eval decides what that implies.
type Env map[types.Object]int

// FlowHooks parameterizes FlowLocals.
type FlowHooks struct {
	// Eval classifies expression e under env. It must be total (return
	// the lattice bottom for anything it does not understand).
	Eval func(env Env, e ast.Expr) int
	// Join combines two lattice values; it must be monotone and
	// commutative or the fixpoint may not converge.
	Join func(a, b int) int
	// Range, if non-nil, classifies a variable bound by `range x`
	// (isKey selects the key/index position). When nil, range bindings
	// are left unbound.
	Range func(env Env, x ast.Expr, isKey bool) int
}

// maxFlowPasses bounds the fixpoint; the lattice height times nesting
// depth stays far below this in practice, so hitting the cap means a
// non-monotone Join, and stopping early is merely conservative.
const maxFlowPasses = 32

// FlowLocals computes the post-fixpoint environment of body's local
// bindings: every assignment, var declaration, and (optionally) range
// binding joins its evaluated value into the target object.
func FlowLocals(info *types.Info, body *ast.BlockStmt, h FlowHooks) Env {
	env := Env{}
	for pass := 0; pass < maxFlowPasses; pass++ {
		if !flowOnce(info, body, h, env) {
			break
		}
	}
	return env
}

func flowOnce(info *types.Info, body *ast.BlockStmt, h FlowHooks, env Env) bool {
	changed := false
	bind := func(id *ast.Ident, v int) {
		obj := objOfIdent(info, id)
		if obj == nil {
			return
		}
		old, had := env[obj]
		nv := v
		if had {
			nv = h.Join(old, v)
		}
		if !had || nv != old {
			env[obj] = nv
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					v := h.Eval(env, n.Rhs[i])
					if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
						// Op-assign (+=, *=, ...): the result depends on
						// both the prior value and the operand.
						if old, had := env[objOfIdent(info, id)]; had {
							v = h.Join(old, v)
						}
					}
					bind(id, v)
				}
			}
			// Multi-value from one call (x, y := f()): leave unbound;
			// Eval classifies the identifiers' uses as it sees fit.
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, id := range n.Names {
					bind(id, h.Eval(env, n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			if h.Range != nil {
				if id, ok := n.Key.(*ast.Ident); ok {
					bind(id, h.Range(env, n.X, true))
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					bind(id, h.Range(env, n.X, false))
				}
			}
		}
		return true
	})
	return changed
}

// objOfIdent resolves an identifier to the variable it defines or uses.
func objOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
