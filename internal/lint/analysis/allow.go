package analysis

import (
	"go/token"
	"strings"
)

// DirectiveAnalyzerName tags diagnostics about the //bcbptlint:allow
// directives themselves (malformed, unknown analyzer, unused).
const DirectiveAnalyzerName = "bcbptlint"

const directivePrefix = "//bcbptlint:"

// allowDirective is one parsed //bcbptlint:allow comment. A directive
// suppresses findings of one named analyzer on the directive's own line
// (trailing-comment form) or the line directly below it (comment-above
// form). The reason after the — separator is mandatory: suppressions
// must explain themselves at the site, not in review history.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
	problem  string // non-empty if the directive itself is malformed
}

// collectAllows parses every bcbptlint directive in the package's
// lintable files. known is the full analyzer registry, used to reject
// directives naming a nonexistent analyzer (usually a typo that would
// otherwise silently suppress nothing).
func collectAllows(pkg *Package, known map[string]bool) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		if !pkg.Lintable[f] {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				out = append(out, d)

				rest := c.Text[len(directivePrefix):]
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "allow" {
					d.problem = "unknown bcbptlint directive " + strings.TrimSpace(verb) + ": only //bcbptlint:allow <analyzer> — <reason> is recognized"
					continue
				}
				name, reason, ok := cutSeparator(strings.TrimSpace(args))
				d.analyzer = name
				d.reason = reason
				switch {
				case name == "":
					d.problem = "malformed //bcbptlint:allow: want //bcbptlint:allow <analyzer> — <reason>"
				case !known[name]:
					d.problem = "//bcbptlint:allow names unknown analyzer " + name
				case !ok || reason == "":
					d.problem = "//bcbptlint:allow " + name + " needs a reason: //bcbptlint:allow " + name + " — <why this exception is sound>"
				}
			}
		}
	}
	return out
}

// cutSeparator splits "<analyzer> — <reason>" on the first em-dash or
// "--" separator, tolerating either spelling.
func cutSeparator(s string) (name, reason string, ok bool) {
	for _, sep := range []string{"—", "--"} {
		if before, after, found := strings.Cut(s, sep); found {
			return strings.TrimSpace(before), strings.TrimSpace(after), true
		}
	}
	return strings.TrimSpace(s), "", false
}

// suppressed reports whether a well-formed allow directive covers a
// finding by analyzer at pos, marking the directive used.
func suppressed(allows []*allowDirective, analyzer string, pos token.Position) bool {
	hit := false
	for _, a := range allows {
		if a.problem != "" || a.analyzer != analyzer || a.file != pos.Filename {
			continue
		}
		if a.line == pos.Line || a.line == pos.Line-1 {
			a.used = true
			hit = true
		}
	}
	return hit
}
