// Package analysistest runs internal/lint analyzers over fixture
// packages in testdata, mirroring golang.org/x/tools' analysistest
// conventions: each fixture directory is one package, and trailing
//
//	// want "regexp"
//
// comments assert that a diagnostic matching the regexp is reported on
// that line. Fixtures import real repro/... and standard-library
// packages; imports resolve offline through `go list -export` build
// cache data.
//
// Because the analyzers scope themselves by import path (see
// internal/lint/detpkgs.go), every fixture is loaded under a caller
// supplied "as-if" path — e.g. a detrand fixture is checked as if it
// were repro/internal/sim, and a clean-scope fixture as a package the
// analyzer ignores.
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Load parses and type-checks the fixture directory as a package with
// import path asPath.
func Load(t *testing.T, dir, asPath string) *analysis.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (err=%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	// Parse once without types to discover the fixture's imports, then
	// resolve the full closure's export data in one `go list` run.
	pkg, err := analysis.TypeCheck(fset, asPath, "", names, analysis.NewImporter(fset, exportLookup(t, dir, names)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// Run checks the fixture package at dir (as import path asPath) with the
// given analyzers and compares the findings against the fixture's
// // want comments. known is the full analyzer-name registry (see
// lint.Names), so fixtures can also exercise directive validation.
func Run(t *testing.T, dir, asPath string, analyzers []*analysis.Analyzer, known []string) []analysis.Diagnostic {
	t.Helper()
	pkg := Load(t, dir, asPath)
	diags, err := analysis.Run(pkg, analyzers, known)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	type expectation struct {
		file string
		line int
		rx   *regexp.Regexp
		met  bool
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, q)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
	return diags
}

// exportLookup resolves the fixture's imports (and their transitive
// closure) to export-data files via one `go list` invocation, run
// lazily on first lookup so fixtures with no imports skip it.
func exportLookup(t *testing.T, dir string, names []string) func(string) (string, bool) {
	t.Helper()
	var exports map[string]string
	return func(path string) (string, bool) {
		if exports == nil {
			exports = map[string]string{}
			imports := fixtureImports(t, names)
			if len(imports) > 0 {
				listed, err := analysis.GoList(".", imports...)
				if err != nil {
					t.Fatalf("resolving fixture %s imports: %v", dir, err)
				}
				for _, p := range listed {
					if p.Export != "" {
						exports[p.ImportPath] = p.Export
					}
				}
			}
		}
		f, ok := exports[path]
		return f, ok
	}
}

func fixtureImports(t *testing.T, names []string) []string {
	t.Helper()
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}
