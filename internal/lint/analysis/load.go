package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// ListedPackage is the subset of `go list -json` output the loader
// consumes.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct {
		Path      string
		GoVersion string
		Main      bool
	}
	Error *struct {
		Err string
	}
}

// GoList runs `go list -e -deps -export -json` in dir over patterns and
// decodes the JSON stream. -export populates build-cache export-data
// paths for every package in the dependency closure, which is what lets
// the type checker resolve imports offline with no dependency on
// golang.org/x/tools.
func GoList(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// NewImporter returns a go/types importer that resolves imports through
// gc export-data files named by lookup (import path → file path, the
// shape of both `go list -export` output and `go vet`'s PackageFile
// map). "unsafe" resolves to types.Unsafe without consulting lookup.
func NewImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.ImporterFrom {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &exportImporter{gc: gc.(types.ImporterFrom)}
}

type exportImporter struct{ gc types.ImporterFrom }

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}

var goVersionRx = regexp.MustCompile(`^go1(\.\d+){0,2}$`)

// CleanGoVersion normalizes a module or vet-config Go version ("1.22",
// "go1.22", "go1.22.3", or garbage) into a value go/types accepts, or ""
// to let the type checker assume the toolchain's language version.
func CleanGoVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	if !goVersionRx.MatchString(v) {
		return ""
	}
	return v
}

// TypeCheck parses filenames and type-checks them as one package with
// import path path, filling the full Info tables the analyzers rely on.
// Files named *_test.go are loaded (the package must type-check as the
// compiler saw it) but marked non-lintable.
func TypeCheck(fset *token.FileSet, path, goVersion string, filenames []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	lintable := make(map[*ast.File]bool, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		lintable[f] = !strings.HasSuffix(filepath.Base(name), "_test.go")
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: CleanGoVersion(goVersion),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	return &Package{
		Path:     CanonicalPath(path),
		Fset:     fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		Lintable: lintable,
	}, nil
}

// LoadPatterns loads, parses, and type-checks every module package
// matching the `go list` patterns (dependencies are consumed as export
// data only). It is the standalone-driver counterpart of the `go vet`
// unit protocol: everything runs off the local build cache, no network.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*ListedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard && p.Module != nil && p.Module.Main {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		goVersion := ""
		if t.Module != nil {
			goVersion = t.Module.GoVersion
		}
		names := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			names[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, goVersion, names, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
