// Fixture for the lockio analyzer: checked as-if it were a fleet
// package (repro/internal/fleet).
package fixture

import (
	"encoding/json"
	"os"
	"sync"
)

type coord struct {
	mu    sync.Mutex
	state map[string]int
}

func (c *coord) directUnderLock() {
	c.mu.Lock()
	os.WriteFile("x", nil, 0o644) // want `I/O call os\.WriteFile while c\.mu is held`
	c.mu.Unlock()
}

// afterUnlock does the write outside the critical section — the fix the
// analyzer steers toward.
func (c *coord) afterUnlock() {
	c.mu.Lock()
	c.state["a"]++
	c.mu.Unlock()
	_ = os.WriteFile("x", nil, 0o644)
}

// persist reaches I/O transitively; its callers inherit the charge.
func persist(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile("state.json", data, 0o644)
}

func (c *coord) transitiveUnderDefer(v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state["a"]++
	persist(v) // want `I/O call persist \(which reaches encoding/json\.Marshal\) while c\.mu is held`
}

func (c *coord) decodeUnderLock(dec *json.Decoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v map[string]int
	dec.Decode(&v) // want `I/O call \(Decoder\)\.Decode while c\.mu is held`
}

// spawnUnderLock hands the I/O to another goroutine, which runs outside
// this critical section.
func (c *coord) spawnUnderLock() {
	c.mu.Lock()
	go persist(c.state)
	c.mu.Unlock()
}

// pureUnderLock holds the lock around in-memory work only.
func (c *coord) pureUnderLock(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state[k]++
	return c.state[k]
}
