// Fixture for the partiso analyzer: checked as-if it were the parallel
// dispatch package (repro/internal/p2p). The local Network / Node /
// dispatchCtx declarations mirror the kernel's layout — partiso matches
// those type names in the package under analysis.
package fixture

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

type NodeID int64

type dispatchCtx struct {
	sched *sim.Scheduler
	trace *obs.Shard
	pool  []*delivery
	drops int
}

type parState struct {
	ws *sim.WindowScheduler
}

type Network struct {
	sched   *sim.Scheduler
	nodes   map[NodeID]*Node
	hashIdx map[uint64]int32
	hashN   int32
	serial  dispatchCtx
	par     *parState
	hashMu  sync.Mutex
}

type Node struct {
	id         NodeID
	dctx       *dispatchCtx
	seq        uint64
	peerList   []NodeID
	peersValid bool
}

type delivery struct {
	n   *Network
	dst NodeID
}

// looseShard stands in for a shard nobody's dispatch context owns.
var looseShard *obs.Shard

// schedule registers runDeliver as a dispatch target: everything
// runDeliver reaches is dispatch-reachable.
func (n *Network) schedule(d *delivery) {
	n.sched.AfterCall(0, runDeliver, d)
}

func runDeliver(a any) {
	d := a.(*delivery)
	n := d.n
	dc := &n.serial // want `access to Network\.serial in dispatch-reachable runDeliver`
	_ = dc
	n.hashIdx[7] = 1                    // want `access to Network\.hashIdx in dispatch-reachable runDeliver without holding hashMu`
	n.nodes[d.dst] = nil                // want `write to Network\.nodes in dispatch-reachable runDeliver`
	node := n.nodes[d.dst]              // reads of frozen topology are fine
	node.peersValid = false             // want `write to Node\.peersValid in dispatch-reachable runDeliver`
	looseShard.Record(obs.Event{P1: 1}) // want `Record on a shard that is not this dispatch context's trace`
	relay(node, d)
	n.lockedRegistry()
	n.serialFastPath()
	n.topologyOnly()
}

// relay is transitively dispatch-reachable: dctx-routed state and the
// owned trace shard are the sanctioned forms, and one deliberate
// violation carries the allow directive.
func relay(node *Node, d *delivery) {
	dc := node.dctx
	dc.pool = append(dc.pool, d)
	dc.drops++
	dc.trace.Record(obs.Event{P1: uint64(node.id)})
	tr := node.dctx.trace
	tr.Record(obs.Event{P2: 2}) // a local bound from <dctx>.trace stays owned
	//bcbptlint:allow partiso — fixture: deliberate serial-context touch to exercise the directive
	node.dctx.sched = d.n.serial.sched
}

// lockedRegistry touches the shared hash registry under its designated
// mutex — the kernel's parallel-mode idiom.
func (n *Network) lockedRegistry() {
	n.hashMu.Lock()
	n.hashIdx[9] = n.hashN
	n.hashN++
	n.hashMu.Unlock()
}

// serialFastPath touches shared state only inside the par == nil branch.
func (n *Network) serialFastPath() {
	if n.par == nil {
		n.hashIdx[3] = 0
		n.hashN++
		n.serial.drops++
		return
	}
}

// topologyOnly cannot run during parallel dispatch: the guard panics
// first, so the writes after it are exempt.
func (n *Network) topologyOnly() {
	if n.par != nil {
		panic("fixture: topology mutation while parallel")
	}
	n.nodes[1] = nil
	n.serial.drops++
}

// notReachable is never registered as a dispatch target: the same
// accesses are fine here (the driving goroutine owns everything between
// windows).
func (n *Network) notReachable(node *Node) {
	dc := &n.serial
	dc.drops++
	n.hashIdx[1] = 2
	n.nodes[5] = nil
	node.peersValid = false
	looseShard.Record(obs.Event{})
}
