// Fixture for the maporder analyzer: checked as-if it were a
// deterministic package (repro/internal/sim).
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/sim"
)

func schedInRange(s *sim.Scheduler, m map[int]int) {
	for k := range m {
		_ = k
		s.After(0, func() {}) // want `event-scheduling call \(\*sim\.Scheduler\)\.After`
	}
}

func printInRange(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `output write fmt\.Println`
	}
}

func sinkInRange(m map[int]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(string(rune(k))) // want `ordered sink write`
	}
}

func encodeInRange(m map[int]int, enc *json.Encoder) {
	for k := range m {
		_ = enc.Encode(k) // want `stream encode`
	}
}

func appendUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// appendSorted is the sanctioned collect-then-sort idiom: the append is
// fine because the slice is sorted after the loop.
func appendSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// appendLoopLocal builds a slice that never outlives one iteration, so
// it cannot carry map order anywhere.
func appendLoopLocal(m map[int][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		_ = local
	}
}

// rangeSlice is order-sensitive work inside a loop — but over a slice,
// whose order is deterministic.
func rangeSlice(s *sim.Scheduler, xs []int) {
	for range xs {
		s.After(0, func() {})
	}
}

// aggregate is pure order-independent aggregation.
func aggregate(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
