// Fixture for //bcbptlint:allow directive handling: valid directives in
// both placements suppress, while malformed, misspelled, and unused ones
// are themselves findings. The expected diagnostics are asserted
// programmatically in lint_test.go (a want comment cannot share a line
// with a directive — they would be one comment), checked as-if the
// package were repro/internal/sim.
package fixture

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //bcbptlint:allow detrand — fixture: exercising the trailing-comment form
}

func suppressedAbove() time.Time {
	//bcbptlint:allow detrand — fixture: exercising the comment-above form
	return time.Now()
}

func missingReason() time.Time {
	return time.Now() //bcbptlint:allow detrand
}

func unknownAnalyzer() time.Time {
	return time.Now() //bcbptlint:allow detrnd — typo in the analyzer name
}

func unusedAllow() int {
	//bcbptlint:allow detrand — nothing below triggers detrand
	return 1
}

func unknownVerb() {
	//bcbptlint:deny detrand — only the allow verb exists
}
