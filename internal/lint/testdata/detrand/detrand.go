// Fixture for the detrand analyzer: checked as-if it were a
// deterministic package (repro/internal/sim).
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func flagged() {
	_ = time.Now()                     // want `wall-clock time\.Now`
	_ = time.Since(time.Time{})        // want `wall-clock time\.Since`
	time.Sleep(time.Millisecond)       // want `wall-clock time\.Sleep`
	_ = rand.Intn(10)                  // want `global math/rand\.Intn`
	_ = rand.Float64()                 // want `global math/rand\.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	_ = randv2.Uint64()                // want `global math/rand/v2\.Uint64`
}

func clean() {
	// Explicitly seeded generators and their methods are the sanctioned
	// idiom; constructors are exempt by full identity — defining package,
	// name, and result type — and methods never match.
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10)
	_ = r.Float64()
	_ = rand.NewZipf(r, 1.5, 1, 100)
	r2 := randv2.New(randv2.NewPCG(1, 2))
	_ = r2.IntN(5)
	_ = randv2.NewChaCha8([32]byte{})
	// Pure time arithmetic and constructors do not read the clock.
	_ = time.Unix(42, 0)
	_ = 5 * time.Millisecond
	_ = time.Duration(7).String()
}
