// Fixture for the hookcost analyzer: checked as-if it were a hot-path
// package (repro/internal/measure). Hook call sites — obs.Shard.Record
// and calls through On* func-typed fields — must be nil-guarded and
// allocation-free in their arguments.
package fixture

import (
	"fmt"

	"repro/internal/obs"
)

type Probe struct {
	trace   *obs.Shard
	OnDrop  func(code uint8, n uint64)
	OnBatch func(ids []uint64)
	OnEvt   func(e *obs.Event)
}

func flagged(p *Probe, buf []byte, name string) {
	p.trace.Record(obs.Event{P1: 1}) // want `obs\.Shard\.Record call is not nil-guarded`
	p.OnDrop(1, 2)                   // want `hook OnDrop call is not nil-guarded`
	OnTick := p.OnDrop
	OnTick(1, 1) // want `hook OnTick call is not nil-guarded`

	if p.trace != nil && p.OnBatch != nil && p.OnEvt != nil {
		p.trace.Record(obs.Event{P1: uint64(len(fmt.Sprintf("x-%s", name)))}) // want `argument allocates: fmt\.Sprintf`
		p.trace.Record(obs.Event{P2: uint64(len(name + "!"))})                // want `argument allocates: string concatenation`
		p.trace.Record(obs.Event{P3: uint64(len(string(buf)))})               // want `argument allocates: string conversion`
		p.trace.Record(obs.Event{P1: uint64(len(append(buf, 1)))})            // want `argument allocates: append`
		p.trace.Record(obs.Event{P2: uint64(func() int { return 1 }())})      // want `argument allocates: function literal`
		p.OnBatch([]uint64{1, 2})                                             // want `argument allocates: slice/map literal`
		p.OnEvt(&obs.Event{Code: 3})                                          // want `argument allocates: pointer to composite literal`
	}
}

func clean(p *Probe, tr *obs.Tracer) {
	// The three guard shapes: direct check, init-bound check, and a
	// terminating == nil early return.
	if p.trace != nil {
		p.trace.Record(obs.Event{P1: 1, Code: 2})
	}
	if t := p.trace; t != nil {
		t.Record(obs.Event{P2: 3})
	}
	// Tracer.Shard returns a valid shard by contract: locals bound from
	// it need no guard.
	sh := tr.Shard(0)
	sh.Record(obs.Event{P1: 4})
	// Guard facts survive into closures built on the guarded path.
	if p.OnDrop != nil {
		f := func() { p.OnDrop(0, 1) }
		f()
	}
	earlyReturn(p)
}

func earlyReturn(p *Probe) {
	if p.OnDrop == nil {
		return
	}
	p.OnDrop(5, 6)
}

func allowed(p *Probe) {
	//bcbptlint:allow hookcost — fixture: deliberate unguarded hook to exercise the directive
	p.OnDrop(9, 9)
}
