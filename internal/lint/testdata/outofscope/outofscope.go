// Fixture proving the analyzers scope by import path: this file breaks
// every rule but is checked as-if it were repro/internal/netnode, which
// is in no analyzer's scope (the live node runs on real clocks and
// sockets by design), so the suite must stay silent.
package fixture

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"
)

var mu sync.Mutex

func everythingTheRulesBan(m map[int]int) []int {
	_ = time.Now()
	_ = rand.Intn(10)
	_ = fmt.Sprintf("x-%d", 1)
	var keys []int
	for k := range m {
		keys = append(keys, k)
		fmt.Println(k)
	}
	mu.Lock()
	_ = os.WriteFile("x", nil, 0o644)
	mu.Unlock()
	return keys
}
