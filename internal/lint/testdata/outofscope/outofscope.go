// Fixture proving the analyzers scope by import path: this file breaks
// every rule but is checked as-if it were repro/internal/netnode, which
// is in no analyzer's scope (the live node runs on real clocks and
// sockets by design), so the suite must stay silent.
package fixture

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

var mu sync.Mutex

func everythingTheRulesBan(m map[int]int) []int {
	_ = time.Now()
	_ = rand.Intn(10)
	_ = fmt.Sprintf("x-%d", 1)
	var keys []int
	for k := range m {
		keys = append(keys, k)
		fmt.Println(k)
	}
	mu.Lock()
	_ = os.WriteFile("x", nil, 0o644)
	mu.Unlock()
	return keys
}

// The v2 rules would all fire on the shapes below were this package in
// scope: a literal seed at an RNG sink (seedflow), an unguarded
// allocating hook site (hookcost), an unbounded loop that never polls
// ctx (ctxpoll), and dispatch-reachable access to Network.serial
// (partiso — the types mirror the kernel's layout).
type dispatchCtx struct{ drops int }

type parState struct{}

type Network struct {
	sched  *sim.Scheduler
	trace  *obs.Shard
	serial dispatchCtx
	par    *parState
	OnDrop func(code uint8)
}

func (n *Network) schedule() {
	n.sched.AfterCall(0, deliverOutOfScope, n)
}

func deliverOutOfScope(a any) {
	n := a.(*Network)
	n.serial.drops++
	_ = rand.NewSource(42)
	n.trace.Record(obs.Event{P1: uint64(len(fmt.Sprintf("d-%d", n.serial.drops)))})
	n.OnDrop(1)
}

func spinOutOfScope(ctx context.Context, work func() bool) {
	for work() {
	}
}
