// Fixture for the hotalloc analyzer: checked as-if it were the flood
// hot-path package (repro/internal/p2p).
package fixture

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

func dispatch(a any) {}

func flagged(s *sim.Scheduler, id int) {
	s.After(time.Millisecond, func() {}) // want `closure-form Scheduler\.After`
	s.At(0, func() {})                   // want `closure-form Scheduler\.At allocates`
	_ = fmt.Sprintf("node-%d", id)       // want `fmt\.Sprintf allocates`
	_ = fmt.Sprint(id)                   // want `fmt\.Sprint allocates`
}

func clean(s *sim.Scheduler, err error) error {
	// Pooled static-dispatch scheduling: zero closure allocations.
	s.AfterCall(time.Millisecond, dispatch, nil)
	s.AtCall(0, dispatch, nil)
	// Error construction is a failure path, deliberately exempt.
	return fmt.Errorf("wrap: %w", err)
}
