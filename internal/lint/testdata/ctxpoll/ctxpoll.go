// Fixture for the ctxpoll analyzer: checked as-if it were a
// deterministic package (repro/internal/chain). Functions that take a
// context must poll it from any loop whose iteration count is not
// syntactically bounded.
package fixture

import "context"

func flaggedSpin(ctx context.Context, work func() bool) {
	for { // want `unbounded loop in flaggedSpin never polls ctx`
		if !work() {
			continue
		}
	}
}

func flaggedDrain(ctx context.Context, pop func() bool) {
	for pop() { // want `unbounded loop in flaggedDrain never polls ctx`
	}
}

func cleanPoll(ctx context.Context, work func() bool) error {
	n := 0
	for {
		if !work() {
			return nil
		}
		n++
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

func cleanBounded(ctx context.Context, steps int, work func() bool) {
	for i := 0; i < steps; i++ {
		work()
	}
}

func cleanRange(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// cleanNoCtx takes no context: there is nothing to poll.
func cleanNoCtx(work func() bool) {
	for work() {
	}
}

// cleanFuncLit: a literal's loops run under its own contract.
func cleanFuncLit(ctx context.Context, work func() bool) func() {
	return func() {
		for work() {
		}
	}
}

func allowedSpin(ctx context.Context, work func()) {
	//bcbptlint:allow ctxpoll — fixture: deliberate unpolled loop to exercise the directive
	for {
		work()
	}
}
