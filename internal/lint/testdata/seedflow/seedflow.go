// Fixture for the seedflow analyzer: checked as-if it were a
// deterministic package (repro/internal/experiment). Seeds at explicit
// RNG sinks must come from the replication chain; literal,
// loop-counter, and wall-clock seeds are flagged, while values of
// unknown provenance (params, fields) pass.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"

	"repro/internal/sim"
)

type Spec struct {
	Seed int64
	Key  uint64
}

func flagged(spec *Spec, ks *sim.KeyedSource, peers []int, n int) {
	_ = rand.NewSource(42)                    // want `rand\.NewSource seeded with a literal/arithmetic-fresh value`
	_ = rand.NewSource(time.Now().UnixNano()) // want `rand\.NewSource seeded from the wall clock`
	_ = randv2.NewPCG(1, 2)                   // want `rand\.NewPCG seeded with a literal` `rand\.NewPCG seeded with a literal`
	ks.Seed(7)                                // want `KeyedSource\.Seed seeded with a literal`

	// Taint flows through locals: the lattice tracks bindings, not just
	// the sink argument's syntax.
	s := int64(1) << 32
	s |= 5
	_ = rand.NewSource(s) // want `rand\.NewSource seeded with a literal/arithmetic-fresh value`
	t0 := time.Now()
	d := time.Since(t0)
	_ = rand.NewSource(d.Nanoseconds()) // want `rand\.NewSource seeded from the wall clock`

	// Loop counters are arithmetic-fresh: every replication would walk
	// the same per-index streams regardless of the campaign seed.
	for i := 0; i < n; i++ {
		_ = rand.NewSource(int64(i) * 2654435761) // want `rand\.NewSource seeded with a literal/arithmetic-fresh value`
	}
	for i := range peers {
		ks.SeedKey(uint64(i)<<1 | 1) // want `KeyedSource\.SeedKey seeded with a literal/arithmetic-fresh value`
	}
}

func clean(spec *Spec, ks *sim.KeyedSource, root int64, cond bool) {
	// Chain-derived and parameter-derived seeds are the sanctioned forms;
	// a constant offset on an unknown base stays clean.
	_ = rand.NewSource(spec.Seed + 999)
	_ = rand.NewSource(sim.DeriveSeed(root, "topology"))
	_ = randv2.NewPCG(uint64(spec.Seed), sim.Mix64(spec.Key))
	ks.SeedKey(sim.MixKey2(spec.Key, 7))
	ks.SeedKey(sim.MixKey3(spec.Key, 1, 2))
	ks.Seed(sim.DeriveSeed(spec.Seed, "rep"))

	// A variable bound both fresh and unknown joins to unknown: some
	// binding carried real provenance.
	seed := int64(0)
	if cond {
		seed = spec.Seed
	}
	_ = rand.NewSource(seed)
}

func allowed() {
	//bcbptlint:allow seedflow — fixture: deliberate fixed seed to exercise the directive
	_ = rand.NewSource(1)
}
