package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Hotalloc flags per-event allocation idioms in the flood hot-path
// packages (see hotPathPkgs), whose benchmarks hold a pinned allocs/op
// budget with zero-tolerance diffing in CI:
//
//   - closure-form Scheduler.At/After: every call allocates the closure
//     plus its captures. The arena kernel's AtCall/AfterCall with a
//     pooled payload struct dispatches at 0 allocs/op — that is the
//     idiom PR 3 established and the flood path uses throughout.
//   - fmt string building (Sprintf/Sprint/Sprintln/Appendf): formats,
//     boxes every operand into an interface, and allocates the result.
//
// Cold paths that legitimately format (debug Stringers, one-time setup)
// annotate the site: //bcbptlint:allow hotalloc — <why this is cold>.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag closure-form Scheduler.At/After and fmt string building in flood hot-path packages; " +
		"use pooled AtCall/AfterCall payloads and preallocated buffers",
	Run: runHotalloc,
}

// fmtAllocFuncs allocate a formatted string (and box operands) per
// call. fmt.Errorf is deliberately absent: error construction is a
// failure path, not a hot path.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Appendf": true,
}

func runHotalloc(pass *analysis.Pass) error {
	if !hotPathPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		if !pass.Lintable(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isMethodOn(fn, modulePath+"/internal/sim", "Scheduler", "At"),
				isMethodOn(fn, modulePath+"/internal/sim", "Scheduler", "After"):
				pass.Reportf(call.Pos(),
					"closure-form Scheduler.%s allocates per event on the flood hot path: use %sCall with a pooled payload struct",
					fn.Name(), fn.Name())
			case funcPkgPath(fn) == "fmt" && fmtAllocFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"fmt.%s allocates and boxes on the flood hot path: preformat, reuse a buffer, or annotate the cold path",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
