package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Partiso makes the PDES single-writer discipline static: any function
// reachable from a parallel-dispatch entry point (a function registered
// with sim.Scheduler.AtCall/AfterCall or sim.WindowScheduler.Stage) runs
// concurrently on partition workers, so it must touch only state routed
// through the owning node's dispatch context. In those functions the
// analyzer flags:
//
//   - any access to Network.serial — the driving goroutine's dispatch
//     context, which no partition owns;
//   - access to the cross-partition registries (hashIdx/hashN under
//     hashMu, links under linksMu) without holding the designated mutex;
//   - writes to frozen topology state — Network.{nodes, links, slots,
//     slotFree, invGen, peerWords, par, tracer, nextID} and the Node
//     peer tables {peerTab, peerFree, nPeers, nOut, peerList,
//     peersValid} — which parallel mode forbids mutating;
//   - obs.Shard.Record through a receiver that is not the dispatch
//     context's own trace shard (a non-owned shard write races).
//
// Two lexical exemptions encode the kernel's own mode discipline: code
// inside `if <net>.par == nil { ... }` (the serial fast path) and code
// after an `if <net>.par != nil { return/panic }` guard (functions the
// kernel forbids during parallel dispatch) is exempt, and calls made
// from exempt positions do not extend reachability — a function whose
// parallel-mode entry is impossible is not charged with its callees.
//
// Type matching is by name against the package under analysis (Network,
// Node, dispatchCtx): the analyzer is coupled to internal/p2p's layout
// the same way the kernel's comments are, and the fixture mirrors those
// declarations.
var Partiso = &analysis.Analyzer{
	Name: "partiso",
	Doc: "flag dispatch-reachable access to Network-global mutable state that bypasses the " +
		"node's dispatch context (dctx); the PDES single-writer discipline, statically",
	Run: runPartiso,
}

// lockedNetFields maps each cross-partition registry field of Network to
// the mutex that must be held to touch it during parallel dispatch.
var lockedNetFields = map[string]string{
	"hashIdx": "hashMu",
	"hashN":   "hashMu",
	"links":   "linksMu",
}

// frozenNetFields are Network fields that parallel mode freezes: reads
// are fine from any partition, writes are not.
var frozenNetFields = map[string]bool{
	"nodes": true, "slots": true, "slotFree": true, "invGen": true,
	"peerWords": true, "par": true, "tracer": true, "nextID": true,
}

// frozenNodeFields are the Node peer-table fields frozen while parallel
// dispatch is enabled (topology mutation is serial-only).
var frozenNodeFields = map[string]bool{
	"peerTab": true, "peerFree": true, "nPeers": true, "nOut": true,
	"peerList": true, "peersValid": true,
}

func runPartiso(pass *analysis.Pass) error {
	if !partIsoPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	g := analysis.NewCallGraph(pass, false)

	serialOf := map[*ast.FuncDecl][]span{}
	for _, fd := range g.Funcs() {
		serialOf[fd] = serialSpans(pass, info, fd.Body)
	}

	reach := dispatchReachable(pass, info, g, serialOf)
	for _, fd := range g.Funcs() {
		if reach[g.FuncOf(fd)] {
			checkPartIso(pass, info, fd, serialOf[fd])
		}
	}
	return nil
}

// span is a half-open source region [from, to).
type span struct{ from, to token.Pos }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.from <= pos && pos < s.to {
			return true
		}
	}
	return false
}

// dispatchReachable computes the functions reachable from the dispatch
// roots, skipping call edges made from serial-exempt positions.
func dispatchReachable(pass *analysis.Pass, info *types.Info, g *analysis.CallGraph, serialOf map[*ast.FuncDecl][]span) map[*types.Func]bool {
	var roots []*types.Func
	for _, fd := range g.Funcs() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isDispatchRegistration(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fn := funcValueOf(info, arg); fn != nil {
					roots = append(roots, fn)
				}
			}
			return true
		})
	}

	reach := map[*types.Func]bool{}
	var frontier []*types.Func
	for _, r := range roots {
		if _, ok := g.DeclOf[r]; ok && !reach[r] {
			reach[r] = true
			frontier = append(frontier, r)
		}
	}
	for len(frontier) > 0 {
		fn := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		fd := g.DeclOf[fn]
		serial := serialOf[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || inSpans(serial, call.Pos()) {
				return true
			}
			callee := analysis.Callee(info, call)
			if callee == nil {
				return true
			}
			if _, local := g.DeclOf[callee]; local && !reach[callee] {
				reach[callee] = true
				frontier = append(frontier, callee)
			}
			return true
		})
	}
	return reach
}

// isDispatchRegistration reports whether call registers a static
// dispatch target: sim.Scheduler.AtCall/AfterCall or
// sim.WindowScheduler.Stage.
func isDispatchRegistration(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	simPath := modulePath + "/internal/sim"
	return isMethodOn(fn, simPath, "Scheduler", "AtCall") ||
		isMethodOn(fn, simPath, "Scheduler", "AfterCall") ||
		isMethodOn(fn, simPath, "WindowScheduler", "Stage")
}

// funcValueOf resolves an argument expression to the package function it
// names, or nil.
func funcValueOf(info *types.Info, arg ast.Expr) *types.Func {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// serialSpans collects the regions of body that cannot execute during
// parallel dispatch: then-blocks of `if <net>.par == nil`, else-blocks
// of `if <net>.par != nil`, and block remainders after an
// `if <net>.par != nil { ...return/panic }` guard.
func serialSpans(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			ifs, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			eq, ok := parNilCond(pass, info, ifs.Cond)
			if !ok {
				continue
			}
			if eq { // par == nil: the then-branch is the serial fast path
				out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
				continue
			}
			// par != nil
			if ifs.Else != nil {
				out = append(out, span{ifs.Else.Pos(), ifs.Else.End()})
			}
			if terminates(ifs.Body) && i < len(list)-1 {
				out = append(out, span{ifs.End(), list[len(list)-1].End()})
			}
		}
		return true
	})
	return out
}

// parNilCond recognizes `<net>.par == nil` / `<net>.par != nil` where
// <net> is Network-typed, returning whether the comparison is ==.
func parNilCond(pass *analysis.Pass, info *types.Info, cond ast.Expr) (eq, ok bool) {
	b, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false, false
	}
	operand := b.X
	if isNilIdent(info, b.X) {
		operand = b.Y
	} else if !isNilIdent(info, b.Y) {
		return false, false
	}
	sel, isSel := ast.Unparen(operand).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "par" || localNamed(pass, info, sel.X) != "Network" {
		return false, false
	}
	return b.Op == token.EQL, true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

// terminates reports whether a block always transfers control out
// (return, branch, or panic as its final statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// localNamed returns the name of e's named type when that type is
// declared in the package under analysis (pointers dereferenced), or "".
func localNamed(pass *analysis.Pass, info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() != pass.TypesPkg() {
		return ""
	}
	return obj.Name()
}

// checkPartIso flags isolation violations in one dispatch-reachable
// function.
func checkPartIso(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl, serial []span) {
	fname := fd.Name.Name

	// Lock regions: record which mutex keys are held over which spans.
	type heldSpan struct {
		span
		keys []string
	}
	var held []heldSpan
	analysis.WalkLockRegions(pass.Fset(), info, fd.Body, func(n ast.Node, hl []analysis.HeldLock) {
		if len(hl) == 0 {
			return
		}
		keys := make([]string, len(hl))
		for i, h := range hl {
			keys[i] = h.Key
		}
		held = append(held, heldSpan{span{n.Pos(), n.End()}, keys})
	})
	heldAt := func(pos token.Pos, key string) bool {
		for _, h := range held {
			if h.from <= pos && pos < h.to {
				for _, k := range h.keys {
					if k == key {
						return true
					}
				}
			}
		}
		return false
	}

	// Write targets: the field selector at the root of each assignment
	// LHS or ++/-- operand.
	writes := map[ast.Node]bool{}
	markWrite := func(e ast.Expr) {
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			case *ast.SelectorExpr:
				writes[t] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		}
		return true
	})

	// Shard-receiver ownership: a receiver is owned when it is (or was
	// assigned from) <dctx>.trace.
	const ownedShardVal, otherShardVal = 1, 0
	var evalShard func(env analysis.Env, e ast.Expr) int
	evalShard = func(env analysis.Env, e ast.Expr) int {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if t.Sel.Name == "trace" && localNamed(pass, info, t.X) == "dispatchCtx" {
				return ownedShardVal
			}
		case *ast.Ident:
			if obj := objOf(info, t); obj != nil {
				if v, ok := env[obj]; ok {
					return v
				}
			}
		}
		return otherShardVal
	}
	shardEnv := analysis.FlowLocals(info, fd.Body, analysis.FlowHooks{
		Eval: evalShard,
		Join: func(a, b int) int { return min(a, b) },
	})

	reported := map[string]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", pass.Fset().Position(pos).Line, msg)
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, "%s", msg)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if inSpans(serial, n.Pos()) {
				return true
			}
			field := n.Sel.Name
			switch localNamed(pass, info, n.X) {
			case "Network":
				switch {
				case field == "serial":
					reportf(n.Pos(),
						"access to Network.serial in dispatch-reachable %s: partition workers must route state through the node's dctx",
						fname)
				case lockedNetFields[field] != "":
					mu := lockedNetFields[field]
					if !heldAt(n.Pos(), types.ExprString(n.X)+"."+mu) {
						reportf(n.Pos(),
							"access to Network.%s in dispatch-reachable %s without holding %s (and outside any par==nil serial path)",
							field, fname, mu)
					}
				case frozenNetFields[field] && writes[n]:
					reportf(n.Pos(),
						"write to Network.%s in dispatch-reachable %s: topology state is frozen during parallel dispatch",
						field, fname)
				}
			case "Node":
				if frozenNodeFields[field] && writes[n] {
					reportf(n.Pos(),
						"write to Node.%s in dispatch-reachable %s: peer tables are frozen during parallel dispatch",
						field, fname)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if !isMethodOn(fn, modulePath+"/internal/obs", "Shard", "Record") {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if inSpans(serial, n.Pos()) {
				return true
			}
			if evalShard(shardEnv, sel.X) != ownedShardVal {
				reportf(n.Pos(),
					"obs.Shard.Record on a shard that is not this dispatch context's trace in dispatch-reachable %s: only the owning partition may write a shard",
					fname)
			}
		}
		return true
	})
}
