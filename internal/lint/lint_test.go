package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/analysistest"
)

// Each fixture directory is one package checked under an "as-if" import
// path, because the analyzers scope themselves by path (detpkgs.go).

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/detrand", "repro/internal/sim",
		[]*analysis.Analyzer{lint.Detrand}, lint.Names())
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/maporder", "repro/internal/experiment",
		[]*analysis.Analyzer{lint.Maporder}, lint.Names())
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", "repro/internal/p2p",
		[]*analysis.Analyzer{lint.Hotalloc}, lint.Names())
}

func TestLockio(t *testing.T) {
	analysistest.Run(t, "testdata/lockio", "repro/internal/fleet",
		[]*analysis.Analyzer{lint.Lockio}, lint.Names())
}

func TestPartiso(t *testing.T) {
	analysistest.Run(t, "testdata/partiso", "repro/internal/p2p",
		[]*analysis.Analyzer{lint.Partiso}, lint.Names())
}

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "testdata/seedflow", "repro/internal/experiment",
		[]*analysis.Analyzer{lint.Seedflow}, lint.Names())
}

func TestHookcost(t *testing.T) {
	analysistest.Run(t, "testdata/hookcost", "repro/internal/measure",
		[]*analysis.Analyzer{lint.Hookcost}, lint.Names())
}

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, "testdata/ctxpoll", "repro/internal/chain",
		[]*analysis.Analyzer{lint.Ctxpoll}, lint.Names())
}

// TestOutOfScope runs the full suite over a fixture that breaks every
// rule but claims an import path outside all analyzer scopes: the suite
// must stay silent.
func TestOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata/outofscope", "repro/internal/netnode",
		lint.Analyzers(), lint.Names())
	if len(diags) != 0 {
		t.Errorf("out-of-scope fixture produced %d diagnostics", len(diags))
	}
}

// TestDirectives checks //bcbptlint:allow handling programmatically: a
// want comment cannot share a line with a directive (they would merge
// into one comment), so the expected set is asserted here instead.
func TestDirectives(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/directives", "repro/internal/sim")
	diags, err := analysis.Run(pkg, lint.Analyzers(), lint.Names())
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		analyzer, substr string
	}{
		// missingReason: the malformed directive suppresses nothing, so
		// both the underlying finding and the directive problem report.
		{"detrand", "wall-clock time.Now"},
		{"bcbptlint", "needs a reason"},
		// unknownAnalyzer: likewise.
		{"detrand", "wall-clock time.Now"},
		{"bcbptlint", "unknown analyzer detrnd"},
		// unusedAllow and unknownVerb.
		{"bcbptlint", "unused //bcbptlint:allow detrand"},
		{"bcbptlint", "unknown bcbptlint directive deny"},
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(wants))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing [%s] diagnostic containing %q", w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestRepoIsClean is the in-process version of `make lint`: the suite
// over the real module must report nothing — every sanctioned exception
// carries its allow annotation, and every allow is used.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := analysis.LoadPatterns("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern resolution broke", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
