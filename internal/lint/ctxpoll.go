package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Ctxpoll keeps event/run loops cancelable: in any function of a
// deterministic package that takes a context.Context, a for-loop whose
// iteration count is not syntactically bounded (no condition, or a
// condition that does not test a variable advanced by the loop header)
// must mention the context somewhere in its header or body — the
// RunUntil shape, which polls ctx.Err() on a bounded cadence
// (sim.Scheduler.RunUntilCtx checks every ctxCheckInterval events).
// Range loops are bounded by their operand and are exempt.
//
// Without the poll, a runaway campaign (an event loop fed by a ticker,
// a drain that never empties) ignores cancellation until the process is
// killed — exactly what PR 2 threaded contexts through the stack to
// prevent.
var Ctxpoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "require unbounded event loops in ctx-taking functions of deterministic packages to " +
		"poll ctx on a bounded cadence (the RunUntil shape)",
	Run: runCtxpoll,
}

func runCtxpoll(pass *analysis.Pass) error {
	if !ctxPollScope(pass.Path()) {
		return nil
	}
	info := pass.TypesInfo()
	lintableFuncs(pass, func(fd *ast.FuncDecl) {
		ctxObj := ctxParam(info, fd)
		if ctxObj == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // a literal's loops run under its own contract
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if boundedLoop(info, loop) {
				return true
			}
			if loopMentions(info, loop, ctxObj) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"unbounded loop in %s never polls ctx: check ctx.Err() on a bounded cadence (see sim.Scheduler.RunUntilCtx)",
				fd.Name.Name)
			return true
		})
	})
	return nil
}

// ctxParam returns the function's context.Context parameter object, or
// nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
				return obj
			}
		}
	}
	return nil
}

// boundedLoop reports whether the loop's condition tests a variable the
// loop header itself initializes — the `for i := 0; i < n; i++` shape,
// whose iteration count the surrounding code bounds.
func boundedLoop(info *types.Info, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range init.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := objOf(info, id); obj != nil && mentionsObj(info, loop.Cond, obj) {
			return true
		}
	}
	return false
}

// loopMentions reports whether the loop's condition or body references
// the context parameter (directly or via a derived local — any mention
// counts: ctx.Err(), ctx.Done(), passing ctx to a callee that polls it).
func loopMentions(info *types.Info, loop *ast.ForStmt, ctxObj types.Object) bool {
	if loop.Cond != nil && mentionsObj(info, loop.Cond, ctxObj) {
		return true
	}
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == ctxObj {
			found = true
		}
		return !found
	})
	return found
}
