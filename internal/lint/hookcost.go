package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Hookcost enforces the telemetry layer's zero-perturbation contract at
// every obs hook call site in the hot-path packages (hookCostPkgs):
// calls to obs.Shard.Record and calls through `On<Name>` func-typed
// struct fields must be
//
//   - nil-guarded: the receiver/callee expression must be checked
//     against nil on the path to the call (`if x.trace != nil { ... }`,
//     `if tr := x.trace; tr != nil { ... }`, or an early `if x == nil {
//     return }`), or be a local bound from (*obs.Tracer).Shard — which
//     returns a valid shard by contract; and
//   - allocation-free in its arguments: no function literals (closure
//     captures), no fmt calls, no string concatenation, no
//     slice/map/pointer composite literals, no append, and no
//     string(bytes) conversions. Plain struct literals (obs.Event{...})
//     and scalar conversions stay on the stack and are the sanctioned
//     form.
//
// The PR 9 bench-parity gates catch a violation dynamically as an
// allocs/op diff; this analyzer names the exact call site instead.
var Hookcost = &analysis.Analyzer{
	Name: "hookcost",
	Doc: "require obs hook call sites (Shard.Record, On* func fields) to be nil-guarded and " +
		"allocation-free in hot-path packages",
	Run: runHookcost,
}

func runHookcost(pass *analysis.Pass) error {
	if !hookCostPkgs[pass.Path()] {
		return nil
	}
	info := pass.TypesInfo()
	lintableFuncs(pass, func(fd *ast.FuncDecl) {
		w := &guardWalker{pass: pass, info: info}
		w.walkStmts(fd.Body.List, map[string]bool{})
	})
	return nil
}

// guardWalker walks a function body threading the set of expression
// texts known non-nil on the current path.
type guardWalker struct {
	pass *analysis.Pass
	info *types.Info
}

func (w *guardWalker) walkStmts(stmts []ast.Stmt, nn map[string]bool) map[string]bool {
	for _, s := range stmts {
		nn = w.walkStmt(s, nn)
	}
	return nn
}

func copyGuards(nn map[string]bool) map[string]bool {
	out := make(map[string]bool, len(nn))
	for k, v := range nn {
		out[k] = v
	}
	return out
}

func (w *guardWalker) walkStmt(s ast.Stmt, nn map[string]bool) map[string]bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, nn)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, nn)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if w.nonNilExpr(s.Rhs[i], nn) {
					nn = copyGuards(nn)
					nn[id.Name] = true
				} else if nn[id.Name] {
					nn = copyGuards(nn)
					delete(nn, id.Name)
				}
			}
		}
	case *ast.DeferStmt:
		w.checkExpr(s.Call, nn)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, nn)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			nn = w.walkStmt(s.Init, copyGuards(nn))
		}
		w.checkExpr(s.Cond, nn)
		thenNN := copyGuards(nn)
		for _, g := range nilCheckedConjuncts(s.Cond) {
			thenNN[g] = true
		}
		w.walkStmts(s.Body.List, thenNN)
		if s.Else != nil {
			w.walkStmt(s.Else, copyGuards(nn))
		}
		// `if g == nil { return }`: g is non-nil for the rest of the
		// enclosing block.
		if g, ok := nilEqCheck(s.Cond); ok && terminates(s.Body) {
			nn = copyGuards(nn)
			nn[g] = true
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, copyGuards(nn))
	case *ast.ForStmt:
		inner := copyGuards(nn)
		if s.Init != nil {
			inner = w.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, inner)
		}
		w.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, nn)
		w.walkStmts(s.Body.List, copyGuards(nn))
	case *ast.SwitchStmt:
		inner := copyGuards(nn)
		if s.Init != nil {
			inner = w.walkStmt(s.Init, inner)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, inner)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyGuards(inner))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyGuards(nn))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyGuards(nn))
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, nn)
	case *ast.GoStmt:
		w.checkExpr(s.Call, copyGuards(nn))
	case *ast.SendStmt:
		w.checkExpr(s.Chan, nn)
		w.checkExpr(s.Value, nn)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, nn)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, nn)
					}
				}
			}
		}
	}
	return nn
}

// nonNilExpr reports whether e is known non-nil: its text is already
// guarded, or it is a (*obs.Tracer).Shard call — non-nil by contract.
func (w *guardWalker) nonNilExpr(e ast.Expr, nn map[string]bool) bool {
	e = ast.Unparen(e)
	if nn[types.ExprString(e)] {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		fn := calleeFunc(w.info, call)
		if isMethodOn(fn, modulePath+"/internal/obs", "Tracer", "Shard") {
			return true
		}
	}
	return false
}

// nilCheckedConjuncts extracts the guarded expression texts from a
// condition: every `X != nil` conjunct of a && chain.
func nilCheckedConjuncts(cond ast.Expr) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch b.Op {
		case token.LAND:
			walk(b.X)
			walk(b.Y)
		case token.NEQ:
			if isNilLiteral(b.Y) {
				out = append(out, types.ExprString(ast.Unparen(b.X)))
			} else if isNilLiteral(b.X) {
				out = append(out, types.ExprString(ast.Unparen(b.Y)))
			}
		}
	}
	walk(cond)
	return out
}

// nilEqCheck recognizes a bare `X == nil` condition, returning X's text.
func nilEqCheck(cond ast.Expr) (string, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return "", false
	}
	if isNilLiteral(b.Y) {
		return types.ExprString(ast.Unparen(b.X)), true
	}
	if isNilLiteral(b.X) {
		return types.ExprString(ast.Unparen(b.Y)), true
	}
	return "", false
}

func isNilLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkExpr scans an expression for hook call sites, descending into
// function literals with the current guard set (captured guard facts
// hold as long as the captured variable is not reassigned, which the
// assignment case invalidates).
func (w *guardWalker) checkExpr(e ast.Expr, nn map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		guardExpr, site, isHook := w.hookSite(call)
		if !isHook {
			return true
		}
		if !nn[guardExpr] && !w.nonNilExpr(mustExpr(call, guardExpr), nn) {
			w.pass.Reportf(call.Pos(),
				"%s call is not nil-guarded: wrap it in `if %s != nil { ... }` (or bind from Tracer.Shard)",
				site, guardExpr)
		}
		for _, arg := range call.Args {
			w.checkHookArg(site, arg)
		}
		return true
	})
}

// mustExpr re-derives the guard expression node for nonNilExpr's
// Shard-contract test: for Record calls it is the receiver, for hook
// fields the callee itself.
func mustExpr(call *ast.CallExpr, guardText string) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if types.ExprString(ast.Unparen(sel.X)) == guardText {
			return sel.X
		}
	}
	return call.Fun
}

// hookSite classifies call as an obs hook site, returning the expression
// text whose nil-ness gates the call and a printable site name.
func (w *guardWalker) hookSite(call *ast.CallExpr) (guardExpr, site string, ok bool) {
	fun := ast.Unparen(call.Fun)
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		// Calls through a bare identifier: a hook field copied into a
		// local (`f := n.OnX; f(...)`). Treat the identifier as the
		// guard expression when it is a func-typed On* variable.
		if id, isIdent := fun.(*ast.Ident); isIdent {
			if v, isVar := w.info.Uses[id].(*types.Var); isVar && isHookFieldName(id.Name) {
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
					return id.Name, "hook " + id.Name, true
				}
			}
		}
		return "", "", false
	}
	// obs.Shard.Record method call.
	if fn, _ := w.info.Uses[sel.Sel].(*types.Func); fn != nil {
		if isMethodOn(fn, modulePath+"/internal/obs", "Shard", "Record") {
			return types.ExprString(ast.Unparen(sel.X)), "obs.Shard.Record", true
		}
		return "", "", false
	}
	// Call through a func-typed On* struct field.
	if v, isVar := w.info.Uses[sel.Sel].(*types.Var); isVar && v.IsField() && isHookFieldName(sel.Sel.Name) {
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			return types.ExprString(fun), "hook " + sel.Sel.Name, true
		}
	}
	return "", "", false
}

// isHookFieldName reports whether name follows the On<Event> hook
// convention.
func isHookFieldName(name string) bool {
	return len(name) > 2 && name[:2] == "On" && name[2] >= 'A' && name[2] <= 'Z'
}

// checkHookArg flags allocating argument shapes.
func (w *guardWalker) checkHookArg(site string, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.pass.Reportf(n.Pos(), "%s argument allocates: function literal (closure) — pass scalars instead", site)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(w.info, n)
			if fn != nil && funcPkgPath(fn) == "fmt" {
				w.pass.Reportf(n.Pos(), "%s argument allocates: fmt.%s — record scalar fields instead", site, fn.Name())
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					w.pass.Reportf(n.Pos(), "%s argument allocates: append", site)
				}
			}
			if tv, ok := w.info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				if isStringConv(w.info, n) {
					w.pass.Reportf(n.Pos(), "%s argument allocates: string conversion copies — record a prefix/hash instead", site)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(w.info, n.X) {
				w.pass.Reportf(n.Pos(), "%s argument allocates: string concatenation — record scalar fields instead", site)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isComposite := ast.Unparen(n.X).(*ast.CompositeLit); isComposite {
					w.pass.Reportf(n.Pos(), "%s argument allocates: pointer to composite literal escapes", site)
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := w.info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.pass.Reportf(n.Pos(), "%s argument allocates: slice/map literal — record scalar fields instead", site)
					return false
				}
			}
		}
		return true
	})
}

// isStringConv reports whether call is a string([]byte) / string([]rune)
// conversion.
func isStringConv(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil || !isString(tv.Type) {
		return false
	}
	at, ok := info.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return false
	}
	_, isSlice := at.Type.Underlying().(*types.Slice)
	return isSlice
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
