package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestMaintenanceTickerRotatesSafely(t *testing.T) {
	net, proto, ids := buildWorld(t, 40, 40, nil)
	bootstrap(t, net, proto, ids)
	net.OnDisconnect = proto.OnDisconnect

	tick := proto.StartMaintenance(100 * time.Millisecond)
	// Run several full rotations; no migrations are required, but the
	// network must stay consistent (every node clustered, registry and
	// graph in sync).
	if err := net.RunUntil(context.Background(), net.Now()+30*time.Second); err != nil {
		t.Fatal(err)
	}
	tick.Stop()
	if err := net.RunUntil(context.Background(), net.Now()+5*time.Second); err != nil {
		t.Fatal(err)
	}
	if proto.NumClustered() != net.NumNodes() {
		t.Errorf("clustered %d of %d after maintenance", proto.NumClustered(), net.NumNodes())
	}
	for c, members := range proto.Clusters() {
		for _, id := range members {
			if got, _ := proto.ClusterOf(id); got != c {
				t.Fatalf("registry inconsistent for %d", id)
			}
			if _, ok := net.Node(id); !ok {
				t.Fatalf("cluster %d holds dead node %d", c, id)
			}
		}
	}
}

func TestMaintenanceSkipsJoiningAndDeadNodes(t *testing.T) {
	net, proto, ids := buildWorld(t, 30, 41, nil)
	bootstrap(t, net, proto, ids)

	// A dead node: reevaluate must be a no-op, not a panic.
	proto.reevaluate(9999)

	// A node mid-join: mark it joining and reevaluate.
	nd := net.AddNode(geo.Location{Coord: geo.Coord{LatDeg: 1, LonDeg: 1}, Country: "XX", Region: "AF"})
	proto.joining[nd.ID()] = true
	proto.reevaluate(nd.ID())
	if _, ok := proto.ClusterOf(nd.ID()); ok {
		t.Error("joining node was clustered by maintenance")
	}
	delete(proto.joining, nd.ID())
}

func TestMaintenanceWithChurnStaysConsistent(t *testing.T) {
	net, proto, ids := buildWorld(t, 50, 42, nil)
	bootstrap(t, net, proto, ids)
	net.OnDisconnect = proto.OnDisconnect
	tick := proto.StartMaintenance(200 * time.Millisecond)
	defer tick.Stop()

	// Interleave leaves and joins with maintenance rounds.
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("churn-test")
	for i := 0; i < 10; i++ {
		live := net.NodeIDs()
		victim := live[r.Intn(len(live))]
		proto.OnLeave(victim)
		net.RemoveNode(victim)
		nd := net.AddNode(placer.Place(r))
		proto.OnJoin(nd.ID())
		if err := net.RunUntil(context.Background(), net.Now()+5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunUntil(context.Background(), net.Now()+10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Registry only references live nodes.
	for c, members := range proto.Clusters() {
		for _, id := range members {
			if _, ok := net.Node(id); !ok {
				t.Fatalf("cluster %d references dead node %d", c, id)
			}
		}
	}
	// All live nodes clustered (joins settle within the run windows).
	for _, id := range net.NodeIDs() {
		if _, ok := proto.ClusterOf(id); !ok {
			if proto.joining[id] {
				continue // a join may still legitimately be in flight
			}
			t.Errorf("live node %d neither clustered nor joining", id)
		}
	}
}

func TestSingleProbeStillClusters(t *testing.T) {
	// ProbeCount below the estimator's convergence floor must degrade to
	// noisy decisions, not disable clustering entirely.
	net, proto, ids := buildWorld(t, 60, 43, func(c *Config) {
		c.ProbeCount = 1
	})
	bootstrap(t, net, proto, ids)
	if proto.NumClustered() != len(ids) {
		t.Fatalf("clustered %d of %d with single probes", proto.NumClustered(), len(ids))
	}
	// With world-spanning placement, some multi-member clusters must
	// still form in dense regions.
	multi := 0
	for _, members := range proto.Clusters() {
		if len(members) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("single-probe clustering produced only singletons")
	}
}
