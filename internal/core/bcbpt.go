// Package core implements BCBPT — the Bitcoin Clustering Based Ping Time
// protocol, the contribution of the paper (§IV).
//
// BCBPT converts the Bitcoin overlay "from normal randomised neighbour
// selection to proximity based latency selection". Each joining node:
//
//  1. learns candidate peers from the DNS seed, which recommends nodes
//     that are geographically close (geography is "many times a good
//     indication of topologic distance", §IV.B);
//  2. measures the round-trip ping latency to each candidate repeatedly
//     ("multiple messages between pairs of nodes ... to determine
//     variance", §IV.A), feeding an RTT estimator per candidate;
//  3. if the best measured distance is below the threshold dt (eq. 1:
//     D(i,j) < Dth), sends a JOIN to that closest node K and receives the
//     membership list of K's cluster (CLUSTER message), then peers with
//     members of that cluster only;
//  4. otherwise founds a new cluster of its own;
//  5. in either case keeps a few long-distance links to nodes outside its
//     cluster, "giving the visibility into the available information from
//     the outside cluster" (§IV).
//
// Cluster maintenance (§IV.B) runs as periodic re-evaluation: nodes keep
// discovering peers, re-measure, and migrate if they find a markedly
// closer cluster. Departure needs no action ("when the node N wants to
// leave the network ... no further action is required").
package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// ClusterID identifies a BCBPT cluster. Zero means "not clustered yet".
type ClusterID uint64

// Config parameterises BCBPT.
type Config struct {
	// Threshold is dt of eq. (1): two nodes are close when the measured
	// round-trip distance is below it. The paper's headline experiments
	// use 25ms (Fig. 3) and sweep {30, 50, 100}ms (Fig. 4).
	Threshold time.Duration
	// ProbeCount is how many pings are sent per candidate (>= 3 so the
	// estimator is Ready; repeated measurement per §IV.A).
	ProbeCount int
	// ProbeGap spaces the pings of one candidate.
	ProbeGap time.Duration
	// Candidates is how many DNS-recommended nodes a joiner measures.
	Candidates int
	// IntraLinks is the target number of same-cluster connections.
	// Zero defaults to MaxOutbound - LongLinks.
	IntraLinks int
	// LongLinks is the number of out-of-cluster links kept per node.
	LongLinks int
	// JoinStagger is the bootstrap spacing between node joins. The
	// paper's experiment lets each node run discovery every 100ms.
	JoinStagger time.Duration
	// JoinLanes is how many nodes join per JoinStagger tick during
	// bootstrap. 1 reproduces the strictly serial join sequence; 0 picks
	// a population-derived default (serial below ~500 nodes, wider lanes
	// at paper scale so a 5000-node bootstrap does not spend 500s of
	// virtual time joining one node at a time). The lane count is a
	// protocol parameter, never a host-parallelism knob: it is a pure
	// function of the configuration and population, so results are
	// independent of how many build workers compute them.
	JoinLanes int
	// DecisionSlack bounds how long a joiner waits for probe replies
	// beyond the probing schedule itself before deciding.
	DecisionSlack time.Duration
	// MemberSample caps how many member addresses a CLUSTER reply
	// carries.
	MemberSample int
}

// DefaultConfig returns the paper's experimental parameters (dt = 25ms).
func DefaultConfig() Config {
	return Config{
		Threshold:     25 * time.Millisecond,
		ProbeCount:    3,
		ProbeGap:      20 * time.Millisecond,
		Candidates:    16,
		LongLinks:     2,
		JoinStagger:   100 * time.Millisecond,
		DecisionSlack: 2 * time.Second,
		MemberSample:  64,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Threshold <= 0 {
		return fmt.Errorf("core: Threshold = %v, must be positive", c.Threshold)
	}
	if c.ProbeCount < 1 {
		return fmt.Errorf("core: ProbeCount = %d, must be >= 1", c.ProbeCount)
	}
	if c.Candidates < 1 {
		return fmt.Errorf("core: Candidates = %d, must be >= 1", c.Candidates)
	}
	if c.LongLinks < 0 {
		return fmt.Errorf("core: LongLinks = %d, must be >= 0", c.LongLinks)
	}
	if c.JoinLanes < 0 {
		return fmt.Errorf("core: JoinLanes = %d, must be >= 0", c.JoinLanes)
	}
	if c.MemberSample < 1 {
		return fmt.Errorf("core: MemberSample = %d, must be >= 1", c.MemberSample)
	}
	return nil
}

// Stats counts protocol events for the overhead evaluation.
type Stats struct {
	// Joins counts accepted JOIN exchanges.
	Joins uint64
	// Rejects counts refused JOINs.
	Rejects uint64
	// Founded counts clusters created because no candidate was close
	// enough (or all JOIN attempts failed).
	Founded uint64
	// Probes counts measurement pings initiated.
	Probes uint64
	// Migrations counts maintenance-driven cluster changes.
	Migrations uint64
}

// BCBPT drives the protocol across the whole simulated network. The
// central membership registry represents the aggregate of per-node views:
// joins are serialized through JOIN/CLUSTER wire messages, so every
// registry transition corresponds to a message a real deployment would
// also have seen.
type BCBPT struct {
	net  *p2p.Network
	seed *topology.DNSSeed
	cfg  Config
	r    *rand.Rand

	intra int

	// workers bounds the host-side goroutines Bootstrap uses for its
	// sharded candidate precompute. It affects wall-clock only, never
	// results (the precompute is a pure function of the registry).
	workers int

	// recs holds per-node candidate rankings precomputed by Bootstrap,
	// consumed one-shot by each node's join. Nodes joining later (churn
	// arrivals) fall back to a live DNS recommendation.
	recs map[p2p.NodeID][]p2p.NodeID

	clusterOf map[p2p.NodeID]ClusterID
	members   map[ClusterID][]p2p.NodeID
	nextID    ClusterID

	joining map[p2p.NodeID]bool

	stats Stats
}

var _ topology.Protocol = (*BCBPT)(nil)

// New creates a BCBPT instance over the network.
func New(net *p2p.Network, seed *topology.DNSSeed, cfg Config) (*BCBPT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	intra := cfg.IntraLinks
	if intra <= 0 {
		intra = net.Config().MaxOutbound - cfg.LongLinks
		if intra < 1 {
			intra = 1
		}
	}
	return &BCBPT{
		net:       net,
		seed:      seed,
		cfg:       cfg,
		r:         net.Streams().Stream("topology/bcbpt"),
		intra:     intra,
		workers:   runtime.GOMAXPROCS(0),
		clusterOf: make(map[p2p.NodeID]ClusterID),
		members:   make(map[ClusterID][]p2p.NodeID),
		joining:   make(map[p2p.NodeID]bool),
	}, nil
}

// SetBuildWorkers bounds the goroutines Bootstrap's sharded precompute
// may use (<= 0 restores the GOMAXPROCS default). Purely a wall-clock
// knob: every worker count produces bit-identical networks.
func (b *BCBPT) SetBuildWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	b.workers = w
}

// Name implements topology.Protocol.
func (b *BCBPT) Name() string { return fmt.Sprintf("bcbpt(dt=%v)", b.cfg.Threshold) }

// Stats returns a snapshot of the protocol counters.
func (b *BCBPT) Stats() Stats { return b.stats }

// Config returns the protocol configuration.
func (b *BCBPT) Config() Config { return b.cfg }

// ClusterOf returns the cluster of a node (0, false if not yet clustered).
func (b *BCBPT) ClusterOf(id p2p.NodeID) (ClusterID, bool) {
	c, ok := b.clusterOf[id]
	return c, ok
}

// Clusters returns a copy of the membership map.
func (b *BCBPT) Clusters() map[ClusterID][]p2p.NodeID {
	out := make(map[ClusterID][]p2p.NodeID, len(b.members))
	for k, v := range b.members {
		out[k] = append([]p2p.NodeID(nil), v...)
	}
	return out
}

// NumClustered returns how many nodes have completed clustering.
func (b *BCBPT) NumClustered() int { return len(b.clusterOf) }

// Partitions implements topology.Partitioner: one group per proximity
// cluster, in ascending ClusterID order, members sorted by node ID. BCBPT
// clusters are the natural event domains for conservative parallel
// dispatch — the protocol's whole point is that intra-cluster links are
// short and inter-cluster links long, which is exactly what maximises the
// dispatcher's cross-partition lookahead.
func (b *BCBPT) Partitions() [][]p2p.NodeID {
	cids := make([]ClusterID, 0, len(b.members))
	for c := range b.members {
		cids = append(cids, c)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	out := make([][]p2p.NodeID, 0, len(cids))
	for _, c := range cids {
		ids := append([]p2p.NodeID(nil), b.members[c]...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, ids)
	}
	return out
}

// lanesFor resolves the effective join-lane width for an n-node
// bootstrap: the configured JoinLanes, or a population-derived default —
// serial below 512 nodes (matching the paper's one-at-a-time discovery
// loop at experiment scale), then one extra lane per 512 nodes capped at
// 16 so paper-scale virtual bootstrap time stays in the tens of seconds.
func (c Config) lanesFor(n int) int {
	lanes := c.JoinLanes
	if lanes == 0 {
		lanes = 1 + n/512
		if lanes > 16 {
			lanes = 16
		}
	}
	if n > 0 && lanes > n {
		lanes = n
	}
	return lanes
}

// recsShardSize is how many nodes one precompute shard ranks. Shard
// boundaries are a pure function of the population (never of the worker
// count), so the sharded precompute is bit-identical for any concurrency.
const recsShardSize = 128

// Bootstrap implements topology.Protocol: nodes join in JoinLanes-wide
// waves spaced by JoinStagger, each executing the full measure-then-join
// procedure in virtual time (within a wave, lower IDs join first — the
// scheduler breaks virtual-time ties by schedule order). Run the network
// afterwards to let it complete; see BootstrapDeadline.
//
// Before scheduling any join, Bootstrap precomputes every node's DNS
// candidate ranking — the dominant host-time cost of a large build — in
// population-derived shards spread across the worker pool configured by
// SetBuildWorkers. ctx cancels the precompute between shards; a cancelled
// Bootstrap returns an error wrapping ctx.Err() having scheduled nothing.
func (b *BCBPT) Bootstrap(ctx context.Context, ids []p2p.NodeID) error {
	for _, id := range ids {
		if node, ok := b.net.Node(id); ok {
			b.seed.Register(id, node.Location())
			b.installHandler(node)
		}
	}
	if err := b.precomputeRecs(ctx, ids); err != nil {
		return err
	}
	lanes := b.cfg.lanesFor(len(ids))
	for i, id := range ids {
		id := id
		b.net.Scheduler().After(time.Duration(i/lanes)*b.cfg.JoinStagger, func() {
			b.startJoin(id)
		})
	}
	return nil
}

// precomputeRecs ranks every bootstrap node's DNS candidates over the
// full registry snapshot, sharded across the build worker pool. Each
// shard calls the exact routine the live join path uses, so a consumed
// precomputed ranking is indistinguishable from one computed at join
// time; the registry is read-only for the duration.
func (b *BCBPT) precomputeRecs(ctx context.Context, ids []p2p.NodeID) error {
	if len(ids) == 0 {
		return nil
	}
	locs := make([]geo.Location, len(ids))
	for i, id := range ids {
		if node, ok := b.net.Node(id); ok {
			locs[i] = node.Location()
		}
	}
	slots := make([][]p2p.NodeID, len(ids))
	shards := (len(ids) + recsShardSize - 1) / recsShardSize
	err := sim.ParallelFor(ctx, shards, b.workers, func(s int) {
		lo := s * recsShardSize
		hi := lo + recsShardSize
		if hi > len(ids) {
			hi = len(ids)
		}
		for i := lo; i < hi; i++ {
			slots[i] = b.seed.Recommend(ids[i], locs[i], 4*b.cfg.Candidates)
		}
	})
	if err != nil {
		return fmt.Errorf("core: bootstrap candidate precompute (%d shards): %w", shards, err)
	}
	b.recs = make(map[p2p.NodeID][]p2p.NodeID, len(ids))
	for i, id := range ids {
		b.recs[id] = slots[i]
	}
	return nil
}

// BootstrapDeadline estimates the virtual time by which an n-node
// bootstrap has settled, derived from the lane-sharded join schedule:
// the last wave starts at floor((n-1)/lanes) staggers, then needs its
// probing window plus slack to decide.
func (b *BCBPT) BootstrapDeadline(n int) time.Duration {
	probing := time.Duration(b.cfg.ProbeCount)*b.cfg.ProbeGap + 2*b.cfg.DecisionSlack
	waves := 0
	if n > 0 {
		waves = (n - 1) / b.cfg.lanesFor(n)
	}
	return time.Duration(waves)*b.cfg.JoinStagger + probing + 5*time.Second
}

// OnJoin implements topology.Protocol.
func (b *BCBPT) OnJoin(id p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		return
	}
	b.seed.Register(id, node.Location())
	b.installHandler(node)
	b.startJoin(id)
}

// OnLeave implements topology.Protocol. Per the paper, departure requires
// no protocol action beyond forgetting the node.
func (b *BCBPT) OnLeave(id p2p.NodeID) {
	b.seed.Remove(id)
	b.unassign(id)
	delete(b.joining, id)
}

// OnDisconnect implements topology.Protocol: survivors refill their
// cluster links and long links.
func (b *BCBPT) OnDisconnect(x, y p2p.NodeID) {
	if _, ok := b.net.Node(x); ok {
		b.fill(x)
	}
	if _, ok := b.net.Node(y); ok {
		b.fill(y)
	}
}

// --- membership registry ---

func (b *BCBPT) assign(id p2p.NodeID, c ClusterID) {
	b.unassign(id)
	b.clusterOf[id] = c
	m := b.members[c]
	i := sort.Search(len(m), func(i int) bool { return m[i] >= id })
	m = append(m, 0)
	copy(m[i+1:], m[i:])
	m[i] = id
	b.members[c] = m
}

func (b *BCBPT) unassign(id p2p.NodeID) {
	c, ok := b.clusterOf[id]
	if !ok {
		return
	}
	delete(b.clusterOf, id)
	m := b.members[c]
	i := sort.Search(len(m), func(i int) bool { return m[i] >= id })
	if i < len(m) && m[i] == id {
		m = append(m[:i], m[i+1:]...)
	}
	if len(m) == 0 {
		delete(b.members, c)
	} else {
		b.members[c] = m
	}
}

// found creates a fresh cluster containing only id.
func (b *BCBPT) found(id p2p.NodeID) {
	b.nextID++
	b.assign(id, b.nextID)
	b.stats.Founded++
}

// --- join procedure ---

// startJoin launches the measure-then-join procedure for a node.
func (b *BCBPT) startJoin(id p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		return
	}
	if b.joining[id] {
		return
	}
	if _, clustered := b.clusterOf[id]; clustered {
		return
	}
	b.joining[id] = true

	cands := b.candidates(id, node.Location())
	if len(cands) == 0 {
		// First node (or empty world): found the first cluster.
		b.finishJoin(id, 0, nil)
		return
	}
	for _, c := range cands {
		b.stats.Probes += uint64(b.cfg.ProbeCount)
		node.ProbeN(c, b.cfg.ProbeCount, b.cfg.ProbeGap, nil)
	}
	// Decide once the probing schedule plus slack has elapsed; replies
	// that miss the deadline are treated as losses, like a real timeout.
	deadline := time.Duration(b.cfg.ProbeCount)*b.cfg.ProbeGap + b.cfg.DecisionSlack
	b.net.Scheduler().After(deadline, func() {
		b.decide(id, cands)
	})
}

// candidates returns up to Candidates clustered nodes, geographically
// nearest first (the DNS recommendation of §IV.B). Bootstrap nodes
// consume the ranking precomputed over the bootstrap registry snapshot
// (one-shot — the snapshot goes stale once churn begins); everyone else
// gets a live recommendation.
func (b *BCBPT) candidates(id p2p.NodeID, loc geo.Location) []p2p.NodeID {
	recs, precomputed := b.recs[id]
	if precomputed {
		delete(b.recs, id)
	} else {
		// Ask for extra because unclustered recommendations are filtered
		// out.
		recs = b.seed.Recommend(id, loc, 4*b.cfg.Candidates)
	}
	out := make([]p2p.NodeID, 0, b.cfg.Candidates)
	for _, r := range recs {
		if _, clustered := b.clusterOf[r]; !clustered {
			continue
		}
		out = append(out, r)
		if len(out) == b.cfg.Candidates {
			break
		}
	}
	return out
}

// decide picks the closest measured candidate and either JOINs its
// cluster or founds a new one (eq. 1 threshold test).
func (b *BCBPT) decide(id p2p.NodeID, cands []p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		delete(b.joining, id)
		return
	}
	if _, clustered := b.clusterOf[id]; clustered {
		delete(b.joining, id)
		return
	}
	// Prefer converged estimators (>= 3 samples); if the probe budget is
	// too small for any to converge, fall back to whatever was measured —
	// a noisy decision is the protocol's behaviour at low probe budgets,
	// not a refusal to cluster (exercised by the probe-count ablation).
	pick := func(requireReady bool) (p2p.NodeID, time.Duration) {
		var best p2p.NodeID
		bestRTT := time.Duration(1<<62 - 1)
		for _, c := range cands {
			est, ok := node.Estimator(c)
			if !ok || est.Samples() == 0 || (requireReady && !est.Ready()) {
				continue
			}
			// The minimum observed RTT is the congestion-free distance
			// estimate used in the closeness test.
			if rtt := est.Min(); rtt < bestRTT {
				best, bestRTT = c, rtt
			}
		}
		return best, bestRTT
	}
	best, bestRTT := pick(true)
	if best == 0 {
		best, bestRTT = pick(false)
	}
	if best == 0 || bestRTT >= b.cfg.Threshold {
		// No node within dt: the node founds its own cluster.
		b.finishJoin(id, 0, nil)
		return
	}
	// JOIN the closest node K's cluster.
	node.Send(best, &wire.MsgJoin{
		Self:              wire.NetAddr{NodeID: uint64(id)},
		MeasuredRTTMicros: uint64(bestRTT / time.Microsecond),
	})
	// If the CLUSTER reply never arrives (K churned away), fall back to
	// founding a cluster.
	b.net.Scheduler().After(b.cfg.DecisionSlack, func() {
		if _, clustered := b.clusterOf[id]; !clustered && b.joining[id] {
			if _, alive := b.net.Node(id); alive {
				b.finishJoin(id, 0, nil)
			} else {
				delete(b.joining, id)
			}
		}
	})
}

// finishJoin completes a join: cluster == 0 founds a new cluster,
// otherwise the node enters the given cluster and connects to the
// provided members.
func (b *BCBPT) finishJoin(id p2p.NodeID, cluster ClusterID, members []p2p.NodeID) {
	delete(b.joining, id)
	if _, ok := b.net.Node(id); !ok {
		return
	}
	if cluster == 0 {
		b.found(id)
	} else {
		b.assign(id, cluster)
	}
	b.fillWith(id, members)
}

// --- wire message handling (JOIN / CLUSTER) ---

// installHandler hooks BCBPT message processing into a node.
func (b *BCBPT) installHandler(node *p2p.Node) {
	id := node.ID()
	node.SetExtraHandler(func(from p2p.NodeID, msg wire.Message) {
		switch m := msg.(type) {
		case *wire.MsgJoin:
			b.handleJoin(id, from, m)
		case *wire.MsgCluster:
			b.handleCluster(id, from, m)
		}
	})
}

// handleJoin runs at the closest node K: accept if the reported distance
// is within K's threshold and K itself is clustered.
func (b *BCBPT) handleJoin(self, from p2p.NodeID, m *wire.MsgJoin) {
	node, ok := b.net.Node(self)
	if !ok {
		return
	}
	cluster, clustered := b.clusterOf[self]
	rtt := time.Duration(m.MeasuredRTTMicros) * time.Microsecond
	if !clustered || rtt >= b.cfg.Threshold {
		b.stats.Rejects++
		node.Send(from, &wire.MsgCluster{Accepted: false})
		return
	}
	b.stats.Joins++
	// Sample members for the reply ("a list of IPs of nodes that belong
	// to the same cluster", §IV.B), capped to keep the message bounded.
	all := b.members[cluster]
	sample := make([]wire.NetAddr, 0, min(len(all), b.cfg.MemberSample))
	if len(all) <= b.cfg.MemberSample {
		for _, mID := range all {
			sample = append(sample, wire.NetAddr{NodeID: uint64(mID)})
		}
	} else {
		perm := b.r.Perm(len(all))[:b.cfg.MemberSample]
		sort.Ints(perm)
		for _, i := range perm {
			sample = append(sample, wire.NetAddr{NodeID: uint64(all[i])})
		}
	}
	node.Send(from, &wire.MsgCluster{
		ClusterID: uint64(cluster),
		Accepted:  true,
		Members:   sample,
	})
}

// handleCluster runs at the joiner when K's reply arrives.
func (b *BCBPT) handleCluster(self, from p2p.NodeID, m *wire.MsgCluster) {
	if !b.joining[self] {
		return // late or duplicate reply
	}
	if _, clustered := b.clusterOf[self]; clustered {
		return
	}
	if !m.Accepted {
		b.finishJoin(self, 0, nil)
		return
	}
	members := make([]p2p.NodeID, 0, len(m.Members)+1)
	members = append(members, from)
	for _, a := range m.Members {
		if id := p2p.NodeID(a.NodeID); id != self && id != from {
			members = append(members, id)
		}
	}
	b.finishJoin(self, ClusterID(m.ClusterID), members)
}

// --- link management ---

// fill restores a node's intra and long link targets using the registry.
func (b *BCBPT) fill(id p2p.NodeID) { b.fillWith(id, nil) }

// fillWith connects a node to preferred members first (the CLUSTER list,
// closest node K at the head), then random cluster members, then long
// links outside the cluster.
func (b *BCBPT) fillWith(id p2p.NodeID, preferred []p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		return
	}
	cluster, clustered := b.clusterOf[id]
	if !clustered {
		return
	}
	for _, m := range preferred {
		if b.intraCount(node, cluster) >= b.intra {
			break
		}
		if b.clusterOf[m] == cluster {
			_ = b.net.Connect(id, m)
		}
	}
	mates := b.members[cluster]
	attempts := 0
	maxAttempts := 10 * b.intra
	target := b.intra
	if len(mates)-1 < target {
		target = len(mates) - 1
	}
	for b.intraCount(node, cluster) < target && attempts < maxAttempts {
		attempts++
		m := mates[b.r.Intn(len(mates))]
		if m == id {
			continue
		}
		_ = b.net.Connect(id, m)
	}
	// Long links: "each node maintains a few long distance links to the
	// outside cluster" (§IV).
	all := b.seed.All()
	attempts = 0
	maxAttempts = 10 * b.cfg.LongLinks
	for b.longCount(node, cluster) < b.cfg.LongLinks && attempts < maxAttempts {
		attempts++
		m := all[b.r.Intn(len(all))]
		if m == id || b.clusterOf[m] == cluster {
			continue
		}
		_ = b.net.Connect(id, m)
	}
}

func (b *BCBPT) intraCount(node *p2p.Node, cluster ClusterID) int {
	c := 0
	for _, p := range node.Peers() {
		if b.clusterOf[p] == cluster {
			c++
		}
	}
	return c
}

func (b *BCBPT) longCount(node *p2p.Node, cluster ClusterID) int {
	c := 0
	for _, p := range node.Peers() {
		if b.clusterOf[p] != cluster {
			c++
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
