package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/topology"
)

// buildWorld creates a network of n nodes placed around the world and a
// BCBPT instance over it.
func buildWorld(t testing.TB, n int, seed int64, mutate func(*Config)) (*p2p.Network, *BCBPT, []p2p.NodeID) {
	t.Helper()
	pcfg := p2p.DefaultConfig()
	pcfg.Validation = p2p.ValidationNone
	pcfg.Seed = seed
	net, err := p2p.NewNetwork(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("placement")
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = net.AddNode(placer.Place(r)).ID()
	}
	cfg := DefaultConfig()
	// Keep unit-test bootstraps quick.
	cfg.JoinStagger = 20 * time.Millisecond
	cfg.DecisionSlack = 500 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	proto, err := New(net, topology.NewDNSSeed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, proto, ids
}

// bootstrap runs the full join procedure to completion.
func bootstrap(t testing.TB, net *p2p.Network, proto *BCBPT, ids []p2p.NodeID) {
	t.Helper()
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	if err := net.RunUntil(context.Background(), proto.BootstrapDeadline(len(ids))); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero threshold", func(c *Config) { c.Threshold = 0 }},
		{"zero probes", func(c *Config) { c.ProbeCount = 0 }},
		{"zero candidates", func(c *Config) { c.Candidates = 0 }},
		{"negative long links", func(c *Config) { c.LongLinks = -1 }},
		{"zero member sample", func(c *Config) { c.MemberSample = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted bad config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestBootstrapClustersEveryNode(t *testing.T) {
	net, proto, ids := buildWorld(t, 120, 1, nil)
	bootstrap(t, net, proto, ids)

	if got := proto.NumClustered(); got != len(ids) {
		t.Fatalf("clustered %d of %d nodes", got, len(ids))
	}
	clusters := proto.Clusters()
	if len(clusters) < 2 {
		t.Errorf("only %d clusters; world-spanning population should split", len(clusters))
	}
	total := 0
	for c, members := range clusters {
		total += len(members)
		for _, id := range members {
			if got, ok := proto.ClusterOf(id); !ok || got != c {
				t.Fatalf("registry inconsistent for node %d", id)
			}
		}
	}
	if total != len(ids) {
		t.Errorf("membership total %d != %d", total, len(ids))
	}
}

func TestClustersAreLatencyProximate(t *testing.T) {
	// The defining property of BCBPT (eq. 1): same-cluster pairs have
	// lower base RTT than cross-cluster pairs, in distribution.
	net, proto, ids := buildWorld(t, 150, 2, nil)
	bootstrap(t, net, proto, ids)

	var intraSum, interSum time.Duration
	var intraN, interN int
	for i := 0; i < len(ids); i += 2 {
		for j := i + 1; j < len(ids); j += 5 {
			rtt, ok := net.BaseRTT(ids[i], ids[j])
			if !ok {
				continue
			}
			ci, _ := proto.ClusterOf(ids[i])
			cj, _ := proto.ClusterOf(ids[j])
			if ci == cj {
				intraSum += rtt
				intraN++
			} else {
				interSum += rtt
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Fatalf("degenerate sampling: intra=%d inter=%d", intraN, interN)
	}
	intraMean := intraSum / time.Duration(intraN)
	interMean := interSum / time.Duration(interN)
	if intraMean >= interMean {
		t.Errorf("intra-cluster mean RTT %v >= inter %v", intraMean, interMean)
	}
	// Intra-cluster links should hover near the threshold scale.
	if intraMean > 4*proto.Config().Threshold {
		t.Errorf("intra-cluster mean RTT %v far above threshold %v", intraMean, proto.Config().Threshold)
	}
}

func TestConnectedLinksRespectClusterStructure(t *testing.T) {
	net, proto, ids := buildWorld(t, 100, 3, nil)
	bootstrap(t, net, proto, ids)

	intra, inter := 0, 0
	for _, id := range ids {
		node, ok := net.Node(id)
		if !ok {
			continue
		}
		my, _ := proto.ClusterOf(id)
		for _, p := range node.Peers() {
			if other, _ := proto.ClusterOf(p); other == my {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra == 0 {
		t.Fatal("no intra-cluster links")
	}
	if inter == 0 {
		t.Fatal("no long links; clusters would be isolated")
	}
	if intra <= inter {
		t.Errorf("intra=%d <= inter=%d; proximity structure missing", intra, inter)
	}
}

func TestOverlayIsConnected(t *testing.T) {
	net, proto, ids := buildWorld(t, 100, 4, nil)
	bootstrap(t, net, proto, ids)

	visited := make(map[p2p.NodeID]bool)
	queue := []p2p.NodeID{ids[0]}
	visited[ids[0]] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node, ok := net.Node(cur)
		if !ok {
			continue
		}
		for _, next := range node.Peers() {
			if !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
		}
	}
	if len(visited) != len(ids) {
		t.Errorf("overlay reaches %d of %d nodes; long links must bridge clusters", len(visited), len(ids))
	}
}

func TestSmallerThresholdYieldsSmallerClusters(t *testing.T) {
	// §V.C: "the number of nodes at each cluster is minimised" as dt
	// shrinks — the mechanism behind Fig. 4.
	meanSize := func(th time.Duration) float64 {
		net, proto, ids := buildWorld(t, 150, 5, func(c *Config) { c.Threshold = th })
		bootstrap(t, net, proto, ids)
		clusters := proto.Clusters()
		if len(clusters) == 0 {
			t.Fatal("no clusters")
		}
		return float64(len(ids)) / float64(len(clusters))
	}
	small := meanSize(15 * time.Millisecond)
	large := meanSize(150 * time.Millisecond)
	if small >= large {
		t.Errorf("mean cluster size: dt=15ms %.1f >= dt=150ms %.1f", small, large)
	}
}

func TestJoinExchangeUsesWireMessages(t *testing.T) {
	net, proto, ids := buildWorld(t, 60, 6, nil)
	bootstrap(t, net, proto, ids)

	st := proto.Stats()
	if st.Joins == 0 {
		t.Error("no JOIN exchanges recorded")
	}
	if st.Probes == 0 {
		t.Error("no measurement probes recorded")
	}
	// Founded + joined should cover all nodes.
	if st.Joins+st.Founded < uint64(len(ids)) {
		t.Errorf("joins %d + founded %d < nodes %d", st.Joins, st.Founded, len(ids))
	}
	// Wire-level: ping and join traffic must exist.
	wireStats := net.Stats()
	msgs, _ := wireStats.PingTraffic()
	if msgs == 0 {
		t.Error("no ping traffic on the wire")
	}
}

func TestLateJoinerEntersExistingCluster(t *testing.T) {
	net, proto, ids := buildWorld(t, 80, 7, nil)
	bootstrap(t, net, proto, ids)
	before := len(proto.Clusters())

	// A new node lands in Frankfurt, a dense region: it should join an
	// existing cluster, not found one.
	nd := net.AddNode(geo.Location{
		Coord: geo.Coord{LatDeg: 50.11, LonDeg: 8.68}, City: "Frankfurt", Country: "DE", Region: "EU",
	})
	proto.OnJoin(nd.ID())
	if err := net.RunUntil(context.Background(), net.Now()+10*time.Second); err != nil {
		t.Fatal(err)
	}
	c, ok := proto.ClusterOf(nd.ID())
	if !ok {
		t.Fatal("late joiner never clustered")
	}
	if len(proto.Clusters()[c]) < 2 {
		t.Error("late joiner founded a singleton despite nearby clusters")
	}
	if got := len(proto.Clusters()); got > before+1 {
		t.Errorf("cluster count grew from %d to %d on one join", before, got)
	}
	if nd.NumPeers() == 0 {
		t.Error("late joiner has no links")
	}
}

func TestIsolatedJoinerFoundsCluster(t *testing.T) {
	net, proto, ids := buildWorld(t, 40, 8, nil)
	bootstrap(t, net, proto, ids)

	// A node in the middle of the Pacific is beyond dt of everything.
	nd := net.AddNode(geo.Location{
		Coord: geo.Coord{LatDeg: -20, LonDeg: -140}, City: "Nowhere", Country: "XX", Region: "OC",
	})
	foundedBefore := proto.Stats().Founded
	proto.OnJoin(nd.ID())
	if err := net.RunUntil(context.Background(), net.Now()+10*time.Second); err != nil {
		t.Fatal(err)
	}
	c, ok := proto.ClusterOf(nd.ID())
	if !ok {
		t.Fatal("isolated joiner never clustered")
	}
	if members := proto.Clusters()[c]; len(members) != 1 {
		t.Errorf("isolated joiner cluster has %d members, want 1", len(members))
	}
	if proto.Stats().Founded != foundedBefore+1 {
		t.Error("Founded counter not incremented")
	}
	// Long links still give it reachability.
	if nd.NumPeers() == 0 {
		t.Error("isolated node has no long links")
	}
}

func TestLeaveRequiresNoProtocolAction(t *testing.T) {
	net, proto, ids := buildWorld(t, 60, 9, nil)
	bootstrap(t, net, proto, ids)
	net.OnDisconnect = proto.OnDisconnect

	leaver := ids[5]
	proto.OnLeave(leaver)
	net.RemoveNode(leaver)
	if err := net.RunUntil(context.Background(), net.Now()+5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := proto.ClusterOf(leaver); ok {
		t.Error("departed node still registered")
	}
	for _, id := range net.NodeIDs() {
		node, _ := net.Node(id)
		if node.IsPeer(leaver) {
			t.Fatalf("node %d still peers with departed node", id)
		}
	}
}

func TestChurnedJoinerDoesNotCorruptRegistry(t *testing.T) {
	net, proto, ids := buildWorld(t, 50, 10, nil)
	bootstrap(t, net, proto, ids)

	// Start a join, then remove the node before it can decide.
	nd := net.AddNode(geo.Location{
		Coord: geo.Coord{LatDeg: 50, LonDeg: 8}, Country: "DE", Region: "EU",
	})
	proto.OnJoin(nd.ID())
	proto.OnLeave(nd.ID())
	net.RemoveNode(nd.ID())
	if err := net.RunUntil(context.Background(), net.Now()+10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := proto.ClusterOf(nd.ID()); ok {
		t.Error("churned joiner ended up registered")
	}
}

func TestMaintenanceMigratesMisplacedNode(t *testing.T) {
	// Build a world, then force a node into a far-away cluster and check
	// maintenance pulls it back toward a latency-closer one.
	net, proto, ids := buildWorld(t, 80, 11, nil)
	bootstrap(t, net, proto, ids)
	net.OnDisconnect = proto.OnDisconnect

	// Find two clusters with at least 3 members each.
	var big []ClusterID
	for c, members := range proto.Clusters() {
		if len(members) >= 3 {
			big = append(big, c)
		}
	}
	if len(big) < 2 {
		t.Skip("world did not produce two big clusters")
	}
	// Pick a member of big[0] and graft it into big[1]'s registry (a
	// "misplacement" as could arise from stale measurements).
	victim := proto.Clusters()[big[0]][0]
	proto.assign(victim, big[1])

	tick := proto.StartMaintenance(50 * time.Millisecond)
	defer tick.Stop()
	if err := net.RunUntil(context.Background(), net.Now()+5*time.Minute); err != nil {
		t.Fatal(err)
	}
	got, ok := proto.ClusterOf(victim)
	if !ok {
		t.Fatal("victim lost its cluster")
	}
	if got == big[1] {
		// Maintenance may legitimately keep it if big[1] happens to be
		// close too; require at least that migrations occur in general.
		if proto.Stats().Migrations == 0 {
			t.Error("no migrations at all during maintenance")
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	build := func() map[p2p.NodeID]ClusterID {
		net, proto, ids := buildWorld(t, 70, 12, nil)
		bootstrap(t, net, proto, ids)
		out := make(map[p2p.NodeID]ClusterID)
		for _, id := range ids {
			c, _ := proto.ClusterOf(id)
			out[id] = c
		}
		return out
	}
	a, b := build(), build()
	for id, c := range a {
		if b[id] != c {
			t.Fatalf("node %d cluster differs across identical runs: %d vs %d", id, c, b[id])
		}
	}
}

func TestRejectedJoinFallsBack(t *testing.T) {
	// With a minuscule threshold every JOIN candidate fails eq. (1), so
	// every node founds its own cluster.
	net, proto, ids := buildWorld(t, 30, 13, func(c *Config) {
		c.Threshold = time.Nanosecond
	})
	bootstrap(t, net, proto, ids)
	if got := proto.NumClustered(); got != len(ids) {
		t.Fatalf("clustered %d of %d", got, len(ids))
	}
	if got := len(proto.Clusters()); got != len(ids) {
		t.Errorf("clusters = %d, want %d singletons", got, len(ids))
	}
}

func BenchmarkBootstrap200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, proto, ids := buildWorld(b, 200, 14, nil)
		if err := proto.Bootstrap(context.Background(), ids); err != nil {
			b.Fatal(err)
		}
		if err := net.RunUntil(context.Background(), proto.BootstrapDeadline(len(ids))); err != nil {
			b.Fatal(err)
		}
		if proto.NumClustered() != len(ids) {
			b.Fatal("bootstrap incomplete")
		}
	}
}

// TestBootstrapDeadlineLanes pins the deadline to the lane-sharded join
// schedule: with explicit lanes the deadline must cover exactly the last
// wave's start plus the probing window, and the auto-lane default must
// shrink a paper-scale bootstrap well below the old serial estimate.
func TestBootstrapDeadlineLanes(t *testing.T) {
	mk := func(mutate func(*Config)) *BCBPT {
		net, err := p2p.NewNetwork(p2p.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		proto, err := New(net, topology.NewDNSSeed(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return proto
	}

	serial := mk(func(c *Config) { c.JoinLanes = 1 })
	probing := time.Duration(serial.cfg.ProbeCount)*serial.cfg.ProbeGap + 2*serial.cfg.DecisionSlack
	const n = 2048
	wantSerial := time.Duration(n-1)*serial.cfg.JoinStagger + probing + 5*time.Second
	if got := serial.BootstrapDeadline(n); got != wantSerial {
		t.Errorf("serial deadline = %v, want %v", got, wantSerial)
	}

	laned := mk(func(c *Config) { c.JoinLanes = 8 })
	wantLaned := time.Duration((n-1)/8)*laned.cfg.JoinStagger + probing + 5*time.Second
	if got := laned.BootstrapDeadline(n); got != wantLaned {
		t.Errorf("8-lane deadline = %v, want %v", got, wantLaned)
	}

	auto := mk(nil)
	if got := auto.BootstrapDeadline(n); got >= wantSerial/2 {
		t.Errorf("auto-lane deadline %v has not left the serial join sequence (%v)", got, wantSerial)
	}
	// Small populations keep the serial schedule: the deadline must not
	// assume lanes the schedule does not use.
	if got, want := auto.BootstrapDeadline(300), auto.BootstrapDeadline(300); got != want {
		t.Errorf("deadline unstable: %v vs %v", got, want)
	}
	if auto.cfg.lanesFor(300) != 1 {
		t.Errorf("auto lanes for 300 nodes = %d, want serial", auto.cfg.lanesFor(300))
	}
}

// TestBootstrapLanedClusteringCompletes runs a laned bootstrap to its
// derived deadline and requires every node clustered — i.e. the deadline
// genuinely covers the sharded schedule it advertises.
func TestBootstrapLanedClusteringCompletes(t *testing.T) {
	net, proto, ids := buildWorld(t, 300, 21, func(c *Config) { c.JoinLanes = 6 })
	bootstrap(t, net, proto, ids)
	if got := proto.NumClustered(); got != len(ids) {
		t.Errorf("clustered %d of %d nodes by the laned deadline", got, len(ids))
	}
}

// TestBootstrapPrecomputeMatchesLive verifies the sharded candidate
// precompute is invisible to the protocol: a world bootstrapped with the
// precompute (any worker count) matches one where the precompute results
// were discarded so every join ranked its candidates live.
func TestBootstrapPrecomputeMatchesLive(t *testing.T) {
	run := func(workers int, dropPrecompute bool) map[p2p.NodeID]ClusterID {
		net, proto, ids := buildWorld(t, 180, 33, nil)
		proto.SetBuildWorkers(workers)
		if err := proto.Bootstrap(context.Background(), ids); err != nil {
			t.Fatal(err)
		}
		if dropPrecompute {
			proto.recs = nil // force the live Recommend path at join time
		}
		if err := net.RunUntil(context.Background(), proto.BootstrapDeadline(len(ids))); err != nil {
			t.Fatal(err)
		}
		out := make(map[p2p.NodeID]ClusterID, len(ids))
		for _, id := range ids {
			c, ok := proto.ClusterOf(id)
			if !ok {
				t.Fatalf("node %d never clustered", id)
			}
			out[id] = c
		}
		return out
	}
	live := run(1, true)
	for _, workers := range []int{1, 4, 16} {
		pre := run(workers, false)
		for id, c := range live {
			if pre[id] != c {
				t.Fatalf("workers=%d: node %d cluster %d, live path gives %d", workers, id, pre[id], c)
			}
		}
	}
}
