package core

import (
	"time"

	"repro/internal/p2p"
	"repro/internal/sim"
)

// StartMaintenance begins the cluster-maintenance phase of §IV.B:
// "Periodically, Node N discovers other nodes using the normal Bitcoin
// network nodes discovery mechanism. Then, node N finds out whether the
// discovered nodes are physically close by following the distance
// calculation mechanism."
//
// Every interval one node (rotating deterministically) re-measures a few
// candidates; if it finds a node in another cluster whose RTT is under the
// threshold AND strictly better than the best estimate it holds for its
// current cluster peers, it migrates: leaves its cluster links and joins
// the closer cluster. Returns the ticker so callers can stop maintenance.
func (b *BCBPT) StartMaintenance(interval time.Duration) *sim.Ticker {
	var cursor int
	return b.net.Scheduler().NewTicker(interval, func() {
		ids := b.net.NodeIDs()
		if len(ids) == 0 {
			return
		}
		cursor = (cursor + 1) % len(ids)
		b.reevaluate(ids[cursor])
	})
}

// reevaluate runs one maintenance round for a node.
func (b *BCBPT) reevaluate(id p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		return
	}
	cluster, clustered := b.clusterOf[id]
	if !clustered || b.joining[id] {
		return
	}
	cands := b.candidates(id, node.Location())
	var outside []p2p.NodeID
	for _, c := range cands {
		if b.clusterOf[c] != cluster {
			outside = append(outside, c)
		}
	}
	if len(outside) == 0 {
		return
	}
	if len(outside) > 4 {
		outside = outside[:4]
	}
	for _, c := range outside {
		b.stats.Probes += uint64(b.cfg.ProbeCount)
		node.ProbeN(c, b.cfg.ProbeCount, b.cfg.ProbeGap, nil)
	}
	deadline := time.Duration(b.cfg.ProbeCount)*b.cfg.ProbeGap + b.cfg.DecisionSlack
	b.net.Scheduler().After(deadline, func() {
		b.maybeMigrate(id, outside)
	})
}

// maybeMigrate moves the node to a measured-closer cluster if one beats
// both the threshold and its current intra-cluster proximity.
func (b *BCBPT) maybeMigrate(id p2p.NodeID, outside []p2p.NodeID) {
	node, ok := b.net.Node(id)
	if !ok {
		return
	}
	cluster, clustered := b.clusterOf[id]
	if !clustered || b.joining[id] {
		return
	}
	current := b.bestIntraRTT(node, cluster)
	var best p2p.NodeID
	bestRTT := time.Duration(1<<62 - 1)
	for _, c := range outside {
		est, ok := node.Estimator(c)
		if !ok || !est.Ready() {
			continue
		}
		if rtt := est.Min(); rtt < bestRTT {
			best, bestRTT = c, rtt
		}
	}
	if best == 0 || bestRTT >= b.cfg.Threshold || (current > 0 && bestRTT >= current) {
		return
	}
	targetCluster, ok := b.clusterOf[best]
	if !ok || targetCluster == cluster {
		return
	}
	// Migrate: switch registry membership first so any refill triggered
	// by the disconnects below wires into the NEW cluster, then drop the
	// old intra-cluster links.
	b.assign(id, targetCluster)
	b.stats.Migrations++
	for _, p := range node.Peers() {
		if b.clusterOf[p] == cluster {
			b.net.Disconnect(id, p)
		}
	}
	b.fillWith(id, []p2p.NodeID{best})
}

// bestIntraRTT returns the smallest RTT estimate the node holds for a
// same-cluster peer (0 if it has none).
func (b *BCBPT) bestIntraRTT(node *p2p.Node, cluster ClusterID) time.Duration {
	var best time.Duration
	for _, p := range node.Peers() {
		if b.clusterOf[p] != cluster {
			continue
		}
		est, ok := node.Estimator(p)
		if !ok || !est.Ready() {
			continue
		}
		if rtt := est.Min(); best == 0 || rtt < best {
			best = rtt
		}
	}
	return best
}
