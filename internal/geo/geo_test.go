package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Coord
		wantKm float64
		tolKm  float64
	}{
		{"zero", Coord{0, 0}, Coord{0, 0}, 0, 0.001},
		{"london-paris", Coord{51.51, -0.13}, Coord{48.86, 2.35}, 344, 10},
		{"nyc-sf", Coord{40.71, -74.01}, Coord{37.77, -122.42}, 4130, 50},
		{"nyc-london", Coord{40.71, -74.01}, Coord{51.51, -0.13}, 5570, 60},
		{"tokyo-sydney", Coord{35.68, 139.69}, Coord{-33.87, 151.21}, 7820, 80},
		{"antipodal-ish", Coord{0, 0}, Coord{0, 180}, 20015, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotKm := DistanceMeters(tt.a, tt.b) / 1000
			if math.Abs(gotKm-tt.wantKm) > tt.tolKm {
				t.Errorf("distance = %.1f km, want %.1f±%.1f km", gotKm, tt.wantKm, tt.tolKm)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1 := DistanceMeters(a, b)
		d2 := DistanceMeters(b, a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := randCoord(r)
		b := randCoord(r)
		c := randCoord(r)
		ab := DistanceMeters(a, b)
		bc := DistanceMeters(b, c)
		ac := DistanceMeters(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(%v,%v)=%.1f > %.1f+%.1f", a, c, ac, ab, bc)
		}
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d := DistanceMeters(a, b)
		// Max great-circle distance is half the circumference.
		return d >= 0 && d <= math.Pi*EarthRadiusMeters+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorldCitiesValid(t *testing.T) {
	cities := WorldCities()
	if len(cities) < 40 {
		t.Fatalf("city table has %d entries, want >= 40", len(cities))
	}
	seen := make(map[string]bool)
	for _, c := range cities {
		if !c.Coord.Valid() {
			t.Errorf("%s has invalid coordinate %v", c.Name, c.Coord)
		}
		if c.Weight <= 0 {
			t.Errorf("%s has non-positive weight", c.Name)
		}
		if c.Country == "" || c.Region == "" {
			t.Errorf("%s missing country/region", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate city %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestPlacerDeterministic(t *testing.T) {
	p := DefaultPlacer()
	a := p.PlaceN(rand.New(rand.NewSource(9)), 50)
	b := p.PlaceN(rand.New(rand.NewSource(9)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlacerRespectsWeights(t *testing.T) {
	cities := []City{
		{Name: "Heavy", Country: "AA", Region: "X", Coord: Coord{0, 0}, Weight: 90},
		{Name: "Light", Country: "BB", Region: "Y", Coord: Coord{10, 10}, Weight: 10},
	}
	p := NewPlacer(cities, 0)
	r := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.Place(r).City]++
	}
	frac := float64(counts["Heavy"]) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("Heavy fraction = %.3f, want ~0.90", frac)
	}
}

func TestPlacerJitterStaysNearCity(t *testing.T) {
	cities := []City{{Name: "C", Country: "AA", Region: "X", Coord: Coord{48, 11}, Weight: 1}}
	const radius = 50_000.0
	p := NewPlacer(cities, radius)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		loc := p.Place(r)
		if !loc.Coord.Valid() {
			t.Fatalf("invalid jittered coordinate %v", loc.Coord)
		}
		d := DistanceMeters(loc.Coord, cities[0].Coord)
		if d > radius*1.01 {
			t.Fatalf("jittered placement %.0fm from center, want <= %.0fm", d, radius)
		}
	}
}

func TestPlacerPanicsOnBadTable(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { NewPlacer(nil, 0) })
	mustPanic("zero-weight", func() {
		NewPlacer([]City{{Name: "Z", Weight: 0}}, 0)
	})
	mustPanic("negative-weight", func() {
		NewPlacer([]City{{Name: "N", Weight: -1}}, 0)
	})
}

func TestPlacerLabelsPropagate(t *testing.T) {
	p := DefaultPlacer()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		loc := p.Place(r)
		if loc.City == "" || loc.Country == "" || loc.Region == "" {
			t.Fatalf("placement missing labels: %+v", loc)
		}
	}
}

func TestCoordValid(t *testing.T) {
	valid := []Coord{{0, 0}, {90, 180}, {-90, -180}, {45.5, -120.3}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	invalid := []Coord{{91, 0}, {-91, 0}, {0, 181}, {0, -181}}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func randCoord(r *rand.Rand) Coord {
	return Coord{LatDeg: r.Float64()*180 - 90, LonDeg: r.Float64()*360 - 180}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func BenchmarkDistance(b *testing.B) {
	a := Coord{40.71, -74.01}
	c := Coord{51.51, -0.13}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DistanceMeters(a, c)
	}
}

func BenchmarkPlace(b *testing.B) {
	p := DefaultPlacer()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Place(r)
	}
}
