package geo

// WorldCities returns the built-in placement table. Weights approximate
// the country distribution of reachable Bitcoin nodes measured by network
// crawlers in 2015-2016 (the period of the paper's measurements): roughly
// a quarter of reachable peers in the United States, ~20% in Western
// Europe (DE/FR/NL/GB dominating), ~10% in China, with long tails across
// Eastern Europe, Asia-Pacific and South America. Absolute weights are
// relative shares; only ratios matter.
//
// The returned slice is freshly allocated; callers may modify it (e.g. to
// build skewed ablation scenarios).
func WorldCities() []City {
	return []City{
		// --- North America ---
		{Name: "New York", Country: "US", Region: "NA", Coord: Coord{40.71, -74.01}, Weight: 60},
		{Name: "San Francisco", Country: "US", Region: "NA", Coord: Coord{37.77, -122.42}, Weight: 55},
		{Name: "Chicago", Country: "US", Region: "NA", Coord: Coord{41.88, -87.63}, Weight: 35},
		{Name: "Dallas", Country: "US", Region: "NA", Coord: Coord{32.78, -96.80}, Weight: 30},
		{Name: "Seattle", Country: "US", Region: "NA", Coord: Coord{47.61, -122.33}, Weight: 25},
		{Name: "Miami", Country: "US", Region: "NA", Coord: Coord{25.76, -80.19}, Weight: 18},
		{Name: "Ashburn", Country: "US", Region: "NA", Coord: Coord{39.04, -77.49}, Weight: 45},
		{Name: "Toronto", Country: "CA", Region: "NA", Coord: Coord{43.65, -79.38}, Weight: 22},
		{Name: "Vancouver", Country: "CA", Region: "NA", Coord: Coord{49.28, -123.12}, Weight: 10},
		{Name: "Montreal", Country: "CA", Region: "NA", Coord: Coord{45.50, -73.57}, Weight: 12},
		{Name: "Mexico City", Country: "MX", Region: "NA", Coord: Coord{19.43, -99.13}, Weight: 5},

		// --- Western Europe ---
		{Name: "Frankfurt", Country: "DE", Region: "EU", Coord: Coord{50.11, 8.68}, Weight: 50},
		{Name: "Berlin", Country: "DE", Region: "EU", Coord: Coord{52.52, 13.40}, Weight: 30},
		{Name: "Munich", Country: "DE", Region: "EU", Coord: Coord{48.14, 11.58}, Weight: 18},
		{Name: "Amsterdam", Country: "NL", Region: "EU", Coord: Coord{52.37, 4.90}, Weight: 35},
		{Name: "Paris", Country: "FR", Region: "EU", Coord: Coord{48.86, 2.35}, Weight: 32},
		{Name: "London", Country: "GB", Region: "EU", Coord: Coord{51.51, -0.13}, Weight: 40},
		{Name: "Dublin", Country: "IE", Region: "EU", Coord: Coord{53.35, -6.26}, Weight: 8},
		{Name: "Zurich", Country: "CH", Region: "EU", Coord: Coord{47.37, 8.54}, Weight: 12},
		{Name: "Stockholm", Country: "SE", Region: "EU", Coord: Coord{59.33, 18.07}, Weight: 12},
		{Name: "Helsinki", Country: "FI", Region: "EU", Coord: Coord{60.17, 24.94}, Weight: 10},
		{Name: "Oslo", Country: "NO", Region: "EU", Coord: Coord{59.91, 10.75}, Weight: 7},
		{Name: "Madrid", Country: "ES", Region: "EU", Coord: Coord{40.42, -3.70}, Weight: 10},
		{Name: "Milan", Country: "IT", Region: "EU", Coord: Coord{45.46, 9.19}, Weight: 10},
		{Name: "Vienna", Country: "AT", Region: "EU", Coord: Coord{48.21, 16.37}, Weight: 8},
		{Name: "Brussels", Country: "BE", Region: "EU", Coord: Coord{50.85, 4.35}, Weight: 7},
		{Name: "Lisbon", Country: "PT", Region: "EU", Coord: Coord{38.72, -9.14}, Weight: 4},

		// --- Eastern Europe / Russia ---
		{Name: "Warsaw", Country: "PL", Region: "EU", Coord: Coord{52.23, 21.01}, Weight: 10},
		{Name: "Prague", Country: "CZ", Region: "EU", Coord: Coord{50.08, 14.44}, Weight: 9},
		{Name: "Kyiv", Country: "UA", Region: "EU", Coord: Coord{50.45, 30.52}, Weight: 8},
		{Name: "Moscow", Country: "RU", Region: "EU", Coord: Coord{55.76, 37.62}, Weight: 25},
		{Name: "St Petersburg", Country: "RU", Region: "EU", Coord: Coord{59.93, 30.34}, Weight: 10},
		{Name: "Bucharest", Country: "RO", Region: "EU", Coord: Coord{44.43, 26.10}, Weight: 5},

		// --- East Asia ---
		{Name: "Beijing", Country: "CN", Region: "AS", Coord: Coord{39.90, 116.41}, Weight: 30},
		{Name: "Shanghai", Country: "CN", Region: "AS", Coord: Coord{31.23, 121.47}, Weight: 28},
		{Name: "Shenzhen", Country: "CN", Region: "AS", Coord: Coord{22.54, 114.06}, Weight: 20},
		{Name: "Hong Kong", Country: "HK", Region: "AS", Coord: Coord{22.32, 114.17}, Weight: 14},
		{Name: "Tokyo", Country: "JP", Region: "AS", Coord: Coord{35.68, 139.69}, Weight: 22},
		{Name: "Osaka", Country: "JP", Region: "AS", Coord: Coord{34.69, 135.50}, Weight: 8},
		{Name: "Seoul", Country: "KR", Region: "AS", Coord: Coord{37.57, 126.98}, Weight: 14},
		{Name: "Taipei", Country: "TW", Region: "AS", Coord: Coord{25.03, 121.57}, Weight: 6},
		{Name: "Singapore", Country: "SG", Region: "AS", Coord: Coord{1.35, 103.82}, Weight: 14},

		// --- South/Southeast Asia ---
		{Name: "Mumbai", Country: "IN", Region: "AS", Coord: Coord{19.08, 72.88}, Weight: 7},
		{Name: "Bangalore", Country: "IN", Region: "AS", Coord: Coord{12.97, 77.59}, Weight: 5},
		{Name: "Bangkok", Country: "TH", Region: "AS", Coord: Coord{13.76, 100.50}, Weight: 4},
		{Name: "Jakarta", Country: "ID", Region: "AS", Coord: Coord{-6.21, 106.85}, Weight: 3},

		// --- Oceania ---
		{Name: "Sydney", Country: "AU", Region: "OC", Coord: Coord{-33.87, 151.21}, Weight: 9},
		{Name: "Melbourne", Country: "AU", Region: "OC", Coord: Coord{-37.81, 144.96}, Weight: 6},
		{Name: "Auckland", Country: "NZ", Region: "OC", Coord: Coord{-36.85, 174.76}, Weight: 2},

		// --- South America ---
		{Name: "Sao Paulo", Country: "BR", Region: "SA", Coord: Coord{-23.55, -46.63}, Weight: 8},
		{Name: "Buenos Aires", Country: "AR", Region: "SA", Coord: Coord{-34.60, -58.38}, Weight: 4},
		{Name: "Santiago", Country: "CL", Region: "SA", Coord: Coord{-33.45, -70.67}, Weight: 2},

		// --- Africa / Middle East ---
		{Name: "Johannesburg", Country: "ZA", Region: "AF", Coord: Coord{-26.20, 28.05}, Weight: 3},
		{Name: "Tel Aviv", Country: "IL", Region: "ME", Coord: Coord{32.09, 34.78}, Weight: 4},
		{Name: "Dubai", Country: "AE", Region: "ME", Coord: Coord{25.20, 55.27}, Weight: 3},
		{Name: "Istanbul", Country: "TR", Region: "ME", Coord: Coord{41.01, 28.98}, Weight: 4},
	}
}
