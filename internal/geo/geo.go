// Package geo models the geographic placement of Bitcoin peers.
//
// Two consumers need geography:
//
//   - the latency model: eq. (3) of the paper converts great-circle
//     distance into signal propagation delay (P = D(m)/S);
//   - the LBC baseline protocol: it clusters peers by geographic
//     location (country), so each peer needs a country label.
//
// Peers are placed by sampling from a weighted table of world cities that
// approximates the measured country distribution of reachable Bitcoin
// nodes circa 2016 (US and EU heavy, significant CN/RU presence), then
// jittering within the metro area. The table is synthetic but the shape —
// a few dense regions separated by oceanic distances — is what the paper's
// argument depends on: geographic closeness correlates imperfectly with
// network closeness.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusMeters is the mean Earth radius used for great-circle math.
const EarthRadiusMeters = 6_371_000

// Coord is a point on the Earth's surface in degrees.
type Coord struct {
	LatDeg float64
	LonDeg float64
}

// String implements fmt.Stringer.
func (c Coord) String() string {
	return fmt.Sprintf("(%.3f,%.3f)", c.LatDeg, c.LonDeg)
}

// Valid reports whether the coordinate is within latitude [-90,90] and
// longitude [-180,180].
func (c Coord) Valid() bool {
	return c.LatDeg >= -90 && c.LatDeg <= 90 && c.LonDeg >= -180 && c.LonDeg <= 180
}

// DistanceMeters returns the great-circle (haversine) distance between two
// coordinates, in meters. This is the D(m) term of paper eq. (3).
func DistanceMeters(a, b Coord) float64 {
	lat1 := a.LatDeg * math.Pi / 180
	lat2 := b.LatDeg * math.Pi / 180
	dLat := (b.LatDeg - a.LatDeg) * math.Pi / 180
	dLon := (b.LonDeg - a.LonDeg) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// City is one entry of the placement table.
type City struct {
	Name    string
	Country string // ISO-3166-ish alpha-2 label, used by LBC clustering
	Region  string // coarse continental region
	Coord   Coord
	Weight  float64 // relative share of peers placed here
}

// Location is an assigned peer position.
type Location struct {
	Coord   Coord
	City    string
	Country string
	Region  string
}

// Placer samples peer locations from a weighted city table.
type Placer struct {
	cities []City
	cum    []float64 // cumulative weights for binary search
	total  float64
	// jitterMeters is the radius of uniform metro-area jitter applied to
	// each placement.
	jitterMeters float64
}

// NewPlacer builds a placer over the given table. An empty or zero-weight
// table is a programming error and panics. jitterMeters spreads peers
// around their city center; 50km approximates a metro area.
func NewPlacer(cities []City, jitterMeters float64) *Placer {
	if len(cities) == 0 {
		panic("geo: empty city table")
	}
	p := &Placer{cities: cities, jitterMeters: jitterMeters}
	p.cum = make([]float64, len(cities))
	for i, c := range cities {
		if c.Weight < 0 {
			panic(fmt.Sprintf("geo: negative weight for %s", c.Name))
		}
		p.total += c.Weight
		p.cum[i] = p.total
	}
	if p.total <= 0 {
		panic("geo: city table has zero total weight")
	}
	return p
}

// DefaultPlacer returns a placer over the built-in world city table.
func DefaultPlacer() *Placer {
	return NewPlacer(WorldCities(), 50_000)
}

// Place samples one location using r.
func (p *Placer) Place(r *rand.Rand) Location {
	x := r.Float64() * p.total
	// Binary search the cumulative table.
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c := p.cities[lo]
	return Location{
		Coord:   jitter(r, c.Coord, p.jitterMeters),
		City:    c.Name,
		Country: c.Country,
		Region:  c.Region,
	}
}

// PlaceN samples n locations.
func (p *Placer) PlaceN(r *rand.Rand, n int) []Location {
	out := make([]Location, n)
	for i := range out {
		out[i] = p.Place(r)
	}
	return out
}

// Cities returns the underlying table (shared; callers must not mutate).
func (p *Placer) Cities() []City { return p.cities }

// jitter displaces c by a uniform random offset within radiusMeters.
func jitter(r *rand.Rand, c Coord, radiusMeters float64) Coord {
	if radiusMeters <= 0 {
		return c
	}
	// Uniform over the disk: radius proportional to sqrt(u).
	d := radiusMeters * math.Sqrt(r.Float64())
	theta := 2 * math.Pi * r.Float64()
	dLat := d * math.Cos(theta) / EarthRadiusMeters * 180 / math.Pi
	cosLat := math.Cos(c.LatDeg * math.Pi / 180)
	if math.Abs(cosLat) < 1e-6 {
		cosLat = 1e-6 // polar degenerate case; longitude is meaningless there anyway
	}
	dLon := d * math.Sin(theta) / (EarthRadiusMeters * cosLat) * 180 / math.Pi
	out := Coord{LatDeg: c.LatDeg + dLat, LonDeg: c.LonDeg + dLon}
	// Clamp rather than wrap: jitter is small, so clamping only matters at
	// the antimeridian/poles and keeps coordinates trivially Valid.
	out.LatDeg = math.Max(-90, math.Min(90, out.LatDeg))
	if out.LonDeg > 180 {
		out.LonDeg -= 360
	} else if out.LonDeg < -180 {
		out.LonDeg += 360
	}
	return out
}
