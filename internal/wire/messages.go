package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/chain"
)

// maxListLen bounds repeated elements in any message, defending decoders
// against hostile length prefixes.
const maxListLen = 50_000

var errTruncated = errors.New("truncated payload")

// --- primitive append/consume helpers ---

func appendU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.buf) < 1 {
		r.err = errTruncated
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.buf) < 2 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = errTruncated
		return nil
	}
	v := r.buf[:n]
	r.buf = r.buf[n:]
	return v
}

func (r *reader) hash() chain.Hash {
	var h chain.Hash
	copy(h[:], r.bytes(32))
	return h
}

func (r *reader) listLen() int {
	n := r.u32()
	if r.err == nil && n > maxListLen {
		r.err = fmt.Errorf("list length %d exceeds limit", n)
	}
	return int(n)
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%d trailing bytes", len(r.buf))
	}
	return nil
}

// netAddrSize is the encoded size of one NetAddr (NodeID + Host + Port).
const netAddrSize = 8 + 16 + 2

func appendNetAddr(dst []byte, a NetAddr) []byte {
	dst = appendU64(dst, a.NodeID)
	dst = append(dst, a.Host[:]...)
	return appendU16(dst, a.Port)
}

func (r *reader) netAddr() NetAddr {
	var a NetAddr
	a.NodeID = r.u64()
	copy(a.Host[:], r.bytes(16))
	a.Port = r.u16()
	return a
}

// --- VERSION / VERACK ---

// MsgVersion opens the handshake. It carries the sender's self-reported
// address and best-chain height, mirroring Bitcoin's version message.
type MsgVersion struct {
	Protocol uint32
	Self     NetAddr
	Height   uint32
	// UserAgent distinguishes implementations ("bcbpt-sim", "bcbptd").
	UserAgent string
}

// Command implements Message.
func (*MsgVersion) Command() Command { return CmdVersion }

func (m *MsgVersion) encodePayload(dst []byte) []byte {
	dst = appendU32(dst, m.Protocol)
	dst = appendNetAddr(dst, m.Self)
	dst = appendU32(dst, m.Height)
	if len(m.UserAgent) > 255 {
		m.UserAgent = m.UserAgent[:255]
	}
	dst = append(dst, byte(len(m.UserAgent)))
	return append(dst, m.UserAgent...)
}

func (m *MsgVersion) payloadSize() int {
	ua := len(m.UserAgent)
	if ua > 255 {
		ua = 255 // encodePayload truncates to one length byte
	}
	return 4 + netAddrSize + 4 + 1 + ua
}

func (m *MsgVersion) decodePayload(src []byte) error {
	r := &reader{buf: src}
	m.Protocol = r.u32()
	m.Self = r.netAddr()
	m.Height = r.u32()
	n := int(r.u8())
	m.UserAgent = string(r.bytes(n))
	return r.finish()
}

// MsgVerack acknowledges a version message, completing the handshake.
type MsgVerack struct{}

// Command implements Message.
func (*MsgVerack) Command() Command { return CmdVerack }

func (*MsgVerack) encodePayload(dst []byte) []byte { return dst }

func (*MsgVerack) payloadSize() int { return 0 }

func (*MsgVerack) decodePayload(src []byte) error {
	if len(src) != 0 {
		return fmt.Errorf("%d unexpected bytes", len(src))
	}
	return nil
}

// --- PING / PONG ---

// MsgPing probes a peer's liveness and, in BCBPT, measures the round-trip
// latency that drives clustering (paper §IV.A).
type MsgPing struct {
	Nonce uint64
	// Pad widens the message to the Mping size configured by the latency
	// model, so on-wire size matches eq. (2)'s Mping parameter.
	Pad []byte
}

// Command implements Message.
func (*MsgPing) Command() Command { return CmdPing }

func (m *MsgPing) encodePayload(dst []byte) []byte {
	dst = appendU64(dst, m.Nonce)
	dst = appendU32(dst, uint32(len(m.Pad)))
	return append(dst, m.Pad...)
}

func (m *MsgPing) payloadSize() int { return 8 + 4 + len(m.Pad) }

func (m *MsgPing) decodePayload(src []byte) error {
	r := &reader{buf: src}
	m.Nonce = r.u64()
	n := r.listLen()
	if r.err == nil {
		m.Pad = append([]byte(nil), r.bytes(n)...)
	}
	return r.finish()
}

// MsgPong answers a ping, echoing its nonce.
type MsgPong struct {
	Nonce uint64
}

// Command implements Message.
func (*MsgPong) Command() Command { return CmdPong }

func (m *MsgPong) encodePayload(dst []byte) []byte { return appendU64(dst, m.Nonce) }

func (*MsgPong) payloadSize() int { return 8 }

func (m *MsgPong) decodePayload(src []byte) error {
	r := &reader{buf: src}
	m.Nonce = r.u64()
	return r.finish()
}

// --- GETADDR / ADDR ---

// MsgGetAddr requests known peer addresses (the discovery mechanism the
// paper calls "the normal Bitcoin network nodes discovery mechanism").
type MsgGetAddr struct{}

// Command implements Message.
func (*MsgGetAddr) Command() Command { return CmdGetAddr }

func (*MsgGetAddr) encodePayload(dst []byte) []byte { return dst }

func (*MsgGetAddr) payloadSize() int { return 0 }

func (*MsgGetAddr) decodePayload(src []byte) error {
	if len(src) != 0 {
		return fmt.Errorf("%d unexpected bytes", len(src))
	}
	return nil
}

// MsgAddr gossips known peer addresses.
type MsgAddr struct {
	Addrs []NetAddr
}

// Command implements Message.
func (*MsgAddr) Command() Command { return CmdAddr }

func (m *MsgAddr) encodePayload(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		dst = appendNetAddr(dst, a)
	}
	return dst
}

func (m *MsgAddr) payloadSize() int { return 4 + netAddrSize*len(m.Addrs) }

func (m *MsgAddr) decodePayload(src []byte) error {
	r := &reader{buf: src}
	n := r.listLen()
	if r.err == nil {
		m.Addrs = make([]NetAddr, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			m.Addrs = append(m.Addrs, r.netAddr())
		}
	}
	return r.finish()
}

// --- INV / GETDATA ---

// MsgInv announces inventory availability (Fig. 1, step 1): hashes only,
// so a peer that already has the data never downloads it twice.
type MsgInv struct {
	Items []InvVect
}

// Command implements Message.
func (*MsgInv) Command() Command { return CmdInv }

func (m *MsgInv) encodePayload(dst []byte) []byte { return encodeInvList(dst, m.Items) }

func (m *MsgInv) payloadSize() int { return invListSize(m.Items) }

func (m *MsgInv) decodePayload(src []byte) error {
	items, err := decodeInvList(src)
	m.Items = items
	return err
}

// MsgGetData requests full data for previously announced inventory
// (Fig. 1, step 2).
type MsgGetData struct {
	Items []InvVect
}

// Command implements Message.
func (*MsgGetData) Command() Command { return CmdGetData }

func (m *MsgGetData) encodePayload(dst []byte) []byte { return encodeInvList(dst, m.Items) }

func (m *MsgGetData) payloadSize() int { return invListSize(m.Items) }

func (m *MsgGetData) decodePayload(src []byte) error {
	items, err := decodeInvList(src)
	m.Items = items
	return err
}

func encodeInvList(dst []byte, items []InvVect) []byte {
	dst = appendU32(dst, uint32(len(items)))
	for _, it := range items {
		dst = append(dst, byte(it.Type))
		dst = append(dst, it.Hash[:]...)
	}
	return dst
}

// invListSize is the encoded size of an INV/GETDATA item list.
func invListSize(items []InvVect) int { return 4 + (1+32)*len(items) }

func decodeInvList(src []byte) ([]InvVect, error) {
	r := &reader{buf: src}
	n := r.listLen()
	var items []InvVect
	if r.err == nil {
		items = make([]InvVect, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			t := InvType(r.u8())
			h := r.hash()
			if r.err == nil && t != InvTx && t != InvBlock {
				return nil, fmt.Errorf("unknown inv type %d", t)
			}
			items = append(items, InvVect{Type: t, Hash: h})
		}
	}
	return items, r.finish()
}

// --- TX / BLOCK ---

// MsgTx delivers a full transaction (Fig. 1, step 3).
type MsgTx struct {
	Tx *chain.Tx
}

// Command implements Message.
func (*MsgTx) Command() Command { return CmdTx }

func (m *MsgTx) encodePayload(dst []byte) []byte { return append(dst, m.Tx.Bytes()...) }

func (m *MsgTx) payloadSize() int { return m.Tx.Size() }

func (m *MsgTx) decodePayload(src []byte) error {
	tx, err := chain.DecodeTx(src)
	m.Tx = tx
	return err
}

// MsgBlock delivers a full block.
type MsgBlock struct {
	Block *chain.Block
}

// Command implements Message.
func (*MsgBlock) Command() Command { return CmdBlock }

func (m *MsgBlock) encodePayload(dst []byte) []byte { return append(dst, m.Block.Bytes()...) }

func (m *MsgBlock) payloadSize() int { return m.Block.Size() }

func (m *MsgBlock) decodePayload(src []byte) error {
	b, err := chain.DecodeBlock(src)
	m.Block = b
	return err
}

// --- JOIN / CLUSTER (BCBPT extensions) ---

// MsgJoin asks the receiver — the closest node the sender has measured —
// to admit the sender to its cluster (paper §IV.B: "the node N sends a
// JOIN request destined for the closest node K").
type MsgJoin struct {
	Self NetAddr
	// MeasuredRTTMicros is the sender's smoothed RTT estimate to the
	// receiver, letting the receiver sanity-check the claim of proximity.
	MeasuredRTTMicros uint64
}

// Command implements Message.
func (*MsgJoin) Command() Command { return CmdJoin }

func (m *MsgJoin) encodePayload(dst []byte) []byte {
	dst = appendNetAddr(dst, m.Self)
	return appendU64(dst, m.MeasuredRTTMicros)
}

func (*MsgJoin) payloadSize() int { return netAddrSize + 8 }

func (m *MsgJoin) decodePayload(src []byte) error {
	r := &reader{buf: src}
	m.Self = r.netAddr()
	m.MeasuredRTTMicros = r.u64()
	return r.finish()
}

// MsgCluster answers a JOIN with the membership list: "it receives a list
// of IPs of nodes that belong to the same cluster of the node K" (§IV.B).
type MsgCluster struct {
	ClusterID uint64
	Members   []NetAddr
	// Accepted is false when the receiver refused the join (e.g. the
	// measured RTT exceeds its threshold), in which case Members may
	// still carry hints of better-placed clusters.
	Accepted bool
}

// Command implements Message.
func (*MsgCluster) Command() Command { return CmdCluster }

func (m *MsgCluster) encodePayload(dst []byte) []byte {
	dst = appendU64(dst, m.ClusterID)
	if m.Accepted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU32(dst, uint32(len(m.Members)))
	for _, a := range m.Members {
		dst = appendNetAddr(dst, a)
	}
	return dst
}

func (m *MsgCluster) payloadSize() int { return 8 + 1 + 4 + netAddrSize*len(m.Members) }

func (m *MsgCluster) decodePayload(src []byte) error {
	r := &reader{buf: src}
	m.ClusterID = r.u64()
	m.Accepted = r.u8() == 1
	n := r.listLen()
	if r.err == nil {
		m.Members = make([]NetAddr, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			m.Members = append(m.Members, r.netAddr())
		}
	}
	return r.finish()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
