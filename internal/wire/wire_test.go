package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/chain"
)

func testKey(t testing.TB, seed int64) *chain.KeyPair {
	t.Helper()
	k, err := chain.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleAddr(id uint64) NetAddr {
	var host [16]byte
	host[15] = byte(id)
	return NetAddr{NodeID: id, Host: host, Port: 8333}
}

// allMessages returns one populated instance of every message type.
func allMessages(t testing.TB) []Message {
	t.Helper()
	key := testKey(t, 1)
	cb := chain.Coinbase(1, 5000, key.Address())
	ch, err := chain.NewChain(chain.ChainConfig{Subsidy: 100, TargetBits: 2, GenesisTo: key.Address()})
	if err != nil {
		t.Fatal(err)
	}
	return []Message{
		&MsgVersion{Protocol: 70015, Self: sampleAddr(7), Height: 42, UserAgent: "bcbpt-test"},
		&MsgVerack{},
		&MsgPing{Nonce: 0xDEADBEEF, Pad: bytes.Repeat([]byte{0xAA}, 19)},
		&MsgPong{Nonce: 0xDEADBEEF},
		&MsgGetAddr{},
		&MsgAddr{Addrs: []NetAddr{sampleAddr(1), sampleAddr(2), sampleAddr(3)}},
		&MsgInv{Items: []InvVect{{Type: InvTx, Hash: cb.ID()}, {Type: InvBlock, Hash: chain.Hash{9}}}},
		&MsgGetData{Items: []InvVect{{Type: InvTx, Hash: cb.ID()}}},
		&MsgTx{Tx: cb},
		&MsgBlock{Block: ch.Tip()},
		&MsgJoin{Self: sampleAddr(12), MeasuredRTTMicros: 18_500},
		&MsgCluster{ClusterID: 3, Accepted: true, Members: []NetAddr{sampleAddr(4), sampleAddr(5)}},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, msg := range allMessages(t) {
		t.Run(msg.Command().String(), func(t *testing.T) {
			buf, err := Encode(msg)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			decoded, n, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != len(buf) {
				t.Errorf("consumed %d of %d bytes", n, len(buf))
			}
			if decoded.Command() != msg.Command() {
				t.Errorf("command = %v, want %v", decoded.Command(), msg.Command())
			}
			// Re-encoding the decoded message must be byte-identical:
			// catches asymmetric encode/decode bugs for every type.
			buf2, err := Encode(decoded)
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(buf, buf2) {
				t.Error("round trip is not byte-identical")
			}
		})
	}
}

func TestRoundTripStructEquality(t *testing.T) {
	// For plain-struct messages, check deep equality too.
	msgs := []Message{
		&MsgVersion{Protocol: 1, Self: sampleAddr(9), Height: 7, UserAgent: "x"},
		&MsgAddr{Addrs: []NetAddr{sampleAddr(1)}},
		&MsgPong{Nonce: 77},
		&MsgJoin{Self: sampleAddr(3), MeasuredRTTMicros: 123},
		&MsgCluster{ClusterID: 8, Accepted: false, Members: []NetAddr{sampleAddr(2)}},
	}
	for _, msg := range msgs {
		buf, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		decoded, _, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(msg, decoded) {
			t.Errorf("%s: decoded %+v, want %+v", msg.Command(), decoded, msg)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	buf, err := Encode(&MsgVerack{})
	if err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("error = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadChecksum(t *testing.T) {
	buf, err := Encode(&MsgPong{Nonce: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("error = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsUnknownCommand(t *testing.T) {
	buf, err := Encode(&MsgVerack{})
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = 0xEE
	if _, _, err := Decode(buf); !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("error = %v, want ErrUnknownCommand", err)
	}
}

func TestDecodeRejectsOversizeHeader(t *testing.T) {
	buf, err := Encode(&MsgVerack{})
	if err != nil {
		t.Fatal(err)
	}
	buf[5], buf[6], buf[7], buf[8] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := Decode(buf); !errors.Is(err, ErrOversize) {
		t.Errorf("error = %v, want ErrOversize", err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error = %v, want ErrUnexpectedEOF", err)
	}
	buf, err := Encode(&MsgPing{Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(buf[:len(buf)-2]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeTrailingPayloadBytesRejected(t *testing.T) {
	// Hand-build a verack frame with 1 payload byte: verack expects 0.
	payload := []byte{0x00}
	buf := make([]byte, 13+1)
	copy(buf[0:4], []byte{0xD7, 0xB2, 0xC1, 0xB1}) // Magic little-endian
	buf[4] = byte(CmdVerack)
	buf[5] = 1
	h := chain.DoubleSHA256(payload)
	copy(buf[9:13], h[:4])
	copy(buf[13:], payload)
	if _, _, err := Decode(buf); err == nil {
		t.Error("verack with payload accepted")
	}
}

func TestHostileListLengths(t *testing.T) {
	// An ADDR message claiming 2^32-1 entries must be rejected without
	// allocating.
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	var m MsgAddr
	if err := m.decodePayload(payload); err == nil {
		t.Error("hostile addr count accepted")
	}
	var inv MsgInv
	if err := inv.decodePayload(payload); err == nil {
		t.Error("hostile inv count accepted")
	}
	var cl MsgCluster
	if err := cl.decodePayload(append(bytes.Repeat([]byte{0}, 9), payload...)); err == nil {
		t.Error("hostile cluster count accepted")
	}
}

func TestInvTypeValidation(t *testing.T) {
	m := &MsgInv{Items: []InvVect{{Type: InvType(99), Hash: chain.Hash{1}}}}
	buf := m.encodePayload(nil)
	var decoded MsgInv
	if err := decoded.decodePayload(buf); err == nil {
		t.Error("unknown inv type accepted")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages(t)
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%s): %v", m.Command(), err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		if got.Command() != want.Command() {
			t.Fatalf("stream order: got %s, want %s", got.Command(), want.Command())
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("after stream drained, err = %v, want EOF", err)
	}
}

func TestReadMessageRejectsCorruptStream(t *testing.T) {
	buf, err := Encode(&MsgPing{Nonce: 9})
	if err != nil {
		t.Fatal(err)
	}
	buf[10] ^= 0x55 // corrupt checksum field
	if _, err := ReadMessage(bytes.NewReader(buf)); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("error = %v, want ErrBadChecksum", err)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, m := range allMessages(t) {
		buf, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(m); got != len(buf) {
			t.Errorf("%s: EncodedSize = %d, want %d", m.Command(), got, len(buf))
		}
	}
}

func TestVersionUserAgentTruncated(t *testing.T) {
	long := string(bytes.Repeat([]byte{'a'}, 300))
	m := &MsgVersion{UserAgent: long}
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ua := decoded.(*MsgVersion).UserAgent; len(ua) != 255 {
		t.Errorf("user agent length = %d, want 255", len(ua))
	}
}

func TestCommandStrings(t *testing.T) {
	for cmd, want := range commandNames {
		if cmd.String() != want {
			t.Errorf("Command(%d).String() = %q, want %q", cmd, cmd.String(), want)
		}
	}
	if Command(200).String() == "" {
		t.Error("unknown command should still stringify")
	}
}

// Property: decoding random garbage never panics and never returns a
// message together with a nil error for non-frames.
func TestPropertyDecodeGarbageSafe(t *testing.T) {
	f := func(data []byte) bool {
		msg, _, err := Decode(data)
		return err != nil || msg != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ping pad length round-trips for any size within limits.
func TestPropertyPingPadRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		m := &MsgPing{Nonce: uint64(n), Pad: make([]byte, int(n)%4096)}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		d, _, err := Decode(buf)
		if err != nil {
			return false
		}
		return len(d.(*MsgPing).Pad) == len(m.Pad)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeInv100(b *testing.B) {
	items := make([]InvVect, 100)
	for i := range items {
		items[i] = InvVect{Type: InvTx, Hash: chain.DoubleSHA256([]byte{byte(i)})}
	}
	m := &MsgInv{Items: items}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInv100(b *testing.B) {
	items := make([]InvVect, 100)
	for i := range items {
		items[i] = InvVect{Type: InvTx, Hash: chain.DoubleSHA256([]byte{byte(i)})}
	}
	buf, err := Encode(&MsgInv{Items: items})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPayloadSizeMatchesEncoding holds the allocation-free payloadSize in
// lockstep with the actual encoding for every message type — EncodedSize
// charges link bandwidth on every simulated delivery, so a drifting size
// would silently skew the latency model.
func TestPayloadSizeMatchesEncoding(t *testing.T) {
	msgs := allMessages(t)
	msgs = append(msgs,
		&MsgVersion{},
		&MsgPing{},
		&MsgAddr{},
		&MsgInv{},
		&MsgGetData{},
		&MsgCluster{},
		&MsgVersion{UserAgent: string(bytes.Repeat([]byte{'x'}, 300))}, // truncated to 255
	)
	for _, msg := range msgs {
		got := msg.payloadSize()
		want := len(msg.encodePayload(nil))
		if got != want {
			t.Errorf("%s: payloadSize() = %d, encoded payload = %d bytes", msg.Command(), got, want)
		}
		if EncodedSize(msg) != headerLen+want {
			t.Errorf("%s: EncodedSize = %d, want %d", msg.Command(), EncodedSize(msg), headerLen+want)
		}
	}
}
