// Package wire implements a Bitcoin-style binary wire protocol: framed
// messages with a magic prefix, a 12-byte command, an explicit length and
// a double-SHA256 checksum, followed by a typed payload.
//
// The same messages drive both the discrete-event simulator (where only
// payload sizes and types matter) and the live TCP node in
// internal/netnode (where the full framing goes on the socket). Keeping a
// single codec means the simulated and real protocols cannot drift apart.
//
// Message set: the standard Bitcoin handshake and relay messages
// (VERSION/VERACK/PING/PONG/ADDR/GETADDR/INV/GETDATA/TX/BLOCK) plus the
// BCBPT extensions from §IV.B of the paper: JOIN (a node asks the closest
// discovered node for membership) and CLUSTER (the accepting node returns
// the IPs of its cluster members).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/chain"
)

// Magic identifies the network. Distinct from Bitcoin mainnet's magic so a
// stray packet cannot be confused for the real network.
const Magic uint32 = 0xB1C1B2D7

// MaxPayload bounds any message payload (4 MiB, same as Bitcoin's default
// block size ceiling of the era).
const MaxPayload = 4 << 20

// Command identifies the message type on the wire.
type Command uint8

// Message commands.
const (
	CmdVersion Command = iota + 1
	CmdVerack
	CmdPing
	CmdPong
	CmdGetAddr
	CmdAddr
	CmdInv
	CmdGetData
	CmdTx
	CmdBlock
	// BCBPT extensions (paper §IV.B).
	CmdJoin
	CmdCluster
)

var commandNames = map[Command]string{
	CmdVersion: "version",
	CmdVerack:  "verack",
	CmdPing:    "ping",
	CmdPong:    "pong",
	CmdGetAddr: "getaddr",
	CmdAddr:    "addr",
	CmdInv:     "inv",
	CmdGetData: "getdata",
	CmdTx:      "tx",
	CmdBlock:   "block",
	CmdJoin:    "join",
	CmdCluster: "cluster",
}

// String implements fmt.Stringer.
func (c Command) String() string {
	if n, ok := commandNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Command(%d)", uint8(c))
}

// Message is any wire message payload.
type Message interface {
	// Command returns the command byte identifying the message type.
	Command() Command
	// encodePayload appends the payload serialization to dst.
	encodePayload(dst []byte) []byte
	// decodePayload parses the payload.
	decodePayload(src []byte) error
	// payloadSize returns len(encodePayload(nil)) without encoding. The
	// simulator charges EncodedSize against link bandwidth on every
	// delivery, so sizing must not allocate; TestPayloadSizeMatchesEncoding
	// holds the two in lockstep for every message type.
	payloadSize() int
}

// InvType distinguishes inventory entries.
type InvType uint8

// Inventory types.
const (
	InvTx InvType = iota + 1
	InvBlock
)

// String implements fmt.Stringer.
func (t InvType) String() string {
	switch t {
	case InvTx:
		return "tx"
	case InvBlock:
		return "block"
	default:
		return fmt.Sprintf("InvType(%d)", uint8(t))
	}
}

// InvVect is one inventory entry: a typed hash.
type InvVect struct {
	Type InvType
	Hash chain.Hash
}

// NetAddr is a peer address as carried in ADDR/CLUSTER messages. In the
// simulator NodeID is authoritative and Host/Port are informational; on
// TCP the reverse.
type NetAddr struct {
	NodeID uint64
	Host   [16]byte // IPv6-mapped address bytes
	Port   uint16
}

// --- Framing ---

const headerLen = 4 + 1 + 4 + 4 // magic + command + length + checksum

var (
	// ErrBadMagic means the frame does not start with the network magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadChecksum means the payload hash does not match the header.
	ErrBadChecksum = errors.New("wire: bad checksum")
	// ErrOversize means the declared payload exceeds MaxPayload.
	ErrOversize = errors.New("wire: oversized payload")
	// ErrUnknownCommand means the command byte is not recognised.
	ErrUnknownCommand = errors.New("wire: unknown command")
)

// checksum is the first 4 bytes of double-SHA256, as in Bitcoin.
func checksum(payload []byte) uint32 {
	h := chain.DoubleSHA256(payload)
	return binary.LittleEndian.Uint32(h[:4])
}

// Encode serializes msg into a framed wire packet.
func Encode(msg Message) ([]byte, error) {
	payload := msg.encodePayload(nil)
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(payload))
	}
	buf := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], Magic)
	buf[4] = byte(msg.Command())
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[9:13], checksum(payload))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// newMessage allocates an empty message for a command.
func newMessage(cmd Command) (Message, error) {
	switch cmd {
	case CmdVersion:
		return &MsgVersion{}, nil
	case CmdVerack:
		return &MsgVerack{}, nil
	case CmdPing:
		return &MsgPing{}, nil
	case CmdPong:
		return &MsgPong{}, nil
	case CmdGetAddr:
		return &MsgGetAddr{}, nil
	case CmdAddr:
		return &MsgAddr{}, nil
	case CmdInv:
		return &MsgInv{}, nil
	case CmdGetData:
		return &MsgGetData{}, nil
	case CmdTx:
		return &MsgTx{}, nil
	case CmdBlock:
		return &MsgBlock{}, nil
	case CmdJoin:
		return &MsgJoin{}, nil
	case CmdCluster:
		return &MsgCluster{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownCommand, cmd)
	}
}

// Decode parses one framed packet from data, returning the message and
// the number of bytes consumed.
func Decode(data []byte) (Message, int, error) {
	if len(data) < headerLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(data[0:4]) != Magic {
		return nil, 0, ErrBadMagic
	}
	cmd := Command(data[4])
	plen := binary.LittleEndian.Uint32(data[5:9])
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrOversize, plen)
	}
	want := binary.LittleEndian.Uint32(data[9:13])
	total := headerLen + int(plen)
	if len(data) < total {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := data[headerLen:total]
	if checksum(payload) != want {
		return nil, 0, ErrBadChecksum
	}
	msg, err := newMessage(cmd)
	if err != nil {
		return nil, 0, err
	}
	if err := msg.decodePayload(payload); err != nil {
		return nil, 0, fmt.Errorf("wire: decode %s: %w", cmd, err)
	}
	return msg, total, nil
}

// ReadMessage reads one framed message from r (blocking until a full
// frame arrives). Used by the TCP transport.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	cmd := Command(hdr[4])
	plen := binary.LittleEndian.Uint32(hdr[5:9])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, plen)
	}
	want := binary.LittleEndian.Uint32(hdr[9:13])
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if checksum(payload) != want {
		return nil, ErrBadChecksum
	}
	msg, err := newMessage(cmd)
	if err != nil {
		return nil, err
	}
	if err := msg.decodePayload(payload); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", cmd, err)
	}
	return msg, nil
}

// WriteMessage frames and writes msg to w.
func WriteMessage(w io.Writer, msg Message) error {
	buf, err := Encode(msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// EncodedSize returns the framed size of msg in bytes — the quantity the
// simulator charges against link bandwidth. It computes the size without
// encoding: the flood hot path calls it once per delivery, and building
// (then discarding) the payload here used to be one slice allocation per
// simulated message.
func EncodedSize(msg Message) int {
	return headerLen + msg.payloadSize()
}
