// Package netnode is the live-network implementation of a BCBPT peer: the
// same wire protocol the simulator models (internal/wire), spoken over
// real TCP sockets. It demonstrates that the protocol is deployable, not
// merely simulable — the "clean networking stack" counterpart to the
// event-driven model.
//
// A Node listens for inbound peers, dials outbound ones, relays
// transactions with the INV/GETDATA/TX exchange of Fig. 1, measures peer
// round-trip times with padded pings, and implements the BCBPT join:
// probe candidates, pick the closest under the threshold, JOIN its
// cluster, and peer with the returned members.
package netnode

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/latency"
	"repro/internal/wire"
)

// Config parameterises a live node.
type Config struct {
	// ListenAddr is the TCP listen address ("127.0.0.1:0" for tests).
	ListenAddr string
	// UserAgent is advertised in the version handshake.
	UserAgent string
	// Threshold is the BCBPT dt; candidates measured above it are not
	// joined. Zero disables the proximity test (vanilla behaviour).
	Threshold time.Duration
	// PingInterval is the keepalive/measurement ping period (0 disables).
	PingInterval time.Duration
	// MaxPeers caps simultaneous connections.
	MaxPeers int
	// PingBytes pads measurement pings to Mping (eq. 2).
	PingBytes int
	// HandshakeTimeout bounds the version/verack exchange.
	HandshakeTimeout time.Duration
	// DiscoveryInterval is how often the node asks a random peer for
	// addresses (GETADDR). Zero disables periodic discovery.
	DiscoveryInterval time.Duration
}

// DefaultConfig returns settings suitable for LAN/localhost experiments.
func DefaultConfig() Config {
	return Config{
		ListenAddr:        "127.0.0.1:0",
		UserAgent:         "bcbptd/0.1",
		Threshold:         25 * time.Millisecond,
		PingInterval:      10 * time.Second,
		MaxPeers:          32,
		PingBytes:         32,
		HandshakeTimeout:  5 * time.Second,
		DiscoveryInterval: time.Minute,
	}
}

// Node is a live BCBPT peer.
type Node struct {
	cfg Config

	ln     net.Listener
	nodeID uint64

	addrs *AddrMan

	mu         sync.Mutex
	peers      map[string]*peer // key: remote listen address
	known      map[chain.Hash]*chain.Tx
	estimators map[string]*latency.Estimator
	clusterID  uint64
	members    map[string]struct{} // cluster member listen addrs
	joinWaiter chan clusterReply   // single-slot mailbox for in-flight JOIN

	pingMu  sync.Mutex
	pending map[uint64]pendingPing

	wg       sync.WaitGroup
	closed   chan struct{}
	stopOnce sync.Once

	// OnTx, if set, fires when a new transaction is accepted (after
	// validation). Used by tests and by cmd/bcbptd's logging.
	OnTx func(tx *chain.Tx, fromAddr string)
}

type pendingPing struct {
	sentAt time.Time
	addr   string
	done   chan time.Duration
}

// peer is one established connection.
type peer struct {
	conn net.Conn
	// listenAddr is the peer's advertised listen address (from its
	// version message) — the address other nodes can dial.
	listenAddr string
	writeMu    sync.Mutex
	node       *Node
}

func (p *peer) send(msg wire.Message) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	return wire.WriteMessage(p.conn, msg)
}

// New creates an unstarted node.
func New(cfg Config) (*Node, error) {
	if cfg.MaxPeers <= 0 {
		return nil, errors.New("netnode: MaxPeers must be positive")
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, fmt.Errorf("netnode: node id: %w", err)
	}
	return &Node{
		cfg:        cfg,
		nodeID:     binary.LittleEndian.Uint64(idBytes[:]),
		addrs:      NewAddrMan(int64(binary.LittleEndian.Uint64(idBytes[:]))),
		peers:      make(map[string]*peer),
		known:      make(map[chain.Hash]*chain.Tx),
		estimators: make(map[string]*latency.Estimator),
		members:    make(map[string]struct{}),
		pending:    make(map[uint64]pendingPing),
		closed:     make(chan struct{}),
	}, nil
}

// Start begins listening and serving.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("netnode: listen: %w", err)
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	if n.cfg.PingInterval > 0 {
		n.wg.Add(1)
		go n.pingLoop()
	}
	if n.cfg.DiscoveryInterval > 0 {
		n.wg.Add(1)
		go n.discoveryLoop()
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Stop closes the listener and all connections and waits for goroutines.
// Safe to call concurrently and repeatedly; every call returns only once
// shutdown is complete.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.closed)
		if n.ln != nil {
			_ = n.ln.Close()
		}
		n.mu.Lock()
		for _, p := range n.peers {
			_ = p.conn.Close()
		}
		n.mu.Unlock()
		n.wg.Wait()
	})
}

// NumPeers returns the live connection count.
func (n *Node) NumPeers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// PeerAddrs returns the advertised listen addresses of connected peers.
func (n *Node) PeerAddrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for a := range n.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ClusterID returns the node's cluster (0 if none yet).
func (n *Node) ClusterID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clusterID
}

// HasTx reports whether the node holds the transaction.
func (n *Node) HasTx(id chain.Hash) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.known[id]
	return ok
}

// InventorySize returns the number of transactions currently held.
func (n *Node) InventorySize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.known)
}

// ResetInventory clears the node's transaction inventory, the live
// counterpart of the simulator's generation-bump reset
// (p2p.Network.ResetInventory): between back-to-back campaign runs on
// the same overlay, every node is reset so a re-injected transaction
// floods fresh instead of dying at peers that remember it. Connections,
// cluster membership, and RTT estimators survive — only first-sight
// state is dropped. Safe to call while peers are relaying; transactions
// arriving after the reset are simply accepted (and re-announced) anew.
func (n *Node) ResetInventory() {
	n.mu.Lock()
	clear(n.known)
	n.mu.Unlock()
}

// RTT returns the smoothed estimate for a peer address, if measured.
func (n *Node) RTT(addr string) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	est, ok := n.estimators[addr]
	if !ok || est.Samples() == 0 {
		return 0, false
	}
	return est.Min(), true
}

// acceptLoop serves inbound connections until the listener closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn, false)
		}()
	}
}

// pingLoop periodically measures every connected peer.
func (n *Node) pingLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.PingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
			n.mu.Lock()
			peers := make([]*peer, 0, len(n.peers))
			for _, p := range n.peers {
				peers = append(peers, p)
			}
			n.mu.Unlock()
			for _, p := range peers {
				_, _ = n.pingPeer(p, 0) // fire and record asynchronously
			}
		}
	}
}

// AddrMan exposes the node's address book.
func (n *Node) AddrMan() *AddrMan { return n.addrs }

// discoveryLoop periodically asks one random peer for addresses.
func (n *Node) discoveryLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.DiscoveryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
			n.mu.Lock()
			var target *peer
			for _, p := range n.peers {
				target = p
				break // any peer; map order randomness is acceptable here
			}
			n.mu.Unlock()
			if target != nil {
				_ = target.send(&wire.MsgGetAddr{})
			}
		}
	}
}

// Connect dials a peer, completes the handshake, and starts serving the
// connection. Returns the peer's advertised listen address.
func (n *Node) Connect(addr string) (string, error) {
	select {
	case <-n.closed:
		return "", errors.New("netnode: node stopped")
	default:
	}
	if n.NumPeers() >= n.cfg.MaxPeers {
		return "", errors.New("netnode: at MaxPeers")
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.HandshakeTimeout)
	if err != nil {
		n.addrs.MarkFailed(addr)
		return "", fmt.Errorf("netnode: dial %s: %w", addr, err)
	}
	remote, err := n.handshake(conn, true)
	if err != nil {
		_ = conn.Close()
		return "", err
	}
	n.addrs.MarkGood(remote, time.Now())
	p, err := n.addPeer(conn, remote)
	if err != nil {
		_ = conn.Close()
		// A duplicate connection is success — the link exists. Stopped or
		// at-capacity rejections must not claim a neighbour link that
		// does not exist.
		if errors.Is(err, errDuplicatePeer) {
			return remote, nil
		}
		return "", err
	}
	go func() {
		defer n.wg.Done() // charged by addPeer
		n.readLoop(p)
	}()
	return remote, nil
}

// handshake exchanges version/verack. Returns the remote's advertised
// listen address.
func (n *Node) handshake(conn net.Conn, initiator bool) (string, error) {
	deadline := time.Now().Add(n.cfg.HandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})

	self := n.versionMsg()
	if err := wire.WriteMessage(conn, self); err != nil {
		return "", fmt.Errorf("netnode: send version: %w", err)
	}
	var remote string
	// Expect version then verack (order with the peer's verack may
	// interleave; accept both in any order).
	gotVersion, gotVerack := false, false
	for !gotVersion || !gotVerack {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return "", fmt.Errorf("netnode: handshake read: %w", err)
		}
		switch m := msg.(type) {
		case *wire.MsgVersion:
			remote = addrFromNetAddr(m.Self)
			gotVersion = true
			if err := wire.WriteMessage(conn, &wire.MsgVerack{}); err != nil {
				return "", fmt.Errorf("netnode: send verack: %w", err)
			}
		case *wire.MsgVerack:
			gotVerack = true
		default:
			return "", fmt.Errorf("netnode: unexpected %s during handshake", msg.Command())
		}
	}
	if remote == "" {
		return "", errors.New("netnode: peer advertised no listen address")
	}
	return remote, nil
}

// versionMsg builds this node's version message.
func (n *Node) versionMsg() *wire.MsgVersion {
	return &wire.MsgVersion{
		Protocol:  1,
		Self:      netAddrFromString(n.Addr(), n.nodeID),
		UserAgent: n.cfg.UserAgent,
	}
}

// addPeer rejection reasons. errDuplicatePeer is benign (the link already
// exists); the others mean no link exists and callers must not claim one.
var (
	errNodeStopped   = errors.New("netnode: node stopped")
	errAtMaxPeers    = errors.New("netnode: at MaxPeers")
	errDuplicatePeer = errors.New("netnode: already connected")
)

// addPeer registers a connection, or reports why it cannot (stopped,
// duplicate, capacity). On success it has already charged n.wg for the
// peer's read loop — the caller must run readLoop and then call
// n.wg.Done(). On failure the caller owns closing the conn.
//
// Both the stopped check and the wg.Add must happen under n.mu: Stop
// closes every registered connection while holding the lock, so a
// handshake racing with Stop either registers (and charges wg) before
// Stop's sweep — which then closes the connection, unblocking the read
// loop Stop's wg.Wait is charged for — or observes closed here and is
// rejected. Charging wg outside the lock would let a read-loop goroutine
// start after wg.Wait already returned (a WaitGroup misuse that can
// panic, and a connection that outlives Stop).
func (n *Node) addPeer(conn net.Conn, listenAddr string) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.closed:
		return nil, errNodeStopped
	default:
	}
	if _, dup := n.peers[listenAddr]; dup {
		return nil, errDuplicatePeer
	}
	if len(n.peers) >= n.cfg.MaxPeers {
		return nil, errAtMaxPeers
	}
	p := &peer{conn: conn, listenAddr: listenAddr, node: n}
	n.peers[listenAddr] = p
	n.wg.Add(1)
	return p, nil
}

// removePeer drops a connection.
func (n *Node) removePeer(p *peer) {
	n.mu.Lock()
	if cur, ok := n.peers[p.listenAddr]; ok && cur == p {
		delete(n.peers, p.listenAddr)
	}
	n.mu.Unlock()
	_ = p.conn.Close()
}

// serveConn handles an inbound connection from handshake to read loop.
func (n *Node) serveConn(conn net.Conn, initiator bool) {
	remote, err := n.handshake(conn, initiator)
	if err != nil {
		_ = conn.Close()
		return
	}
	p, err := n.addPeer(conn, remote)
	if err != nil {
		_ = conn.Close()
		return
	}
	defer n.wg.Done() // charged by addPeer (the serving goroutine holds its own charge too)
	n.readLoop(p)
}

// readLoop dispatches messages until the connection dies.
func (n *Node) readLoop(p *peer) {
	defer n.removePeer(p)
	for {
		msg, err := wire.ReadMessage(p.conn)
		if err != nil {
			return
		}
		n.handleMessage(p, msg)
	}
}
