package netnode

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/latency"
	"repro/internal/wire"
)

var pingNonce atomic.Uint64

// handleMessage dispatches one message from a peer.
func (n *Node) handleMessage(p *peer, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgPing:
		_ = p.send(&wire.MsgPong{Nonce: m.Nonce})
	case *wire.MsgPong:
		n.handlePong(p, m)
	case *wire.MsgInv:
		n.handleInv(p, m)
	case *wire.MsgGetData:
		n.handleGetData(p, m)
	case *wire.MsgTx:
		n.handleTx(p, m)
	case *wire.MsgGetAddr:
		n.handleGetAddr(p)
	case *wire.MsgAddr:
		now := time.Now()
		for _, a := range m.Addrs {
			n.addrs.Add(addrFromNetAddr(a), now)
		}
	case *wire.MsgJoin:
		n.handleJoin(p, m)
	case *wire.MsgCluster:
		// CLUSTER replies are consumed synchronously by JoinCluster via
		// the pending-join channel.
		n.deliverClusterReply(p.listenAddr, m)
	}
}

// --- ping measurement ---

// pingPeer sends one measurement ping. If wait > 0 it blocks up to wait
// for the pong and returns the RTT; otherwise it records asynchronously.
func (n *Node) pingPeer(p *peer, wait time.Duration) (time.Duration, error) {
	nonce := pingNonce.Add(1)
	pad := n.cfg.PingBytes - 12
	if pad < 0 {
		pad = 0
	}
	var done chan time.Duration
	if wait > 0 {
		done = make(chan time.Duration, 1)
	}
	n.pingMu.Lock()
	n.pending[nonce] = pendingPing{sentAt: time.Now(), addr: p.listenAddr, done: done}
	n.pingMu.Unlock()
	if err := p.send(&wire.MsgPing{Nonce: nonce, Pad: make([]byte, pad)}); err != nil {
		n.pingMu.Lock()
		delete(n.pending, nonce)
		n.pingMu.Unlock()
		return 0, err
	}
	if wait <= 0 {
		return 0, nil
	}
	select {
	case rtt := <-done:
		return rtt, nil
	case <-time.After(wait):
		n.pingMu.Lock()
		delete(n.pending, nonce)
		n.pingMu.Unlock()
		return 0, errors.New("netnode: ping timeout")
	case <-n.closed:
		return 0, errors.New("netnode: node stopped")
	}
}

func (n *Node) handlePong(p *peer, m *wire.MsgPong) {
	n.pingMu.Lock()
	info, ok := n.pending[m.Nonce]
	if ok {
		delete(n.pending, m.Nonce)
	}
	n.pingMu.Unlock()
	if !ok || info.addr != p.listenAddr {
		return
	}
	rtt := time.Since(info.sentAt)
	n.mu.Lock()
	est, ok := n.estimators[p.listenAddr]
	if !ok {
		est = &latency.Estimator{}
		n.estimators[p.listenAddr] = est
	}
	est.Observe(rtt)
	n.mu.Unlock()
	if info.done != nil {
		info.done <- rtt
	}
}

// --- relay (Fig. 1) ---

// SubmitTx validates, stores, and announces a locally created
// transaction.
func (n *Node) SubmitTx(tx *chain.Tx) error {
	if err := tx.CheckWellFormed(); err != nil {
		return err
	}
	id := tx.ID()
	n.mu.Lock()
	if _, seen := n.known[id]; seen {
		n.mu.Unlock()
		return nil
	}
	n.known[id] = tx
	peers := n.peerList()
	n.mu.Unlock()
	n.announce(id, peers, "")
	return nil
}

// peerList snapshots peers; callers must hold n.mu.
func (n *Node) peerList() []*peer {
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].listenAddr < out[j].listenAddr })
	return out
}

// announce sends INV to all peers except the source.
func (n *Node) announce(id chain.Hash, peers []*peer, except string) {
	inv := &wire.MsgInv{Items: []wire.InvVect{{Type: wire.InvTx, Hash: id}}}
	for _, p := range peers {
		if p.listenAddr == except {
			continue
		}
		_ = p.send(inv)
	}
}

func (n *Node) handleInv(p *peer, m *wire.MsgInv) {
	var want []wire.InvVect
	n.mu.Lock()
	for _, item := range m.Items {
		if item.Type != wire.InvTx {
			continue
		}
		if _, seen := n.known[item.Hash]; !seen {
			want = append(want, item)
		}
	}
	n.mu.Unlock()
	if len(want) > 0 {
		_ = p.send(&wire.MsgGetData{Items: want})
	}
}

func (n *Node) handleGetData(p *peer, m *wire.MsgGetData) {
	for _, item := range m.Items {
		n.mu.Lock()
		tx, ok := n.known[item.Hash]
		n.mu.Unlock()
		if ok {
			_ = p.send(&wire.MsgTx{Tx: tx})
		}
	}
}

func (n *Node) handleTx(p *peer, m *wire.MsgTx) {
	tx := m.Tx
	if err := tx.CheckWellFormed(); err != nil {
		return // invalid transactions die here (Fig. 1: verify first)
	}
	id := tx.ID()
	n.mu.Lock()
	if _, seen := n.known[id]; seen {
		n.mu.Unlock()
		return
	}
	n.known[id] = tx
	peers := n.peerList()
	n.mu.Unlock()
	if n.OnTx != nil {
		n.OnTx(tx, p.listenAddr)
	}
	n.announce(id, peers, p.listenAddr)
}

func (n *Node) handleGetAddr(p *peer) {
	n.mu.Lock()
	addrs := make([]wire.NetAddr, 0, len(n.peers))
	for a := range n.peers {
		if a == p.listenAddr {
			continue
		}
		addrs = append(addrs, netAddrFromString(a, 0))
	}
	n.mu.Unlock()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Port < addrs[j].Port })
	_ = p.send(&wire.MsgAddr{Addrs: addrs})
}

// --- BCBPT join over TCP ---

// clusterReply carries an awaited CLUSTER message.
type clusterReply struct {
	from string
	msg  *wire.MsgCluster
}

// joinWait is a single-slot mailbox for the in-flight join.
func (n *Node) deliverClusterReply(from string, m *wire.MsgCluster) {
	n.mu.Lock()
	ch := n.joinWaiter
	n.mu.Unlock()
	if ch != nil {
		select {
		case ch <- clusterReply{from: from, msg: m}:
		default:
		}
	}
}

// ProbeAddr connects to addr (if not already connected) and measures its
// RTT with `count` pings, returning the minimum observed.
func (n *Node) ProbeAddr(addr string, count int) (time.Duration, error) {
	if count < 1 {
		return 0, errors.New("netnode: probe count must be >= 1")
	}
	listenAddr, err := n.Connect(addr)
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	p, ok := n.peers[listenAddr]
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("netnode: peer %s not connected after dial", listenAddr)
	}
	best := time.Duration(0)
	for i := 0; i < count; i++ {
		rtt, err := n.pingPeer(p, 2*time.Second)
		if err != nil {
			return 0, err
		}
		if best == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}

// JoinCluster implements the §IV.B join over TCP: probe every seed
// address, pick the closest whose RTT is under the threshold, JOIN its
// cluster and connect to the returned members. If no candidate qualifies
// the node founds its own cluster (ID derived from its node ID).
//
// ctx cancels the join: probing stops between seeds and the CLUSTER-reply
// wait is abandoned, returning an error wrapping ctx.Err() without
// founding a cluster (the caller decides whether a cancelled join should
// fall back to founding).
func (n *Node) JoinCluster(ctx context.Context, seeds []string, probes int) error {
	if len(seeds) == 0 {
		return n.foundCluster()
	}
	type cand struct {
		addr string
		rtt  time.Duration
	}
	var cands []cand
	for _, s := range seeds {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("netnode: join interrupted while probing seeds: %w", err)
		}
		rtt, err := n.ProbeAddr(s, probes)
		if err != nil {
			continue // unreachable seeds are skipped, like dead DNS entries
		}
		cands = append(cands, cand{addr: s, rtt: rtt})
	}
	if len(cands) == 0 {
		return n.foundCluster()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rtt != cands[j].rtt {
			return cands[i].rtt < cands[j].rtt
		}
		return cands[i].addr < cands[j].addr
	})
	best := cands[0]
	if n.cfg.Threshold > 0 && best.rtt >= n.cfg.Threshold {
		return n.foundCluster()
	}

	n.mu.Lock()
	p, ok := n.peers[best.addr]
	if !ok {
		n.mu.Unlock()
		return n.foundCluster()
	}
	waiter := make(chan clusterReply, 1)
	n.joinWaiter = waiter
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.joinWaiter = nil
		n.mu.Unlock()
	}()

	err := p.send(&wire.MsgJoin{
		Self:              netAddrFromString(n.Addr(), n.nodeID),
		MeasuredRTTMicros: uint64(best.rtt / time.Microsecond),
	})
	if err != nil {
		return n.foundCluster()
	}
	select {
	case reply := <-waiter:
		if !reply.msg.Accepted {
			return n.foundCluster()
		}
		n.mu.Lock()
		n.clusterID = reply.msg.ClusterID
		n.members[best.addr] = struct{}{}
		var toDial []string
		for _, a := range reply.msg.Members {
			addr := addrFromNetAddr(a)
			if addr == "" || addr == n.Addr() {
				continue
			}
			n.members[addr] = struct{}{}
			n.addrs.Add(addr, time.Now())
			if _, connected := n.peers[addr]; !connected {
				toDial = append(toDial, addr)
			}
		}
		n.mu.Unlock()
		for _, addr := range toDial {
			_, _ = n.Connect(addr) // best effort; members may have churned
		}
		return nil
	case <-time.After(n.cfg.HandshakeTimeout):
		return n.foundCluster()
	case <-ctx.Done():
		return fmt.Errorf("netnode: join interrupted awaiting CLUSTER reply: %w", ctx.Err())
	case <-n.closed:
		return errors.New("netnode: node stopped")
	}
}

// foundCluster starts a fresh cluster.
func (n *Node) foundCluster() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.clusterID == 0 {
		n.clusterID = n.nodeID | 1 // never zero
	}
	return nil
}

// handleJoin serves a JOIN request: accept when the reported RTT is under
// the threshold, replying with this node's cluster and known members.
func (n *Node) handleJoin(p *peer, m *wire.MsgJoin) {
	rtt := time.Duration(m.MeasuredRTTMicros) * time.Microsecond
	n.mu.Lock()
	if n.clusterID == 0 {
		n.clusterID = n.nodeID | 1 // lazily found own cluster on first JOIN
	}
	accepted := n.cfg.Threshold <= 0 || rtt < n.cfg.Threshold
	reply := &wire.MsgCluster{ClusterID: n.clusterID, Accepted: accepted}
	if accepted {
		joiner := addrFromNetAddr(m.Self)
		if joiner != "" {
			n.members[joiner] = struct{}{}
			n.addrs.Add(joiner, time.Now())
		}
		for a := range n.members {
			if a == joiner {
				continue
			}
			reply.Members = append(reply.Members, netAddrFromString(a, 0))
		}
		sort.Slice(reply.Members, func(i, j int) bool {
			return reply.Members[i].Port < reply.Members[j].Port
		})
	}
	n.mu.Unlock()
	_ = p.send(reply)
}

// --- address encoding helpers ---

// netAddrFromString packs "host:port" into a wire.NetAddr.
func netAddrFromString(addr string, nodeID uint64) wire.NetAddr {
	out := wire.NetAddr{NodeID: nodeID}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return out
	}
	if ip := net.ParseIP(host); ip != nil {
		copy(out.Host[:], ip.To16())
	}
	if port, err := strconv.Atoi(portStr); err == nil {
		out.Port = uint16(port)
	}
	return out
}

// addrFromNetAddr unpacks a wire.NetAddr into "host:port" ("" if empty).
func addrFromNetAddr(a wire.NetAddr) string {
	if a.Port == 0 {
		return ""
	}
	ip := net.IP(a.Host[:])
	if ip.IsUnspecified() {
		return ""
	}
	if v4 := ip.To4(); v4 != nil {
		ip = v4
	}
	return net.JoinHostPort(ip.String(), strconv.Itoa(int(a.Port)))
}
