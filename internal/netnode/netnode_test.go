package netnode

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/wire"
)

// startNode creates and starts a node, registering cleanup.
func startNode(t *testing.T, mutate func(*Config)) *Node {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PingInterval = 0 // keepalive noise off unless a test wants it
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func liveTx(t *testing.T, seed int64) *chain.Tx {
	t.Helper()
	key, err := chain.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return chain.Coinbase(uint64(seed), 1000, key.Address())
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPeers = 0
	if _, err := New(cfg); err == nil {
		t.Error("accepted MaxPeers=0")
	}
}

func TestConnectAndHandshake(t *testing.T) {
	a := startNode(t, nil)
	b := startNode(t, nil)

	remote, err := a.Connect(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if remote != b.Addr() {
		t.Errorf("advertised addr = %s, want %s", remote, b.Addr())
	}
	waitFor(t, 2*time.Second, func() bool { return b.NumPeers() == 1 }, "b to register peer")
	if a.NumPeers() != 1 {
		t.Errorf("a peers = %d, want 1", a.NumPeers())
	}
	// Duplicate connects are gracefully deduplicated.
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Errorf("duplicate connect errored: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return a.NumPeers() == 1 }, "dedup")
}

func TestTxPropagatesAcrossLiveNetwork(t *testing.T) {
	// Chain of 4 nodes: a-b-c-d; a submits, d must receive via relay.
	nodes := []*Node{startNode(t, nil), startNode(t, nil), startNode(t, nil), startNode(t, nil)}
	for i := 0; i < 3; i++ {
		if _, err := nodes[i].Connect(nodes[i+1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	tx := liveTx(t, 1)
	if err := nodes[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, func() bool { return n.HasTx(tx.ID()) },
			"tx at node "+string(rune('a'+i)))
	}
}

func TestResetInventoryRefloodsLive(t *testing.T) {
	// Back-to-back live runs on one overlay: after every node resets, the
	// same transaction injected again must flood the whole chain — no
	// stale first-sight state may survive and strand the re-injection.
	nodes := []*Node{startNode(t, nil), startNode(t, nil), startNode(t, nil)}
	for i := 0; i < len(nodes)-1; i++ {
		if _, err := nodes[i].Connect(nodes[i+1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	tx := liveTx(t, 7)
	for run := 0; run < 2; run++ {
		if err := nodes[0].SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		for i, n := range nodes {
			n := n
			waitFor(t, 5*time.Second, func() bool { return n.HasTx(tx.ID()) },
				fmt.Sprintf("run %d: tx at node %d", run, i))
		}
		for _, n := range nodes {
			n.ResetInventory()
			if n.InventorySize() != 0 {
				t.Fatalf("run %d: inventory not empty after reset", run)
			}
			if n.HasTx(tx.ID()) {
				t.Fatalf("run %d: stale first-sight state survived reset", run)
			}
		}
	}
}

func TestInvalidTxNotRelayed(t *testing.T) {
	a := startNode(t, nil)
	if err := a.SubmitTx(&chain.Tx{}); err == nil {
		t.Error("malformed tx accepted")
	}
}

func TestOnTxCallback(t *testing.T) {
	a := startNode(t, nil)
	b := startNode(t, nil)
	got := make(chan chain.Hash, 1)
	b.OnTx = func(tx *chain.Tx, from string) { got <- tx.ID() }
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	tx := liveTx(t, 2)
	if err := a.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != tx.ID() {
			t.Errorf("OnTx got %s, want %s", id, tx.ID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnTx never fired")
	}
}

func TestProbeMeasuresLoopbackRTT(t *testing.T) {
	a := startNode(t, nil)
	b := startNode(t, nil)
	rtt, err := a.ProbeAddr(b.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("loopback RTT = %v, implausible", rtt)
	}
	if est, ok := a.RTT(b.Addr()); !ok || est <= 0 {
		t.Errorf("estimator not updated: %v %v", est, ok)
	}
	if _, err := a.ProbeAddr(b.Addr(), 0); err == nil {
		t.Error("accepted probe count 0")
	}
}

func TestJoinClusterOverTCP(t *testing.T) {
	// Seed founds a cluster; two joiners probe it and join; the second
	// joiner learns the first via the CLUSTER member list.
	seed := startNode(t, func(c *Config) { c.Threshold = time.Second }) // loopback passes easily
	j1 := startNode(t, func(c *Config) { c.Threshold = time.Second })
	j2 := startNode(t, func(c *Config) { c.Threshold = time.Second })

	if err := j1.JoinCluster(context.Background(), []string{seed.Addr()}, 3); err != nil {
		t.Fatal(err)
	}
	if j1.ClusterID() == 0 {
		t.Fatal("j1 has no cluster after join")
	}
	if j1.ClusterID() != seed.ClusterID() {
		t.Errorf("j1 cluster %d != seed cluster %d", j1.ClusterID(), seed.ClusterID())
	}
	if err := j2.JoinCluster(context.Background(), []string{seed.Addr()}, 3); err != nil {
		t.Fatal(err)
	}
	if j2.ClusterID() != seed.ClusterID() {
		t.Errorf("j2 cluster %d != seed cluster %d", j2.ClusterID(), seed.ClusterID())
	}
	// j2 should have been told about j1 and dialed it.
	waitFor(t, 5*time.Second, func() bool {
		for _, a := range j2.PeerAddrs() {
			if a == j1.Addr() {
				return true
			}
		}
		return false
	}, "j2 to connect to j1 via member list")

	// A transaction now floods the cluster.
	tx := liveTx(t, 3)
	if err := seed.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return j1.HasTx(tx.ID()) && j2.HasTx(tx.ID()) }, "cluster flood")
}

func TestJoinClusterThresholdRejection(t *testing.T) {
	// Threshold of 1ns: loopback RTT always exceeds it, so the joiner
	// founds its own cluster.
	seed := startNode(t, func(c *Config) { c.Threshold = time.Nanosecond })
	j := startNode(t, func(c *Config) { c.Threshold = time.Nanosecond })
	if err := j.JoinCluster(context.Background(), []string{seed.Addr()}, 3); err != nil {
		t.Fatal(err)
	}
	if j.ClusterID() == 0 {
		t.Fatal("joiner never founded a cluster")
	}
	if seed.ClusterID() != 0 && j.ClusterID() == seed.ClusterID() {
		t.Error("joiner entered cluster despite failing eq. (1)")
	}
}

func TestJoinClusterDeadSeeds(t *testing.T) {
	j := startNode(t, nil)
	if err := j.JoinCluster(context.Background(), []string{"127.0.0.1:1"}, 2); err != nil {
		t.Fatal(err)
	}
	if j.ClusterID() == 0 {
		t.Error("joiner with dead seeds should found a cluster")
	}
	if err := j.JoinCluster(context.Background(), nil, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGetAddrOverTCP(t *testing.T) {
	hub := startNode(t, nil)
	a := startNode(t, nil)
	b := startNode(t, nil)
	if _, err := a.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return hub.NumPeers() == 2 }, "hub peers")
	// Ask hub for addresses directly over the peer connection.
	hub.mu.Lock()
	p := hub.peers[a.Addr()]
	hub.mu.Unlock()
	if p == nil {
		t.Fatal("hub lost peer a")
	}
	hub.handleGetAddr(p) // exercise the reply path (a ignores MsgAddr, by design)
	_ = wire.MsgGetAddr{}
}

func TestStopIsIdempotentAndClean(t *testing.T) {
	a := startNode(t, func(c *Config) { c.PingInterval = 10 * time.Millisecond })
	b := startNode(t, nil)
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let keepalive pings flow
	a.Stop()
	a.Stop() // second stop must not panic or deadlock
	if _, err := a.Connect(b.Addr()); err == nil {
		t.Log("connect after stop unexpectedly succeeded (listener closed but dial-out may work)")
	}
}

func TestAddrEncodingRoundTrip(t *testing.T) {
	cases := []string{"127.0.0.1:8333", "10.1.2.3:65535", "[::1]:9000"}
	for _, c := range cases {
		na := netAddrFromString(c, 7)
		back := addrFromNetAddr(na)
		if back != c {
			t.Errorf("round trip %q -> %q", c, back)
		}
		if na.NodeID != 7 {
			t.Errorf("node id lost for %q", c)
		}
	}
	if got := addrFromNetAddr(wire.NetAddr{}); got != "" {
		t.Errorf("empty NetAddr decoded to %q", got)
	}
	if got := addrFromNetAddr(netAddrFromString("garbage", 0)); got != "" {
		t.Errorf("garbage addr decoded to %q", got)
	}
}

// mustGetAddr builds a GETADDR message (helper for gossip tests).
func mustGetAddr() *wire.MsgGetAddr { return &wire.MsgGetAddr{} }
