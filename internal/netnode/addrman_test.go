package netnode

import (
	"testing"
	"time"
)

func TestAddrManBasics(t *testing.T) {
	a := NewAddrMan(1)
	now := time.Now()
	a.Add("127.0.0.1:1000", now)
	a.Add("127.0.0.1:1001", now)
	a.Add("127.0.0.1:1000", now) // duplicate
	a.Add("", now)               // empty ignored
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
	if !a.Has("127.0.0.1:1000") || a.Has("nope") {
		t.Error("Has mismatch")
	}
	all := a.All()
	if len(all) != 2 || all[0] != "127.0.0.1:1000" || all[1] != "127.0.0.1:1001" {
		t.Errorf("All = %v", all)
	}
}

func TestAddrManFailureEviction(t *testing.T) {
	a := NewAddrMan(2)
	now := time.Now()
	a.Add("x:1", now)
	for i := 0; i < maxFailuresBeforeDrop-1; i++ {
		a.MarkFailed("x:1")
		if !a.Has("x:1") {
			t.Fatalf("evicted after %d failures", i+1)
		}
	}
	a.MarkFailed("x:1")
	if a.Has("x:1") {
		t.Error("not evicted after max failures")
	}
	// MarkGood resets the counter.
	a.Add("y:2", now)
	a.MarkFailed("y:2")
	a.MarkFailed("y:2")
	a.MarkGood("y:2", now)
	a.MarkFailed("y:2")
	a.MarkFailed("y:2")
	if !a.Has("y:2") {
		t.Error("evicted despite MarkGood reset")
	}
	// MarkGood on unknown address registers it.
	a.MarkGood("z:3", now)
	if !a.Has("z:3") {
		t.Error("MarkGood did not register new address")
	}
	// MarkFailed on unknown address is a no-op.
	a.MarkFailed("unknown:9")
}

func TestAddrManSample(t *testing.T) {
	a := NewAddrMan(3)
	now := time.Now()
	for _, addr := range []string{"a:1", "b:2", "c:3", "d:4"} {
		a.Add(addr, now)
	}
	s := a.Sample(2, "a:1")
	if len(s) != 2 {
		t.Fatalf("sample size = %d, want 2", len(s))
	}
	for _, addr := range s {
		if addr == "a:1" {
			t.Error("sample included excluded address")
		}
	}
	// Oversized request returns everything except excluded.
	s = a.Sample(100, "a:1")
	if len(s) != 3 {
		t.Errorf("oversized sample = %d, want 3", len(s))
	}
}

func TestAddrGossipFeedsAddrMan(t *testing.T) {
	hub := startNode(t, nil)
	a := startNode(t, nil)
	b := startNode(t, nil)
	if _, err := a.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return hub.NumPeers() == 2 }, "hub peers")

	// a asks hub for addresses; hub replies with b's address, which must
	// land in a's address book.
	a.mu.Lock()
	p := a.peers[hub.Addr()]
	a.mu.Unlock()
	if p == nil {
		t.Fatal("a lost hub peer")
	}
	if err := p.send(mustGetAddr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return a.AddrMan().Has(b.Addr()) },
		"b's address to reach a via gossip")
}

func TestConnectTracksAddrMan(t *testing.T) {
	a := startNode(t, nil)
	b := startNode(t, nil)
	if _, err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if !a.AddrMan().Has(b.Addr()) {
		t.Error("successful connect not recorded in addrman")
	}
	// Dial failures count against the entry.
	dead := "127.0.0.1:1"
	a.AddrMan().Add(dead, time.Now())
	for i := 0; i < maxFailuresBeforeDrop; i++ {
		_, _ = a.Connect(dead)
	}
	if a.AddrMan().Has(dead) {
		t.Error("dead address not evicted after repeated dial failures")
	}
}

func TestDiscoveryLoopLearnsAddresses(t *testing.T) {
	hub := startNode(t, nil)
	b := startNode(t, nil)
	// a runs periodic discovery at a short interval.
	a := startNode(t, func(c *Config) { c.DiscoveryInterval = 20 * time.Millisecond })
	if _, err := b.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	// Without any manual GETADDR, a's discovery loop must learn b.
	waitFor(t, 5*time.Second, func() bool { return a.AddrMan().Has(b.Addr()) },
		"discovery loop to learn b's address")
	// Sampled candidates are then available for future joins.
	if s := a.AddrMan().Sample(5, ""); len(s) == 0 {
		t.Error("no sampled candidates after discovery")
	}
}
