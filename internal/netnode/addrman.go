package netnode

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// AddrMan is the live node's address book: every peer address it has
// learned from ADDR gossip, JOIN/CLUSTER exchanges, or successful
// connections, with basic liveness bookkeeping. It is the "normal Bitcoin
// network nodes discovery mechanism" (§IV.B) the join procedure draws
// candidates from.
type AddrMan struct {
	mu      sync.Mutex
	entries map[string]*addrEntry
	r       *rand.Rand
}

type addrEntry struct {
	addr      string
	learnedAt time.Time
	lastSeen  time.Time
	attempts  int // consecutive failed dials
}

// maxFailuresBeforeDrop evicts an address after this many consecutive
// failed connection attempts.
const maxFailuresBeforeDrop = 3

// NewAddrMan creates an empty address book. The seed makes Sample
// deterministic for tests.
func NewAddrMan(seed int64) *AddrMan {
	return &AddrMan{
		entries: make(map[string]*addrEntry),
		r:       rand.New(rand.NewSource(seed)),
	}
}

// Add records an address (idempotent). Empty addresses are ignored.
func (a *AddrMan) Add(addr string, now time.Time) {
	if addr == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.entries[addr]; ok {
		e.lastSeen = now
		return
	}
	a.entries[addr] = &addrEntry{addr: addr, learnedAt: now, lastSeen: now}
}

// MarkGood resets the failure count after a successful connection.
func (a *AddrMan) MarkGood(addr string, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.entries[addr]; ok {
		e.attempts = 0
		e.lastSeen = now
	} else {
		a.entries[addr] = &addrEntry{addr: addr, learnedAt: now, lastSeen: now}
	}
}

// MarkFailed counts a failed dial, evicting the address after
// maxFailuresBeforeDrop consecutive failures.
func (a *AddrMan) MarkFailed(addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.entries[addr]
	if !ok {
		return
	}
	e.attempts++
	if e.attempts >= maxFailuresBeforeDrop {
		delete(a.entries, addr)
	}
}

// Len returns the number of known addresses.
func (a *AddrMan) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// Has reports whether addr is known.
func (a *AddrMan) Has(addr string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.entries[addr]
	return ok
}

// All returns every known address, sorted.
func (a *AddrMan) All() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.entries))
	for addr := range a.entries {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Sample returns up to n distinct addresses chosen uniformly at random,
// excluding the given address.
func (a *AddrMan) Sample(n int, exclude string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	pool := make([]string, 0, len(a.entries))
	for addr := range a.entries {
		if addr != exclude {
			pool = append(pool, addr)
		}
	}
	sort.Strings(pool) // deterministic base order before shuffling
	a.r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	return pool[:n]
}
