package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Streams derives independent, named random streams from a single root
// seed. Each subsystem (latency sampling, churn, topology, workload, ...)
// draws from its own stream, so adding a random draw in one subsystem does
// not perturb the sequence seen by any other — experiments stay comparable
// across code changes and ablations.
type Streams struct {
	seed int64

	mu      sync.Mutex
	streams map[string]*rand.Rand
}

// NewStreams returns a stream family rooted at seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Seed returns the root seed the family was created with.
func (s *Streams) Seed() int64 { return s.seed }

// Stream returns the named stream, creating it deterministically on first
// use. The per-name seed is an FNV-1a hash of the root seed and the name,
// so streams are stable across runs and independent of creation order.
func (s *Streams) Stream(name string) *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(DeriveSeed(s.seed, name)))
	s.streams[name] = r
	return r
}

// Names returns the names of all streams created so far, sorted.
func (s *Streams) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.streams))
	for n := range s.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DeriveSeed maps (root, name) to a child seed via FNV-1a, the same
// derivation Streams uses for its named streams. Exported so campaign
// engines can derive independent per-replication root seeds that are
// stable across runs and uncorrelated with every in-simulation stream.
func DeriveSeed(root int64, name string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(root) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	v := int64(h.Sum64())
	if v == 0 {
		v = 1 // rand.NewSource(0) is legal but keep seeds distinguishable from "unset"
	}
	return v
}

// Exponential draws an exponentially distributed duration with the given
// mean. A non-positive mean returns 0.
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// LogNormal draws a log-normally distributed value where mu and sigma are
// the parameters of the underlying normal (i.e. the median is exp(mu)).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto draws from a Pareto distribution with scale xm > 0 and shape
// alpha > 0. Heavy-tailed: used for congestion spikes and session lengths.
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Weibull draws from a Weibull distribution with scale lambda > 0 and
// shape k > 0. Session-length measurement studies of Bitcoin peers are
// well fit by Weibull with k < 1 (many short sessions, a long tail).
func Weibull(r *rand.Rand, lambda, k float64) float64 {
	if lambda <= 0 || k <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return lambda * math.Pow(-math.Log(u), 1/k)
}
