package sim

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// --- differential testing against the pre-arena reference kernel ---

// trace records one dispatched event: which schedule call fired and when.
type trace struct {
	tag int
	at  Time
}

// schedOp is one randomised operation applied identically to both kernels.
type schedOp struct {
	kind   int // 0 = schedule, 1 = cancel an earlier schedule, 2 = RunN batch
	delay  time.Duration
	target int // for cancels: index of the schedule op to cancel
	batch  int // for RunN
}

func randomOps(r *rand.Rand, n int) []schedOp {
	ops := make([]schedOp, n)
	scheduled := 0
	for i := range ops {
		switch k := r.Intn(10); {
		case k < 6 || scheduled == 0: // bias toward scheduling
			ops[i] = schedOp{kind: 0, delay: time.Duration(r.Intn(50)) * time.Microsecond}
			scheduled++
		case k < 9:
			ops[i] = schedOp{kind: 1, target: r.Intn(scheduled)}
		default:
			ops[i] = schedOp{kind: 2, batch: 1 + r.Intn(5)}
		}
	}
	return ops
}

// replayArena runs ops against the arena Scheduler, returning the
// dispatch trace and final (now, len) state.
func replayArena(ops []schedOp) ([]trace, Time, int) {
	s := NewScheduler()
	var out []trace
	var handles []Handle
	tag := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			t := tag
			handles = append(handles, s.After(op.delay, func() {
				out = append(out, trace{tag: t, at: s.Now()})
			}))
			tag++
		case 1:
			s.Cancel(handles[op.target])
		case 2:
			_, _ = s.RunN(op.batch)
		}
	}
	_ = s.Run()
	return out, s.Now(), s.Len()
}

// replayReference runs the same ops against the pre-arena kernel.
func replayReference(ops []schedOp) ([]trace, Time, int) {
	s := NewReferenceScheduler()
	var out []trace
	var handles []Handle
	tag := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			t := tag
			handles = append(handles, s.After(op.delay, func() {
				out = append(out, trace{tag: t, at: s.Now()})
			}))
			tag++
		case 1:
			s.Cancel(handles[op.target])
		case 2:
			_, _ = s.RunN(op.batch)
		}
	}
	_ = s.Run()
	return out, s.Now(), s.Len()
}

// TestArenaMatchesReference replays thousands of randomised cancel-heavy
// schedules against both kernels and requires bit-identical dispatch
// order, clocks, and queue lengths. This is the determinism contract of
// the arena rewrite: (at, seq) total order, cancellation visibility, and
// RunN batching must be indistinguishable from the pre-arena kernel.
func TestArenaMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for round := 0; round < 200; round++ {
		ops := randomOps(r, 50+r.Intn(200))
		gotTr, gotNow, gotLen := replayArena(ops)
		wantTr, wantNow, wantLen := replayReference(ops)
		if gotNow != wantNow || gotLen != wantLen {
			t.Fatalf("round %d: state (now=%v len=%d), reference (now=%v len=%d)",
				round, gotNow, gotLen, wantNow, wantLen)
		}
		if len(gotTr) != len(wantTr) {
			t.Fatalf("round %d: dispatched %d events, reference %d", round, len(gotTr), len(wantTr))
		}
		for i := range gotTr {
			if gotTr[i] != wantTr[i] {
				t.Fatalf("round %d: dispatch %d = %+v, reference %+v", round, i, gotTr[i], wantTr[i])
			}
		}
	}
}

// FuzzArenaMatchesReference is the same differential check driven by the
// fuzzer: the input bytes seed the op stream.
func FuzzArenaMatchesReference(f *testing.F) {
	f.Add(int64(1), 100)
	f.Add(int64(42), 300)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 2000 {
			t.Skip()
		}
		ops := randomOps(rand.New(rand.NewSource(seed)), n)
		gotTr, gotNow, gotLen := replayArena(ops)
		wantTr, wantNow, wantLen := replayReference(ops)
		if gotNow != wantNow || gotLen != wantLen || len(gotTr) != len(wantTr) {
			t.Fatalf("kernel state diverged: (%v,%d,%d) vs (%v,%d,%d)",
				gotNow, gotLen, len(gotTr), wantNow, wantLen, len(wantTr))
		}
		for i := range gotTr {
			if gotTr[i] != wantTr[i] {
				t.Fatalf("dispatch %d = %+v, reference %+v", i, gotTr[i], wantTr[i])
			}
		}
	})
}

// --- arena-specific behaviour ---

func TestHandleGoesStaleAfterDispatchAndReuse(t *testing.T) {
	s := NewScheduler()
	h1 := s.After(time.Millisecond, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Cancel(h1) {
		t.Error("Cancel of already-run event returned true")
	}
	// The freed slot is recycled; the stale handle must not cancel the
	// new incarnation.
	h2 := s.After(time.Millisecond, func() {})
	if s.Cancel(h1) {
		t.Error("stale handle cancelled a recycled slot")
	}
	if !s.Cancel(h2) {
		t.Error("fresh handle did not cancel")
	}
}

func TestCancelIsLazyButLenIsLive(t *testing.T) {
	s := NewScheduler()
	var handles []Handle
	for i := 0; i < 100; i++ {
		handles = append(handles, s.At(time.Duration(i)*time.Millisecond, func() {}))
	}
	for i := 0; i < 100; i += 2 {
		if !s.Cancel(handles[i]) {
			t.Fatal("cancel failed")
		}
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d after cancelling half, want 50", s.Len())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 50 {
		t.Fatalf("Executed = %d, want 50", s.Executed())
	}
}

func TestClearReusesArena(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 1000; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Clear", s.Len())
	}
	// Refilling to the same high-water mark must not grow the arena.
	before := cap(s.arena)
	fn := func() {}
	for i := 0; i < 1000; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	if cap(s.arena) != before {
		t.Errorf("arena grew across Clear: cap %d -> %d", before, cap(s.arena))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 1000 {
		t.Fatalf("Executed = %d, want 1000 (cleared events must not run)", s.Executed())
	}
}

func TestRunNCtxStopsOnCancellation(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 5000; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran, err := s.RunNCtx(ctx, 5000)
	if err == nil {
		t.Fatal("RunNCtx ignored a cancelled context")
	}
	if ran != 0 {
		t.Errorf("ran %d events under a pre-cancelled context, want 0", ran)
	}
	// A live context dispatches normally.
	ran, err = s.RunNCtx(context.Background(), 5000)
	if err != nil || ran != 5000 {
		t.Fatalf("RunNCtx = (%d, %v), want (5000, nil)", ran, err)
	}
}

func TestAfterCallCarriesArgument(t *testing.T) {
	s := NewScheduler()
	type payload struct{ hits int }
	p := &payload{}
	bump := func(a any) { a.(*payload).hits++ }
	s.AfterCall(time.Millisecond, bump, p)
	s.AtCall(2*time.Millisecond, bump, p)
	h := s.AfterCall(3*time.Millisecond, bump, p)
	if !s.Cancel(h) {
		t.Fatal("cancel of AfterCall event failed")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p.hits != 2 {
		t.Errorf("payload hits = %d, want 2", p.hits)
	}
}

// TestSteadyStateZeroAllocs is the tentpole's core guarantee: after
// warm-up, schedule + cancel + dispatch cycles perform no heap
// allocations.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	call := func(any) {}
	// Warm up arena, heap, and free list to the high-water mark.
	for i := 0; i < 4096; i++ {
		s.After(time.Duration(i%64)*time.Microsecond, fn)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			s.After(time.Duration(i%64)*time.Microsecond, fn)
			s.AfterCall(time.Duration(i%64)*time.Microsecond, call, nil)
		}
		for i := 0; i < 128; i++ {
			h := s.After(time.Duration(i%64)*time.Microsecond, fn)
			s.Cancel(h)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/cancel/dispatch allocated %.1f times per run, want 0", allocs)
	}
}
