package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// ReferenceScheduler is the pre-arena event kernel: one heap-allocated
// node per event, a byID map for cancellation, and O(log n) heap.Remove
// on Cancel. It is kept verbatim (modulo renames) as the behavioural
// oracle for the arena Scheduler — the differential tests in
// arena_test.go replay identical schedules against both kernels and
// require bit-identical dispatch order, and the BenchmarkScheduler pair
// quantifies the allocation and throughput gap. It is not used by any
// simulation path.
type ReferenceScheduler struct {
	now     Time
	seq     uint64
	heap    refEventHeap
	byID    map[Handle]*refEvent
	stopped bool

	executed uint64
}

// refEvent is a single scheduled callback in the reference kernel.
type refEvent struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// refEventHeap orders events by (at, seq).
type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }

func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refEventHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// NewReferenceScheduler returns an empty reference scheduler.
func NewReferenceScheduler() *ReferenceScheduler {
	return &ReferenceScheduler{byID: make(map[Handle]*refEvent)}
}

// Now returns the current virtual time.
func (s *ReferenceScheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *ReferenceScheduler) Len() int { return len(s.heap) }

// Executed returns the total number of events dispatched so far.
func (s *ReferenceScheduler) Executed() uint64 { return s.executed }

// At schedules fn at absolute virtual time at.
func (s *ReferenceScheduler) At(at Time, fn func()) Handle {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	ev := &refEvent{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.heap, ev)
	h := Handle(s.seq)
	s.byID[h] = ev
	return h
}

// After schedules fn d after the current virtual time.
func (s *ReferenceScheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event (O(log n) heap.Remove).
func (s *ReferenceScheduler) Cancel(h Handle) bool {
	ev, ok := s.byID[h]
	if !ok {
		return false
	}
	delete(s.byID, h)
	if ev.index < 0 {
		return false
	}
	heap.Remove(&s.heap, ev.index)
	return true
}

// Stop halts the simulation after the current callback.
func (s *ReferenceScheduler) Stop() { s.stopped = true }

func (s *ReferenceScheduler) step() {
	ev := heap.Pop(&s.heap).(*refEvent)
	delete(s.byID, Handle(ev.seq))
	s.now = ev.at
	s.executed++
	ev.fn()
}

// Run dispatches events until none remain or Stop is called.
func (s *ReferenceScheduler) Run() error {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	return nil
}

// RunUntil dispatches events with timestamps <= limit, then advances the
// clock to limit.
func (s *ReferenceScheduler) RunUntil(limit Time) error {
	if limit < s.now {
		return fmt.Errorf("sim: RunUntil limit %v before now %v", limit, s.now)
	}
	s.stopped = false
	for len(s.heap) > 0 && s.heap[0].at <= limit {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	if !s.stopped && s.now < limit {
		s.now = limit
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// RunN dispatches at most n events.
func (s *ReferenceScheduler) RunN(n int) (int, error) {
	s.stopped = false
	ran := 0
	for ran < n && len(s.heap) > 0 {
		if s.stopped {
			return ran, ErrStopped
		}
		s.step()
		ran++
	}
	return ran, nil
}
