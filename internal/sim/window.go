package sim

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Conservative parallel dispatch (Chandy–Misra–Bryant lookahead windows).
//
// A WindowScheduler shards one logical simulation across P partition
// Schedulers, each owning a disjoint set of simulation entities. The caller
// certifies a lookahead bound L: any event executed in partition i may
// schedule into another partition j only at a timestamp at least L beyond
// the executing partition's clock (for the p2p network this is the minimum
// cross-partition link latency floor). Under that bound the kernel runs
// windows: with T the earliest pending timestamp across partitions, every
// event in [T, T+L) is independent of every concurrently executing event in
// any other partition, so all partitions dispatch their window
// concurrently. Cross-partition schedules made during a window are staged
// in per-partition outboxes and committed at the window barrier in
// canonical (at, key1, key2) order, so the destination partition's
// (at, seq) dispatch order — and therefore every observable — is
// independent of goroutine interleaving.
//
// Determinism contract: each partition's dispatch sequence is bit-identical
// to the projection of the equivalent serial run onto that partition,
// provided (a) every draw of randomness inside events is keyed (see
// KeyedSource) rather than drawn from a shared sequential stream, and
// (b) no two events in different source partitions stage into the same
// destination partition at exactly equal (at, key1, key2). The p2p layer
// keys by (sender, send sequence) and samples continuous delays, making
// exact collisions a measure-zero event.
//
// Allocation discipline matches the serial kernel: the worker pool is
// persistent (started once, woken by tokens on a channel), outboxes and the
// merge scratch are reused across windows, and the sort comparator is a
// package function, so steady-state windows allocate nothing.

// stagedEvent is one cross-partition schedule buffered until the window
// barrier. key1/key2 order ties at equal timestamps canonically (the p2p
// layer passes sender ID and per-sender send sequence).
type stagedEvent struct {
	at   Time
	key1 uint64
	key2 uint64
	dst  int32
	call func(any)
	arg  any
}

// cmpStaged is the canonical commit order: (at, key1, key2, dst).
func cmpStaged(a, b stagedEvent) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.key1 != b.key1:
		if a.key1 < b.key1 {
			return -1
		}
		return 1
	case a.key2 != b.key2:
		if a.key2 < b.key2 {
			return -1
		}
		return 1
	case a.dst != b.dst:
		if a.dst < b.dst {
			return -1
		}
		return 1
	}
	return 0
}

// WindowScheduler coordinates P partition Schedulers through conservative
// lookahead windows. Construct with NewWindowScheduler; drive with
// RunUntilCtx from a single goroutine. Stage may be called from the worker
// goroutine currently executing the source partition's window (or from the
// driving goroutine between runs); all other methods belong to the driving
// goroutine only.
type WindowScheduler struct {
	parts     []*Scheduler
	lookahead time.Duration
	workers   int

	outbox [][]stagedEvent // staged cross-partition schedules, by source
	merge  []stagedEvent   // reusable commit scratch

	// Per-window state published to workers before tokens are sent and
	// read back after the barrier.
	horizon Time
	runCtx  context.Context
	errs    []error

	stopReq atomic.Bool  // Stop() latch, observed at the next barrier
	next    atomic.Int64 // partition claim counter for the current window
	wg      sync.WaitGroup
	start   chan struct{} // one token wakes one worker for one window
	closed  bool

	// Observability hooks, all nil by default so the uninstrumented
	// path costs one branch. They fire on the driving goroutine only:
	// OnWindowOpen before the window's worker tokens are sent,
	// OnWindowBarrier after every worker has reached the barrier
	// (spanNanos is the window's wall-clock span when a profile clock is
	// installed, else zero), and OnWindowCommit when staged
	// cross-partition events merge into destination heaps. Tracing must
	// never perturb the simulation: hooks may observe, not schedule.
	OnWindowOpen    func(open, horizon Time, index uint64)
	OnWindowBarrier func(horizon Time, index uint64, spanNanos int64)
	OnWindowCommit  func(now Time, index uint64, staged int)

	windowIndex uint64
	prof        *WindowProfile
}

// WindowProfile accumulates per-partition PDES timings across a run:
// how much wall time each partition spent dispatching inside windows,
// how many windows it had work in, and how long the driver spent per
// window overall. Barrier wait — the parallelism lost to imbalance —
// is derived, not measured: workers × total window span − Σ busy.
//
// The wall clock is injected, never read directly: sim is a
// deterministic package (bcbpt-lint detrand bans time.Now here), so
// non-deterministic callers pass their own nanosecond clock and
// deterministic callers simply never enable profiling.
type WindowProfile struct {
	clock func() int64

	// Windows counts dispatched windows; SpanNanos sums their
	// wall-clock spans as seen by the driving goroutine.
	Windows   uint64
	SpanNanos int64
	// PartBusyNanos[i] is partition i's in-window dispatch time;
	// PartWindows[i] counts windows where it had work. Each cell is
	// written only by the worker that claimed the partition for that
	// window and read by the driver after the barrier.
	PartBusyNanos []int64
	PartWindows   []uint64
	// StagedEvents counts cross-partition deliveries committed.
	StagedEvents uint64

	workers int
}

// EnableProfile installs a profile collecting per-window timings with
// the given wall clock (nanoseconds; e.g. time.Now().UnixNano wrapped
// by a non-deterministic caller). Returns the profile, which the caller
// reads after the run. Enabling replaces any previous profile.
func (w *WindowScheduler) EnableProfile(clock func() int64) *WindowProfile {
	p := &WindowProfile{
		clock:         clock,
		PartBusyNanos: make([]int64, len(w.parts)),
		PartWindows:   make([]uint64, len(w.parts)),
		workers:       w.workers,
	}
	w.prof = p
	return p
}

// DisableProfile detaches the profile; the returned snapshot stays
// readable.
func (w *WindowScheduler) DisableProfile() { w.prof = nil }

// BusyNanos sums partition dispatch time across the run.
func (p *WindowProfile) BusyNanos() int64 {
	var t int64
	for _, b := range p.PartBusyNanos {
		t += b
	}
	return t
}

// BarrierWaitNanos estimates worker idle time at window barriers:
// the worker pool's total in-window capacity minus the time actually
// spent dispatching, clamped at zero.
func (p *WindowProfile) BarrierWaitNanos() int64 {
	wait := int64(p.workers)*p.SpanNanos - p.BusyNanos()
	if wait < 0 {
		return 0
	}
	return wait
}

// ImbalanceRatio is max partition busy time over the mean — 1.0 is a
// perfectly balanced partitioning, and the ratio bounds the speedup
// lost to the slowest partition each window.
func (p *WindowProfile) ImbalanceRatio() float64 {
	if len(p.PartBusyNanos) == 0 {
		return 1
	}
	var sum, max int64
	for _, b := range p.PartBusyNanos {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(p.PartBusyNanos))
	return float64(max) / mean
}

// NewWindowScheduler creates P fresh partition Schedulers (clocks at zero)
// and starts a persistent pool of min(workers, parts) worker goroutines.
// lookahead must be positive: it is the certified minimum cross-partition
// scheduling distance.
func NewWindowScheduler(parts, workers int, lookahead time.Duration) (*WindowScheduler, error) {
	if parts < 1 {
		return nil, fmt.Errorf("sim: window scheduler needs at least 1 partition, got %d", parts)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: window scheduler needs positive lookahead, got %v", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > parts {
		workers = parts
	}
	w := &WindowScheduler{
		parts:     make([]*Scheduler, parts),
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]stagedEvent, parts),
		errs:      make([]error, parts),
		start:     make(chan struct{}),
	}
	for i := range w.parts {
		w.parts[i] = NewScheduler()
	}
	for i := 0; i < workers; i++ {
		go w.worker()
	}
	return w, nil
}

// Part returns partition i's Scheduler. Callers schedule partition-local
// events directly on it; cross-partition schedules must go through Stage.
func (w *WindowScheduler) Part(i int) *Scheduler { return w.parts[i] }

// NumParts returns the partition count.
func (w *WindowScheduler) NumParts() int { return len(w.parts) }

// Workers returns the worker pool size (clamped to the partition count).
func (w *WindowScheduler) Workers() int { return w.workers }

// Lookahead returns the certified lookahead bound.
func (w *WindowScheduler) Lookahead() time.Duration { return w.lookahead }

// Now returns the minimum partition clock. Between RunUntilCtx calls all
// partition clocks are equal, so this is the simulation time.
func (w *WindowScheduler) Now() Time {
	min := w.parts[0].Now()
	for _, p := range w.parts[1:] {
		if p.Now() < min {
			min = p.Now()
		}
	}
	return min
}

// Len returns the number of pending events across all partitions,
// including staged cross-partition events not yet committed.
func (w *WindowScheduler) Len() int {
	n := 0
	for _, p := range w.parts {
		n += p.Len()
	}
	for _, ob := range w.outbox {
		n += len(ob)
	}
	return n
}

// Executed returns the total events dispatched across all partitions.
func (w *WindowScheduler) Executed() uint64 {
	var n uint64
	for _, p := range w.parts {
		n += p.Executed()
	}
	return n
}

// Stop requests a halt: the current window completes (conservative windows
// cannot be interrupted without losing clock synchronization) and the next
// barrier returns ErrStopped. Mirrors Scheduler.Stop; safe to call from
// event callbacks in any partition.
func (w *WindowScheduler) Stop() { w.stopReq.Store(true) }

// Stage buffers a cross-partition schedule: call(arg) will run in
// partition dst at absolute time at, committed at the next window barrier.
// (key1, key2) canonically orders commits that share a timestamp. The
// caller must be the worker currently executing partition src's window, or
// the driving goroutine between runs. at must respect the lookahead bound
// (at least src's clock + lookahead); violations are detected at commit.
func (w *WindowScheduler) Stage(src int32, at Time, dst int32, key1, key2 uint64, call func(any), arg any) {
	w.outbox[src] = append(w.outbox[src], stagedEvent{
		at:   at,
		key1: key1,
		key2: key2,
		dst:  dst,
		call: call,
		arg:  arg,
	})
}

// commit merges all outboxes in canonical order into the destination
// partition heaps. Runs at the window barrier (driver goroutine only).
func (w *WindowScheduler) commit() {
	total := 0
	for _, ob := range w.outbox {
		total += len(ob)
	}
	if total == 0 {
		return
	}
	if w.OnWindowCommit != nil {
		w.OnWindowCommit(w.Now(), w.windowIndex, total)
	}
	if w.prof != nil {
		w.prof.StagedEvents += uint64(total)
	}
	w.merge = w.merge[:0]
	for i, ob := range w.outbox {
		w.merge = append(w.merge, ob...)
		for j := range ob {
			ob[j].call = nil
			ob[j].arg = nil
		}
		w.outbox[i] = ob[:0]
	}
	slices.SortFunc(w.merge, cmpStaged)
	for i := range w.merge {
		e := &w.merge[i]
		p := w.parts[e.dst]
		if e.at < p.Now() {
			panic(fmt.Sprintf("sim: window commit at %v before partition %d clock %v — lookahead bound violated",
				e.at, e.dst, p.Now()))
		}
		p.AtCall(e.at, e.call, e.arg)
		e.call = nil
		e.arg = nil
	}
}

// nextEvent returns the earliest pending timestamp across partitions.
func (w *WindowScheduler) nextEvent() (Time, bool) {
	var min Time
	found := false
	for _, p := range w.parts {
		if at, ok := p.NextEventAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// worker is one pool goroutine: each token on start claims partitions off
// the shared counter and runs their windows, then hits the barrier.
func (w *WindowScheduler) worker() {
	for range w.start {
		for {
			i := int(w.next.Add(1) - 1)
			if i >= len(w.parts) {
				break
			}
			p := w.parts[i]
			if w.horizon >= p.Now() {
				pr := w.prof
				var t0 int64
				if pr != nil && pr.clock != nil {
					t0 = pr.clock()
				}
				if err := p.RunUntilCtx(w.runCtx, w.horizon); err != nil {
					w.errs[i] = err
				}
				if pr != nil && pr.clock != nil {
					pr.PartBusyNanos[i] += pr.clock() - t0
					pr.PartWindows[i]++
				}
			}
		}
		w.wg.Done()
	}
}

// RunUntilCtx dispatches all events with timestamps <= limit in
// conservative windows, then advances every partition clock to limit.
// Mirrors Scheduler.RunUntilCtx semantics: the context is polled at least
// once per window (so cancellation is prompt even when event counts per
// window are tiny), a done context stops dispatch with the clocks wherever
// the window barrier left them, and Stop makes it return ErrStopped at the
// next barrier with pending events retained (the run is resumable, exactly
// like the serial kernel's stop-then-drain idiom). After a context
// cancellation the partition clocks may be unsynchronized; such a
// simulation must be discarded, not resumed.
func (w *WindowScheduler) RunUntilCtx(ctx context.Context, limit Time) error {
	if now := w.Now(); limit < now {
		return fmt.Errorf("sim: RunUntil limit %v before now %v", limit, now)
	}
	w.stopReq.Store(false)
	for {
		w.commit()
		if w.stopReq.Load() {
			return ErrStopped
		}
		t, ok := w.nextEvent()
		if !ok || t > limit {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Window [t, t+lookahead), i.e. inclusive horizon t+lookahead-1,
		// clamped to limit and guarded against overflow.
		horizon := t + w.lookahead - 1
		if horizon < t || horizon > limit {
			horizon = limit
		}
		if w.OnWindowOpen != nil {
			w.OnWindowOpen(t, horizon, w.windowIndex)
		}
		var w0 int64
		if w.prof != nil && w.prof.clock != nil {
			w0 = w.prof.clock()
		}
		w.horizon = horizon
		w.runCtx = ctx
		w.next.Store(0)
		w.wg.Add(w.workers)
		for i := 0; i < w.workers; i++ {
			w.start <- struct{}{}
		}
		w.wg.Wait()
		var span int64
		if w.prof != nil {
			w.prof.Windows++
			if w.prof.clock != nil {
				span = w.prof.clock() - w0
				w.prof.SpanNanos += span
			}
		}
		if w.OnWindowBarrier != nil {
			w.OnWindowBarrier(horizon, w.windowIndex, span)
		}
		w.windowIndex++
		var ferr error
		for i := range w.errs {
			if w.errs[i] != nil && ferr == nil {
				ferr = w.errs[i]
			}
			w.errs[i] = nil
		}
		if ferr != nil {
			return ferr
		}
	}
	for _, p := range w.parts {
		if p.Now() < limit {
			if err := p.RunUntilCtx(context.Background(), limit); err != nil {
				return err
			}
		}
	}
	if w.stopReq.Load() {
		return ErrStopped
	}
	return nil
}

// Clear drops every pending event — committed and staged — without running
// it. Clocks do not move. Mirrors Scheduler.Clear.
func (w *WindowScheduler) Clear() {
	for _, p := range w.parts {
		p.Clear()
	}
	for i, ob := range w.outbox {
		for j := range ob {
			ob[j].call = nil
			ob[j].arg = nil
		}
		w.outbox[i] = ob[:0]
	}
}

// Close shuts down the worker pool. The WindowScheduler must not be used
// after Close; partition Schedulers remain readable.
func (w *WindowScheduler) Close() {
	if w.closed {
		return
	}
	w.closed = true
	close(w.start)
}
