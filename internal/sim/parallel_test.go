package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		hits := make([]int32, n)
		err := ParallelFor(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForDeterministicSlots(t *testing.T) {
	// The contract: per-index derived streams + per-index slots give the
	// same result for every worker count.
	run := func(workers int) []int64 {
		out := make([]int64, 64)
		if err := ParallelFor(context.Background(), len(out), workers, func(i int) {
			out[i] = DeriveSeed(42, string(rune('a'+i)))
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	err := ParallelFor(ctx, 10_000, 4, func(i int) {
		if started.Add(1) == 8 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 10_000 {
		t.Error("cancellation did not stop the feed")
	}
	// No goroutine may still be running fn after return.
	after := started.Load()
	time.Sleep(20 * time.Millisecond)
	if started.Load() != after {
		t.Error("fn still running after ParallelFor returned")
	}
}

func TestRunUntilCtxCancel(t *testing.T) {
	s := NewScheduler()
	// A self-perpetuating event chain: without cancellation RunUntil
	// would dispatch events forever (up to the limit).
	var fire func()
	n := 0
	fire = func() {
		n++
		s.After(time.Microsecond, fire)
	}
	s.After(0, fire)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RunUntilCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= ctxCheckInterval {
		t.Errorf("dispatched %d events after cancellation (poll interval %d)", n, ctxCheckInterval)
	}
}

func TestSchedulerClear(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(time.Second, func() { ran = true })
	h := s.After(2*time.Second, func() {})
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len = %d after Clear", s.Len())
	}
	if s.Cancel(h) {
		t.Error("Cancel found an event after Clear")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cleared event still ran")
	}
	// The scheduler stays usable after Clear.
	s.After(time.Millisecond, func() { ran = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event scheduled after Clear did not run")
	}
}
