package sim

import (
	"context"
	"sync"
)

// ParallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines, handing indices out in order. It exists for the sharded
// phases of network construction: fn must write only to its own
// pre-indexed slot (ParallelFor provides no synchronisation beyond the
// completion barrier), and any randomness must come from a per-index or
// per-shard stream derived with DeriveSeed — under those rules the result
// is bit-identical for every worker count, including the workers == 1
// serial fast path.
//
// Cancellation is cooperative: once ctx is done no new index is handed
// out, every started fn still runs to completion, and ParallelFor returns
// ctx.Err(). It returns nil only when all n indices ran.
func ParallelFor(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		// Check ctx before offering: when a worker and cancellation are
		// both ready the select picks randomly, and a cancelled loop must
		// not start new work.
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return err
}
