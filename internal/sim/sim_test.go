package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreakBySequence(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-broken order = %v, want ascending", order)
		}
	}
}

func TestSchedulerAfterIsRelative(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 1500*time.Millisecond {
		t.Errorf("nested After fired at %v, want 1.5s", at)
	}
}

func TestSchedulerNegativeAfterClampsToNow(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Errorf("Now = %v, want 0", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(500*time.Millisecond, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	h := s.At(time.Second, func() { fired = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Error("second Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelFromCallback(t *testing.T) {
	s := NewScheduler()
	fired := false
	var h Handle
	s.At(10*time.Millisecond, func() { s.Cancel(h) })
	h = s.At(20*time.Millisecond, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("dispatched %d events after Stop, want 3", count)
	}
	// Resumable: remaining events still pending.
	if s.Len() != 7 {
		t.Errorf("pending = %d, want 7", s.Len())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if count != 10 {
		t.Errorf("total dispatched = %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(3 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms (clock advances to limit)", s.Now())
	}
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatalf("second RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events total, want 3", len(fired))
	}
}

func TestRunUntilPastIsError(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {})
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := s.RunUntil(time.Second); err == nil {
		t.Error("RunUntil into the past did not error")
	}
}

func TestRunN(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	ran, err := s.RunN(3)
	if err != nil || ran != 3 || count != 3 {
		t.Fatalf("RunN(3) = (%d, %v), count = %d", ran, err, count)
	}
	ran, err = s.RunN(10)
	if err != nil || ran != 2 || count != 5 {
		t.Fatalf("RunN(10) = (%d, %v), count = %d", ran, err, count)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var fires []Time
	tk := s.NewTicker(10*time.Millisecond, func() {
		fires = append(fires, s.Now())
	})
	s.At(35*time.Millisecond, func() { tk.Stop() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerStopFromOwnCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = s.NewTicker(time.Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Errorf("ticker fired %d times after self-stop, want 2", count)
	}
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	a := NewStreams(42)
	b := NewStreams(42)
	// Same name, same seed -> identical sequence.
	for i := 0; i < 100; i++ {
		if a.Stream("latency").Int63() != b.Stream("latency").Int63() {
			t.Fatal("same-named streams diverged")
		}
	}
	// Creation order must not matter.
	c := NewStreams(42)
	c.Stream("churn") // touch another stream first
	av := NewStreams(42).Stream("latency").Int63()
	cv := c.Stream("latency").Int63()
	if av != cv {
		t.Error("stream sequence depends on creation order")
	}
	// Different names should differ (overwhelmingly likely).
	d := NewStreams(42)
	same := 0
	for i := 0; i < 20; i++ {
		if d.Stream("x").Int63() == d.Stream("y").Int63() {
			same++
		}
	}
	if same == 20 {
		t.Error("streams x and y produced identical sequences")
	}
}

func TestStreamsDifferentSeedsDiffer(t *testing.T) {
	a := NewStreams(1).Stream("s")
	b := NewStreams(2).Stream("s")
	same := 0
	for i := 0; i < 20; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical sequences")
	}
}

func TestStreamNames(t *testing.T) {
	s := NewStreams(7)
	s.Stream("b")
	s.Stream("a")
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
}

func TestDistributionMeans(t *testing.T) {
	s := NewStreams(123)
	r := s.Stream("dist")
	const n = 200000

	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(r, 50)
	}
	if got := sum / n; math.Abs(got-50) > 1.5 {
		t.Errorf("Exponential mean = %.2f, want ~50", got)
	}

	// LogNormal(mu, sigma) has mean exp(mu + sigma^2/2).
	sum = 0
	for i := 0; i < n; i++ {
		sum += LogNormal(r, 3, 0.5)
	}
	want := math.Exp(3 + 0.25/2)
	if got := sum / n; math.Abs(got-want)/want > 0.05 {
		t.Errorf("LogNormal mean = %.2f, want ~%.2f", got, want)
	}

	// Weibull(lambda, k) has mean lambda * Gamma(1 + 1/k); for k=1 it is
	// exponential with mean lambda.
	sum = 0
	for i := 0; i < n; i++ {
		sum += Weibull(r, 20, 1)
	}
	if got := sum / n; math.Abs(got-20) > 1 {
		t.Errorf("Weibull(20,1) mean = %.2f, want ~20", got)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewStreams(5).Stream("p")
	for i := 0; i < 10000; i++ {
		v := Pareto(r, 2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto sample %v below scale 2", v)
		}
	}
	if Pareto(r, 0, 1) != 0 || Pareto(r, 1, 0) != 0 {
		t.Error("degenerate Pareto parameters should return 0")
	}
}

// Property: for any batch of non-negative delays, Run dispatches exactly
// len(delays) events in non-decreasing time order.
func TestPropertyRunDispatchesAllInOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		var times []Time
		for _, d := range raw {
			s.After(time.Duration(d)*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(times) != len(raw) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: derived seeds are stable functions of (root, name).
func TestPropertyDeriveSeedStable(t *testing.T) {
	f := func(root int64, name string) bool {
		return DeriveSeed(root, name) == DeriveSeed(root, name) && DeriveSeed(root, name) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Len() > 10000 {
			_, _ = s.RunN(5000)
		}
	}
	_ = s.Run()
}
