package sim

import "time"

// Ticker schedules a callback at a fixed virtual-time period until stopped.
// Unlike time.Ticker there is no channel: the callback runs inline in the
// event loop, which keeps the simulation single-threaded and deterministic.
type Ticker struct {
	sched   *Scheduler
	period  time.Duration
	fn      func()
	tickFn  func() // t.tick bound once, so rescheduling never allocates
	handle  Handle
	stopped bool
}

// NewTicker schedules fn every period, with the first firing one period
// from now. It panics on a non-positive period, which would otherwise
// livelock the event loop at a single instant.
func (s *Scheduler) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sched: s, period: period, fn: fn}
	t.tickFn = t.tick
	t.handle = s.After(period, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped { // fn may stop its own ticker
		return
	}
	t.handle = t.sched.After(t.period, t.tickFn)
}

// Stop cancels future firings. Safe to call multiple times and from within
// the ticker's own callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sched.Cancel(t.handle)
}
