package sim

// Keyed (counter-less) randomness for order-independent draws.
//
// The serial kernel can draw every random number from shared sequential
// streams because it dispatches events in one global order. A partitioned
// kernel cannot: two partitions executing concurrently would race on the
// stream and the draw order — and therefore every downstream byte — would
// depend on goroutine interleaving. KeyedSource solves this by deriving
// each draw sequence from a stable key (for example (seed, sender, send
// sequence number)) instead of from global draw order: any execution order
// that performs the same logical draws produces the same values.
//
// The generator is splitmix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): a single 64-bit counter
// advanced by the golden-ratio increment and finalized by an avalanching
// mix. It is well distributed, passes BigCrush, and — critically for the
// hot path — re-keying is a single store, so a fresh statistically
// independent stream per (sender, message) costs nothing and allocates
// nothing. math/rand's default source, by contrast, carries ~5 KB of
// lagged-Fibonacci state and cannot be re-seeded cheaply.

// KeyedSource is a splitmix64 generator implementing rand.Source64. It is
// valid when zero-keyed but is intended to be re-keyed before each logical
// draw group via SeedKey. Not safe for concurrent use; embed one per
// dispatch context.
type KeyedSource struct {
	state uint64
}

// SeedKey re-keys the source. Draw sequences for distinct keys are
// statistically independent; the same key always yields the same sequence.
func (s *KeyedSource) SeedKey(key uint64) { s.state = key }

// Seed implements rand.Source. It mixes the seed so that small integer
// seeds (the common case in tests) land in unrelated parts of the cycle.
func (s *KeyedSource) Seed(seed int64) { s.state = Mix64(uint64(seed)) }

// Uint64 implements rand.Source64: one splitmix64 step.
func (s *KeyedSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *KeyedSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// MixKey2 combines two words into a well-distributed key. The fixed-arity
// variants exist so hot paths need no variadic slice allocation.
func MixKey2(a, b uint64) uint64 {
	x := Mix64(a + 0x9E3779B97F4A7C15)
	return Mix64(x ^ b)
}

// MixKey3 combines three words into a well-distributed key.
func MixKey3(a, b, c uint64) uint64 {
	x := Mix64(a + 0x9E3779B97F4A7C15)
	x = Mix64(x ^ b)
	return Mix64(x ^ c)
}
