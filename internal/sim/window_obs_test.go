package sim

import (
	"context"
	"testing"
	"time"
)

// TestWindowHooksAndProfile pins the observability contract of the
// window scheduler: hooks fire per window on the driving goroutine in
// open → barrier order with matching indices, the commit hook sees the
// staged event count, and the injected-clock profile accounts busy time
// per partition without changing dispatch results.
func TestWindowHooksAndProfile(t *testing.T) {
	w, err := NewWindowScheduler(2, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var fake int64
	prof := w.EnableProfile(func() int64 { fake += 1000; return fake })

	var opens, barriers, commits, staged int
	lastOpen := uint64(0)
	w.OnWindowOpen = func(open, horizon Time, index uint64) {
		opens++
		lastOpen = index
		if horizon < open {
			t.Errorf("window %d: horizon %v before open %v", index, horizon, open)
		}
	}
	w.OnWindowBarrier = func(horizon Time, index uint64, spanNanos int64) {
		barriers++
		if index != lastOpen {
			t.Errorf("barrier index %d after open index %d", index, lastOpen)
		}
		if spanNanos <= 0 {
			t.Errorf("window %d: spanNanos = %d with profile clock installed", index, spanNanos)
		}
	}
	w.OnWindowCommit = func(now Time, index uint64, n int) {
		commits++
		staged += n
	}

	var order []int
	// Partition 0 stages into partition 1 beyond the lookahead bound;
	// partition 1 has local work in two separate windows.
	w.Part(0).AtCall(1*time.Millisecond, func(any) {
		order = append(order, 0)
		w.Stage(0, 15*time.Millisecond, 1, 1, 1, func(any) { order = append(order, 2) }, nil)
	}, nil)
	w.Part(1).AtCall(2*time.Millisecond, func(any) { order = append(order, 1) }, nil)

	if err := w.RunUntilCtx(context.Background(), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if opens == 0 || opens != barriers {
		t.Fatalf("opens = %d, barriers = %d; want equal and > 0", opens, barriers)
	}
	if commits != 1 || staged != 1 {
		t.Fatalf("commits = %d (staged %d), want 1 commit of 1 event", commits, staged)
	}
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("dispatch order %v perturbed by hooks", order)
	}
	if prof.Windows != uint64(opens) {
		t.Fatalf("profile windows = %d, hook saw %d", prof.Windows, opens)
	}
	if prof.BusyNanos() <= 0 || prof.SpanNanos <= 0 {
		t.Fatalf("profile busy=%d span=%d, want both > 0", prof.BusyNanos(), prof.SpanNanos)
	}
	if prof.StagedEvents != 1 {
		t.Fatalf("profile staged = %d, want 1", prof.StagedEvents)
	}
	if r := prof.ImbalanceRatio(); r < 1 {
		t.Fatalf("imbalance ratio %v < 1", r)
	}
	if prof.BarrierWaitNanos() < 0 {
		t.Fatalf("barrier wait negative")
	}
}

// TestSchedulerProbe pins that the coarse probe fires at poll intervals
// and observes monotonic progress.
func TestSchedulerProbe(t *testing.T) {
	s := NewScheduler()
	var calls int
	var lastExec uint64
	s.SetProbe(func(now Time, executed uint64) {
		calls++
		if executed < lastExec {
			t.Errorf("probe saw executed go backwards: %d then %d", lastExec, executed)
		}
		lastExec = executed
	})
	for i := 0; i < 3000; i++ {
		s.At(Time(i), func() {})
	}
	if err := s.RunUntil(Time(5000)); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Fatalf("probe fired %d times over 3000 events, want >= 2", calls)
	}
	s.SetProbe(nil)
	s.At(Time(6000), func() {})
	if err := s.RunUntil(Time(7000)); err != nil {
		t.Fatal(err)
	}
}
