// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate every experiment in this repository runs on:
// a binary-heap scheduler ordered by virtual time, a virtual clock, and a
// family of named, independently-seeded random streams. Determinism is a
// hard requirement — given the same seed and the same sequence of schedule
// calls, a simulation replays identically. Ties in virtual time are broken
// by schedule order (a monotonically increasing sequence number), never by
// map iteration or goroutine interleaving.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. It is deliberately a duration rather than a wall-clock
// time: simulations have no epoch.
type Time = time.Duration

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid and is never returned by Schedule.
type Handle uint64

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop rather than by exhausting events or reaching a limit.
var ErrStopped = errors.New("sim: stopped")

// event is a single scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: schedule order
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all scheduling must happen from the goroutine driving
// Run (typically from within event callbacks).
type Scheduler struct {
	now     Time
	seq     uint64
	heap    eventHeap
	byID    map[Handle]*event
	stopped bool

	executed uint64 // total events dispatched, for stats and loop guards
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{byID: make(map[Handle]*event)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// Executed returns the total number of events dispatched so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is a programming error and panics: allowing it would
// silently reorder causality.
func (s *Scheduler) At(at Time, fn func()) Handle {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.heap, ev)
	h := Handle(s.seq)
	s.byID[h] = ev
	return h
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero so jittered delays never panic.
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or the handle is
// unknown).
func (s *Scheduler) Cancel(h Handle) bool {
	ev, ok := s.byID[h]
	if !ok {
		return false
	}
	delete(s.byID, h)
	if ev.index < 0 {
		return false
	}
	heap.Remove(&s.heap, ev.index)
	return true
}

// Stop halts the simulation: the currently running callback completes, and
// Run returns ErrStopped without dispatching further events.
func (s *Scheduler) Stop() { s.stopped = true }

// step dispatches the earliest pending event, advancing the clock.
func (s *Scheduler) step() {
	ev := heap.Pop(&s.heap).(*event)
	delete(s.byID, Handle(ev.seq))
	s.now = ev.at
	s.executed++
	ev.fn()
}

// Run dispatches events until none remain or Stop is called. It returns
// nil when the event queue drains and ErrStopped when stopped.
func (s *Scheduler) Run() error {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	return nil
}

// RunUntil dispatches events with timestamps <= limit, then advances the
// clock to limit. Events scheduled beyond limit remain pending, so the
// simulation can be resumed. Returns ErrStopped if stopped early.
func (s *Scheduler) RunUntil(limit Time) error {
	return s.RunUntilCtx(context.Background(), limit)
}

// ctxCheckInterval is how many events RunUntilCtx dispatches between
// context polls: frequent enough that cancellation of a large build is
// prompt (well under a millisecond of virtual work per poll), rare enough
// that the poll cost vanishes against event dispatch.
const ctxCheckInterval = 1024

// RunUntilCtx is RunUntil with cooperative cancellation: every
// ctxCheckInterval events the context is polled, and a done context stops
// dispatch and returns ctx.Err(). The clock stays wherever dispatch
// stopped, so the caller sees how far the simulation got; pending events
// remain queued.
func (s *Scheduler) RunUntilCtx(ctx context.Context, limit Time) error {
	if limit < s.now {
		return fmt.Errorf("sim: RunUntil limit %v before now %v", limit, s.now)
	}
	s.stopped = false
	for n := 0; len(s.heap) > 0 && s.heap[0].at <= limit; n++ {
		if s.stopped {
			return ErrStopped
		}
		if n%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.step()
	}
	if !s.stopped && s.now < limit {
		s.now = limit
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// Clear drops every pending event without running it. The clock does not
// move. Abandoned simulations call this so queued closures (and whatever
// state they capture) become collectable immediately.
func (s *Scheduler) Clear() {
	for i := range s.heap {
		s.heap[i].index = -1
		s.heap[i] = nil
	}
	s.heap = s.heap[:0]
	s.byID = make(map[Handle]*event)
}

// RunN dispatches at most n events. It returns the number dispatched and
// ErrStopped if stopped before n events ran.
func (s *Scheduler) RunN(n int) (int, error) {
	s.stopped = false
	ran := 0
	for ran < n && len(s.heap) > 0 {
		if s.stopped {
			return ran, ErrStopped
		}
		s.step()
		ran++
	}
	return ran, nil
}
