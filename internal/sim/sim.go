// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate every experiment in this repository runs on:
// an arena-backed binary-heap scheduler ordered by virtual time, a virtual
// clock, and a family of named, independently-seeded random streams.
// Determinism is a hard requirement — given the same seed and the same
// sequence of schedule calls, a simulation replays identically. Ties in
// virtual time are broken by schedule order (a monotonically increasing
// sequence number), never by map iteration or goroutine interleaving.
//
// # Allocation discipline
//
// The scheduler is built for allocation-free steady-state dispatch: events
// live in a slab arena of plain structs recycled through a free list, the
// heap orders int32 arena indices rather than pointers, and handles encode
// (slot, generation) so cancellation needs no side map. After warm-up —
// once the arena and heap have grown to the simulation's high-water mark —
// At/After/AtCall/AfterCall, Cancel and event dispatch perform zero heap
// allocations. Hot paths that would otherwise allocate a closure per event
// should use AtCall/AfterCall, which carry a (func(any), arg) pair and so
// can be driven entirely from caller-pooled argument structs.
//
// Cancellation is O(1) and lazy: Cancel marks the arena slot as a
// tombstone (releasing the callback immediately) and the heap entry is
// discarded when it reaches the top. The previous kernel — pointer heap
// nodes, a byID map, and O(log n) heap.Remove cancellation — is preserved
// as ReferenceScheduler for differential tests and benchmarks.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. It is deliberately a duration rather than a wall-clock
// time: simulations have no epoch.
type Time = time.Duration

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid and is never returned by Schedule. A Handle encodes
// the event's arena slot and a per-slot generation; it stays safely
// rejectable after the event runs or is cancelled (a slot must be recycled
// 2^32 times before a stale handle could alias a live event).
type Handle uint64

// makeHandle packs an arena slot index and its generation. Slot indices
// are offset by one so the zero Handle stays invalid.
func makeHandle(idx int32, gen uint32) Handle {
	return Handle(uint64(gen)<<32 | uint64(uint32(idx)+1))
}

// splitHandle unpacks a Handle; ok is false for the zero Handle.
func splitHandle(h Handle) (idx int32, gen uint32, ok bool) {
	lo := uint32(h)
	if lo == 0 {
		return 0, 0, false
	}
	return int32(lo - 1), uint32(h >> 32), true
}

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop rather than by exhausting events or reaching a limit.
var ErrStopped = errors.New("sim: stopped")

// event slot states.
const (
	slotFree      = iota // on the free list, not in the heap
	slotPending          // scheduled, in the heap
	slotCancelled        // tombstone: still in the heap, skipped on pop
)

// event is one arena slot: a scheduled callback in either closure form
// (fn) or payload form (call + arg). Slots are recycled through the free
// list; gen distinguishes incarnations so stale handles are rejected.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	call func(any)
	arg  any
	gen  uint32
	st   uint8
}

// heapEntry is one heap node. The (at, seq) ordering key is duplicated
// out of the arena slot so sift comparisons stay within the (hot,
// sequentially laid out) heap array instead of chasing arena indices.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

// before orders heap entries by (at, seq).
func (e heapEntry) before(o heapEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all scheduling must happen from the goroutine driving
// Run (typically from within event callbacks).
type Scheduler struct {
	now     Time
	seq     uint64
	arena   []event
	free    []int32     // recycled arena slots (LIFO)
	heap    []heapEntry // ordered by (at, seq)
	live    int         // pending, non-cancelled events
	stopped bool

	executed uint64 // total events dispatched, for stats and loop guards

	// probe, when non-nil, fires at every context-poll interval of
	// RunUntilCtx with the current clock and cumulative dispatch count —
	// a coarse, nil-checked progress hook for observability (the obs
	// tracer and long-run progress displays). It is deliberately not
	// per-event: ctxCheckInterval spacing keeps the instrumented hot
	// loop indistinguishable from the bare one.
	probe func(now Time, executed uint64)
}

// SetProbe installs (or with nil, removes) the coarse progress probe.
// The probe must only observe: scheduling or stopping from inside it
// would perturb the simulation it is watching.
func (s *Scheduler) SetProbe(probe func(now Time, executed uint64)) { s.probe = probe }

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (non-cancelled) events.
func (s *Scheduler) Len() int { return s.live }

// Executed returns the total number of events dispatched so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// NextEventAt returns the timestamp of the earliest pending live event.
// The window scheduler uses it to pick the next lookahead window without
// dispatching anything. Cancelled tombstones at the heap top are freed as
// a side effect.
func (s *Scheduler) NextEventAt() (Time, bool) {
	s.skim()
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// siftUp moves the entry at i toward the root (hole insertion: the moved
// entry is held aside while ancestors shift down).
func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// siftDown moves the entry at i toward the leaves (hole insertion).
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			least = r
		}
		if !h[least].before(e) {
			break
		}
		h[i] = h[least]
		i = least
	}
	h[i] = e
}

// popMin removes and returns the heap's minimum arena index. The caller
// must ensure the heap is non-empty.
func (s *Scheduler) popMin() int32 {
	h := s.heap
	idx := h[0].idx
	last := len(h) - 1
	h[0] = h[last]
	s.heap = h[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return idx
}

// freeSlot recycles an arena slot, releasing callback references and
// bumping the generation so outstanding handles go stale.
func (s *Scheduler) freeSlot(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	ev.gen++
	ev.st = slotFree
	s.free = append(s.free, idx)
}

// skim frees cancelled tombstones sitting at the top of the heap so the
// minimum entry, if any, is a live event.
func (s *Scheduler) skim() {
	for len(s.heap) > 0 && s.arena[s.heap[0].idx].st == slotCancelled {
		s.freeSlot(s.popMin())
	}
}

// schedule allocates an arena slot for the event and pushes it.
func (s *Scheduler) schedule(at Time, fn func(), call func(any), arg any) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if len(s.arena) >= math.MaxInt32-1 {
			panic("sim: event arena exhausted")
		}
		s.arena = append(s.arena, event{})
		idx = int32(len(s.arena) - 1)
	}
	ev := &s.arena[idx]
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	ev.call = call
	ev.arg = arg
	ev.st = slotPending
	s.heap = append(s.heap, heapEntry{at: at, seq: s.seq, idx: idx})
	s.siftUp(len(s.heap) - 1)
	s.live++
	return makeHandle(idx, ev.gen)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is a programming error and panics: allowing it would
// silently reorder causality.
func (s *Scheduler) At(at Time, fn func()) Handle {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	return s.schedule(at, fn, nil, nil)
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero so jittered delays never panic.
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtCall schedules call(arg) at absolute virtual time at. Unlike At it
// needs no closure: hot paths pass a static function plus a pooled
// argument, keeping steady-state scheduling allocation-free.
func (s *Scheduler) AtCall(at Time, call func(any), arg any) Handle {
	if call == nil {
		panic("sim: Schedule with nil fn")
	}
	return s.schedule(at, nil, call, arg)
}

// AfterCall is AtCall relative to the current virtual time. Negative
// delays are clamped to zero.
func (s *Scheduler) AfterCall(d time.Duration, call func(any), arg any) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now+d, call, arg)
}

// Cancel removes a pending event in O(1). It reports whether the event was
// still pending (false if it already ran, was cancelled, or the handle is
// unknown). The slot becomes a lazy tombstone: its callback (and anything
// the callback captures) is released immediately, and the heap entry is
// discarded when it surfaces.
func (s *Scheduler) Cancel(h Handle) bool {
	idx, gen, ok := splitHandle(h)
	if !ok || int(idx) >= len(s.arena) {
		return false
	}
	ev := &s.arena[idx]
	if ev.gen != gen || ev.st != slotPending {
		return false
	}
	ev.st = slotCancelled
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	s.live--
	return true
}

// Stop halts the simulation: the currently running callback completes, and
// Run returns ErrStopped without dispatching further events.
func (s *Scheduler) Stop() { s.stopped = true }

// step dispatches the earliest pending live event, advancing the clock.
// The caller must ensure at least one live event exists.
func (s *Scheduler) step() {
	s.skim()
	idx := s.popMin()
	ev := &s.arena[idx]
	s.now = ev.at
	s.executed++
	s.live--
	fn, call, arg := ev.fn, ev.call, ev.arg
	s.freeSlot(idx)
	if call != nil {
		call(arg)
		return
	}
	fn()
}

// drainTombstones frees any cancelled entries left in the heap once no
// live events remain, so an idle scheduler holds no stale slots.
func (s *Scheduler) drainTombstones() {
	if s.live > 0 {
		return
	}
	for _, e := range s.heap {
		s.freeSlot(e.idx)
	}
	s.heap = s.heap[:0]
}

// Run dispatches events until none remain or Stop is called. It returns
// nil when the event queue drains and ErrStopped when stopped.
func (s *Scheduler) Run() error {
	s.stopped = false
	for s.live > 0 {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	s.drainTombstones()
	return nil
}

// RunUntil dispatches events with timestamps <= limit, then advances the
// clock to limit. Events scheduled beyond limit remain pending, so the
// simulation can be resumed. Returns ErrStopped if stopped early.
func (s *Scheduler) RunUntil(limit Time) error {
	return s.RunUntilCtx(context.Background(), limit)
}

// ctxCheckInterval is how many events RunUntilCtx (and RunNCtx) dispatch
// between context polls: frequent enough that cancellation of a large
// build is prompt (well under a millisecond of virtual work per poll),
// rare enough that the poll cost vanishes against event dispatch.
const ctxCheckInterval = 1024

// RunUntilCtx is RunUntil with cooperative cancellation: every
// ctxCheckInterval events the context is polled, and a done context stops
// dispatch and returns ctx.Err(). The clock stays wherever dispatch
// stopped, so the caller sees how far the simulation got; pending events
// remain queued.
func (s *Scheduler) RunUntilCtx(ctx context.Context, limit Time) error {
	if limit < s.now {
		return fmt.Errorf("sim: RunUntil limit %v before now %v", limit, s.now)
	}
	s.stopped = false
	for n := 0; s.live > 0; n++ {
		s.skim()
		if s.heap[0].at > limit {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if n%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			if s.probe != nil {
				s.probe(s.now, s.executed)
			}
		}
		s.step()
	}
	s.drainTombstones()
	if !s.stopped && s.now < limit {
		s.now = limit
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// Clear drops every pending event without running it. The clock does not
// move. Abandoned simulations call this so queued closures (and whatever
// state they capture) become collectable immediately. The arena and free
// list are retained: a cleared scheduler schedules again without
// re-growing, so abandoned builds do not thrash the allocator.
func (s *Scheduler) Clear() {
	for _, e := range s.heap {
		s.freeSlot(e.idx)
	}
	s.heap = s.heap[:0]
	s.live = 0
}

// RunN dispatches at most n events. It returns the number dispatched and
// ErrStopped if stopped before n events ran.
func (s *Scheduler) RunN(n int) (int, error) {
	return s.RunNCtx(context.Background(), n)
}

// RunNCtx is RunN with cooperative cancellation on the same cadence as
// RunUntilCtx: every ctxCheckInterval events the context is polled, and a
// done context stops dispatch and returns the count so far with ctx.Err().
// Stepped debugging loops driven from a cancellable context therefore stop
// promptly instead of grinding through their full batch.
func (s *Scheduler) RunNCtx(ctx context.Context, n int) (int, error) {
	s.stopped = false
	ran := 0
	for ran < n && s.live > 0 {
		if s.stopped {
			return ran, ErrStopped
		}
		if ran%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return ran, err
			}
		}
		s.step()
		ran++
	}
	s.drainTombstones()
	return ran, nil
}
