package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// --- differential testing of window dispatch against the serial kernel ---

// The generative workload mirrors how the p2p layer uses the window
// scheduler: events are owned by partitions, every draw of randomness is
// keyed by the event's identity (not by dispatch order), same-partition
// follow-ups may land at any delay >= 0, and cross-partition follow-ups
// land at least `lookahead` ahead. Replaying the same workload on one
// serial Scheduler gives the oracle: each partition's dispatch sequence
// must be bit-identical to the serial run's projection onto it.

type wtrace struct {
	id uint64
	at Time
}

type windowWorld struct {
	seed      uint64
	parts     int
	lookahead time.Duration
	traces    [][]wtrace
	// schedule plants a follow-up event: the serial replay schedules on
	// the one shared kernel, the parallel replay routes same-partition
	// events to the partition heap and cross-partition events through
	// Stage.
	schedule func(srcPart int32, at Time, dst int32, id uint64, seq uint64, fuel int)
}

// fire is the event body shared by both replays. All randomness is keyed
// by (world seed, event id), so the follow-up tree is a pure function of
// the event's identity — the same property the p2p layer's keyed RNG
// provides — and both replays grow identical trees.
func (w *windowWorld) fire(part int32, id uint64, fuel int, now Time) {
	w.traces[part] = append(w.traces[part], wtrace{id: id, at: now})
	if fuel <= 0 {
		return
	}
	var ks KeyedSource
	ks.SeedKey(MixKey2(w.seed, id))
	children := int(ks.Uint64() % 3)
	for c := 0; c < children; c++ {
		childID := MixKey3(w.seed, id, uint64(c)+1)
		u := ks.Uint64()
		dst := part
		var at Time
		if u%4 == 0 && w.parts > 1 {
			// Cross-partition: at least lookahead ahead, as the
			// conservative contract requires.
			dst = int32(ks.Uint64() % uint64(w.parts))
			at = now + Time(w.lookahead) + Time(u%uint64(5*w.lookahead))
		} else {
			at = now + Time(u%uint64(2*w.lookahead))
		}
		w.schedule(part, at, dst, childID, uint64(c)+1, fuel-1)
	}
}

func (w *windowWorld) reset(parts int) {
	w.parts = parts
	w.traces = make([][]wtrace, parts)
}

// replayWindowSerial runs the workload on one serial Scheduler.
func replayWindowSerial(seed uint64, parts, roots, fuel int, lookahead time.Duration) [][]wtrace {
	w := &windowWorld{seed: seed, lookahead: lookahead}
	w.reset(parts)
	s := NewScheduler()
	w.schedule = func(_ int32, at Time, dst int32, id uint64, _ uint64, fuel int) {
		f := fuel
		d, i := dst, id
		s.AtCall(at, func(any) { w.fire(d, i, f, s.Now()) }, nil)
	}
	for r := 0; r < roots; r++ {
		rootID := MixKey2(seed, uint64(r)+0x1000)
		w.schedule(0, Time(r), int32(r%parts), rootID, 0, fuel)
	}
	if err := s.RunUntilCtx(context.Background(), 1<<50); err != nil {
		panic(err)
	}
	return w.traces
}

// replayWindowParallel runs the same workload on a WindowScheduler.
func replayWindowParallel(seed uint64, parts, roots, fuel, workers int, lookahead time.Duration) ([][]wtrace, error) {
	w := &windowWorld{seed: seed, lookahead: lookahead}
	w.reset(parts)
	ws, err := NewWindowScheduler(parts, workers, lookahead)
	if err != nil {
		return nil, err
	}
	defer ws.Close()
	w.schedule = func(src int32, at Time, dst int32, id uint64, seq uint64, fuel int) {
		f := fuel
		d, i := dst, id
		call := func(any) { w.fire(d, i, f, ws.Part(int(d)).Now()) }
		if src == dst {
			ws.Part(int(src)).AtCall(at, call, nil)
		} else {
			ws.Stage(src, at, dst, id, seq, call, nil)
		}
	}
	for r := 0; r < roots; r++ {
		rootID := MixKey2(seed, uint64(r)+0x1000)
		// Roots land in their own partitions before the run: schedule
		// directly on the destination heap (src == dst).
		dst := int32(r % parts)
		w.schedule(dst, Time(r), dst, rootID, 0, fuel)
	}
	if err := ws.RunUntilCtx(context.Background(), 1<<50); err != nil {
		return nil, err
	}
	return w.traces, nil
}

// hasAtCollision reports whether any partition dispatched two events at
// the same timestamp. Equal-time dispatches within one partition may
// legally order differently between the serial and window kernels when
// one of them arrived cross-partition (commit order vs schedule order),
// so differential runs skip those inputs; with delays drawn from a ~10µs
// range collisions are rare.
func hasAtCollision(traces [][]wtrace) bool {
	for _, tr := range traces {
		seen := make(map[Time]bool, len(tr))
		for _, e := range tr {
			if seen[e.at] {
				return true
			}
			seen[e.at] = true
		}
	}
	return false
}

func diffWindowTraces(t *testing.T, want, got [][]wtrace, workers int) {
	t.Helper()
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("workers=%d partition %d dispatched %d events, serial %d",
				workers, p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("workers=%d partition %d dispatch %d = %+v, serial %+v",
					workers, p, i, got[p][i], want[p][i])
			}
		}
	}
}

// TestWindowMatchesSerial replays randomized keyed workloads on the
// window scheduler at several worker counts and requires every
// partition's dispatch sequence to be bit-identical to the serial
// kernel's projection.
func TestWindowMatchesSerial(t *testing.T) {
	const lookahead = 2 * time.Microsecond
	for round := 0; round < 40; round++ {
		seed := Mix64(uint64(round) + 7)
		parts := 2 + int(seed%5)
		roots := 2 + int((seed>>8)%6)
		fuel := 4 + int((seed>>16)%4)
		want := replayWindowSerial(seed, parts, roots, fuel, lookahead)
		if hasAtCollision(want) {
			continue
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := replayWindowParallel(seed, parts, roots, fuel, workers, lookahead)
			if err != nil {
				t.Fatalf("round %d workers %d: %v", round, workers, err)
			}
			diffWindowTraces(t, want, got, workers)
		}
	}
}

// FuzzParallelMatchesSerial is the same differential check driven by the
// fuzzer: the input seeds the workload shape.
func FuzzParallelMatchesSerial(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2), uint8(5), uint8(2))
	f.Add(uint64(99), uint8(6), uint8(4), uint8(6), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, parts, roots, fuel, workers uint8) {
		p := 1 + int(parts%8)
		r := 1 + int(roots%8)
		fl := int(fuel % 8)
		wk := 1 + int(workers%8)
		const lookahead = 2 * time.Microsecond
		want := replayWindowSerial(seed, p, r, fl, lookahead)
		if hasAtCollision(want) {
			t.Skip("equal-time dispatch in one partition: cross-kernel order is unspecified")
		}
		got, err := replayWindowParallel(seed, p, r, fl, wk, lookahead)
		if err != nil {
			t.Fatalf("parallel replay: %v", err)
		}
		diffWindowTraces(t, want, got, wk)
	})
}

// --- window-scheduler behaviour ---

// TestWindowRunUntilCtxCancelMidRun is the regression test for per-window
// context polling: a workload whose events arrive one per window never
// crosses the serial kernel's per-1024-events poll threshold inside any
// single partition run, so cancellation must be observed at the window
// boundary — not after the whole horizon drains.
func TestWindowRunUntilCtxCancelMidRun(t *testing.T) {
	const lookahead = time.Millisecond
	ws, err := NewWindowScheduler(2, 2, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	var chain func(any)
	chain = func(any) {
		fired++
		if fired == 3 {
			cancel()
		}
		// One event per window: the next link sits beyond the horizon.
		p := ws.Part(0)
		p.AtCall(p.Now()+Time(2*lookahead), chain, nil)
	}
	ws.Part(0).AtCall(0, chain, nil)

	err = ws.RunUntilCtx(ctx, Time(1000*lookahead))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntilCtx = %v, want context.Canceled", err)
	}
	if fired > 5 {
		t.Fatalf("dispatched %d events after cancellation; want the run cut at the next window", fired)
	}
	if ws.Len() == 0 {
		t.Fatal("cancellation drained the queue; pending chain link should remain")
	}
}

// TestWindowStopReturnsErrStoppedAndResumes mirrors the serial kernel's
// stop-then-drain idiom: Stop from inside an event returns ErrStopped at
// the next barrier with pending events retained, and a second run drains
// them.
func TestWindowStopReturnsErrStoppedAndResumes(t *testing.T) {
	const lookahead = time.Millisecond
	ws, err := NewWindowScheduler(2, 2, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	var order []int
	ws.Part(0).AtCall(0, func(any) {
		order = append(order, 1)
		ws.Stop()
	}, nil)
	ws.Part(1).AtCall(Time(5*lookahead), func(any) { order = append(order, 2) }, nil)

	if err := ws.RunUntilCtx(context.Background(), Time(10*lookahead)); !errors.Is(err, ErrStopped) {
		t.Fatalf("first run = %v, want ErrStopped", err)
	}
	if len(order) != 1 || ws.Len() != 1 {
		t.Fatalf("after stop: order=%v len=%d, want one dispatched and one retained", order, ws.Len())
	}
	if err := ws.RunUntilCtx(context.Background(), Time(10*lookahead)); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("resume dispatched %v, want [1 2]", order)
	}
	if now := ws.Now(); now != Time(10*lookahead) {
		t.Fatalf("clock after drain = %v, want %v", now, Time(10*lookahead))
	}
}

// TestWindowCommitPanicsOnLookaheadViolation pins the violation detector:
// staging an event below the destination partition's clock is a
// programming error (the certified lookahead bound was broken) and must
// fail loudly, not corrupt the timeline.
func TestWindowCommitPanicsOnLookaheadViolation(t *testing.T) {
	const lookahead = time.Millisecond
	ws, err := NewWindowScheduler(2, 1, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	// Advance partition 1's clock past the staged timestamp.
	if err := ws.Part(1).RunUntilCtx(context.Background(), Time(5*lookahead)); err != nil {
		t.Fatal(err)
	}
	ws.Stage(0, Time(lookahead), 1, 1, 1, func(any) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("commit of an event below the partition clock did not panic")
		}
	}()
	_ = ws.RunUntilCtx(context.Background(), Time(10*lookahead))
}

// TestWindowSchedulerClampsWorkers pins the constructor contract: worker
// counts are clamped to [1, parts] and bad partition/lookahead arguments
// are loud errors.
func TestWindowSchedulerClampsWorkers(t *testing.T) {
	ws, err := NewWindowScheduler(3, 64, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Workers() != 3 {
		t.Fatalf("workers = %d, want clamped to 3", ws.Workers())
	}
	ws.Close()
	if _, err := NewWindowScheduler(0, 1, time.Millisecond); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := NewWindowScheduler(2, 1, 0); err == nil {
		t.Fatal("zero lookahead accepted")
	}
}
