package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestCancelStorm interleaves schedules and cancels and verifies exactly
// the non-cancelled callbacks fire, in time order.
func TestCancelStorm(t *testing.T) {
	s := NewScheduler()
	r := rand.New(rand.NewSource(99))
	type tracked struct {
		handle    Handle
		at        Time
		cancelled bool
	}
	var items []*tracked
	fired := make(map[Handle]Time)
	for i := 0; i < 2000; i++ {
		it := &tracked{at: Time(r.Intn(1000)) * time.Microsecond}
		it.handle = s.At(it.at, func() { fired[it.handle] = s.Now() })
		items = append(items, it)
	}
	// Cancel a random half.
	for _, it := range items {
		if r.Intn(2) == 0 {
			if !s.Cancel(it.handle) {
				t.Fatal("cancel of pending event failed")
			}
			it.cancelled = true
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		at, ok := fired[it.handle]
		if it.cancelled && ok {
			t.Fatal("cancelled event fired")
		}
		if !it.cancelled {
			if !ok {
				t.Fatal("live event did not fire")
			}
			if at != it.at {
				t.Fatalf("event fired at %v, scheduled %v", at, it.at)
			}
		}
	}
}

// TestHeapInterleavedRunAndSchedule alternates RunN with fresh schedules,
// verifying the clock never goes backwards.
func TestHeapInterleavedRunAndSchedule(t *testing.T) {
	s := NewScheduler()
	r := rand.New(rand.NewSource(7))
	var last Time
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			s.After(time.Duration(r.Intn(100))*time.Microsecond, func() {
				if s.Now() < last {
					t.Fatal("clock went backwards")
				}
				last = s.Now()
			})
		}
		if _, err := s.RunN(10); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(x) then RunUntil(y>=x) processes exactly the events
// with timestamps <= y.
func TestPropertyRunUntilSplit(t *testing.T) {
	f := func(raw []uint8, splitRaw uint8) bool {
		s := NewScheduler()
		fired := 0
		maxT := Time(0)
		for _, d := range raw {
			at := Time(d) * time.Microsecond
			if at > maxT {
				maxT = at
			}
			s.At(at, func() { fired++ })
		}
		split := Time(splitRaw) * time.Microsecond
		if err := s.RunUntil(split); err != nil {
			return false
		}
		want := 0
		for _, d := range raw {
			if Time(d)*time.Microsecond <= split {
				want++
			}
		}
		if fired != want {
			return false
		}
		rest := maxT
		if split > rest {
			rest = split
		}
		if err := s.RunUntil(rest + time.Microsecond); err != nil {
			return false
		}
		return fired == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTickerSurvivesHeavyLoad runs a ticker among thousands of competing
// events and checks exact periodicity.
func TestTickerSurvivesHeavyLoad(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := s.NewTicker(100*time.Microsecond, func() { ticks = append(ticks, s.Now()) })
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		s.After(time.Duration(r.Intn(1000))*time.Microsecond, func() {})
	}
	if err := s.RunUntil(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 10 {
		t.Fatalf("ticks = %d, want 10", len(ticks))
	}
	for i, at := range ticks {
		want := Time(i+1) * 100 * time.Microsecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestNewTickerPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	NewScheduler().NewTicker(0, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}

func TestExecutedCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 5 {
		t.Errorf("Executed = %d, want 5", s.Executed())
	}
}
