package topology

import (
	"sort"

	"repro/internal/p2p"
)

// Partitioner is implemented by protocols that can expose a natural
// partition of the node population into event domains for conservative
// parallel dispatch (p2p.Network.EnableParallelDispatch). Good partitions
// put densely connected nodes together — for the paper's protocols that is
// exactly the cluster structure, since clustering concentrates edges
// inside clusters and leaves only the long-haul links between them.
//
// Partitions must be deterministic for a given protocol state: the same
// build produces the same partition list in the same order, because the
// partition assignment feeds the parallel dispatcher whose output must be
// bit-identical across runs.
type Partitioner interface {
	// Partitions returns disjoint groups of live node IDs. Groups and the
	// IDs within each group are in a deterministic order. Nodes absent
	// from every group are allowed (callers place them in a catch-all
	// partition). An empty or single-element result means the protocol
	// has no useful partition to offer.
	Partitions() [][]p2p.NodeID
}

// Partitions implements Partitioner for LBC: one group per cluster, in
// sorted cluster-key order, members sorted by ID.
func (t *LBC) Partitions() [][]p2p.NodeID {
	keys := make([]string, 0, len(t.members))
	for k := range t.members {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]p2p.NodeID, 0, len(keys))
	for _, k := range keys {
		ids := append([]p2p.NodeID(nil), t.members[k]...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, ids)
	}
	return out
}

// Partitions implements Partitioner for the Random baseline. Random wiring
// has no cluster structure, so the fallback domain decomposition is
// geographic: one group per region, in sorted region order. Latency floors
// between regions are what bounds the dispatcher's lookahead, so grouping
// by region keeps the cross-partition floor as large as the topology
// allows even though edges cross regions freely.
func (t *Random) Partitions() [][]p2p.NodeID {
	byRegion := make(map[string][]p2p.NodeID)
	for _, id := range t.seed.All() {
		loc, ok := t.seed.Location(id)
		if !ok {
			continue
		}
		byRegion[loc.Region] = append(byRegion[loc.Region], id)
	}
	regions := make([]string, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	out := make([][]p2p.NodeID, 0, len(regions))
	for _, r := range regions {
		out = append(out, byRegion[r]) // seed.All() is sorted, so members are too
	}
	return out
}
