package topology

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/p2p"
)

// LBC is the authors' earlier Locality Based Clustering protocol (the
// paper's ref [6] and the comparison baseline of Fig. 3): peers cluster by
// physical geographic location — the implementation uses the country
// label, matching the paper's remark that BCBPT "aims to have clusters
// based on countries" as LBC does by construction — and keep a small
// number of long-distance links outside the cluster for global
// reachability.
//
// The paper's critique of LBC, which Fig. 3 quantifies, is that two
// geographically close nodes "may be actually quite far from each other in
// the physical internet"; LBC cannot see that, because it never measures
// the links it chooses.
type LBC struct {
	net  *p2p.Network
	seed *DNSSeed
	r    *rand.Rand

	// intra is the target number of same-cluster outbound links.
	intra int
	// longLinks is the number of out-of-cluster links per node.
	longLinks int
	// minCluster merges countries with fewer members into their
	// continental region cluster.
	minCluster int

	// members maps cluster key -> sorted member IDs.
	members map[string][]p2p.NodeID
	// clusterOf maps node -> cluster key.
	clusterOf map[p2p.NodeID]string
}

// LBCConfig parameterises the protocol.
type LBCConfig struct {
	// IntraLinks is the target same-cluster outbound degree (default:
	// MaxOutbound - LongLinks).
	IntraLinks int
	// LongLinks is the number of out-of-cluster links (default 2).
	LongLinks int
	// MinClusterSize is the smallest viable country cluster; smaller
	// countries merge into their region (default 8).
	MinClusterSize int
}

// NewLBC creates the protocol.
func NewLBC(net *p2p.Network, seed *DNSSeed, cfg LBCConfig) *LBC {
	if cfg.LongLinks <= 0 {
		cfg.LongLinks = 2
	}
	if cfg.IntraLinks <= 0 {
		cfg.IntraLinks = net.Config().MaxOutbound - cfg.LongLinks
		if cfg.IntraLinks < 1 {
			cfg.IntraLinks = 1
		}
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 8
	}
	return &LBC{
		net:        net,
		seed:       seed,
		r:          net.Streams().Stream("topology/lbc"),
		intra:      cfg.IntraLinks,
		longLinks:  cfg.LongLinks,
		minCluster: cfg.MinClusterSize,
		members:    make(map[string][]p2p.NodeID),
		clusterOf:  make(map[p2p.NodeID]string),
	}
}

// Name implements Protocol.
func (t *LBC) Name() string { return "lbc" }

// clusterKey picks the cluster for a node: its country, unless the
// country's population is below MinClusterSize, in which case the
// continental region.
func (t *LBC) clusterKey(id p2p.NodeID, countryCount map[string]int) string {
	node, ok := t.net.Node(id)
	if !ok {
		return ""
	}
	loc := node.Location()
	if countryCount[loc.Country] >= t.minCluster {
		return "country/" + loc.Country
	}
	return "region/" + loc.Region
}

// Bootstrap implements Protocol: group by country (small countries by
// region), then wire intra-cluster plus long links. ctx is polled between
// batches of nodes during the wiring pass.
func (t *LBC) Bootstrap(ctx context.Context, ids []p2p.NodeID) error {
	countryCount := make(map[string]int)
	for _, id := range ids {
		if node, ok := t.net.Node(id); ok {
			t.seed.Register(id, node.Location())
			countryCount[node.Location().Country]++
		}
	}
	for _, id := range ids {
		key := t.clusterKey(id, countryCount)
		t.assign(id, key)
	}
	for i, id := range ids {
		if i%bootstrapCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("topology: lbc bootstrap interrupted at node %d of %d: %w", i, len(ids), err)
			}
		}
		t.fill(id)
	}
	return nil
}

// assign records membership, keeping member lists sorted.
func (t *LBC) assign(id p2p.NodeID, key string) {
	t.clusterOf[id] = key
	m := t.members[key]
	i := sort.Search(len(m), func(i int) bool { return m[i] >= id })
	m = append(m, 0)
	copy(m[i+1:], m[i:])
	m[i] = id
	t.members[key] = m
}

// unassign removes membership.
func (t *LBC) unassign(id p2p.NodeID) {
	key, ok := t.clusterOf[id]
	if !ok {
		return
	}
	delete(t.clusterOf, id)
	m := t.members[key]
	i := sort.Search(len(m), func(i int) bool { return m[i] >= id })
	if i < len(m) && m[i] == id {
		m = append(m[:i], m[i+1:]...)
	}
	if len(m) == 0 {
		delete(t.members, key)
	} else {
		t.members[key] = m
	}
}

// ClusterOf returns the cluster key for a node.
func (t *LBC) ClusterOf(id p2p.NodeID) (string, bool) {
	key, ok := t.clusterOf[id]
	return key, ok
}

// Clusters returns a copy of the cluster membership map.
func (t *LBC) Clusters() map[string][]p2p.NodeID {
	out := make(map[string][]p2p.NodeID, len(t.members))
	for k, v := range t.members {
		out[k] = append([]p2p.NodeID(nil), v...)
	}
	return out
}

// OnJoin implements Protocol: a new node joins the cluster of its country
// (or region if the country cluster is still too small).
func (t *LBC) OnJoin(id p2p.NodeID) {
	node, ok := t.net.Node(id)
	if !ok {
		return
	}
	loc := node.Location()
	t.seed.Register(id, loc)
	key := "country/" + loc.Country
	if len(t.members[key]) < t.minCluster {
		if len(t.members["region/"+loc.Region]) > 0 || len(t.members[key]) == 0 {
			key = "region/" + loc.Region
		}
	}
	t.assign(id, key)
	t.fill(id)
}

// OnLeave implements Protocol.
func (t *LBC) OnLeave(id p2p.NodeID) {
	t.seed.Remove(id)
	t.unassign(id)
}

// OnDisconnect implements Protocol: survivors refill their cluster links.
func (t *LBC) OnDisconnect(a, b p2p.NodeID) {
	if _, ok := t.net.Node(a); ok {
		t.fill(a)
	}
	if _, ok := t.net.Node(b); ok {
		t.fill(b)
	}
}

// fill opens intra-cluster links up to the target, then long links.
func (t *LBC) fill(id p2p.NodeID) {
	node, ok := t.net.Node(id)
	if !ok {
		return
	}
	key := t.clusterOf[id]
	mates := t.members[key]

	// Intra-cluster: random same-cluster members.
	attempts := 0
	maxAttempts := 10 * t.intra
	intraTarget := t.intra
	if len(mates)-1 < intraTarget {
		intraTarget = len(mates) - 1
	}
	for t.intraCount(node) < intraTarget && attempts < maxAttempts {
		attempts++
		target := mates[t.r.Intn(len(mates))]
		if target == id {
			continue
		}
		_ = t.net.Connect(id, target)
	}

	// Long links: random nodes outside the cluster ("each node maintains
	// a few long distance links to the outside cluster", §IV).
	all := t.seed.All()
	attempts = 0
	maxAttempts = 10 * t.longLinks
	for t.longCount(node) < t.longLinks && attempts < maxAttempts {
		attempts++
		target := all[t.r.Intn(len(all))]
		if target == id || t.clusterOf[target] == key {
			continue
		}
		_ = t.net.Connect(id, target)
	}
}

// intraCount counts connections to same-cluster peers. EachPeer keeps
// the scan allocation-free: it runs once per connect attempt during
// bootstrap fill.
func (t *LBC) intraCount(node *p2p.Node) int {
	key := t.clusterOf[node.ID()]
	c := 0
	node.EachPeer(func(p p2p.NodeID) bool {
		if t.clusterOf[p] == key {
			c++
		}
		return true
	})
	return c
}

// longCount counts connections leaving the cluster.
func (t *LBC) longCount(node *p2p.Node) int {
	key := t.clusterOf[node.ID()]
	c := 0
	node.EachPeer(func(p p2p.NodeID) bool {
		if t.clusterOf[p] != key {
			c++
		}
		return true
	})
	return c
}
