package topology

import (
	"context"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
)

var (
	_ Protocol = (*Random)(nil)
	_ Protocol = (*LBC)(nil)
)

// buildNetwork creates n placed nodes.
func buildNetwork(t testing.TB, n int, seed int64) (*p2p.Network, []p2p.NodeID) {
	t.Helper()
	cfg := p2p.DefaultConfig()
	cfg.Validation = p2p.ValidationNone
	cfg.Seed = seed
	net, err := p2p.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placer := geo.DefaultPlacer()
	r := net.Streams().Stream("placement")
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = net.AddNode(placer.Place(r)).ID()
	}
	return net, ids
}

// connectedComponents returns the number of weakly connected components of
// the overlay.
func connectedComponents(net *p2p.Network) int {
	ids := net.NodeIDs()
	visited := make(map[p2p.NodeID]bool, len(ids))
	comps := 0
	for _, start := range ids {
		if visited[start] {
			continue
		}
		comps++
		queue := []p2p.NodeID{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			node, ok := net.Node(cur)
			if !ok {
				continue
			}
			for _, next := range node.Peers() {
				if !visited[next] {
					visited[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return comps
}

func TestDNSSeedRecommendNearest(t *testing.T) {
	seed := NewDNSSeed()
	locs := map[p2p.NodeID]geo.Location{
		1: {Coord: geo.Coord{LatDeg: 50.11, LonDeg: 8.68}, Country: "DE"},   // Frankfurt
		2: {Coord: geo.Coord{LatDeg: 52.37, LonDeg: 4.90}, Country: "NL"},   // Amsterdam
		3: {Coord: geo.Coord{LatDeg: 35.68, LonDeg: 139.69}, Country: "JP"}, // Tokyo
		4: {Coord: geo.Coord{LatDeg: 48.86, LonDeg: 2.35}, Country: "FR"},   // Paris
	}
	for id, loc := range locs {
		seed.Register(id, loc)
	}
	// From London, nearest should be Paris, then Amsterdam, then Frankfurt.
	london := geo.Location{Coord: geo.Coord{LatDeg: 51.51, LonDeg: -0.13}, Country: "GB"}
	got := seed.Recommend(0, london, 3)
	want := []p2p.NodeID{4, 2, 1}
	if len(got) != 3 {
		t.Fatalf("Recommend returned %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Recommend = %v, want %v", got, want)
		}
	}
	// Excludes self.
	got = seed.Recommend(4, london, 10)
	for _, id := range got {
		if id == 4 {
			t.Error("Recommend included self")
		}
	}
	// Remove works.
	seed.Remove(3)
	if seed.Len() != 3 {
		t.Errorf("Len = %d after remove, want 3", seed.Len())
	}
	if _, ok := seed.Location(3); ok {
		t.Error("removed node still has location")
	}
}

func TestRandomBootstrapDegreeAndConnectivity(t *testing.T) {
	net, ids := buildNetwork(t, 200, 1)
	proto := NewRandom(net, NewDNSSeed(), 0)
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	deg := net.Config().MaxOutbound
	for _, id := range ids {
		node, _ := net.Node(id)
		if node.Outbound() != deg {
			t.Fatalf("node %d outbound = %d, want %d", id, node.Outbound(), deg)
		}
	}
	if comps := connectedComponents(net); comps != 1 {
		t.Errorf("random graph has %d components, want 1", comps)
	}
}

func TestRandomRefillAfterDisconnect(t *testing.T) {
	net, ids := buildNetwork(t, 50, 2)
	proto := NewRandom(net, NewDNSSeed(), 4)
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	net.OnDisconnect = proto.OnDisconnect

	victim := ids[0]
	node, _ := net.Node(victim)
	before := node.Outbound()
	peer := node.Peers()[0]
	net.Disconnect(victim, peer)
	if node.Outbound() < before {
		t.Errorf("outbound after refill = %d, want >= %d", node.Outbound(), before)
	}
}

func TestRandomChurnFlow(t *testing.T) {
	net, ids := buildNetwork(t, 60, 3)
	seed := NewDNSSeed()
	proto := NewRandom(net, seed, 4)
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	net.OnDisconnect = proto.OnDisconnect

	// Leave: protocol forgets the node, then the network removes it.
	leaver := ids[10]
	proto.OnLeave(leaver)
	net.RemoveNode(leaver)
	if seed.Len() != 59 {
		t.Errorf("seed count = %d, want 59", seed.Len())
	}
	for _, id := range net.NodeIDs() {
		node, _ := net.Node(id)
		if node.IsPeer(leaver) {
			t.Fatalf("node %d still peers with departed %d", id, leaver)
		}
	}

	// Join: a new node gets wired in.
	placer := geo.DefaultPlacer()
	newNode := net.AddNode(placer.Place(net.Streams().Stream("late")))
	proto.OnJoin(newNode.ID())
	if newNode.Outbound() != 4 {
		t.Errorf("joined node outbound = %d, want 4", newNode.Outbound())
	}
}

func TestLBCClustersByCountry(t *testing.T) {
	net, ids := buildNetwork(t, 400, 4)
	proto := NewLBC(net, NewDNSSeed(), LBCConfig{})
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	clusters := proto.Clusters()
	if len(clusters) < 5 {
		t.Fatalf("only %d clusters formed", len(clusters))
	}
	// Every node is assigned, and country clusters are homogeneous.
	assigned := 0
	for key, members := range clusters {
		assigned += len(members)
		for _, id := range members {
			node, ok := net.Node(id)
			if !ok {
				t.Fatalf("cluster %s contains dead node %d", key, id)
			}
			got, ok := proto.ClusterOf(id)
			if !ok || got != key {
				t.Fatalf("ClusterOf(%d) = %q, want %q", id, got, key)
			}
			if len(key) > 8 && key[:8] == "country/" {
				if "country/"+node.Location().Country != key {
					t.Fatalf("node %d in %s but located in %s", id, key, node.Location().Country)
				}
			}
		}
	}
	if assigned != len(ids) {
		t.Errorf("assigned %d of %d nodes", assigned, len(ids))
	}
	if comps := connectedComponents(net); comps != 1 {
		t.Errorf("LBC graph has %d components, want 1 (long links must bridge)", comps)
	}
}

func TestLBCMostLinksAreIntraCluster(t *testing.T) {
	net, ids := buildNetwork(t, 300, 5)
	proto := NewLBC(net, NewDNSSeed(), LBCConfig{})
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	intra, inter := 0, 0
	for _, id := range ids {
		node, _ := net.Node(id)
		my, _ := proto.ClusterOf(id)
		for _, p := range node.Peers() {
			other, _ := proto.ClusterOf(p)
			if other == my {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra <= inter*2 {
		t.Errorf("intra=%d inter=%d; clustering too weak", intra, inter)
	}
	if inter == 0 {
		t.Error("no long links at all; network would partition")
	}
}

func TestLBCJoinLeave(t *testing.T) {
	net, ids := buildNetwork(t, 150, 6)
	seed := NewDNSSeed()
	proto := NewLBC(net, seed, LBCConfig{})
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	net.OnDisconnect = proto.OnDisconnect

	leaver := ids[3]
	proto.OnLeave(leaver)
	net.RemoveNode(leaver)
	if _, ok := proto.ClusterOf(leaver); ok {
		t.Error("departed node still in cluster registry")
	}

	placer := geo.DefaultPlacer()
	nd := net.AddNode(placer.Place(net.Streams().Stream("late")))
	proto.OnJoin(nd.ID())
	key, ok := proto.ClusterOf(nd.ID())
	if !ok {
		t.Fatal("joined node has no cluster")
	}
	if nd.NumPeers() == 0 {
		t.Error("joined node has no links")
	}
	// All its intra links must be in its own cluster.
	for _, p := range nd.Peers() {
		if other, _ := proto.ClusterOf(p); other != key {
			// long links are allowed; require at least one intra link
			continue
		}
	}
}

func TestLBCGeographicProximityOfClusters(t *testing.T) {
	// The defining property: same-cluster pairs are geographically closer
	// than cross-cluster pairs on average.
	net, ids := buildNetwork(t, 300, 7)
	proto := NewLBC(net, NewDNSSeed(), LBCConfig{})
	if err := proto.Bootstrap(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	var intraSum, interSum float64
	var intraN, interN int
	for i := 0; i < len(ids); i += 3 {
		for j := i + 1; j < len(ids); j += 7 {
			a, _ := net.Node(ids[i])
			b, _ := net.Node(ids[j])
			d := geo.DistanceMeters(a.Location().Coord, b.Location().Coord)
			ca, _ := proto.ClusterOf(ids[i])
			cb, _ := proto.ClusterOf(ids[j])
			if ca == cb {
				intraSum += d
				intraN++
			} else {
				interSum += d
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Skip("sampling produced empty bucket")
	}
	if intraSum/float64(intraN) >= interSum/float64(interN) {
		t.Errorf("intra-cluster mean distance %.0fkm >= inter %.0fkm",
			intraSum/float64(intraN)/1000, interSum/float64(interN)/1000)
	}
}
