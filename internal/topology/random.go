package topology

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/p2p"
)

// Random is the vanilla Bitcoin neighbour-selection baseline: each node
// opens its outbound slots to uniformly random reachable nodes, with no
// proximity criterion of any kind.
type Random struct {
	net  *p2p.Network
	seed *DNSSeed
	r    *rand.Rand
	// degree is the outbound connection target per node.
	degree int
}

// NewRandom creates the baseline protocol. degree <= 0 defaults to the
// network's MaxOutbound.
func NewRandom(net *p2p.Network, seed *DNSSeed, degree int) *Random {
	if degree <= 0 {
		degree = net.Config().MaxOutbound
	}
	return &Random{
		net:    net,
		seed:   seed,
		r:      net.Streams().Stream("topology/random"),
		degree: degree,
	}
}

// Name implements Protocol.
func (t *Random) Name() string { return "bitcoin-random" }

// bootstrapCtxStride is how many nodes a Bootstrap wires between context
// polls; wiring is cheap per node, so a coarse stride keeps the poll free.
const bootstrapCtxStride = 256

// Bootstrap implements Protocol: every node opens `degree` random
// outbound connections. ctx is polled between batches of nodes.
func (t *Random) Bootstrap(ctx context.Context, ids []p2p.NodeID) error {
	for _, id := range ids {
		if node, ok := t.net.Node(id); ok {
			t.seed.Register(id, node.Location())
		}
	}
	for i, id := range ids {
		if i%bootstrapCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("topology: random bootstrap interrupted at node %d of %d: %w", i, len(ids), err)
			}
		}
		t.fill(id)
	}
	return nil
}

// OnJoin implements Protocol.
func (t *Random) OnJoin(id p2p.NodeID) {
	node, ok := t.net.Node(id)
	if !ok {
		return
	}
	t.seed.Register(id, node.Location())
	t.fill(id)
}

// OnLeave implements Protocol.
func (t *Random) OnLeave(id p2p.NodeID) { t.seed.Remove(id) }

// OnDisconnect implements Protocol: the surviving endpoint refills.
func (t *Random) OnDisconnect(a, b p2p.NodeID) {
	if _, ok := t.net.Node(a); ok {
		t.fill(a)
	}
	if _, ok := t.net.Node(b); ok {
		t.fill(b)
	}
}

// fill opens random outbound connections until the node reaches its
// degree target or candidates are exhausted.
func (t *Random) fill(id p2p.NodeID) {
	node, ok := t.net.Node(id)
	if !ok {
		return
	}
	all := t.seed.All()
	if len(all) <= 1 {
		return
	}
	// Bounded retries: every failed candidate (full, duplicate, gone)
	// costs one attempt, mirroring how a real node burns addrman entries.
	attempts := 0
	maxAttempts := 10 * t.degree
	for node.Outbound() < t.degree && attempts < maxAttempts {
		attempts++
		target := all[t.r.Intn(len(all))]
		if target == id {
			continue
		}
		_ = t.net.Connect(id, target)
	}
}
