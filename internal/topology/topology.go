// Package topology defines neighbour-selection protocols for the simulated
// Bitcoin network and implements the two baselines the paper compares
// against:
//
//   - Random: the vanilla Bitcoin behaviour — "a node connects with nodes
//     regardless of any proximity criteria" (§I);
//   - LBC: the authors' earlier Locality Based Clustering protocol [6],
//     which clusters peers by geographic location (country).
//
// The paper's contribution, BCBPT, implements the same Protocol interface
// in internal/core.
package topology

import (
	"context"
	"sort"

	"repro/internal/geo"
	"repro/internal/p2p"
)

// Protocol is a neighbour-selection policy driving who connects to whom.
// Implementations receive lifecycle events and edit the overlay through
// p2p.Network.Connect/Disconnect.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Bootstrap wires the initial population (nodes already added to the
	// network). It may schedule virtual-time work; it returns once that
	// work is scheduled (run the network to complete it). Bootstrap does
	// host-time work proportional to the population (wiring, candidate
	// ranking), so it polls ctx and returns an error wrapping ctx.Err()
	// when cancelled mid-way.
	Bootstrap(ctx context.Context, ids []p2p.NodeID) error
	// OnJoin wires a newly arrived node (already added to the network).
	OnJoin(id p2p.NodeID)
	// OnLeave tells the protocol a node is departing, before the network
	// removes it, so registries can forget the node first.
	OnLeave(id p2p.NodeID)
	// OnDisconnect reports a torn-down edge (including those caused by
	// departures); protocols refill degree here.
	OnDisconnect(a, b p2p.NodeID)
}

// DNSSeed is the node-discovery oracle. The paper gives DNS two roles:
// supplying addresses of reachable nodes, and — for BCBPT — recommending
// nodes that are geographically close to the joiner ("DNS service nodes
// should recommend available nodes to the node N based on the proximity in
// the physical geographical location", §IV.B).
type DNSSeed struct {
	locs map[p2p.NodeID]geo.Location
	// all caches the sorted ID listing between membership changes: link
	// refill consults All on every disconnect, and rebuilding the sort
	// per call dominated large-build profiles.
	all []p2p.NodeID
}

// NewDNSSeed returns an empty seed registry.
func NewDNSSeed() *DNSSeed {
	return &DNSSeed{locs: make(map[p2p.NodeID]geo.Location)}
}

// Register adds (or updates) a reachable node.
func (d *DNSSeed) Register(id p2p.NodeID, loc geo.Location) {
	if _, known := d.locs[id]; !known {
		d.all = nil
	}
	d.locs[id] = loc
}

// Remove forgets a node.
func (d *DNSSeed) Remove(id p2p.NodeID) {
	if _, known := d.locs[id]; known {
		d.all = nil
	}
	delete(d.locs, id)
}

// Len returns the number of registered nodes.
func (d *DNSSeed) Len() int { return len(d.locs) }

// All returns every registered node ID, sorted. The slice is shared until
// the next Register/Remove; callers must not mutate it.
func (d *DNSSeed) All() []p2p.NodeID {
	if d.all == nil {
		ids := make([]p2p.NodeID, 0, len(d.locs))
		for id := range d.locs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		d.all = ids
	}
	return d.all
}

// Recommend returns up to k registered nodes closest to loc by great-
// circle distance (the "geographical distance calculation methodology" of
// the paper's ref [6]), excluding the given node. Ties break by ID so
// results are deterministic.
func (d *DNSSeed) Recommend(self p2p.NodeID, loc geo.Location, k int) []p2p.NodeID {
	type cand struct {
		id p2p.NodeID
		d  float64
	}
	cands := make([]cand, 0, len(d.locs))
	for id, l := range d.locs {
		if id == self {
			continue
		}
		cands = append(cands, cand{id: id, d: geo.DistanceMeters(loc.Coord, l.Coord)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]p2p.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// Location returns the registered location of a node.
func (d *DNSSeed) Location(id p2p.NodeID) (geo.Location, bool) {
	loc, ok := d.locs[id]
	return loc, ok
}
