// Package chain implements the blockchain substrate the propagation
// protocols carry: ECDSA-signed transactions, a UTXO ledger, a mempool
// with double-spend conflict detection, and proof-of-work blocks with
// Merkle commitments.
//
// The paper's motivation is that slow transaction propagation widens the
// double-spend window; the substrate therefore implements real signature
// verification and real conflict detection so that "verify then relay"
// (Fig. 1 of the paper) has an honest cost and double-spend experiments
// are meaningful, not mocked.
package chain

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// AddressSize is the length of a pay-to-pubkey-hash address in bytes.
// Bitcoin uses RIPEMD160(SHA256(pub)) = 20 bytes; RIPEMD-160 is not in the
// Go standard library, so we use the first 20 bytes of a double SHA-256,
// which preserves the size and collision-resistance properties that matter
// here.
const AddressSize = 20

// Address identifies the owner of an output.
type Address [AddressSize]byte

// String returns the hex form of the address.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// KeyPair is an ECDSA P-256 signing key with its derived address.
type KeyPair struct {
	priv *ecdsa.PrivateKey
	pub  []byte // uncompressed SEC1 point
	addr Address
}

// GenerateKey creates a key pair from the given entropy source. Pass
// crypto/rand.Reader in production; tests pass a deterministic reader.
//
// The scalar is derived from the entropy stream directly (rejection-
// sampled into [1, N-1]) rather than via ecdsa.GenerateKey, which
// deliberately defeats deterministic readers (randutil.MaybeReadByte) —
// reproducible experiments need the same seed to yield the same key.
func GenerateKey(entropy io.Reader) (*KeyPair, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	curve := elliptic.P256()
	params := curve.Params()
	byteLen := (params.N.BitLen() + 7) / 8
	buf := make([]byte, byteLen)
	for attempt := 0; attempt < 128; attempt++ {
		if _, err := io.ReadFull(entropy, buf); err != nil {
			return nil, fmt.Errorf("chain: generate key: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		if k.Sign() == 0 || k.Cmp(params.N) >= 0 {
			continue
		}
		priv := &ecdsa.PrivateKey{
			PublicKey: ecdsa.PublicKey{Curve: curve},
			D:         k,
		}
		priv.X, priv.Y = curve.ScalarBaseMult(k.Bytes())
		return newKeyPair(priv), nil
	}
	return nil, errors.New("chain: generate key: entropy source never produced a valid scalar")
}

func newKeyPair(priv *ecdsa.PrivateKey) *KeyPair {
	pub := elliptic.Marshal(elliptic.P256(), priv.PublicKey.X, priv.PublicKey.Y)
	return &KeyPair{priv: priv, pub: pub, addr: PubKeyAddress(pub)}
}

// PubKey returns the uncompressed public key bytes.
func (k *KeyPair) PubKey() []byte { return k.pub }

// Address returns the pay-to-pubkey-hash address of the key.
func (k *KeyPair) Address() Address { return k.addr }

// Sign signs a 32-byte digest, returning a compact 64-byte r||s signature
// with both halves padded to 32 bytes.
func (k *KeyPair) Sign(digest [32]byte) ([]byte, error) {
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("chain: sign: %w", err)
	}
	sig := make([]byte, 64)
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

// PubKeyAddress derives the address for a serialized public key.
func PubKeyAddress(pub []byte) Address {
	h := DoubleSHA256(pub)
	var a Address
	copy(a[:], h[:AddressSize])
	return a
}

// VerifySignature checks a compact 64-byte signature over digest against
// an uncompressed P-256 public key.
func VerifySignature(pub []byte, digest [32]byte, sig []byte) bool {
	if len(sig) != 64 {
		return false
	}
	x, y := elliptic.Unmarshal(elliptic.P256(), pub)
	if x == nil {
		return false
	}
	pk := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	return ecdsa.Verify(pk, digest[:], r, s)
}

// Hash is a 32-byte double-SHA256 digest, Bitcoin's standard hash.
type Hash [32]byte

// String returns the hex form of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is all zeros (used for "no previous
// block" in the genesis header).
func (h Hash) IsZero() bool { return h == Hash{} }

// DoubleSHA256 computes SHA256(SHA256(data)).
func DoubleSHA256(data []byte) Hash {
	first := sha256.Sum256(data)
	return sha256.Sum256(first[:])
}

// ErrBadSignature is returned when a transaction input signature fails
// verification.
var ErrBadSignature = errors.New("chain: bad signature")
