package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// BlockHeader commits to a batch of transactions and links to the
// previous block, forming the chain.
type BlockHeader struct {
	Version    uint32
	PrevHash   Hash
	MerkleRoot Hash
	TimeUnix   uint64 // virtual or wall time, seconds
	TargetBits uint8  // proof-of-work difficulty: required leading zero bits
	Nonce      uint64
}

// Bytes returns the canonical header serialization.
func (h *BlockHeader) Bytes() []byte {
	buf := make([]byte, 0, 4+32+32+8+1+8)
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], h.Version)
	buf = append(buf, scratch[:4]...)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	binary.LittleEndian.PutUint64(scratch[:8], h.TimeUnix)
	buf = append(buf, scratch[:8]...)
	buf = append(buf, h.TargetBits)
	binary.LittleEndian.PutUint64(scratch[:8], h.Nonce)
	buf = append(buf, scratch[:8]...)
	return buf
}

// Hash returns the block ID.
func (h *BlockHeader) Hash() Hash { return DoubleSHA256(h.Bytes()) }

// leadingZeroBits counts leading zero bits of a hash.
func leadingZeroBits(h Hash) int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// CheckPoW reports whether the header hash meets its difficulty target.
func (h *BlockHeader) CheckPoW() bool {
	return leadingZeroBits(h.Hash()) >= int(h.TargetBits)
}

// Block is a header plus the transactions it commits to. Txs[0] must be
// the coinbase.
type Block struct {
	Header BlockHeader
	Txs    []*Tx
}

// MerkleRoot computes the Merkle root of a transaction list, duplicating
// the last node at odd levels as Bitcoin does. An empty list hashes to the
// zero hash.
func MerkleRoot(txs []*Tx) Hash {
	if len(txs) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.ID()
	}
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, len(level)/2)
		var cat [64]byte
		for i := range next {
			copy(cat[:32], level[2*i][:])
			copy(cat[32:], level[2*i+1][:])
			next[i] = DoubleSHA256(cat[:])
		}
		level = next
	}
	return level[0]
}

// Mine searches nonces until the header meets target. maxAttempts bounds
// the search (0 means unbounded); it returns false if exhausted. Only used
// with small targets in simulations and tests — this is a substrate, not a
// real miner.
func (b *Block) Mine(maxAttempts uint64) bool {
	for attempt := uint64(0); maxAttempts == 0 || attempt < maxAttempts; attempt++ {
		b.Header.Nonce = attempt
		if b.Header.CheckPoW() {
			return true
		}
	}
	return false
}

// Chain is an append-only best chain with full validation: header
// linkage, proof of work, Merkle commitment, coinbase rules, and
// transaction validity against the UTXO set. Fork choice is out of scope
// (the paper evaluates transaction propagation, not consensus) — the
// chain accepts only extensions of its tip.
type Chain struct {
	blocks  []*Block
	byHash  map[Hash]int // block hash -> height
	utxo    *UTXOSet
	subsidy Amount
	target  uint8
}

// ChainConfig parameterises a new chain.
type ChainConfig struct {
	// Subsidy is the coinbase reward per block.
	Subsidy Amount
	// TargetBits is the PoW difficulty for every block. Keep <= 20 in
	// tests: expected work is 2^TargetBits hashes.
	TargetBits uint8
	// GenesisTo receives the genesis coinbase.
	GenesisTo Address
	// GenesisTime stamps the genesis header.
	GenesisTime uint64
}

// NewChain creates a chain containing a mined genesis block.
func NewChain(cfg ChainConfig) (*Chain, error) {
	if cfg.Subsidy <= 0 {
		return nil, errors.New("chain: subsidy must be positive")
	}
	c := &Chain{
		byHash:  make(map[Hash]int),
		utxo:    NewUTXOSet(),
		subsidy: cfg.Subsidy,
		target:  cfg.TargetBits,
	}
	genesisTx := Coinbase(0, cfg.Subsidy, cfg.GenesisTo)
	genesis := &Block{
		Header: BlockHeader{
			Version:    1,
			MerkleRoot: MerkleRoot([]*Tx{genesisTx}),
			TimeUnix:   cfg.GenesisTime,
			TargetBits: cfg.TargetBits,
		},
		Txs: []*Tx{genesisTx},
	}
	if !genesis.Mine(0) {
		return nil, errors.New("chain: failed to mine genesis")
	}
	if err := c.utxo.AddCoinbase(genesisTx); err != nil {
		return nil, err
	}
	c.blocks = append(c.blocks, genesis)
	c.byHash[genesis.Header.Hash()] = 0
	return c, nil
}

// Height returns the tip height (genesis is 0).
func (c *Chain) Height() int { return len(c.blocks) - 1 }

// Tip returns the best block.
func (c *Chain) Tip() *Block { return c.blocks[len(c.blocks)-1] }

// BlockAt returns the block at the given height.
func (c *Chain) BlockAt(height int) (*Block, bool) {
	if height < 0 || height >= len(c.blocks) {
		return nil, false
	}
	return c.blocks[height], true
}

// HasBlock reports whether the chain contains the block hash.
func (c *Chain) HasBlock(h Hash) bool {
	_, ok := c.byHash[h]
	return ok
}

// UTXO exposes the materialized ledger state.
func (c *Chain) UTXO() *UTXOSet { return c.utxo }

// Subsidy returns the per-block coinbase reward.
func (c *Chain) Subsidy() Amount { return c.subsidy }

// TargetBits returns the chain's PoW difficulty.
func (c *Chain) TargetBits() uint8 { return c.target }

// NewBlockTemplate assembles an unmined block extending the tip, paying
// the coinbase (subsidy + fees) to rewardTo.
func (c *Chain) NewBlockTemplate(txs []*Tx, rewardTo Address, timeUnix uint64) (*Block, error) {
	var fees Amount
	trial := c.utxo.Clone()
	for i, tx := range txs {
		fee, err := trial.Fee(tx)
		if err != nil {
			return nil, fmt.Errorf("chain: template tx %d: %w", i, err)
		}
		if err := trial.ApplyTx(tx); err != nil {
			return nil, fmt.Errorf("chain: template tx %d: %w", i, err)
		}
		fees += fee
	}
	cb := Coinbase(uint64(c.Height()+1), c.subsidy+fees, rewardTo)
	all := append([]*Tx{cb}, txs...)
	return &Block{
		Header: BlockHeader{
			Version:    1,
			PrevHash:   c.Tip().Header.Hash(),
			MerkleRoot: MerkleRoot(all),
			TimeUnix:   timeUnix,
			TargetBits: c.target,
		},
		Txs: all,
	}, nil
}

// ValidateBlock fully validates b as an extension of the current tip
// without mutating state.
func (c *Chain) ValidateBlock(b *Block) error {
	if b.Header.PrevHash != c.Tip().Header.Hash() {
		return fmt.Errorf("chain: block extends %s, tip is %s", b.Header.PrevHash, c.Tip().Header.Hash())
	}
	if b.Header.TargetBits != c.target {
		return fmt.Errorf("chain: target %d, want %d", b.Header.TargetBits, c.target)
	}
	if !b.Header.CheckPoW() {
		return errors.New("chain: insufficient proof of work")
	}
	if len(b.Txs) == 0 {
		return errors.New("chain: empty block")
	}
	if b.Header.MerkleRoot != MerkleRoot(b.Txs) {
		return errors.New("chain: merkle root mismatch")
	}
	cb := b.Txs[0]
	if !cb.IsCoinbase() {
		return errors.New("chain: first tx is not coinbase")
	}
	trial := c.utxo.Clone()
	var fees Amount
	for i, tx := range b.Txs[1:] {
		if tx.IsCoinbase() {
			return fmt.Errorf("chain: tx %d is a stray coinbase", i+1)
		}
		fee, err := trial.Fee(tx)
		if err != nil {
			return fmt.Errorf("chain: block tx %d: %w", i+1, err)
		}
		if err := trial.ApplyTx(tx); err != nil {
			return fmt.Errorf("chain: block tx %d: %w", i+1, err)
		}
		fees += fee
	}
	var cbOut Amount
	for _, out := range cb.Outputs {
		cbOut += out.Value
	}
	if cbOut > c.subsidy+fees {
		return fmt.Errorf("chain: coinbase pays %d, allowed %d", cbOut, c.subsidy+fees)
	}
	return nil
}

// AddBlock validates and appends b, updating the UTXO set.
func (c *Chain) AddBlock(b *Block) error {
	if err := c.ValidateBlock(b); err != nil {
		return err
	}
	if err := c.utxo.AddCoinbase(b.Txs[0]); err != nil {
		return err
	}
	for _, tx := range b.Txs[1:] {
		if err := c.utxo.ApplyTx(tx); err != nil {
			// ValidateBlock proved this cannot happen; a failure here means
			// internal state corruption, which must not be papered over.
			panic(fmt.Sprintf("chain: validated block failed to apply: %v", err))
		}
	}
	c.blocks = append(c.blocks, b)
	c.byHash[b.Header.Hash()] = len(c.blocks) - 1
	return nil
}

// Bytes serializes a block: header followed by length-prefixed txs.
func (b *Block) Bytes() []byte {
	var buf bytes.Buffer
	buf.Write(b.Header.Bytes())
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(b.Txs)))
	buf.Write(scratch[:])
	for _, tx := range b.Txs {
		txb := tx.Bytes()
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(txb)))
		buf.Write(scratch[:])
		buf.Write(txb)
	}
	return buf.Bytes()
}

// Size returns the serialized size in bytes without serializing — the
// block-relay counterpart of Tx.Size, used by the simulator to charge
// BLOCK messages against link bandwidth per delivery.
func (b *Block) Size() int {
	n := (4 + 32 + 32 + 8 + 1 + 8) + 4 // header + tx count
	for _, tx := range b.Txs {
		n += 4 + tx.Size()
	}
	return n
}

// DecodeBlock parses a serialization produced by Block.Bytes.
func DecodeBlock(data []byte) (*Block, error) {
	const headerLen = 4 + 32 + 32 + 8 + 1 + 8
	if len(data) < headerLen+4 {
		return nil, errors.New("chain: block too short")
	}
	var b Block
	h := &b.Header
	h.Version = binary.LittleEndian.Uint32(data[0:4])
	copy(h.PrevHash[:], data[4:36])
	copy(h.MerkleRoot[:], data[36:68])
	h.TimeUnix = binary.LittleEndian.Uint64(data[68:76])
	h.TargetBits = data[76]
	h.Nonce = binary.LittleEndian.Uint64(data[77:85])
	off := headerLen
	n := binary.LittleEndian.Uint32(data[off : off+4])
	off += 4
	const maxBlockTxs = 1 << 20
	if n > maxBlockTxs {
		return nil, fmt.Errorf("chain: block tx count %d exceeds limit", n)
	}
	b.Txs = make([]*Tx, 0, n)
	for i := uint32(0); i < n; i++ {
		if off+4 > len(data) {
			return nil, errors.New("chain: truncated block")
		}
		l := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if off+l > len(data) {
			return nil, errors.New("chain: truncated block tx")
		}
		tx, err := DecodeTx(data[off : off+l])
		if err != nil {
			return nil, fmt.Errorf("chain: block tx %d: %w", i, err)
		}
		b.Txs = append(b.Txs, tx)
		off += l
	}
	if off != len(data) {
		return nil, fmt.Errorf("chain: %d trailing bytes after block", len(data)-off)
	}
	return &b, nil
}
