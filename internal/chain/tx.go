package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Amount is a quantity of currency in the smallest unit (satoshi).
type Amount int64

// MaxAmount caps any single output; 21M coins at 1e8 satoshi.
const MaxAmount Amount = 21_000_000 * 1e8

// Outpoint references one output of a previous transaction.
type Outpoint struct {
	TxID  Hash
	Index uint32
}

// String implements fmt.Stringer.
func (o Outpoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Index) }

// TxIn spends a previous output. Sig and PubKey are filled by signing.
type TxIn struct {
	PrevOut Outpoint
	Sig     []byte // compact 64-byte signature over the tx sighash
	PubKey  []byte // uncompressed public key whose address owns PrevOut
}

// TxOut assigns value to an address.
type TxOut struct {
	Value Amount
	To    Address
}

// Tx is a transaction: a signed reassignment of previously unspent
// outputs. A transaction with no inputs and exactly one output is a
// coinbase (mining reward) and is only valid inside a block.
type Tx struct {
	Version  uint32
	Inputs   []TxIn
	Outputs  []TxOut
	LockTime uint32

	// id caches the transaction hash: every node on a flood path hashes
	// the same shared *Tx at least twice (receive and accept), and the
	// serialize-and-digest would otherwise run once per hop. Fields must
	// not be mutated after the first ID() call; SignAllInputs (the one
	// in-package mutator) invalidates it.
	id      Hash
	idValid bool
}

// Coinbase builds a mining-reward transaction paying value to addr. The
// height is mixed into the serialization so coinbases at different heights
// have distinct IDs.
func Coinbase(height uint64, value Amount, to Address) *Tx {
	return &Tx{
		Version:  1,
		Inputs:   nil,
		Outputs:  []TxOut{{Value: value, To: to}},
		LockTime: uint32(height),
	}
}

// IsCoinbase reports whether the transaction is a coinbase.
func (tx *Tx) IsCoinbase() bool { return len(tx.Inputs) == 0 }

// serialize writes the canonical binary form. If forSigning is true, input
// signatures and pubkeys are omitted so the digest covers only immutable
// fields.
func (tx *Tx) serialize(w *bytes.Buffer, forSigning bool) {
	var scratch [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		w.Write(scratch[:4])
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		w.Write(scratch[:8])
	}
	putBytes := func(b []byte) {
		putU32(uint32(len(b)))
		w.Write(b)
	}

	putU32(tx.Version)
	putU32(uint32(len(tx.Inputs)))
	for i := range tx.Inputs {
		in := &tx.Inputs[i]
		w.Write(in.PrevOut.TxID[:])
		putU32(in.PrevOut.Index)
		if !forSigning {
			putBytes(in.Sig)
			putBytes(in.PubKey)
		}
	}
	putU32(uint32(len(tx.Outputs)))
	for i := range tx.Outputs {
		out := &tx.Outputs[i]
		putU64(uint64(out.Value))
		w.Write(out.To[:])
	}
	putU32(tx.LockTime)
}

// Bytes returns the full canonical serialization.
func (tx *Tx) Bytes() []byte {
	var buf bytes.Buffer
	tx.serialize(&buf, false)
	return buf.Bytes()
}

// Size returns the serialized size in bytes, computed arithmetically
// from the fixed layout — no serialization, no allocation. The simulator
// sizes every in-flight TX message against link bandwidth through this
// (wire.EncodedSize), so it runs once per delivery on the flood hot
// path; TestSizeMatchesBytes pins it to len(Bytes()).
func (tx *Tx) Size() int {
	n := 4 + 4 + 4 + 4 // version + input count + output count + locktime
	for i := range tx.Inputs {
		in := &tx.Inputs[i]
		n += 32 + 4 + 4 + len(in.Sig) + 4 + len(in.PubKey)
	}
	n += len(tx.Outputs) * (8 + AddressSize)
	return n
}

// ID returns the transaction hash over the full serialization, computed
// once and cached. The transaction must not be mutated after the first
// call.
func (tx *Tx) ID() Hash {
	if !tx.idValid {
		tx.id = DoubleSHA256(tx.Bytes())
		tx.idValid = true
	}
	return tx.id
}

// SigHash returns the digest every input signs: the serialization with
// signatures and pubkeys excluded.
func (tx *Tx) SigHash() Hash {
	var buf bytes.Buffer
	tx.serialize(&buf, true)
	return DoubleSHA256(buf.Bytes())
}

// SignAllInputs signs every input with the corresponding key. keys[i]
// must own the output spent by Inputs[i].
func (tx *Tx) SignAllInputs(keys []*KeyPair) error {
	if len(keys) != len(tx.Inputs) {
		return fmt.Errorf("chain: %d keys for %d inputs", len(keys), len(tx.Inputs))
	}
	digest := tx.SigHash()
	for i, k := range keys {
		sig, err := k.Sign([32]byte(digest))
		if err != nil {
			return err
		}
		tx.Inputs[i].Sig = sig
		tx.Inputs[i].PubKey = k.PubKey()
	}
	tx.idValid = false
	return nil
}

// DecodeTx parses a canonical serialization produced by Bytes.
func DecodeTx(data []byte) (*Tx, error) {
	r := bytes.NewReader(data)
	var tx Tx
	var err error
	u32 := func() uint32 {
		var v uint32
		if err == nil {
			err = binary.Read(r, binary.LittleEndian, &v)
		}
		return v
	}
	u64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(r, binary.LittleEndian, &v)
		}
		return v
	}
	getBytes := func() []byte {
		n := u32()
		if err != nil {
			return nil
		}
		if int(n) > r.Len() {
			err = errors.New("chain: truncated byte field")
			return nil
		}
		b := make([]byte, n)
		_, err = r.Read(b)
		return b
	}

	tx.Version = u32()
	nIn := u32()
	if err != nil {
		return nil, fmt.Errorf("chain: decode tx header: %w", err)
	}
	const maxCount = 1 << 16 // sanity bound against hostile lengths
	if nIn > maxCount {
		return nil, fmt.Errorf("chain: input count %d exceeds limit", nIn)
	}
	tx.Inputs = make([]TxIn, nIn)
	for i := range tx.Inputs {
		in := &tx.Inputs[i]
		if err == nil {
			_, err = r.Read(in.PrevOut.TxID[:])
		}
		in.PrevOut.Index = u32()
		in.Sig = getBytes()
		in.PubKey = getBytes()
	}
	nOut := u32()
	if err != nil {
		return nil, fmt.Errorf("chain: decode tx inputs: %w", err)
	}
	if nOut > maxCount {
		return nil, fmt.Errorf("chain: output count %d exceeds limit", nOut)
	}
	tx.Outputs = make([]TxOut, nOut)
	for i := range tx.Outputs {
		out := &tx.Outputs[i]
		out.Value = Amount(u64())
		if err == nil {
			_, err = r.Read(out.To[:])
		}
	}
	tx.LockTime = u32()
	if err != nil {
		return nil, fmt.Errorf("chain: decode tx: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after tx", r.Len())
	}
	return &tx, nil
}

// CheckWellFormed performs context-free validation: structure and value
// ranges only (no UTXO lookups, no signature checks).
func (tx *Tx) CheckWellFormed() error {
	if len(tx.Outputs) == 0 {
		return errors.New("chain: tx has no outputs")
	}
	var total Amount
	for i, out := range tx.Outputs {
		if out.Value <= 0 {
			return fmt.Errorf("chain: output %d has non-positive value %d", i, out.Value)
		}
		if out.Value > MaxAmount {
			return fmt.Errorf("chain: output %d value %d exceeds max", i, out.Value)
		}
		total += out.Value
		if total > MaxAmount {
			return errors.New("chain: total output value exceeds max")
		}
	}
	seen := make(map[Outpoint]struct{}, len(tx.Inputs))
	for i := range tx.Inputs {
		op := tx.Inputs[i].PrevOut
		if _, dup := seen[op]; dup {
			return fmt.Errorf("chain: duplicate input %s (self double-spend)", op)
		}
		seen[op] = struct{}{}
	}
	return nil
}
