package chain

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// testEntropy returns a deterministic entropy source for reproducible
// keys in tests.
func testEntropy(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func mustKey(t testing.TB, seed int64) *KeyPair {
	t.Helper()
	k, err := GenerateKey(testEntropy(seed))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

// fundedLedger returns a UTXO set holding one coinbase output of value
// 100_000 owned by key, plus the outpoint.
func fundedLedger(t testing.TB, key *KeyPair) (*UTXOSet, Outpoint) {
	t.Helper()
	u := NewUTXOSet()
	cb := Coinbase(1, 100_000, key.Address())
	if err := u.AddCoinbase(cb); err != nil {
		t.Fatalf("AddCoinbase: %v", err)
	}
	return u, Outpoint{TxID: cb.ID(), Index: 0}
}

// spend builds and signs a tx spending op (owned by from) paying amount to
// to, with the remainder (minus fee) back to from.
func spend(t testing.TB, from *KeyPair, op Outpoint, prevValue, amount, fee Amount, to Address) *Tx {
	t.Helper()
	tx := &Tx{
		Version: 1,
		Inputs:  []TxIn{{PrevOut: op}},
		Outputs: []TxOut{{Value: amount, To: to}},
	}
	if change := prevValue - amount - fee; change > 0 {
		tx.Outputs = append(tx.Outputs, TxOut{Value: change, To: from.Address()})
	}
	if err := tx.SignAllInputs([]*KeyPair{from}); err != nil {
		t.Fatalf("SignAllInputs: %v", err)
	}
	return tx
}

func TestKeyRoundTrip(t *testing.T) {
	k := mustKey(t, 1)
	digest := DoubleSHA256([]byte("hello"))
	sig, err := k.Sign([32]byte(digest))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 64 {
		t.Fatalf("sig length %d, want 64", len(sig))
	}
	if !VerifySignature(k.PubKey(), [32]byte(digest), sig) {
		t.Error("valid signature rejected")
	}
	other := DoubleSHA256([]byte("tampered"))
	if VerifySignature(k.PubKey(), [32]byte(other), sig) {
		t.Error("signature verified against wrong digest")
	}
	sig[10] ^= 0xFF
	if VerifySignature(k.PubKey(), [32]byte(digest), sig) {
		t.Error("corrupted signature verified")
	}
}

func TestVerifySignatureMalformedInputs(t *testing.T) {
	k := mustKey(t, 2)
	digest := [32]byte(DoubleSHA256([]byte("x")))
	if VerifySignature(k.PubKey(), digest, []byte("short")) {
		t.Error("short signature accepted")
	}
	if VerifySignature([]byte{0x04, 1, 2}, digest, make([]byte, 64)) {
		t.Error("garbage pubkey accepted")
	}
}

func TestAddressDerivationStable(t *testing.T) {
	k := mustKey(t, 3)
	if k.Address() != PubKeyAddress(k.PubKey()) {
		t.Error("Address() differs from PubKeyAddress(PubKey())")
	}
	k2 := mustKey(t, 3)
	if k.Address() != k2.Address() {
		t.Error("same entropy produced different keys")
	}
	k3 := mustKey(t, 4)
	if k.Address() == k3.Address() {
		t.Error("different entropy produced same address")
	}
}

func TestTxSerializationRoundTrip(t *testing.T) {
	alice := mustKey(t, 5)
	bob := mustKey(t, 6)
	u, op := fundedLedger(t, alice)
	_ = u
	tx := spend(t, alice, op, 100_000, 40_000, 500, bob.Address())

	decoded, err := DecodeTx(tx.Bytes())
	if err != nil {
		t.Fatalf("DecodeTx: %v", err)
	}
	if decoded.ID() != tx.ID() {
		t.Error("round-tripped tx has different ID")
	}
	if !bytes.Equal(decoded.Bytes(), tx.Bytes()) {
		t.Error("round-tripped serialization differs")
	}
}

func TestDecodeTxRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 40), // hostile huge counts
	}
	for i, data := range cases {
		if _, err := DecodeTx(data); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
	// Trailing bytes must be rejected.
	alice := mustKey(t, 7)
	_, op := fundedLedger(t, alice)
	tx := spend(t, alice, op, 100_000, 1000, 0, alice.Address())
	data := append(tx.Bytes(), 0x00)
	if _, err := DecodeTx(data); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestSigHashExcludesSignatures(t *testing.T) {
	alice := mustKey(t, 8)
	_, op := fundedLedger(t, alice)
	tx := spend(t, alice, op, 100_000, 1000, 0, alice.Address())
	before := tx.SigHash()
	tx.Inputs[0].Sig = []byte("different")
	if tx.SigHash() != before {
		t.Error("SigHash depends on signature bytes")
	}
	tx.Outputs[0].Value++
	if tx.SigHash() == before {
		t.Error("SigHash ignores output mutation")
	}
}

func TestCheckWellFormed(t *testing.T) {
	addr := mustKey(t, 9).Address()
	tests := []struct {
		name string
		tx   *Tx
		ok   bool
	}{
		{"no outputs", &Tx{Inputs: []TxIn{{}}}, false},
		{"zero value", &Tx{Outputs: []TxOut{{Value: 0, To: addr}}}, false},
		{"negative value", &Tx{Outputs: []TxOut{{Value: -5, To: addr}}}, false},
		{"over max", &Tx{Outputs: []TxOut{{Value: MaxAmount + 1, To: addr}}}, false},
		{"sum over max", &Tx{Outputs: []TxOut{
			{Value: MaxAmount, To: addr}, {Value: MaxAmount, To: addr},
		}}, false},
		{"dup inputs", &Tx{
			Inputs:  []TxIn{{PrevOut: Outpoint{Index: 1}}, {PrevOut: Outpoint{Index: 1}}},
			Outputs: []TxOut{{Value: 1, To: addr}},
		}, false},
		{"valid", &Tx{Outputs: []TxOut{{Value: 1, To: addr}}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tx.CheckWellFormed()
			if (err == nil) != tt.ok {
				t.Errorf("CheckWellFormed = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestUTXOValidateAndApply(t *testing.T) {
	alice := mustKey(t, 10)
	bob := mustKey(t, 11)
	u, op := fundedLedger(t, alice)

	tx := spend(t, alice, op, 100_000, 60_000, 1000, bob.Address())
	if err := u.ValidateTx(tx); err != nil {
		t.Fatalf("ValidateTx: %v", err)
	}
	if err := u.ApplyTx(tx); err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if got := u.BalanceOf(bob.Address()); got != 60_000 {
		t.Errorf("bob balance = %d, want 60000", got)
	}
	if got := u.BalanceOf(alice.Address()); got != 39_000 {
		t.Errorf("alice change = %d, want 39000", got)
	}
	// Replay must fail: the outpoint is spent.
	if err := u.ValidateTx(tx); !errors.Is(err, ErrMissingInput) {
		t.Errorf("replay error = %v, want ErrMissingInput", err)
	}
}

func TestUTXORejectsWrongOwner(t *testing.T) {
	alice := mustKey(t, 12)
	mallory := mustKey(t, 13)
	u, op := fundedLedger(t, alice)
	// Mallory signs with her own key trying to spend Alice's output.
	tx := spend(t, mallory, op, 100_000, 1000, 0, mallory.Address())
	if err := u.ValidateTx(tx); !errors.Is(err, ErrWrongOwner) {
		t.Errorf("error = %v, want ErrWrongOwner", err)
	}
}

func TestUTXORejectsBadSignature(t *testing.T) {
	alice := mustKey(t, 14)
	u, op := fundedLedger(t, alice)
	tx := spend(t, alice, op, 100_000, 1000, 0, alice.Address())
	tx.Inputs[0].Sig[0] ^= 0xFF
	if err := u.ValidateTx(tx); !errors.Is(err, ErrBadSignature) {
		t.Errorf("error = %v, want ErrBadSignature", err)
	}
}

func TestUTXORejectsOverspend(t *testing.T) {
	alice := mustKey(t, 15)
	u, op := fundedLedger(t, alice)
	tx := &Tx{
		Version: 1,
		Inputs:  []TxIn{{PrevOut: op}},
		Outputs: []TxOut{{Value: 200_000, To: alice.Address()}}, // > funded 100k
	}
	if err := tx.SignAllInputs([]*KeyPair{alice}); err != nil {
		t.Fatal(err)
	}
	if err := u.ValidateTx(tx); !errors.Is(err, ErrValueOverflow) {
		t.Errorf("error = %v, want ErrValueOverflow", err)
	}
}

func TestUTXOFeeAndClone(t *testing.T) {
	alice := mustKey(t, 16)
	u, op := fundedLedger(t, alice)
	tx := spend(t, alice, op, 100_000, 70_000, 2_500, alice.Address())
	fee, err := u.Fee(tx)
	if err != nil {
		t.Fatal(err)
	}
	if fee != 2_500 {
		t.Errorf("fee = %d, want 2500", fee)
	}
	clone := u.Clone()
	if err := clone.ApplyTx(tx); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if _, ok := u.Lookup(op); !ok {
		t.Error("Clone shares state with original")
	}
}

func TestMempoolDoubleSpendConflict(t *testing.T) {
	alice := mustKey(t, 17)
	bob := mustKey(t, 18)
	carol := mustKey(t, 19)
	u, op := fundedLedger(t, alice)
	mp := NewMempool(u, 0)

	txBob := spend(t, alice, op, 100_000, 50_000, 100, bob.Address())
	txCarol := spend(t, alice, op, 100_000, 50_000, 200, carol.Address())

	if err := mp.Add(txBob); err != nil {
		t.Fatalf("first spend rejected: %v", err)
	}
	// The double spend must be detected, not admitted.
	err := mp.Add(txCarol)
	if !errors.Is(err, ErrMempoolConflict) {
		t.Fatalf("double spend error = %v, want ErrMempoolConflict", err)
	}
	if conflict, ok := mp.Conflicts(txCarol); !ok || conflict != txBob.ID() {
		t.Error("Conflicts did not identify the resident double spend")
	}
}

func TestMempoolIdempotentAdd(t *testing.T) {
	alice := mustKey(t, 20)
	u, op := fundedLedger(t, alice)
	mp := NewMempool(u, 0)
	tx := spend(t, alice, op, 100_000, 1000, 10, alice.Address())
	if err := mp.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(tx); err != nil {
		t.Errorf("re-adding same tx errored: %v", err)
	}
	if mp.Len() != 1 {
		t.Errorf("Len = %d, want 1", mp.Len())
	}
}

func TestMempoolEvictionByFeeRate(t *testing.T) {
	alice := mustKey(t, 21)
	u := NewUTXOSet()
	// Fund three outputs.
	var ops []Outpoint
	for i := 0; i < 3; i++ {
		cb := Coinbase(uint64(i), 100_000, alice.Address())
		if err := u.AddCoinbase(cb); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, Outpoint{TxID: cb.ID(), Index: 0})
	}
	mp := NewMempool(u, 2)
	low := spend(t, alice, ops[0], 100_000, 99_990, 10, alice.Address())
	mid := spend(t, alice, ops[1], 100_000, 99_000, 1_000, alice.Address())
	high := spend(t, alice, ops[2], 100_000, 90_000, 10_000, alice.Address())

	if err := mp.Add(low); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(mid); err != nil {
		t.Fatal(err)
	}
	// Pool full; high fee evicts low.
	if err := mp.Add(high); err != nil {
		t.Fatalf("high-fee add: %v", err)
	}
	if mp.Has(low.ID()) {
		t.Error("low-fee tx not evicted")
	}
	if !mp.Has(high.ID()) || !mp.Has(mid.ID()) {
		t.Error("expected residents missing")
	}
	// And a sub-floor fee is refused outright.
	refund := spend(t, alice, ops[0], 100_000, 100_000, 0, alice.Address())
	if err := mp.Add(refund); !errors.Is(err, ErrMempoolFull) {
		// ops[0] was released when low was evicted, so only capacity blocks it.
		t.Errorf("error = %v, want ErrMempoolFull", err)
	}
}

func TestMempoolRemoveConfirmedReleasesClaims(t *testing.T) {
	alice := mustKey(t, 22)
	bob := mustKey(t, 23)
	u, op := fundedLedger(t, alice)
	mp := NewMempool(u, 0)
	tx := spend(t, alice, op, 100_000, 50_000, 100, bob.Address())
	if err := mp.Add(tx); err != nil {
		t.Fatal(err)
	}
	mp.RemoveConfirmed([]*Tx{tx})
	if mp.Len() != 0 {
		t.Error("confirmed tx still resident")
	}
	// The outpoint claim must be released so a (now hypothetical)
	// conflicting spend is judged against the UTXO set, not stale claims.
	if _, ok := mp.Conflicts(tx); ok {
		t.Error("claim not released after confirmation")
	}
}

func TestMempoolPickForBlockOrdersByFeeRate(t *testing.T) {
	alice := mustKey(t, 24)
	u := NewUTXOSet()
	var ops []Outpoint
	for i := 0; i < 3; i++ {
		cb := Coinbase(uint64(i), 100_000, alice.Address())
		if err := u.AddCoinbase(cb); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, Outpoint{TxID: cb.ID(), Index: 0})
	}
	mp := NewMempool(u, 0)
	fees := []Amount{500, 5_000, 50}
	var txs []*Tx
	for i, f := range fees {
		tx := spend(t, alice, ops[i], 100_000, 100_000-f, f, alice.Address())
		txs = append(txs, tx)
		if err := mp.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	picked := mp.PickForBlock(2)
	if len(picked) != 2 {
		t.Fatalf("picked %d, want 2", len(picked))
	}
	if picked[0].ID() != txs[1].ID() || picked[1].ID() != txs[0].ID() {
		t.Error("PickForBlock not ordered by fee rate")
	}
}

func TestMerkleRoot(t *testing.T) {
	addr := mustKey(t, 25).Address()
	tx1 := Coinbase(1, 10, addr)
	tx2 := Coinbase(2, 20, addr)
	tx3 := Coinbase(3, 30, addr)

	if (MerkleRoot(nil) != Hash{}) {
		t.Error("empty merkle root not zero")
	}
	if MerkleRoot([]*Tx{tx1}) != tx1.ID() {
		t.Error("single-tx merkle root should be the tx ID")
	}
	r12 := MerkleRoot([]*Tx{tx1, tx2})
	r21 := MerkleRoot([]*Tx{tx2, tx1})
	if r12 == r21 {
		t.Error("merkle root insensitive to order")
	}
	// Odd count duplicates the last: {1,2,3} == {1,2,3,3}.
	if MerkleRoot([]*Tx{tx1, tx2, tx3}) != MerkleRoot([]*Tx{tx1, tx2, tx3, tx3}) {
		t.Error("odd-level duplication rule violated")
	}
}

func TestChainMineAndExtend(t *testing.T) {
	alice := mustKey(t, 26)
	bob := mustKey(t, 27)
	c, err := NewChain(ChainConfig{Subsidy: 50_000, TargetBits: 8, GenesisTo: alice.Address()})
	if err != nil {
		t.Fatal(err)
	}
	if c.Height() != 0 {
		t.Fatalf("height = %d, want 0", c.Height())
	}
	if got := c.UTXO().BalanceOf(alice.Address()); got != 50_000 {
		t.Fatalf("genesis balance = %d, want 50000", got)
	}

	// Spend the genesis coinbase in block 1.
	ops := c.UTXO().OutpointsOf(alice.Address())
	if len(ops) != 1 {
		t.Fatal("expected one genesis outpoint")
	}
	tx := spend(t, alice, ops[0], 50_000, 20_000, 1_000, bob.Address())
	blk, err := c.NewBlockTemplate([]*Tx{tx}, bob.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !blk.Mine(1 << 22) {
		t.Fatal("failed to mine block at 8 bits")
	}
	if err := c.AddBlock(blk); err != nil {
		t.Fatalf("AddBlock: %v", err)
	}
	if c.Height() != 1 {
		t.Errorf("height = %d, want 1", c.Height())
	}
	// Coinbase pays subsidy + fee.
	wantMiner := Amount(50_000 + 1_000 + 20_000) // coinbase + payment output
	if got := c.UTXO().BalanceOf(bob.Address()); got != wantMiner {
		t.Errorf("miner balance = %d, want %d", got, wantMiner)
	}
	if !c.HasBlock(blk.Header.Hash()) {
		t.Error("chain does not index new block")
	}
}

func TestChainRejectsInvalidBlocks(t *testing.T) {
	alice := mustKey(t, 28)
	c, err := NewChain(ChainConfig{Subsidy: 50_000, TargetBits: 8, GenesisTo: alice.Address()})
	if err != nil {
		t.Fatal(err)
	}
	mkBlock := func(mutate func(*Block)) *Block {
		b, err := c.NewBlockTemplate(nil, alice.Address(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Mine(1 << 22) {
			t.Fatal("mining failed")
		}
		if mutate != nil {
			mutate(b)
		}
		return b
	}

	if err := c.AddBlock(mkBlock(func(b *Block) { b.Header.PrevHash = Hash{1} })); err == nil {
		t.Error("block with wrong prev accepted")
	}
	if err := c.AddBlock(mkBlock(func(b *Block) { b.Header.Nonce = 0xDEAD; b.Header.TimeUnix++ })); err == nil {
		t.Error("block without PoW accepted")
	}
	if err := c.AddBlock(mkBlock(func(b *Block) { b.Txs = append(b.Txs, Coinbase(9, 1, alice.Address())) })); err == nil {
		t.Error("block with merkle mismatch accepted")
	}
	greedy := mkBlock(nil)
	greedy.Txs[0].Outputs[0].Value = 60_000 // overpay coinbase
	greedy.Header.MerkleRoot = MerkleRoot(greedy.Txs)
	if !greedy.Mine(1 << 22) {
		t.Fatal("re-mining failed")
	}
	if err := c.AddBlock(greedy); err == nil {
		t.Error("overpaying coinbase accepted")
	}
	// A valid block still works after all the rejections.
	if err := c.AddBlock(mkBlock(nil)); err != nil {
		t.Errorf("valid block rejected after invalid attempts: %v", err)
	}
}

func TestBlockSerializationRoundTrip(t *testing.T) {
	alice := mustKey(t, 29)
	c, err := NewChain(ChainConfig{Subsidy: 50_000, TargetBits: 4, GenesisTo: alice.Address()})
	if err != nil {
		t.Fatal(err)
	}
	ops := c.UTXO().OutpointsOf(alice.Address())
	tx := spend(t, alice, ops[0], 50_000, 10_000, 100, alice.Address())
	blk, err := c.NewBlockTemplate([]*Tx{tx}, alice.Address(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !blk.Mine(1 << 20) {
		t.Fatal("mining failed")
	}
	decoded, err := DecodeBlock(blk.Bytes())
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	if decoded.Header.Hash() != blk.Header.Hash() {
		t.Error("round-tripped header hash differs")
	}
	if len(decoded.Txs) != len(blk.Txs) {
		t.Fatalf("tx count = %d, want %d", len(decoded.Txs), len(blk.Txs))
	}
	for i := range decoded.Txs {
		if decoded.Txs[i].ID() != blk.Txs[i].ID() {
			t.Errorf("tx %d ID differs after round trip", i)
		}
	}
	if _, err := DecodeBlock(blk.Bytes()[:30]); err == nil {
		t.Error("truncated block accepted")
	}
}

func TestVerifyCostModel(t *testing.T) {
	m := DefaultVerifyCost()
	addr := mustKey(t, 30).Address()
	small := Coinbase(1, 10, addr)
	big := &Tx{
		Version: 1,
		Inputs:  make([]TxIn, 10),
		Outputs: []TxOut{{Value: 1, To: addr}},
	}
	for i := range big.Inputs {
		big.Inputs[i] = TxIn{PrevOut: Outpoint{Index: uint32(i)}, Sig: make([]byte, 64), PubKey: make([]byte, 65)}
	}
	cSmall := m.TxCost(small, 1000)
	cBig := m.TxCost(big, 1000)
	if cBig <= cSmall {
		t.Errorf("10-input cost %v <= 0-input cost %v", cBig, cSmall)
	}
	// Ledger growth increases cost.
	if m.TxCost(small, 1<<20) <= m.TxCost(small, 1) {
		t.Error("cost does not grow with ledger size")
	}
	// Block cost is the sum of tx costs.
	blk := &Block{Txs: []*Tx{small, big}}
	if got, want := m.BlockCost(blk, 1000), cSmall+cBig; got != want {
		t.Errorf("BlockCost = %v, want %v", got, want)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var h Hash
	if leadingZeroBits(h) != 256 {
		t.Error("all-zero hash should have 256 leading zeros")
	}
	h[0] = 0x80
	if leadingZeroBits(h) != 0 {
		t.Error("0x80 first byte should have 0 leading zeros")
	}
	h[0] = 0x01
	if leadingZeroBits(h) != 7 {
		t.Error("0x01 first byte should have 7 leading zeros")
	}
	h[0] = 0
	h[1] = 0x10
	if leadingZeroBits(h) != 11 {
		t.Error("0x00 0x10 should have 11 leading zeros")
	}
}

// Property: any tx that validates applies, and after ApplyTx its inputs
// are gone and outputs present.
func TestPropertyApplyConservesOutpoints(t *testing.T) {
	alice := mustKey(t, 31)
	f := func(pay uint16, fee uint8) bool {
		u, op := fundedLedger(t, alice)
		amount := Amount(pay)%90_000 + 1
		tx := spend(t, alice, op, 100_000, amount, Amount(fee), alice.Address())
		if err := u.ApplyTx(tx); err != nil {
			return false
		}
		if _, ok := u.Lookup(op); ok {
			return false // input must be consumed
		}
		id := tx.ID()
		for i := range tx.Outputs {
			if _, ok := u.Lookup(Outpoint{TxID: id, Index: uint32(i)}); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: tx serialization round-trips for arbitrary well-formed shapes.
func TestPropertyTxRoundTrip(t *testing.T) {
	f := func(nIn, nOut uint8, sigLen uint8) bool {
		tx := &Tx{Version: 1}
		for i := 0; i < int(nIn%8); i++ {
			tx.Inputs = append(tx.Inputs, TxIn{
				PrevOut: Outpoint{TxID: DoubleSHA256([]byte{byte(i)}), Index: uint32(i)},
				Sig:     bytes.Repeat([]byte{0xAB}, int(sigLen)),
				PubKey:  bytes.Repeat([]byte{0xCD}, int(sigLen/2)),
			})
		}
		n := int(nOut%8) + 1
		for i := 0; i < n; i++ {
			tx.Outputs = append(tx.Outputs, TxOut{Value: Amount(i + 1), To: Address{byte(i)}})
		}
		decoded, err := DecodeTx(tx.Bytes())
		if err != nil {
			return false
		}
		return decoded.ID() == tx.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTxSignAndVerify(b *testing.B) {
	alice := mustKey(b, 40)
	u, op := fundedLedger(b, alice)
	tx := spend(b, alice, op, 100_000, 1000, 10, alice.Address())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := u.ValidateTx(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleRoot1000(b *testing.B) {
	addr := mustKey(b, 41).Address()
	txs := make([]*Tx, 1000)
	for i := range txs {
		txs[i] = Coinbase(uint64(i), Amount(i+1), addr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MerkleRoot(txs)
	}
}

func TestMempoolGetAndIDs(t *testing.T) {
	alice := mustKey(t, 60)
	u, op := fundedLedger(t, alice)
	mp := NewMempool(u, 0)
	tx := spend(t, alice, op, 100_000, 500, 5, alice.Address())
	if _, ok := mp.Get(tx.ID()); ok {
		t.Error("Get on empty pool succeeded")
	}
	if err := mp.Add(tx); err != nil {
		t.Fatal(err)
	}
	got, ok := mp.Get(tx.ID())
	if !ok || got.ID() != tx.ID() {
		t.Error("Get returned wrong tx")
	}
	ids := mp.IDs()
	if len(ids) != 1 || ids[0] != tx.ID() {
		t.Errorf("IDs = %v", ids)
	}
}

func TestChainBlockAtBounds(t *testing.T) {
	alice := mustKey(t, 61)
	c, err := NewChain(ChainConfig{Subsidy: 100, TargetBits: 2, GenesisTo: alice.Address()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.BlockAt(0); !ok {
		t.Error("genesis lookup failed")
	}
	if _, ok := c.BlockAt(-1); ok {
		t.Error("negative height succeeded")
	}
	if _, ok := c.BlockAt(5); ok {
		t.Error("future height succeeded")
	}
	if c.Subsidy() != 100 || c.TargetBits() != 2 {
		t.Error("accessors wrong")
	}
}

func TestChainRejectsBadSubsidy(t *testing.T) {
	if _, err := NewChain(ChainConfig{Subsidy: 0}); err == nil {
		t.Error("zero subsidy accepted")
	}
}

func TestCoinbaseDistinctIDsByHeight(t *testing.T) {
	addr := mustKey(t, 62).Address()
	a := Coinbase(1, 50, addr)
	b := Coinbase(2, 50, addr)
	if a.ID() == b.ID() {
		t.Error("coinbases at different heights share an ID")
	}
	if !a.IsCoinbase() {
		t.Error("coinbase not recognised")
	}
}

func TestUTXOAddCoinbaseRejectsNonCoinbase(t *testing.T) {
	alice := mustKey(t, 63)
	u, op := fundedLedger(t, alice)
	tx := spend(t, alice, op, 100_000, 10, 0, alice.Address())
	if err := u.AddCoinbase(tx); err == nil {
		t.Error("non-coinbase accepted by AddCoinbase")
	}
}

func TestHashStringAndIsZero(t *testing.T) {
	var z Hash
	if !z.IsZero() {
		t.Error("zero hash not IsZero")
	}
	h := DoubleSHA256([]byte("x"))
	if h.IsZero() {
		t.Error("non-zero hash IsZero")
	}
	if len(h.String()) != 64 {
		t.Errorf("hex length = %d", len(h.String()))
	}
	op := Outpoint{TxID: h, Index: 3}
	if op.String() == "" {
		t.Error("outpoint string empty")
	}
}

// TestSizeMatchesBytes pins the arithmetic Tx.Size and Block.Size to the
// actual serialization: the simulator charges link bandwidth through
// Size on every delivery, so drift would skew the latency model.
func TestSizeMatchesBytes(t *testing.T) {
	alice, bob := mustKey(t, 1), mustKey(t, 2)
	_, op := fundedLedger(t, alice)
	signed := spend(t, alice, op, 100_000, 1200, 10, bob.Address())
	cb := Coinbase(7, 5000, alice.Address())
	for name, tx := range map[string]*Tx{"signed": signed, "coinbase": cb} {
		if got, want := tx.Size(), len(tx.Bytes()); got != want {
			t.Errorf("%s tx: Size() = %d, len(Bytes()) = %d", name, got, want)
		}
	}
	ch, err := NewChain(ChainConfig{Subsidy: 100, TargetBits: 2, GenesisTo: alice.Address()})
	if err != nil {
		t.Fatal(err)
	}
	b := ch.Tip()
	if got, want := b.Size(), len(b.Bytes()); got != want {
		t.Errorf("block: Size() = %d, len(Bytes()) = %d", got, want)
	}
}
