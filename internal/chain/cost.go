package chain

import "time"

// VerifyCostModel converts a transaction into the virtual time a peer
// spends validating it before relaying (the "verify then announce" step of
// Fig. 1). Decker & Wattenhofer (the paper's ref [9]) measured that
// verification contributes a per-hop delay on the same order as the
// round-trip time; the paper adds that the cost grows with ledger size.
//
// The model is:
//
//	cost = Base + PerInput·inputs + PerKB·ceil(size/1024) + LedgerFactor·log2(utxoLen)
//
// Base covers mempool/UTXO bookkeeping, PerInput the ECDSA verifies (the
// dominant term), PerKB deserialization, and the logarithmic ledger term
// index lookups into a ledger of the given size.
type VerifyCostModel struct {
	Base         time.Duration
	PerInput     time.Duration
	PerKB        time.Duration
	LedgerFactor time.Duration
}

// DefaultVerifyCost returns the calibration used by the experiments:
// ~2ms fixed + ~0.1ms/input + ledger term, yielding the "a few ms" per-hop
// verification delay reported for 2015-2016 era nodes.
func DefaultVerifyCost() VerifyCostModel {
	return VerifyCostModel{
		Base:         2 * time.Millisecond,
		PerInput:     100 * time.Microsecond,
		PerKB:        50 * time.Microsecond,
		LedgerFactor: 40 * time.Microsecond,
	}
}

// TxCost returns the verification delay for tx against a ledger of
// utxoLen entries.
func (m VerifyCostModel) TxCost(tx *Tx, utxoLen int) time.Duration {
	cost := m.Base
	cost += time.Duration(len(tx.Inputs)) * m.PerInput
	kb := (tx.Size() + 1023) / 1024
	cost += time.Duration(kb) * m.PerKB
	cost += time.Duration(log2int(utxoLen)) * m.LedgerFactor
	return cost
}

// BlockCost returns the verification delay for a whole block.
func (m VerifyCostModel) BlockCost(b *Block, utxoLen int) time.Duration {
	var cost time.Duration
	for _, tx := range b.Txs {
		cost += m.TxCost(tx, utxoLen)
	}
	return cost
}

func log2int(n int) int {
	bits := 0
	for n > 1 {
		n >>= 1
		bits++
	}
	return bits
}
