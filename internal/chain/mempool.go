package chain

import (
	"errors"
	"fmt"
	"sort"
)

// ErrMempoolConflict is returned when a submitted transaction spends an
// outpoint already claimed by a different mempool transaction — the
// double-spend race the paper's propagation-delay argument is about.
var ErrMempoolConflict = errors.New("chain: conflicts with mempool transaction")

// ErrMempoolFull is returned when the pool is at capacity and the
// submitted transaction's fee rate does not beat the cheapest resident.
var ErrMempoolFull = errors.New("chain: mempool full")

// mempoolEntry is a resident transaction with cached admission metadata.
type mempoolEntry struct {
	tx      *Tx
	fee     Amount
	size    int
	feeRate float64 // satoshi per byte
	seq     uint64  // admission order, for deterministic iteration
}

// Mempool holds validated, unconfirmed transactions, indexed by ID and by
// claimed outpoint so conflicting spends are rejected in O(inputs).
type Mempool struct {
	utxo    *UTXOSet
	byID    map[Hash]*mempoolEntry
	claimed map[Outpoint]Hash // outpoint -> tx that spends it
	maxTxs  int
	seq     uint64
}

// NewMempool creates a pool validating against utxo, holding at most
// maxTxs transactions (0 means a generous default).
func NewMempool(utxo *UTXOSet, maxTxs int) *Mempool {
	if maxTxs <= 0 {
		maxTxs = 50_000
	}
	return &Mempool{
		utxo:    utxo,
		byID:    make(map[Hash]*mempoolEntry),
		claimed: make(map[Outpoint]Hash),
		maxTxs:  maxTxs,
	}
}

// Len returns the number of resident transactions.
func (m *Mempool) Len() int { return len(m.byID) }

// Has reports whether the pool holds id.
func (m *Mempool) Has(id Hash) bool {
	_, ok := m.byID[id]
	return ok
}

// Get returns the resident transaction, if present.
func (m *Mempool) Get(id Hash) (*Tx, bool) {
	e, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	return e.tx, true
}

// Conflicts returns the ID of a resident transaction that spends any of
// tx's inputs, if one exists. This is the double-spend detector.
func (m *Mempool) Conflicts(tx *Tx) (Hash, bool) {
	for i := range tx.Inputs {
		if id, ok := m.claimed[tx.Inputs[i].PrevOut]; ok {
			return id, true
		}
	}
	return Hash{}, false
}

// Add validates and admits tx. Admission requires: full UTXO validation,
// no conflict with resident transactions, and room in the pool (or a fee
// rate beating the cheapest resident, which is then evicted).
func (m *Mempool) Add(tx *Tx) error {
	id := tx.ID()
	if m.Has(id) {
		return nil // idempotent: relay will offer duplicates constantly
	}
	if err := m.utxo.ValidateTx(tx); err != nil {
		return err
	}
	if conflict, ok := m.Conflicts(tx); ok {
		return fmt.Errorf("%w: %s", ErrMempoolConflict, conflict)
	}
	fee, err := m.utxo.Fee(tx)
	if err != nil {
		return err
	}
	size := tx.Size()
	e := &mempoolEntry{tx: tx, fee: fee, size: size, feeRate: float64(fee) / float64(size)}
	if len(m.byID) >= m.maxTxs {
		victim := m.cheapest()
		if victim == nil || victim.feeRate >= e.feeRate {
			return ErrMempoolFull
		}
		m.remove(victim.tx.ID())
	}
	m.seq++
	e.seq = m.seq
	m.byID[id] = e
	for i := range tx.Inputs {
		m.claimed[tx.Inputs[i].PrevOut] = id
	}
	return nil
}

// cheapest returns the lowest-fee-rate entry (ties broken by admission
// order so eviction is deterministic).
func (m *Mempool) cheapest() *mempoolEntry {
	var worst *mempoolEntry
	for _, e := range m.byID {
		if worst == nil ||
			e.feeRate < worst.feeRate ||
			(e.feeRate == worst.feeRate && e.seq < worst.seq) {
			worst = e
		}
	}
	return worst
}

// remove deletes id and releases its claimed outpoints.
func (m *Mempool) remove(id Hash) {
	e, ok := m.byID[id]
	if !ok {
		return
	}
	for i := range e.tx.Inputs {
		op := e.tx.Inputs[i].PrevOut
		if m.claimed[op] == id {
			delete(m.claimed, op)
		}
	}
	delete(m.byID, id)
}

// Remove deletes a transaction (e.g. once confirmed in a block).
func (m *Mempool) Remove(id Hash) { m.remove(id) }

// RemoveConfirmed drops every resident transaction included in, or made
// invalid by, the given block's transactions.
func (m *Mempool) RemoveConfirmed(txs []*Tx) {
	for _, tx := range txs {
		m.remove(tx.ID())
		// Also drop residents that spend outpoints this block consumed.
		for i := range tx.Inputs {
			if id, ok := m.claimed[tx.Inputs[i].PrevOut]; ok {
				m.remove(id)
			}
		}
	}
}

// PickForBlock returns up to maxTxs resident transactions ordered by fee
// rate (highest first), the miner's selection policy.
func (m *Mempool) PickForBlock(maxTxs int) []*Tx {
	entries := make([]*mempoolEntry, 0, len(m.byID))
	for _, e := range m.byID {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].feeRate != entries[j].feeRate {
			return entries[i].feeRate > entries[j].feeRate
		}
		return entries[i].seq < entries[j].seq
	})
	if maxTxs > 0 && len(entries) > maxTxs {
		entries = entries[:maxTxs]
	}
	txs := make([]*Tx, len(entries))
	for i, e := range entries {
		txs[i] = e.tx
	}
	return txs
}

// IDs returns the resident transaction IDs in admission order.
func (m *Mempool) IDs() []Hash {
	entries := make([]*mempoolEntry, 0, len(m.byID))
	for _, e := range m.byID {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	ids := make([]Hash, len(entries))
	for i, e := range entries {
		ids[i] = e.tx.ID()
	}
	return ids
}
