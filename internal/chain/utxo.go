package chain

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
)

// Validation errors surfaced by the UTXO set and mempool. They are
// sentinel values so protocol code can switch on the failure class (e.g.
// a double spend is a signal, a bad signature is just garbage).
var (
	ErrMissingInput  = errors.New("chain: input not found in UTXO set")
	ErrDoubleSpend   = errors.New("chain: input already spent")
	ErrWrongOwner    = errors.New("chain: pubkey does not own spent output")
	ErrValueOverflow = errors.New("chain: outputs exceed inputs")
)

// UTXOSet is the set of unspent transaction outputs — the materialized
// state of the ledger. It is not safe for concurrent use; the simulation
// is single-threaded and the live node wraps it in its own lock.
type UTXOSet struct {
	entries map[Outpoint]TxOut
}

// NewUTXOSet returns an empty set.
func NewUTXOSet() *UTXOSet {
	return &UTXOSet{entries: make(map[Outpoint]TxOut)}
}

// Len returns the number of unspent outputs.
func (u *UTXOSet) Len() int { return len(u.entries) }

// Lookup returns the output for op, if unspent.
func (u *UTXOSet) Lookup(op Outpoint) (TxOut, bool) {
	out, ok := u.entries[op]
	return out, ok
}

// add registers the outputs of tx as unspent.
func (u *UTXOSet) add(tx *Tx) {
	id := tx.ID()
	for i, out := range tx.Outputs {
		u.entries[Outpoint{TxID: id, Index: uint32(i)}] = out
	}
}

// AddCoinbase credits a coinbase transaction's outputs without input
// validation. It is the only way value enters the ledger.
func (u *UTXOSet) AddCoinbase(tx *Tx) error {
	if !tx.IsCoinbase() {
		return errors.New("chain: AddCoinbase on non-coinbase tx")
	}
	if err := tx.CheckWellFormed(); err != nil {
		return err
	}
	u.add(tx)
	return nil
}

// ValidateTx fully validates tx against the set: structure, input
// existence, ownership, signatures, and value balance. It does not mutate
// the set.
func (u *UTXOSet) ValidateTx(tx *Tx) error {
	if err := tx.CheckWellFormed(); err != nil {
		return err
	}
	if tx.IsCoinbase() {
		return errors.New("chain: free-standing coinbase")
	}
	digest := tx.SigHash()
	var inSum, outSum Amount
	for i := range tx.Inputs {
		in := &tx.Inputs[i]
		prev, ok := u.entries[in.PrevOut]
		if !ok {
			return fmt.Errorf("%w: %s", ErrMissingInput, in.PrevOut)
		}
		if PubKeyAddress(in.PubKey) != prev.To {
			return fmt.Errorf("%w: input %d", ErrWrongOwner, i)
		}
		if !VerifySignature(in.PubKey, [32]byte(digest), in.Sig) {
			return fmt.Errorf("%w: input %d", ErrBadSignature, i)
		}
		inSum += prev.Value
	}
	for _, out := range tx.Outputs {
		outSum += out.Value
	}
	if outSum > inSum {
		return fmt.Errorf("%w: in=%d out=%d", ErrValueOverflow, inSum, outSum)
	}
	return nil
}

// ApplyTx validates tx and then spends its inputs and credits its
// outputs. On error the set is unchanged.
func (u *UTXOSet) ApplyTx(tx *Tx) error {
	if err := u.ValidateTx(tx); err != nil {
		return err
	}
	for i := range tx.Inputs {
		delete(u.entries, tx.Inputs[i].PrevOut)
	}
	u.add(tx)
	return nil
}

// Fee returns the fee tx would pay against this set (inputs minus
// outputs), or an error if an input is missing.
func (u *UTXOSet) Fee(tx *Tx) (Amount, error) {
	if tx.IsCoinbase() {
		return 0, nil
	}
	var inSum, outSum Amount
	for i := range tx.Inputs {
		prev, ok := u.entries[tx.Inputs[i].PrevOut]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrMissingInput, tx.Inputs[i].PrevOut)
		}
		inSum += prev.Value
	}
	for _, out := range tx.Outputs {
		outSum += out.Value
	}
	return inSum - outSum, nil
}

// Clone returns a deep copy, used to trial-apply blocks.
func (u *UTXOSet) Clone() *UTXOSet {
	c := &UTXOSet{entries: make(map[Outpoint]TxOut, len(u.entries))}
	for k, v := range u.entries {
		c.entries[k] = v
	}
	return c
}

// BalanceOf sums the unspent value owned by addr. O(n) — a convenience
// for tests and examples, not a wallet index.
func (u *UTXOSet) BalanceOf(addr Address) Amount {
	var sum Amount
	for _, out := range u.entries {
		if out.To == addr {
			sum += out.Value
		}
	}
	return sum
}

// OutpointsOf lists unspent outpoints owned by addr in ascending
// (TxID, Index) order, so callers that spend "the first output" behave
// identically run to run.
func (u *UTXOSet) OutpointsOf(addr Address) []Outpoint {
	var ops []Outpoint
	for op, out := range u.entries {
		if out.To == addr {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if c := bytes.Compare(ops[i].TxID[:], ops[j].TxID[:]); c != 0 {
			return c < 0
		}
		return ops[i].Index < ops[j].Index
	})
	return ops
}
