package latency

import (
	"math"
	"time"
)

// Estimator tracks the round-trip latency to one peer from repeated ping
// samples. The paper requires repeated measurement ("multiple messages
// between pairs of nodes, repeatedly ... in order to determine variance"),
// so the estimator keeps an exponentially weighted moving average plus a
// mean-deviation estimate, in the style of TCP's SRTT/RTTVAR (RFC 6298) —
// a well-understood way to smooth a noisy RTT signal.
//
// The zero value is ready to use.
type Estimator struct {
	srtt    float64 // smoothed RTT, ms
	rttvar  float64 // mean deviation, ms
	min     float64 // minimum observed, ms
	samples int
}

// estimator gains, per RFC 6298.
const (
	alphaGain = 1.0 / 8
	betaGain  = 1.0 / 4
)

// Observe feeds one RTT sample. Non-positive samples are ignored: a zero
// or negative RTT is a transport bug, not a measurement.
func (e *Estimator) Observe(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	ms := float64(rtt) / float64(time.Millisecond)
	if e.samples == 0 {
		e.srtt = ms
		e.rttvar = ms / 2
		e.min = ms
	} else {
		e.rttvar = (1-betaGain)*e.rttvar + betaGain*math.Abs(e.srtt-ms)
		e.srtt = (1-alphaGain)*e.srtt + alphaGain*ms
		if ms < e.min {
			e.min = ms
		}
	}
	e.samples++
}

// Samples returns how many RTTs have been observed.
func (e *Estimator) Samples() int { return e.samples }

// Ready reports whether enough samples have arrived for the estimate to be
// trusted for clustering decisions. Three samples filters one-off spikes
// while keeping the join handshake short.
func (e *Estimator) Ready() bool { return e.samples >= 3 }

// RTT returns the smoothed round-trip estimate, or 0 if no samples.
func (e *Estimator) RTT() time.Duration {
	return time.Duration(e.srtt * float64(time.Millisecond))
}

// Var returns the smoothed mean deviation, or 0 if no samples.
func (e *Estimator) Var() time.Duration {
	return time.Duration(e.rttvar * float64(time.Millisecond))
}

// Min returns the minimum observed RTT, or 0 if no samples. The minimum
// is the best proxy for the congestion-free path latency, so BCBPT's
// closeness test (eq. 1) uses it by default.
func (e *Estimator) Min() time.Duration {
	return time.Duration(e.min * float64(time.Millisecond))
}
