// Package latency models link latency between Bitcoin peers and implements
// the paper's distance utility function (eqs. 2-4).
//
// The paper decomposes the one-way "distance" D(i,j) between peers i and j
// into three delay terms:
//
//	D(i,j) = Mping/rate(r) + 2·P + q́        (eq. 2)
//	P      = D(m)/S                          (eq. 3)
//	q́      = Mping / (r − λ·Mping)           (eq. 4, M/M/1 service form)
//
// where Mping is the ping message length in bytes, rate(r) the link
// transmission rate, P the signal propagation time over the geographic
// distance D(m) at medium speed S (multiplied by 2 for the round trip),
// and q́ the mean queuing delay at the receiver given ping arrival rate λ.
//
// On top of the deterministic utility, the Link type samples *measured*
// RTTs: the utility value plus last-mile inflation and congestion jitter,
// matching the paper's observation that "distance measurements are subject
// to network congestion and therefore dynamic, within some variance" —
// which is why BCBPT sends repeated pings and estimates.
package latency

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
)

// Medium selects the signal propagation speed S of eq. (3).
type Medium int

const (
	// Copper propagates at 2/3 c, the paper's wired figure. It is the
	// default: Bitcoin peers overwhelmingly sit on wired links.
	Copper Medium = iota
	// Wireless propagates at c.
	Wireless
)

// String implements fmt.Stringer.
func (m Medium) String() string {
	switch m {
	case Copper:
		return "copper"
	case Wireless:
		return "wireless"
	default:
		return fmt.Sprintf("Medium(%d)", int(m))
	}
}

// speedMetersPerSec returns S for the medium.
func (m Medium) speedMetersPerSec() float64 {
	const c = 3e8
	switch m {
	case Wireless:
		return c
	default:
		return 2.0 / 3.0 * c
	}
}

// Params are the constants of the utility function. The zero value is not
// useful; start from DefaultParams.
type Params struct {
	// PingBytes is Mping, the ping message length. Bitcoin's ping message
	// is a 8-byte nonce payload plus the 24-byte header; 32 bytes total.
	PingBytes int
	// RateBytesPerSec is rate(r), the link transmission rate. The paper
	// quotes ~100 KB/hour for the gossip budget; for the serialization
	// term we use a conservative residential uplink (1 MB/s) — the term
	// is negligible either way for 32-byte pings, and the queuing term
	// uses the gossip budget separately.
	RateBytesPerSec float64
	// Medium selects the propagation speed S.
	Medium Medium
	// ArrivalRatePerSec is λ, the mean rate at which pings arrive at the
	// measured peer. Used by the queuing term.
	ArrivalRatePerSec float64
	// PathStretch inflates the great-circle distance to account for the
	// fact that fiber routes are not geodesics (typical stretch 1.5-2.5;
	// the internet's "circuitousness" literature centres near 2).
	PathStretch float64
}

// DefaultParams returns the parameter set used throughout the experiments.
func DefaultParams() Params {
	return Params{
		PingBytes:         32,
		RateBytesPerSec:   1 << 20, // 1 MiB/s
		Medium:            Copper,
		ArrivalRatePerSec: 4, // a peer pings each neighbour every ~30s; ~125 peers max
		PathStretch:       2.0,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.PingBytes <= 0 {
		return fmt.Errorf("latency: PingBytes = %d, must be positive", p.PingBytes)
	}
	if p.RateBytesPerSec <= 0 {
		return fmt.Errorf("latency: RateBytesPerSec = %g, must be positive", p.RateBytesPerSec)
	}
	if p.ArrivalRatePerSec < 0 {
		return fmt.Errorf("latency: ArrivalRatePerSec = %g, must be non-negative", p.ArrivalRatePerSec)
	}
	if p.PathStretch < 1 {
		return fmt.Errorf("latency: PathStretch = %g, must be >= 1", p.PathStretch)
	}
	return nil
}

// TransmissionDelay returns the Mping/rate(r) term of eq. (2).
func (p Params) TransmissionDelay() time.Duration {
	sec := float64(p.PingBytes) / p.RateBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// PropagationDelay returns P of eq. (3) for a geographic distance in
// meters (one way), including path stretch.
func (p Params) PropagationDelay(distanceMeters float64) time.Duration {
	if distanceMeters < 0 {
		distanceMeters = 0
	}
	sec := distanceMeters * p.PathStretch / p.Medium.speedMetersPerSec()
	return time.Duration(sec * float64(time.Second))
}

// QueuingDelay returns q́ of eq. (4): the mean M/M/1-style queuing+service
// delay for a ping of Mping bytes served at rate r with arrival rate λ.
// The paper's typesetting renders the formula ambiguously
// ("q́=Mping /r-ƛ*Mping"); the standard M/M/1 mean sojourn form
// 1/(μ−λ) with μ = r/Mping gives q́ = Mping/(r − λ·Mping), which is what we
// implement. If the system would be unstable (λ·Mping >= r) the delay is
// capped at one second rather than returning infinity.
func (p Params) QueuingDelay() time.Duration {
	const maxQueue = time.Second
	denom := p.RateBytesPerSec - p.ArrivalRatePerSec*float64(p.PingBytes)
	if denom <= 0 {
		return maxQueue
	}
	sec := float64(p.PingBytes) / denom
	d := time.Duration(sec * float64(time.Second))
	if d > maxQueue {
		return maxQueue
	}
	return d
}

// Utility returns D(i,j) of eq. (2) — the deterministic round-trip
// distance estimate for a geographic separation of distanceMeters.
func (p Params) Utility(distanceMeters float64) time.Duration {
	return p.TransmissionDelay() + 2*p.PropagationDelay(distanceMeters) + p.QueuingDelay()
}

// UtilityBetween is a convenience wrapper computing Utility over the
// great-circle distance between two coordinates.
func (p Params) UtilityBetween(a, b geo.Coord) time.Duration {
	return p.Utility(geo.DistanceMeters(a, b))
}

// Model converts geographic placements into sampled round-trip times.
// A Model is shared by all links of a simulation; per-link state lives in
// Link values it creates.
type Model struct {
	params Params
	// lastMileMu/Sigma parameterise the per-link log-normal last-mile
	// inflation (access network, home router, peering) added to the
	// geographic baseline. Median exp(mu) ms.
	lastMileMu    float64
	lastMileSigma float64
	// congestion jitter: with probability spikeProb a sample is inflated
	// by a Pareto-tailed spike; otherwise a small Gaussian wobble.
	wobbleFrac  float64
	spikeProb   float64
	spikeXmMs   float64
	spikeAlpha  float64
	minSampleMs float64
}

// NewModel returns a Model with the default empirical-shape parameters.
// The defaults produce RTT distributions whose quartiles match published
// Bitcoin network measurements (median ~100-150ms, long tail to seconds).
func NewModel(params Params) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		params:        params,
		lastMileMu:    math.Log(18), // median 18ms of last-mile+peering overhead
		lastMileSigma: 0.55,
		wobbleFrac:    0.06,
		spikeProb:     0.03,
		spikeXmMs:     25,
		spikeAlpha:    1.6,
		minSampleMs:   0.2,
	}, nil
}

// Params returns the model's utility-function parameters.
func (m *Model) Params() Params { return m.params }

// Link is the latency state of one (i,j) pair: a fixed baseline drawn at
// link creation plus per-sample congestion noise.
type Link struct {
	model *Model
	// base is the congestion-free RTT: utility function over geography
	// plus this link's last-mile draw.
	base time.Duration
}

// NewLink creates the link between two placements, drawing its last-mile
// component from r.
func (m *Model) NewLink(r *rand.Rand, a, b geo.Coord) Link {
	base := m.params.UtilityBetween(a, b)
	lastMileMs := math.Exp(m.lastMileMu + m.lastMileSigma*r.NormFloat64())
	base += time.Duration(lastMileMs * float64(time.Millisecond))
	return Link{model: m, base: base}
}

// NewLinkWithBase creates a link with an explicit congestion-free RTT,
// bypassing geography. Used by tests and by trace-driven topologies.
func (m *Model) NewLinkWithBase(base time.Duration) Link {
	if base < 0 {
		base = 0
	}
	return Link{model: m, base: base}
}

// Base returns the congestion-free round-trip time of the link.
func (l Link) Base() time.Duration { return l.base }

// maxWobbleSigma truncates the Gaussian congestion wobble at ±4σ. The
// truncation is statistically invisible (|z|>4 is ~6e-5 of draws, and the
// tail mass moved is far below the Pareto spike term) but it makes the
// sample range certifiable: every RTT sample is at least
// base·(1 − wobbleFrac·maxWobbleSigma), which FloorRTT exposes as the
// link's hard lower bound. The parallel dispatcher derives its lookahead
// window from that bound, so it must hold for every draw, not just with
// high probability.
const maxWobbleSigma = 4.0

// SampleRTT draws one measured round-trip time: the baseline plus
// congestion noise. Always positive, and never below FloorRTT.
func (l Link) SampleRTT(r *rand.Rand) time.Duration {
	m := l.model
	ms := float64(l.base) / float64(time.Millisecond)
	if r.Float64() < m.spikeProb {
		ms += paretoMs(r, m.spikeXmMs, m.spikeAlpha)
	} else {
		z := r.NormFloat64()
		if z > maxWobbleSigma {
			z = maxWobbleSigma
		} else if z < -maxWobbleSigma {
			z = -maxWobbleSigma
		}
		ms += ms * m.wobbleFrac * z
	}
	if ms < m.minSampleMs {
		ms = m.minSampleMs
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// FloorRTT returns the certified lower bound of SampleRTT: the worst-case
// downward wobble excursion, clamped to the model's minimum sample. Every
// SampleRTT draw on this link is >= FloorRTT, for any RNG.
func (l Link) FloorRTT() time.Duration {
	m := l.model
	ms := float64(l.base) / float64(time.Millisecond)
	ms -= ms * m.wobbleFrac * maxWobbleSigma
	if ms < m.minSampleMs {
		ms = m.minSampleMs
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// SampleOneWay draws a one-way delay: half a sampled RTT. The simulator
// uses this for message delivery on the link.
func (l Link) SampleOneWay(r *rand.Rand) time.Duration {
	return l.SampleRTT(r) / 2
}

// FloorOneWay returns the certified lower bound of SampleOneWay. Integer
// halving is monotonic, so SampleOneWay >= FloorOneWay always holds; the
// parallel dispatcher's lookahead is the minimum FloorOneWay over all
// cross-partition links.
func (l Link) FloorOneWay() time.Duration {
	return l.FloorRTT() / 2
}

func paretoMs(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}
