package latency

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero ping bytes", func(p *Params) { p.PingBytes = 0 }},
		{"negative rate", func(p *Params) { p.RateBytesPerSec = -1 }},
		{"negative arrivals", func(p *Params) { p.ArrivalRatePerSec = -0.5 }},
		{"stretch below 1", func(p *Params) { p.PathStretch = 0.9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted bad params")
			}
		})
	}
}

func TestPropagationDelayPhysics(t *testing.T) {
	p := DefaultParams()
	p.PathStretch = 1
	p.Medium = Wireless
	// 3000 km at c is 10 ms one way.
	got := p.PropagationDelay(3_000_000)
	if math.Abs(float64(got-10*time.Millisecond)) > float64(50*time.Microsecond) {
		t.Errorf("PropagationDelay(3000km, c) = %v, want ~10ms", got)
	}
	// Copper is 1.5x slower.
	p.Medium = Copper
	got = p.PropagationDelay(3_000_000)
	if math.Abs(float64(got-15*time.Millisecond)) > float64(75*time.Microsecond) {
		t.Errorf("PropagationDelay(3000km, copper) = %v, want ~15ms", got)
	}
}

func TestPropagationDelayNegativeDistanceClamps(t *testing.T) {
	p := DefaultParams()
	if d := p.PropagationDelay(-5); d != 0 {
		t.Errorf("PropagationDelay(-5) = %v, want 0", d)
	}
}

func TestQueuingDelayStableRegime(t *testing.T) {
	p := DefaultParams()
	// r = 1 MiB/s, Mping = 32B, λ = 4/s: essentially pure service time.
	got := p.QueuingDelay()
	wantSec := 32.0 / (float64(1<<20) - 4*32)
	want := time.Duration(wantSec * float64(time.Second))
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("QueuingDelay = %v, want ~%v", got, want)
	}
}

func TestQueuingDelayUnstableRegimeCaps(t *testing.T) {
	p := DefaultParams()
	p.RateBytesPerSec = 100
	p.ArrivalRatePerSec = 10 // λ·Mping = 320 > r = 100: unstable
	if got := p.QueuingDelay(); got != time.Second {
		t.Errorf("unstable QueuingDelay = %v, want 1s cap", got)
	}
}

func TestUtilityMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint32) bool {
		da, db := float64(a%20_000_000), float64(b%20_000_000)
		ua, ub := p.Utility(da), p.Utility(db)
		if da < db {
			return ua <= ub
		}
		return ub <= ua
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilityBetweenMatchesGeoDistance(t *testing.T) {
	p := DefaultParams()
	ny := geo.Coord{LatDeg: 40.71, LonDeg: -74.01}
	ld := geo.Coord{LatDeg: 51.51, LonDeg: -0.13}
	want := p.Utility(geo.DistanceMeters(ny, ld))
	if got := p.UtilityBetween(ny, ld); got != want {
		t.Errorf("UtilityBetween = %v, want %v", got, want)
	}
	// NYC-London: ~5570 km, stretch 2, copper -> 2P ≈ 111 ms round trip.
	rt := p.UtilityBetween(ny, ld)
	if rt < 80*time.Millisecond || rt > 150*time.Millisecond {
		t.Errorf("NYC-London utility = %v, want ~111ms", rt)
	}
}

func TestMediumString(t *testing.T) {
	if Copper.String() != "copper" || Wireless.String() != "wireless" {
		t.Error("Medium.String mismatch")
	}
	if Medium(42).String() == "" {
		t.Error("unknown medium should still stringify")
	}
}

func TestNewModelRejectsInvalid(t *testing.T) {
	p := DefaultParams()
	p.PingBytes = -1
	if _, err := NewModel(p); err == nil {
		t.Error("NewModel accepted invalid params")
	}
}

func TestLinkBaseIncludesGeoAndLastMile(t *testing.T) {
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	ny := geo.Coord{LatDeg: 40.71, LonDeg: -74.01}
	tk := geo.Coord{LatDeg: 35.68, LonDeg: 139.69}
	geoOnly := m.Params().UtilityBetween(ny, tk)
	for i := 0; i < 100; i++ {
		l := m.NewLink(r, ny, tk)
		if l.Base() <= geoOnly {
			t.Fatalf("link base %v <= geographic floor %v; last mile missing", l.Base(), geoOnly)
		}
	}
}

func TestLinkSamplesPositiveAndCentered(t *testing.T) {
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	l := m.NewLinkWithBase(100 * time.Millisecond)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		s := l.SampleRTT(r)
		if s <= 0 {
			t.Fatalf("non-positive RTT sample %v", s)
		}
		sum += s
	}
	mean := sum / n
	// Mean is slightly above base because spikes are one-sided.
	if mean < 95*time.Millisecond || mean > 115*time.Millisecond {
		t.Errorf("mean RTT = %v, want ~100-110ms around base 100ms", mean)
	}
}

func TestSampleOneWayIsHalfRTTScale(t *testing.T) {
	m, _ := NewModel(DefaultParams())
	r := rand.New(rand.NewSource(3))
	l := m.NewLinkWithBase(80 * time.Millisecond)
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		sum += l.SampleOneWay(r)
	}
	mean := sum / n
	if mean < 35*time.Millisecond || mean > 50*time.Millisecond {
		t.Errorf("mean one-way = %v, want ~40-45ms for 80ms base", mean)
	}
}

func TestNewLinkWithBaseClampsNegative(t *testing.T) {
	m, _ := NewModel(DefaultParams())
	if l := m.NewLinkWithBase(-time.Second); l.Base() != 0 {
		t.Errorf("negative base = %v, want 0", l.Base())
	}
}

func TestCloseLinksFasterThanFarLinks(t *testing.T) {
	// The property the whole paper rests on: links between nearby nodes
	// have lower RTT than intercontinental links, in distribution.
	m, _ := NewModel(DefaultParams())
	r := rand.New(rand.NewSource(4))
	frankfurt := geo.Coord{LatDeg: 50.11, LonDeg: 8.68}
	amsterdam := geo.Coord{LatDeg: 52.37, LonDeg: 4.90}
	sydney := geo.Coord{LatDeg: -33.87, LonDeg: 151.21}
	var nearWins int
	const trials = 500
	for i := 0; i < trials; i++ {
		near := m.NewLink(r, frankfurt, amsterdam)
		far := m.NewLink(r, frankfurt, sydney)
		if near.SampleRTT(r) < far.SampleRTT(r) {
			nearWins++
		}
	}
	if nearWins < trials*9/10 {
		t.Errorf("near link beat far link only %d/%d times", nearWins, trials)
	}
}

func TestEstimatorZeroValue(t *testing.T) {
	var e Estimator
	if e.Ready() || e.Samples() != 0 || e.RTT() != 0 || e.Var() != 0 || e.Min() != 0 {
		t.Error("zero-value Estimator not empty")
	}
}

func TestEstimatorIgnoresBadSamples(t *testing.T) {
	var e Estimator
	e.Observe(0)
	e.Observe(-time.Second)
	if e.Samples() != 0 {
		t.Errorf("bad samples counted: %d", e.Samples())
	}
}

func TestEstimatorConvergesToConstant(t *testing.T) {
	var e Estimator
	for i := 0; i < 50; i++ {
		e.Observe(40 * time.Millisecond)
	}
	if got := e.RTT(); got < 39*time.Millisecond || got > 41*time.Millisecond {
		t.Errorf("SRTT = %v, want ~40ms", got)
	}
	if e.Var() > time.Millisecond {
		t.Errorf("Var = %v, want ~0 for constant signal", e.Var())
	}
	if e.Min() != 40*time.Millisecond {
		t.Errorf("Min = %v, want 40ms", e.Min())
	}
}

func TestEstimatorMinTracksFloor(t *testing.T) {
	var e Estimator
	e.Observe(100 * time.Millisecond)
	e.Observe(80 * time.Millisecond)
	e.Observe(120 * time.Millisecond)
	if e.Min() != 80*time.Millisecond {
		t.Errorf("Min = %v, want 80ms", e.Min())
	}
	if !e.Ready() {
		t.Error("3 samples should be Ready")
	}
}

func TestEstimatorSmoothsSpikes(t *testing.T) {
	var e Estimator
	for i := 0; i < 20; i++ {
		e.Observe(50 * time.Millisecond)
	}
	e.Observe(500 * time.Millisecond) // one congestion spike
	// SRTT moves by at most alpha*(500-50) ≈ 56ms.
	if got := e.RTT(); got > 110*time.Millisecond {
		t.Errorf("SRTT after spike = %v; spike not smoothed", got)
	}
	if e.Min() != 50*time.Millisecond {
		t.Errorf("Min perturbed by spike: %v", e.Min())
	}
}

// Property: estimator SRTT always stays within the observed sample range.
func TestPropertyEstimatorWithinRange(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Estimator
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		n := 0
		for _, v := range raw {
			// Widen before adding 1: v+1 in uint16 arithmetic wraps to 0
			// at v=0xffff, producing a non-positive sample Observe
			// (correctly) ignores but the range bookkeeping would count.
			d := (time.Duration(v) + 1) * time.Millisecond
			e.Observe(d)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			n++
		}
		if n == 0 {
			return true
		}
		return e.RTT() >= lo-time.Millisecond && e.RTT() <= hi+time.Millisecond && e.Min() == lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSampleRTT(b *testing.B) {
	m, _ := NewModel(DefaultParams())
	r := rand.New(rand.NewSource(1))
	l := m.NewLinkWithBase(50 * time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.SampleRTT(r)
	}
}

func BenchmarkEstimatorObserve(b *testing.B) {
	var e Estimator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(time.Duration(i%100+1) * time.Millisecond)
	}
}
