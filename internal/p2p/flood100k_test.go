package p2p

import (
	"math/rand"
	"testing"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/sim"
)

// buildFloodNet wires n nodes into a ring plus random chords — degree
// ~2×chords — using only the public API. This is the raw-overlay build
// the 100k-scale tests use: it exercises the same relay machinery as the
// experiment harness without paying for protocol bootstrap.
func buildFloodNet(tb testing.TB, n, chords int) (*Network, []*Node) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Validation = ValidationNone
	cfg.PingInterval = 0
	net, err := NewNetwork(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	net.Reserve(n)
	placer := geo.DefaultPlacer()
	pr := net.Streams().Stream("placement")
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = net.AddNode(placer.Place(pr))
	}
	wire := rand.New(rand.NewSource(1))
	for i := range nodes {
		if err := net.Connect(nodes[i].ID(), nodes[(i+1)%n].ID()); err != nil {
			tb.Fatalf("ring connect: %v", err)
		}
		for c := 0; c < chords; c++ {
			j := wire.Intn(n)
			if j == i {
				continue
			}
			// Duplicate edges and full peers just skip; the graph stays
			// connected through the ring regardless.
			_ = net.Connect(nodes[i].ID(), nodes[j].ID())
		}
	}
	return net, nodes
}

// TestFlood100kFootprintBudget is the memory line the struct-of-arrays
// layout must hold: a 100k-node network floods one transaction to every
// node entirely in RAM, and afterwards the retained per-node hot state
// stays under a pinned bytes/node budget. Measured ~1.6 KB/node after a
// degree-16 flood (dominated by the adjacency table and sorted-peer
// cache at 24 B/edge-side each); pinned at 2 KB for slice growth-policy
// headroom across Go versions. The ceiling is what keeps the ROADMAP's
// million-node target plausible: node state for 1M nodes stays ~2 GB.
func TestFlood100kFootprintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node flood; skipped in -short")
	}
	const n = 100_000
	const budgetPerNode = 2048

	net, nodes := buildFloodNet(t, n, 7)
	reached := 0
	net.OnTxFirstSeen = func(NodeID, chain.Hash, sim.Time) { reached++ }

	for run := 0; run < 2; run++ {
		net.ResetInventory()
		reached = 0
		key, err := chain.GenerateKey(rand.New(rand.NewSource(int64(run) + 5)))
		if err != nil {
			t.Fatal(err)
		}
		tx := chain.Coinbase(uint64(run)+1, 1000, key.Address())
		if err := nodes[run].SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if reached != n {
			t.Fatalf("run %d: flood reached %d of %d nodes", run, reached, n)
		}
	}

	footprint := net.NodeFootprintBytes()
	perNode := footprint / net.NumNodes()
	t.Logf("node hot state: %d bytes total, %d bytes/node", footprint, perNode)
	if perNode > budgetPerNode {
		t.Fatalf("per-node hot state %d bytes exceeds pinned budget %d", perNode, budgetPerNode)
	}
}
