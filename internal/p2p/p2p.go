// Package p2p implements the simulated Bitcoin peer-to-peer network: nodes
// with the INV/GETDATA/TX relay protocol of Fig. 1 of the paper, latency-
// weighted message delivery, ping measurement, address gossip, and churn
// hooks. Neighbour selection policy is deliberately NOT here — the
// internal/topology package wires nodes together (randomly, by locality,
// or by ping time) on top of these primitives.
//
// The network is an overlay: any node may message any other (as any host
// can dial any other over IP); the peer graph only determines where
// gossip flows. That distinction is what lets BCBPT ping-probe discovered
// nodes before deciding to peer with them.
//
// Node state is laid out struct-of-arrays style: every node has a dense
// slot index, inventory state lives in generation-stamped flat arrays
// keyed by a network-wide dense hash index, and per-hash relay facts are
// bitsets over stable adjacency positions. ResetInventory is therefore a
// generation bump plus an O(active hashes) registry clear — not a
// per-node map rebuild — which is what lets a 100k+ node network run
// thousand-injection campaigns in bounded memory. The retired map-based
// layout is preserved as ReferenceNetwork/ReferenceNode (reference.go),
// the oracle that differential and fuzz tests pin this layout against,
// bit for bit.
package p2p

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/latency"
	"repro/internal/sim"
	"repro/internal/wire"
)

// NodeID identifies a node in the simulated network.
type NodeID uint64

// ValidationMode selects how much transaction validation nodes perform.
type ValidationMode int

const (
	// ValidationLight checks well-formedness and charges the virtual
	// verification cost, but skips ECDSA and UTXO lookups. The right
	// default for large propagation experiments: the *time* cost of
	// verification is still modelled, only the CPU burn is skipped.
	ValidationLight ValidationMode = iota
	// ValidationFull runs real signature and UTXO validation per node.
	ValidationFull
	// ValidationNone treats transactions as opaque payloads (inventory
	// propagation only).
	ValidationNone
)

// String implements fmt.Stringer.
func (v ValidationMode) String() string {
	switch v {
	case ValidationFull:
		return "full"
	case ValidationLight:
		return "light"
	case ValidationNone:
		return "none"
	default:
		return fmt.Sprintf("ValidationMode(%d)", int(v)) //bcbptlint:allow hotalloc — cold debug path, never on the flood hot path
	}
}

// RelayMode selects how transactions propagate between peers.
type RelayMode int

const (
	// RelayInv is the three-step INV/GETDATA/TX exchange of Fig. 1 —
	// the Bitcoin protocol of the paper's era.
	RelayInv RelayMode = iota
	// RelayDirect pushes the full transaction immediately without the
	// INV round trip — the pipelining of the paper's refs [9]/[10]
	// (Stathakopoulou's "faster Bitcoin network"). Used by the
	// direct-relay ablation.
	RelayDirect
)

// String implements fmt.Stringer.
func (m RelayMode) String() string {
	switch m {
	case RelayInv:
		return "inv"
	case RelayDirect:
		return "direct"
	default:
		return fmt.Sprintf("RelayMode(%d)", int(m)) //bcbptlint:allow hotalloc — cold debug path, never on the flood hot path
	}
}

// Config parameterises a Network.
type Config struct {
	// Latency configures the link model (eqs. 2-4).
	Latency latency.Params
	// VerifyCost converts transactions into virtual verification delay.
	VerifyCost chain.VerifyCostModel
	// Validation selects per-node validation depth.
	Validation ValidationMode
	// Relay selects the propagation exchange (default: RelayInv, Fig. 1).
	Relay RelayMode
	// MaxOutbound caps connections a node initiates (Bitcoin: 8).
	MaxOutbound int
	// MaxPeers caps total connections per node (Bitcoin: 125). It also
	// fixes the width of the per-hash holder bitsets, so it is immutable
	// for the network's lifetime.
	MaxPeers int
	// PingInterval is the keepalive ping period for connected peers.
	// Zero disables keepalive pings.
	PingInterval time.Duration
	// LossProb drops each delivered message independently with this
	// probability (failure injection; "errors such as loss of connection
	// and data corruption are expected", §V.B). 0 disables loss.
	LossProb float64
	// BaseUTXO, when set, seeds every node's ledger view (Full mode).
	BaseUTXO *chain.UTXOSet
	// Seed roots all randomness.
	Seed int64
}

// DefaultConfig returns the configuration used by the paper experiments.
func DefaultConfig() Config {
	return Config{
		Latency:      latency.DefaultParams(),
		VerifyCost:   chain.DefaultVerifyCost(),
		Validation:   ValidationLight,
		MaxOutbound:  8,
		MaxPeers:     125,
		PingInterval: 30 * time.Second,
		Seed:         1,
	}
}

// Network owns the scheduler, all nodes, and the link-latency state.
// It is single-threaded: all interaction happens through scheduled events.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	streams *sim.Streams
	model   *latency.Model

	nodes  map[NodeID]*Node
	nextID NodeID
	links  map[linkKey]latency.Link

	// slots is the dense node table: every live node occupies one slot
	// for its lifetime, freed slots recycle LIFO. In-flight deliveries
	// carry (slot, id) so dispatch never pays a map lookup, and flat
	// per-node measurement arrays key by slot.
	slots    []*Node
	slotFree []int32

	// invGen is the current inventory generation. Every per-node
	// inventory marker is a stamp compared against it: bumping the
	// generation invalidates all node state at once, which is all
	// ResetInventory does.
	invGen uint32
	// hashIdx assigns each distinct inventory hash of the current
	// generation a dense index; hashN counts them. The registry is the
	// only inventory state cleared on reset, and its size is the number
	// of in-flight hashes per run (one, for a measurement flood).
	hashIdx map[chain.Hash]int32
	hashN   int32
	// peerWords is the per-hash holder bitset width in uint64 words,
	// fixed by MaxPeers.
	peerWords int32

	// Hot-path random streams, resolved once at construction so delivery
	// never pays the Streams map lookup. Stream derivation is a pure
	// function of (seed, name), so pre-resolving changes nothing.
	lossRng     *rand.Rand
	deliveryRng *rand.Rand
	linksRng    *rand.Rand

	// deliveryPool and verifyPool recycle the payload structs behind the
	// scheduler's AfterCall events: a flood schedules one delivery per
	// in-flight message and one verify job per (node, tx) first-sight,
	// and pooling them (with the arena kernel's closure-free AfterCall)
	// keeps the steady-state flood at zero allocations per event instead
	// of one closure per (peer, hash) pair.
	deliveryPool []*delivery
	verifyPool   []*verifyJob
	probePool    []*probeJob

	// Message pools. Every hot-path message type is single-recipient and
	// consumed entirely inside handleMessage, so runDelivery returns them
	// to the pools right after dispatch: GETDATAs, keepalive pings/pongs,
	// and — since the flat-inventory layout — the per-recipient INV, TX
	// and BLOCK announcement wrappers too. Messages dropped by loss or a
	// vanished endpoint simply miss the pool — correctness never depends
	// on recycling.
	pingPool     []*wire.MsgPing
	pongPool     []*wire.MsgPong
	getDataPool  []*wire.MsgGetData
	invPool      []*wire.MsgInv
	txMsgPool    []*wire.MsgTx
	blockMsgPool []*wire.MsgBlock
	// pingPad is the shared keepalive/probe padding: pings carry Pad only
	// so their on-wire size matches the latency model's Mping, the bytes
	// are never read, and messages are immutable after send — so every
	// ping shares one zeroed buffer instead of allocating its own.
	pingPad []byte

	stats Stats

	// OnTxFirstSeen fires when a node accepts a transaction it had not
	// seen before (after verification delay). Measurement hooks in.
	OnTxFirstSeen func(node NodeID, tx chain.Hash, at sim.Time)
	// OnBlockFirstSeen fires when a node accepts a block it had not seen
	// before (after verification delay).
	OnBlockFirstSeen func(node NodeID, block chain.Hash, at sim.Time)
	// OnDisconnect fires after a connection is torn down, letting the
	// topology manager refill the peer's slots.
	OnDisconnect func(a, b NodeID)
}

type linkKey struct{ lo, hi NodeID }

func mkLinkKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{lo: a, hi: b}
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.MaxOutbound <= 0 || cfg.MaxPeers <= 0 {
		return nil, errors.New("p2p: MaxOutbound and MaxPeers must be positive")
	}
	if cfg.MaxOutbound > cfg.MaxPeers {
		return nil, fmt.Errorf("p2p: MaxOutbound %d > MaxPeers %d", cfg.MaxOutbound, cfg.MaxPeers)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("p2p: LossProb %g outside [0,1)", cfg.LossProb)
	}
	model, err := latency.NewModel(cfg.Latency)
	if err != nil {
		return nil, err
	}
	streams := sim.NewStreams(cfg.Seed)
	return &Network{
		cfg:         cfg,
		sched:       sim.NewScheduler(),
		streams:     streams,
		model:       model,
		nodes:       make(map[NodeID]*Node),
		links:       make(map[linkKey]latency.Link),
		invGen:      1,
		hashIdx:     make(map[chain.Hash]int32, 16),
		peerWords:   int32((cfg.MaxPeers + 63) / 64),
		lossRng:     streams.Stream("loss"),
		deliveryRng: streams.Stream("delivery"),
		linksRng:    streams.Stream("links"),
	}, nil
}

// Reserve pre-sizes the network's node and link tables for an expected
// population, so a large build does not pay incremental map and slice
// growth. Calling it after nodes exist, or not at all, only costs
// amortised growth — behaviour is identical either way.
func (n *Network) Reserve(nodes int) {
	if nodes <= 0 || len(n.nodes) > 0 {
		return
	}
	n.nodes = make(map[NodeID]*Node, nodes)
	// Links are created per communicating pair; seed the table at the
	// expected edge count for a degree-~2×MaxOutbound overlay.
	n.links = make(map[linkKey]latency.Link, nodes*2*max(n.cfg.MaxOutbound, 1))
	n.slots = make([]*Node, 0, nodes)
}

// Scheduler exposes the simulation clock and event queue.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Streams exposes the named random streams.
func (n *Network) Streams() *sim.Streams { return n.streams }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the message counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the message counters (used between measurement runs).
func (n *Network) ResetStats() { n.stats = Stats{} }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// NumNodes returns the number of live nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// SlotCap returns the dense node table size: every live node's Slot() is
// below it. Flat per-node arrays (measurement watch sets, partition
// maps) size themselves by it.
func (n *Network) SlotCap() int { return len(n.slots) }

// SlotOf returns the dense slot index for a live node ID.
func (n *Network) SlotOf(id NodeID) (int, bool) {
	node, ok := n.nodes[id]
	if !ok {
		return 0, false
	}
	return int(node.slot), true
}

// nodeAt returns the node occupying slot if it is still the node with
// the given ID — the churn-safe dense lookup used by in-flight events,
// whose slot may have been recycled by a later joiner.
func (n *Network) nodeAt(slot int32, id NodeID) *Node {
	if int(slot) < len(n.slots) {
		if nd := n.slots[slot]; nd != nil && nd.id == id {
			return nd
		}
	}
	return nil
}

// AddNode creates a node at the given location and returns it.
func (n *Network) AddNode(loc geo.Location) *Node {
	n.nextID++
	id := n.nextID
	node := &Node{
		id:  id,
		loc: loc,
		net: n,
	}
	if last := len(n.slotFree) - 1; last >= 0 {
		node.slot = n.slotFree[last]
		n.slotFree = n.slotFree[:last]
		n.slots[node.slot] = node
	} else {
		node.slot = int32(len(n.slots))
		n.slots = append(n.slots, node)
	}
	if n.cfg.Validation == ValidationFull {
		base := n.cfg.BaseUTXO
		if base == nil {
			base = chain.NewUTXOSet()
		}
		node.mempool = chain.NewMempool(base.Clone(), 0)
	}
	n.nodes[id] = node
	return node
}

// Node returns the node with the given ID, if it exists.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// NodeIDs returns all live node IDs in ascending order.
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := NodeID(1); id <= n.nextID; id++ {
		if _, ok := n.nodes[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// RemoveNode disconnects and deletes a node (a churn "leave" event).
// Removing an unknown node is a no-op. The node is deleted from the
// network before OnDisconnect fires, so refill logic running inside the
// callback can never reconnect to the departing node; peers are processed
// in sorted order for determinism.
func (n *Network) RemoveNode(id NodeID) {
	node, ok := n.nodes[id]
	if !ok {
		return
	}
	delete(n.nodes, id)
	n.slots[node.slot] = nil
	n.slotFree = append(n.slotFree, node.slot)
	for _, peerID := range node.Peers() {
		node.removePeer(peerID)
		if nb, ok := n.nodes[peerID]; ok {
			nb.removePeer(id)
		}
		if n.OnDisconnect != nil {
			n.OnDisconnect(id, peerID)
		}
	}
}

// --- dense hash registry ---

// hashSlot returns (assigning on first use) the dense index for an
// inventory hash in the current generation.
func (n *Network) hashSlot(h chain.Hash) int32 {
	if hi, ok := n.hashIdx[h]; ok {
		return hi
	}
	hi := n.hashN
	n.hashN++
	n.hashIdx[h] = hi
	return hi
}

// findHash returns the dense index for a hash without assigning one.
func (n *Network) findHash(h chain.Hash) (int32, bool) {
	hi, ok := n.hashIdx[h]
	return hi, ok
}

// ActiveHashes returns the number of distinct inventory hashes seen this
// generation — the width of every node's flat inventory arrays.
func (n *Network) ActiveHashes() int { return int(n.hashN) }

// link returns (creating on first use) the latency link between two nodes.
func (n *Network) link(a, b *Node) latency.Link {
	key := mkLinkKey(a.id, b.id)
	if l, ok := n.links[key]; ok {
		return l
	}
	l := n.model.NewLink(n.linksRng, a.loc.Coord, b.loc.Coord)
	n.links[key] = l
	return l
}

// BaseRTT returns the congestion-free round-trip time between two nodes —
// the simulator's ground truth, used by experiments to verify clustering
// quality. Returns false if either node is gone.
func (n *Network) BaseRTT(a, b NodeID) (time.Duration, bool) {
	na, ok := n.nodes[a]
	if !ok {
		return 0, false
	}
	nb, ok := n.nodes[b]
	if !ok {
		return 0, false
	}
	return n.link(na, nb).Base(), true
}

// delivery is the pooled payload behind one in-flight message event. The
// destination is addressed by (slot, id): dispatch is an array index plus
// a liveness check, not a map lookup.
type delivery struct {
	net     *Network
	src     NodeID
	dstSlot int32
	dstID   NodeID
	msg     wire.Message
}

// runDelivery is the static dispatch target for delivery events: no
// closure is allocated per message. The payload struct is returned to the
// pool before the message is handled, so handlers that immediately send
// (relay) reuse it for their own deliveries.
func runDelivery(a any) {
	d := a.(*delivery)
	n, src, dstSlot, dstID, msg := d.net, d.src, d.dstSlot, d.dstID, d.msg
	d.msg = nil
	n.deliveryPool = append(n.deliveryPool, d)
	// The destination may have churned away mid-flight.
	node := n.nodeAt(dstSlot, dstID)
	if node != nil {
		node.handleMessage(src, msg)
	} else {
		n.stats.Dropped++
	}
	n.recycleMessage(msg)
}

// recycleMessage returns a fully handled single-recipient message to its
// pool. Only types that handlers never retain are pooled: pings and pongs
// are read for their nonce, GETDATAs and INVs for their item list, and TX
// and BLOCK wrappers for their payload pointer (the payload itself is
// shared and immutable; the wrapper is not retained). Everything the
// topology layer might hold onto stays unpooled.
func (n *Network) recycleMessage(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgPing:
		m.Pad = nil
		n.pingPool = append(n.pingPool, m)
	case *wire.MsgPong:
		n.pongPool = append(n.pongPool, m)
	case *wire.MsgGetData:
		m.Items = m.Items[:0]
		n.getDataPool = append(n.getDataPool, m)
	case *wire.MsgInv:
		m.Items = m.Items[:0]
		n.invPool = append(n.invPool, m)
	case *wire.MsgTx:
		m.Tx = nil
		n.txMsgPool = append(n.txMsgPool, m)
	case *wire.MsgBlock:
		m.Block = nil
		n.blockMsgPool = append(n.blockMsgPool, m)
	}
}

// newPing pops a pooled ping (or allocates) with the shared pad.
func (n *Network) newPing(nonce uint64, padBytes int) *wire.MsgPing {
	pad := n.sharedPad(padBytes)
	if last := len(n.pingPool) - 1; last >= 0 {
		m := n.pingPool[last]
		n.pingPool = n.pingPool[:last]
		m.Nonce, m.Pad = nonce, pad
		return m
	}
	return &wire.MsgPing{Nonce: nonce, Pad: pad}
}

// newPong pops a pooled pong (or allocates).
func (n *Network) newPong(nonce uint64) *wire.MsgPong {
	if last := len(n.pongPool) - 1; last >= 0 {
		m := n.pongPool[last]
		n.pongPool = n.pongPool[:last]
		m.Nonce = nonce
		return m
	}
	return &wire.MsgPong{Nonce: nonce}
}

// newGetData pops a pooled, zero-length GETDATA (or allocates); callers
// append their wanted items to Items.
func (n *Network) newGetData() *wire.MsgGetData {
	if last := len(n.getDataPool) - 1; last >= 0 {
		m := n.getDataPool[last]
		n.getDataPool = n.getDataPool[:last]
		return m
	}
	return &wire.MsgGetData{}
}

// newInv pops a pooled single-item INV (or allocates).
func (n *Network) newInv(t wire.InvType, h chain.Hash) *wire.MsgInv {
	if last := len(n.invPool) - 1; last >= 0 {
		m := n.invPool[last]
		n.invPool = n.invPool[:last]
		m.Items = append(m.Items, wire.InvVect{Type: t, Hash: h})
		return m
	}
	return &wire.MsgInv{Items: []wire.InvVect{{Type: t, Hash: h}}}
}

// newTxMsg pops a pooled TX wrapper (or allocates).
func (n *Network) newTxMsg(tx *chain.Tx) *wire.MsgTx {
	if last := len(n.txMsgPool) - 1; last >= 0 {
		m := n.txMsgPool[last]
		n.txMsgPool = n.txMsgPool[:last]
		m.Tx = tx
		return m
	}
	return &wire.MsgTx{Tx: tx}
}

// newBlockMsg pops a pooled BLOCK wrapper (or allocates).
func (n *Network) newBlockMsg(b *chain.Block) *wire.MsgBlock {
	if last := len(n.blockMsgPool) - 1; last >= 0 {
		m := n.blockMsgPool[last]
		n.blockMsgPool = n.blockMsgPool[:last]
		m.Block = b
		return m
	}
	return &wire.MsgBlock{Block: b}
}

// sharedPad returns a zeroed scratch slice of the given size, grown once
// and shared by every ping in flight (ping padding is write-never data).
func (n *Network) sharedPad(size int) []byte {
	if size > len(n.pingPad) {
		n.pingPad = make([]byte, size)
	}
	return n.pingPad[:size]
}

// newDelivery pops a pooled payload (or allocates on first use).
func (n *Network) newDelivery(src NodeID, dstSlot int32, dstID NodeID, msg wire.Message) *delivery {
	if last := len(n.deliveryPool) - 1; last >= 0 {
		d := n.deliveryPool[last]
		n.deliveryPool = n.deliveryPool[:last]
		d.src, d.dstSlot, d.dstID, d.msg = src, dstSlot, dstID, msg
		return d
	}
	return &delivery{net: n, src: src, dstSlot: dstSlot, dstID: dstID, msg: msg}
}

// deliver schedules msg to arrive at dst after serialization on the
// sender's uplink plus the link's sampled one-way delay. The uplink is a
// serial resource: concurrent sends queue behind each other (the rate(r)
// and queuing terms of eqs. 2 and 4 applied to all traffic, not just
// pings) — this is what makes announcing to many peers progressively
// slower for the later ones.
func (n *Network) deliver(src, dst *Node, msg wire.Message) {
	size := wire.EncodedSize(msg)
	n.stats.count(msg.Command(), size)
	if n.cfg.LossProb > 0 && n.lossRng.Float64() < n.cfg.LossProb {
		n.stats.Lost++
		return
	}
	txTime := time.Duration(float64(size) / n.cfg.Latency.RateBytesPerSec * float64(time.Second))
	start := n.sched.Now()
	if src.uplinkFreeAt > start {
		start = src.uplinkFreeAt
	}
	src.uplinkFreeAt = start + txTime
	delay := (start + txTime - n.sched.Now()) + n.link(src, dst).SampleOneWay(n.deliveryRng)
	n.sched.AfterCall(delay, runDelivery, n.newDelivery(src.id, dst.slot, dst.id, msg))
}

// send looks up both endpoints and delivers; it silently drops if either
// endpoint is gone (matching a TCP RST on a dead host).
func (n *Network) send(from NodeID, to NodeID, msg wire.Message) {
	src, ok := n.nodes[from]
	if !ok {
		n.stats.Dropped++
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.stats.Dropped++
		return
	}
	n.deliver(src, dst, msg)
}

// Connection errors.
var (
	ErrSelfConnect   = errors.New("p2p: node cannot connect to itself")
	ErrAlreadyPeers  = errors.New("p2p: already connected")
	ErrPeerCapacity  = errors.New("p2p: peer at capacity")
	ErrUnknownNode   = errors.New("p2p: unknown node")
	ErrOutboundLimit = errors.New("p2p: outbound limit reached")
)

// Connect establishes a connection initiated by a to b. The handshake
// (version/verack) is charged one RTT plus message costs; the connection
// becomes usable immediately for the initiator's bookkeeping, matching
// the simulator granularity of the paper.
func (n *Network) Connect(a, b NodeID) error {
	return n.connect(a, b, true)
}

// ConnectUnbounded is Connect without the initiator's outbound cap —
// measurement instrumentation (the degree-sweep experiments wire the
// measuring node to arbitrary connection counts). MaxPeers still applies
// on both sides.
func (n *Network) ConnectUnbounded(a, b NodeID) error {
	return n.connect(a, b, false)
}

func (n *Network) connect(a, b NodeID, enforceOutbound bool) error {
	if a == b {
		return ErrSelfConnect
	}
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, b)
	}
	if na.peerPos(b) >= 0 {
		return ErrAlreadyPeers
	}
	if enforceOutbound && na.nOut >= n.cfg.MaxOutbound {
		return ErrOutboundLimit
	}
	if na.nPeers >= n.cfg.MaxPeers {
		return ErrOutboundLimit
	}
	if nb.nPeers >= n.cfg.MaxPeers {
		return ErrPeerCapacity
	}
	// Charge the handshake: version + verack each way.
	n.stats.count(wire.CmdVersion, versionSize)
	n.stats.count(wire.CmdVerack, verackSize)
	n.stats.count(wire.CmdVersion, versionSize)
	n.stats.count(wire.CmdVerack, verackSize)
	na.addPeer(nb, true)
	nb.addPeer(na, false)
	return nil
}

// approximate handshake frame sizes (header + typical payload).
const (
	versionSize = 13 + 4 + 26 + 4 + 1 + 10
	verackSize  = 13
)

// Disconnect tears down the connection between a and b (no-op if absent).
func (n *Network) Disconnect(a, b NodeID) {
	na, ok := n.nodes[a]
	if !ok {
		return
	}
	if na.peerPos(b) < 0 {
		return
	}
	n.teardown(na, b)
}

// teardown removes the edge from both sides and fires OnDisconnect.
func (n *Network) teardown(na *Node, b NodeID) {
	na.removePeer(b)
	if nb, ok := n.nodes[b]; ok {
		nb.removePeer(na.id)
	}
	if n.OnDisconnect != nil {
		n.OnDisconnect(na.id, b)
	}
}

// verifyJob is the pooled payload behind a deferred verification event:
// a transaction or block whose modelled verification delay has elapsed.
type verifyJob struct {
	net   *Network
	node  NodeID
	from  NodeID
	tx    *chain.Tx
	block *chain.Block
}

// runVerify is the static dispatch target for verification events.
func runVerify(a any) {
	j := a.(*verifyJob)
	n, nodeID, from, tx, block := j.net, j.node, j.from, j.tx, j.block
	j.tx, j.block = nil, nil
	n.verifyPool = append(n.verifyPool, j)
	node, ok := n.nodes[nodeID]
	if !ok {
		return
	}
	if tx != nil {
		_ = node.acceptTx(tx, from) // invalid txs die here, by design
		return
	}
	_ = node.acceptBlock(block, from)
}

// newVerifyJob pops a pooled payload (or allocates on first use).
func (n *Network) newVerifyJob(node, from NodeID, tx *chain.Tx, block *chain.Block) *verifyJob {
	if last := len(n.verifyPool) - 1; last >= 0 {
		j := n.verifyPool[last]
		n.verifyPool = n.verifyPool[:last]
		j.node, j.from, j.tx, j.block = node, from, tx, block
		return j
	}
	return &verifyJob{net: n, node: node, from: from, tx: tx, block: block}
}

// probeJob is the pooled payload behind one scheduled ProbeN ping: the
// churn-safe (slot, id) handle of the probing node, its target, and the
// completion callback shared by all pings of one ProbeN call.
type probeJob struct {
	net    *Network
	slot   int32
	id     NodeID
	target NodeID
	onPong func(time.Duration)
}

// runProbe is the static dispatch target for ProbeN's spaced pings.
func runProbe(a any) {
	j := a.(*probeJob)
	n, slot, id, target, onPong := j.net, j.slot, j.id, j.target, j.onPong
	j.onPong = nil
	n.probePool = append(n.probePool, j)
	node := n.nodeAt(slot, id)
	if node == nil {
		return // prober churned out; the probe is simply lost
	}
	node.Probe(target, onPong)
}

// newProbeJob pops a pooled payload (or allocates on first use).
func (n *Network) newProbeJob(slot int32, id, target NodeID, onPong func(time.Duration)) *probeJob {
	if last := len(n.probePool) - 1; last >= 0 {
		j := n.probePool[last]
		n.probePool = n.probePool[:last]
		j.slot, j.id, j.target, j.onPong = slot, id, target, onPong
		return j
	}
	return &probeJob{net: n, slot: slot, id: id, target: target, onPong: onPong}
}

// ResetInventory clears every node's seen-transaction state. Measurement
// harnesses call this between runs so memory stays bounded over thousands
// of injected transactions. With the generation-stamped layout this is a
// generation bump plus an O(active hashes) registry clear: no per-node
// work at all outside ValidationFull mode, whose mempools are real
// containers that must be drained.
func (n *Network) ResetInventory() {
	n.invGen++
	if n.invGen == 0 {
		// Generation counter wrapped (after ~4 billion resets): stale
		// stamps could alias the new generation, so hard-reset every
		// node's arrays once and restart from generation 1.
		n.invGen = 1
		for _, node := range n.slots {
			if node != nil {
				node.inv = nodeInv{}
			}
		}
	}
	clear(n.hashIdx)
	n.hashN = 0
	if n.cfg.Validation == ValidationFull {
		for _, node := range n.slots {
			if node == nil || node.mempool == nil {
				continue
			}
			for _, id := range node.mempool.IDs() {
				node.mempool.Remove(id)
			}
		}
	}
}

// StartKeepalive begins the periodic peer-ping service configured by
// Config.PingInterval: every interval, every node pings each of its
// peers, feeding the RTT estimators that cluster maintenance reads (the
// paper's repeated measurement requirement, §IV.A). Returns nil when
// PingInterval is zero. Stop the returned ticker to halt the service —
// otherwise the event queue never drains (use RunUntil).
func (n *Network) StartKeepalive() *sim.Ticker {
	if n.cfg.PingInterval <= 0 {
		return nil
	}
	return n.sched.NewTicker(n.cfg.PingInterval, func() {
		for _, id := range n.NodeIDs() {
			node, ok := n.nodes[id]
			if !ok {
				continue
			}
			for _, ref := range node.sortedPeers() {
				node.Probe(ref.id, nil)
			}
		}
	})
}

// Run drains the event queue.
func (n *Network) Run() error { return n.sched.Run() }

// RunUntil processes events up to the virtual-time limit, polling ctx so
// a long run — a large BCBPT bootstrap, a deep measurement campaign — is
// promptly cancellable. On cancellation it returns an error wrapping
// ctx.Err() with the virtual time reached; pending events stay queued.
func (n *Network) RunUntil(ctx context.Context, limit sim.Time) error {
	if err := n.sched.RunUntilCtx(ctx, limit); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("p2p: run interrupted at t=%v: %w", n.sched.Now(), err)
		}
		return err
	}
	return nil
}

// Close releases a network that will not run again: it stops the
// scheduler, drops every pending event (whose closures otherwise pin
// nodes and messages live), and detaches the measurement and topology
// hooks. Build harnesses call it on their error paths so an abandoned
// half-bootstrapped network cannot keep state alive or resume by
// accident. Close is idempotent; node state stays readable.
func (n *Network) Close() {
	n.sched.Stop()
	n.sched.Clear()
	n.OnTxFirstSeen = nil
	n.OnBlockFirstSeen = nil
	n.OnDisconnect = nil
}
