// Package p2p implements the simulated Bitcoin peer-to-peer network: nodes
// with the INV/GETDATA/TX relay protocol of Fig. 1 of the paper, latency-
// weighted message delivery, ping measurement, address gossip, and churn
// hooks. Neighbour selection policy is deliberately NOT here — the
// internal/topology package wires nodes together (randomly, by locality,
// or by ping time) on top of these primitives.
//
// The network is an overlay: any node may message any other (as any host
// can dial any other over IP); the peer graph only determines where
// gossip flows. That distinction is what lets BCBPT ping-probe discovered
// nodes before deciding to peer with them.
//
// Node state is laid out struct-of-arrays style: every node has a dense
// slot index, inventory state lives in generation-stamped flat arrays
// keyed by a network-wide dense hash index, and per-hash relay facts are
// bitsets over stable adjacency positions. ResetInventory is therefore a
// generation bump plus an O(active hashes) registry clear — not a
// per-node map rebuild — which is what lets a 100k+ node network run
// thousand-injection campaigns in bounded memory. The retired map-based
// layout is preserved as ReferenceNetwork/ReferenceNode (reference.go),
// the oracle that differential and fuzz tests pin this layout against,
// bit for bit.
package p2p

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// NodeID identifies a node in the simulated network.
type NodeID uint64

// ValidationMode selects how much transaction validation nodes perform.
type ValidationMode int

const (
	// ValidationLight checks well-formedness and charges the virtual
	// verification cost, but skips ECDSA and UTXO lookups. The right
	// default for large propagation experiments: the *time* cost of
	// verification is still modelled, only the CPU burn is skipped.
	ValidationLight ValidationMode = iota
	// ValidationFull runs real signature and UTXO validation per node.
	ValidationFull
	// ValidationNone treats transactions as opaque payloads (inventory
	// propagation only).
	ValidationNone
)

// String implements fmt.Stringer.
func (v ValidationMode) String() string {
	switch v {
	case ValidationFull:
		return "full"
	case ValidationLight:
		return "light"
	case ValidationNone:
		return "none"
	default:
		return fmt.Sprintf("ValidationMode(%d)", int(v)) //bcbptlint:allow hotalloc — cold debug path, never on the flood hot path
	}
}

// RelayMode selects how transactions propagate between peers.
type RelayMode int

const (
	// RelayInv is the three-step INV/GETDATA/TX exchange of Fig. 1 —
	// the Bitcoin protocol of the paper's era.
	RelayInv RelayMode = iota
	// RelayDirect pushes the full transaction immediately without the
	// INV round trip — the pipelining of the paper's refs [9]/[10]
	// (Stathakopoulou's "faster Bitcoin network"). Used by the
	// direct-relay ablation.
	RelayDirect
)

// String implements fmt.Stringer.
func (m RelayMode) String() string {
	switch m {
	case RelayInv:
		return "inv"
	case RelayDirect:
		return "direct"
	default:
		return fmt.Sprintf("RelayMode(%d)", int(m)) //bcbptlint:allow hotalloc — cold debug path, never on the flood hot path
	}
}

// Config parameterises a Network.
type Config struct {
	// Latency configures the link model (eqs. 2-4).
	Latency latency.Params
	// VerifyCost converts transactions into virtual verification delay.
	VerifyCost chain.VerifyCostModel
	// Validation selects per-node validation depth.
	Validation ValidationMode
	// Relay selects the propagation exchange (default: RelayInv, Fig. 1).
	Relay RelayMode
	// MaxOutbound caps connections a node initiates (Bitcoin: 8).
	MaxOutbound int
	// MaxPeers caps total connections per node (Bitcoin: 125). It also
	// fixes the width of the per-hash holder bitsets, so it is immutable
	// for the network's lifetime.
	MaxPeers int
	// PingInterval is the keepalive ping period for connected peers.
	// Zero disables keepalive pings.
	PingInterval time.Duration
	// LossProb drops each delivered message independently with this
	// probability (failure injection; "errors such as loss of connection
	// and data corruption are expected", §V.B). 0 disables loss.
	LossProb float64
	// BaseUTXO, when set, seeds every node's ledger view (Full mode).
	BaseUTXO *chain.UTXOSet
	// Seed roots all randomness.
	Seed int64
}

// DefaultConfig returns the configuration used by the paper experiments.
func DefaultConfig() Config {
	return Config{
		Latency:      latency.DefaultParams(),
		VerifyCost:   chain.DefaultVerifyCost(),
		Validation:   ValidationLight,
		MaxOutbound:  8,
		MaxPeers:     125,
		PingInterval: 30 * time.Second,
		Seed:         1,
	}
}

// Network owns the scheduler, all nodes, and the link-latency state.
// It is single-threaded: all interaction happens through scheduled events.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	streams *sim.Streams
	model   *latency.Model

	nodes  map[NodeID]*Node
	nextID NodeID
	links  map[linkKey]latency.Link

	// slots is the dense node table: every live node occupies one slot
	// for its lifetime, freed slots recycle LIFO. In-flight deliveries
	// carry (slot, id) so dispatch never pays a map lookup, and flat
	// per-node measurement arrays key by slot.
	slots    []*Node
	slotFree []int32

	// invGen is the current inventory generation. Every per-node
	// inventory marker is a stamp compared against it: bumping the
	// generation invalidates all node state at once, which is all
	// ResetInventory does.
	invGen uint32
	// hashIdx assigns each distinct inventory hash of the current
	// generation a dense index; hashN counts them. The registry is the
	// only inventory state cleared on reset, and its size is the number
	// of in-flight hashes per run (one, for a measurement flood).
	hashIdx map[chain.Hash]int32
	hashN   int32
	// peerWords is the per-hash holder bitset width in uint64 words,
	// fixed by MaxPeers.
	peerWords int32

	// serial is the network's default dispatch context: the scheduler,
	// keyed RNG scratch, message/payload pools and traffic counters every
	// node routes through in serial mode. Parallel mode (see parallel.go)
	// gives each partition its own context so the flood hot path stays
	// lock-free and allocation-free; a node always dispatches through
	// node.dctx, which points here unless parallel dispatch is enabled.
	serial dispatchCtx

	// par is non-nil while conservative parallel dispatch is enabled.
	par *parallelState
	// tracer is non-nil while event tracing is enabled (EnableTrace).
	// Dispatch contexts hold their own shard pointers; this reference
	// exists so enabling parallel dispatch mid-trace re-shards correctly.
	tracer *obs.Tracer
	// hashMu guards hashIdx/hashN in parallel mode only (serial dispatch
	// is single-threaded and skips it). Index assignment order does not
	// affect observables — indices only key flat arrays.
	hashMu sync.Mutex
	// linksMu guards links in parallel mode only. Link parameters are
	// keyed by the endpoint pair, so creation order does not matter.
	linksMu sync.RWMutex

	// OnTxFirstSeen fires when a node accepts a transaction it had not
	// seen before (after verification delay). Measurement hooks in.
	OnTxFirstSeen func(node NodeID, tx chain.Hash, at sim.Time)
	// OnBlockFirstSeen fires when a node accepts a block it had not seen
	// before (after verification delay).
	OnBlockFirstSeen func(node NodeID, block chain.Hash, at sim.Time)
	// OnDisconnect fires after a connection is torn down, letting the
	// topology manager refill the peer's slots.
	OnDisconnect func(a, b NodeID)
}

type linkKey struct{ lo, hi NodeID }

func mkLinkKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{lo: a, hi: b}
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.MaxOutbound <= 0 || cfg.MaxPeers <= 0 {
		return nil, errors.New("p2p: MaxOutbound and MaxPeers must be positive")
	}
	if cfg.MaxOutbound > cfg.MaxPeers {
		return nil, fmt.Errorf("p2p: MaxOutbound %d > MaxPeers %d", cfg.MaxOutbound, cfg.MaxPeers)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("p2p: LossProb %g outside [0,1)", cfg.LossProb)
	}
	model, err := latency.NewModel(cfg.Latency)
	if err != nil {
		return nil, err
	}
	streams := sim.NewStreams(cfg.Seed)
	n := &Network{
		cfg:       cfg,
		sched:     sim.NewScheduler(),
		streams:   streams,
		model:     model,
		nodes:     make(map[NodeID]*Node),
		links:     make(map[linkKey]latency.Link),
		invGen:    1,
		hashIdx:   make(map[chain.Hash]int32, 16),
		peerWords: int32((cfg.MaxPeers + 63) / 64),
	}
	n.serial.init(n.sched, 0)
	return n, nil
}

// Reserve pre-sizes the network's node and link tables for an expected
// population, so a large build does not pay incremental map and slice
// growth. Calling it after nodes exist, or not at all, only costs
// amortised growth — behaviour is identical either way.
func (n *Network) Reserve(nodes int) {
	if nodes <= 0 || len(n.nodes) > 0 {
		return
	}
	n.nodes = make(map[NodeID]*Node, nodes)
	// Links are created per communicating pair; seed the table at the
	// expected edge count for a degree-~2×MaxOutbound overlay.
	n.links = make(map[linkKey]latency.Link, nodes*2*max(n.cfg.MaxOutbound, 1))
	n.slots = make([]*Node, 0, nodes)
}

// Scheduler exposes the simulation clock and event queue.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Streams exposes the named random streams.
func (n *Network) Streams() *sim.Streams { return n.streams }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the message counters, summed across
// dispatch contexts. Partition counters are flat arrays merged by
// addition, so the parallel total is exact, not approximate.
func (n *Network) Stats() Stats {
	s := n.serial.stats
	if n.par != nil {
		for _, dc := range n.par.parts {
			s.add(&dc.stats)
		}
	}
	return s
}

// EnableTrace attaches an event tracer: message send/loss/deliver/drop
// and inventory first-sight events are recorded into per-context ring
// shards, stamped with simulation time. Shard 0 belongs to the driving
// goroutine (serial dispatch, window control, measurement hooks);
// partition i of an enabled parallel dispatch records on shard 1+i, so
// recording is lock-free under any worker count. Tracing is purely
// observational: enabling it changes no schedule, no RNG draw, and no
// output byte — the golden-CSV tests pin that.
//
// Enable between runs, not mid-flood. Passing nil disables.
func (n *Network) EnableTrace(t *obs.Tracer) {
	if t == nil {
		n.DisableTrace()
		return
	}
	n.tracer = t
	n.serial.trace = t.Shard(0)
	if n.par != nil {
		for i, dc := range n.par.parts {
			dc.trace = t.Shard(1 + i)
		}
	}
	n.wireWindowTrace()
}

// DisableTrace detaches the tracer. Recorded events remain readable on
// the tracer itself.
func (n *Network) DisableTrace() {
	n.tracer = nil
	n.serial.trace = nil
	if n.par != nil {
		for _, dc := range n.par.parts {
			dc.trace = nil
		}
	}
	n.wireWindowTrace()
}

// ResetStats zeroes the message counters (used between measurement runs).
func (n *Network) ResetStats() {
	n.serial.stats = Stats{}
	if n.par != nil {
		for _, dc := range n.par.parts {
			dc.stats = Stats{}
		}
	}
}

// Now returns the current virtual time. Valid between runs in parallel
// mode (when all partition clocks agree); event handlers use their own
// partition clock via Node.now instead.
func (n *Network) Now() sim.Time {
	if n.par != nil {
		return n.par.ws.Now()
	}
	return n.sched.Now()
}

// NumNodes returns the number of live nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// SlotCap returns the dense node table size: every live node's Slot() is
// below it. Flat per-node arrays (measurement watch sets, partition
// maps) size themselves by it.
func (n *Network) SlotCap() int { return len(n.slots) }

// SlotOf returns the dense slot index for a live node ID.
func (n *Network) SlotOf(id NodeID) (int, bool) {
	node, ok := n.nodes[id]
	if !ok {
		return 0, false
	}
	return int(node.slot), true
}

// nodeAt returns the node occupying slot if it is still the node with
// the given ID — the churn-safe dense lookup used by in-flight events,
// whose slot may have been recycled by a later joiner.
func (n *Network) nodeAt(slot int32, id NodeID) *Node {
	if int(slot) < len(n.slots) {
		if nd := n.slots[slot]; nd != nil && nd.id == id {
			return nd
		}
	}
	return nil
}

// AddNode creates a node at the given location and returns it.
func (n *Network) AddNode(loc geo.Location) *Node {
	if n.par != nil {
		panic("p2p: AddNode while parallel dispatch enabled")
	}
	n.nextID++
	id := n.nextID
	node := &Node{
		id:   id,
		loc:  loc,
		net:  n,
		dctx: &n.serial,
	}
	if last := len(n.slotFree) - 1; last >= 0 {
		node.slot = n.slotFree[last]
		n.slotFree = n.slotFree[:last]
		n.slots[node.slot] = node
	} else {
		node.slot = int32(len(n.slots))
		n.slots = append(n.slots, node)
	}
	if n.cfg.Validation == ValidationFull {
		base := n.cfg.BaseUTXO
		if base == nil {
			base = chain.NewUTXOSet()
		}
		node.mempool = chain.NewMempool(base.Clone(), 0)
	}
	n.nodes[id] = node
	return node
}

// Node returns the node with the given ID, if it exists.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// NodeIDs returns all live node IDs in ascending order.
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := NodeID(1); id <= n.nextID; id++ {
		if _, ok := n.nodes[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// RemoveNode disconnects and deletes a node (a churn "leave" event).
// Removing an unknown node is a no-op. The node is deleted from the
// network before OnDisconnect fires, so refill logic running inside the
// callback can never reconnect to the departing node; peers are processed
// in sorted order for determinism.
func (n *Network) RemoveNode(id NodeID) {
	if n.par != nil {
		panic("p2p: RemoveNode while parallel dispatch enabled")
	}
	node, ok := n.nodes[id]
	if !ok {
		return
	}
	delete(n.nodes, id)
	n.slots[node.slot] = nil
	n.slotFree = append(n.slotFree, node.slot)
	for _, peerID := range node.Peers() {
		node.removePeer(peerID)
		if nb, ok := n.nodes[peerID]; ok {
			nb.removePeer(id)
		}
		if n.OnDisconnect != nil {
			n.OnDisconnect(id, peerID)
		}
	}
}

// --- dense hash registry ---

// hashSlot returns (assigning on first use) the dense index for an
// inventory hash in the current generation. In parallel mode the registry
// is the one piece of inventory state shared across partitions, so it
// takes a mutex there; which partition wins an assignment race only
// decides which dense index a hash gets, and indices never affect
// observables — they only key flat arrays.
func (n *Network) hashSlot(h chain.Hash) int32 {
	if n.par == nil {
		if hi, ok := n.hashIdx[h]; ok {
			return hi
		}
		hi := n.hashN
		n.hashN++
		n.hashIdx[h] = hi
		return hi
	}
	n.hashMu.Lock()
	hi, ok := n.hashIdx[h]
	if !ok {
		hi = n.hashN
		n.hashN++
		n.hashIdx[h] = hi
	}
	n.hashMu.Unlock()
	return hi
}

// findHash returns the dense index for a hash without assigning one.
func (n *Network) findHash(h chain.Hash) (int32, bool) {
	if n.par == nil {
		hi, ok := n.hashIdx[h]
		return hi, ok
	}
	n.hashMu.Lock()
	hi, ok := n.hashIdx[h]
	n.hashMu.Unlock()
	return hi, ok
}

// ActiveHashes returns the number of distinct inventory hashes seen this
// generation — the width of every node's flat inventory arrays.
func (n *Network) ActiveHashes() int { return int(n.hashN) }

// link returns (creating on first use) the latency link between two
// nodes. Link parameters are drawn from a keyed source derived from the
// (seed, endpoint pair), not from a shared sequential stream, so a link's
// last-mile draw is independent of creation order — the property that
// lets partitions create links concurrently (and lets serial and parallel
// runs agree bit for bit). The lock is taken in parallel mode only; the
// slow path runs once per pair and is pre-warmed for all peer edges when
// parallel dispatch is enabled.
func (n *Network) link(a, b *Node) latency.Link {
	key := mkLinkKey(a.id, b.id)
	if n.par == nil {
		if l, ok := n.links[key]; ok {
			return l
		}
		l := n.makeLink(key, a, b)
		n.links[key] = l
		return l
	}
	n.linksMu.RLock()
	l, ok := n.links[key]
	n.linksMu.RUnlock()
	if ok {
		return l
	}
	n.linksMu.Lock()
	defer n.linksMu.Unlock()
	if l, ok := n.links[key]; ok {
		return l
	}
	l = n.makeLink(key, a, b)
	n.links[key] = l
	return l
}

// makeLink draws the link's latency parameters from the pair-keyed source.
func (n *Network) makeLink(key linkKey, a, b *Node) latency.Link {
	var ks sim.KeyedSource
	ks.SeedKey(sim.MixKey3(uint64(n.cfg.Seed)^linkKeyTag, uint64(key.lo), uint64(key.hi)))
	// Cold path: runs once per node pair at link creation.
	r := rand.New(&ks)
	return n.model.NewLink(r, a.loc.Coord, b.loc.Coord)
}

// BaseRTT returns the congestion-free round-trip time between two nodes —
// the simulator's ground truth, used by experiments to verify clustering
// quality. Returns false if either node is gone.
func (n *Network) BaseRTT(a, b NodeID) (time.Duration, bool) {
	na, ok := n.nodes[a]
	if !ok {
		return 0, false
	}
	nb, ok := n.nodes[b]
	if !ok {
		return 0, false
	}
	return n.link(na, nb).Base(), true
}

// delivery is the pooled payload behind one in-flight message event. The
// destination is addressed by (slot, id): dispatch is an array index plus
// a liveness check, not a map lookup.
type delivery struct {
	net     *Network
	src     NodeID
	dstSlot int32
	dstID   NodeID
	msg     wire.Message
}

// runDelivery is the static dispatch target for delivery events: no
// closure is allocated per message. The payload struct is returned to the
// destination's dispatch context before the message is handled, so
// handlers that immediately send (relay) reuse it for their own
// deliveries. Cross-partition deliveries migrate the payload from the
// sender's pool to the receiver's — pool sizes fluctuate but total
// in-flight count bounds them, so steady state still allocates nothing.
func runDelivery(a any) {
	d := a.(*delivery)
	n, src, dstSlot, dstID, msg := d.net, d.src, d.dstSlot, d.dstID, d.msg
	d.msg = nil
	// The destination may have churned away mid-flight (serial mode only;
	// parallel mode forbids topology mutation).
	node := n.nodeAt(dstSlot, dstID)
	//bcbptlint:allow partiso — churned-destination fallback: node removal is serial-only, so this branch cannot run mid-window
	dc := &n.serial
	if node != nil {
		dc = node.dctx
	}
	dc.deliveryPool = append(dc.deliveryPool, d)
	if node != nil {
		if dc.trace != nil {
			dc.trace.Record(obs.Event{At: dc.sched.Now(), Kind: obs.KindDeliver, Code: uint8(msg.Command()),
				P1: uint64(src), P2: uint64(dstID)})
		}
		node.handleMessage(src, msg)
	} else {
		dc.stats.Dropped++
		if dc.trace != nil {
			dc.trace.Record(obs.Event{At: dc.sched.Now(), Kind: obs.KindDrop, Code: uint8(msg.Command()),
				P1: uint64(src), P2: uint64(dstID)})
		}
	}
	dc.recycleMessage(msg)
}

// deliver schedules msg to arrive at dst after serialization on the
// sender's uplink plus the link's sampled one-way delay. The uplink is a
// serial resource: concurrent sends queue behind each other (the rate(r)
// and queuing terms of eqs. 2 and 4 applied to all traffic, not just
// pings) — this is what makes announcing to many peers progressively
// slower for the later ones.
//
// Every random draw here is keyed by (seed, sender, per-sender send
// sequence) rather than pulled from a shared sequential stream: the loss
// coin and the delay sample for a given send are the same values no
// matter what order sends execute in, which is what makes the parallel
// kernel's per-partition dispatch bit-identical to serial. deliver always
// runs in the sending node's dispatch context (handlers execute in their
// own partition); a cross-partition destination is staged at the window
// barrier with (sender, sendSeq) as the canonical tie-break key.
func (n *Network) deliver(src, dst *Node, msg wire.Message) {
	dc := src.dctx
	size := wire.EncodedSize(msg)
	dc.stats.count(msg.Command(), size)
	if dc.trace != nil {
		dc.trace.Record(obs.Event{At: dc.sched.Now(), Kind: obs.KindSend, Code: uint8(msg.Command()),
			P1: uint64(src.id), P2: uint64(dst.id), P3: uint64(size)})
	}
	src.sendSeq++
	dc.ksrc.SeedKey(sim.MixKey3(uint64(n.cfg.Seed)^sendKeyTag, uint64(src.id), src.sendSeq))
	if n.cfg.LossProb > 0 && dc.krand.Float64() < n.cfg.LossProb {
		dc.stats.Lost++
		if dc.trace != nil {
			dc.trace.Record(obs.Event{At: dc.sched.Now(), Kind: obs.KindLoss, Code: uint8(msg.Command()),
				P1: uint64(src.id), P2: uint64(dst.id), P3: uint64(size)})
		}
		return
	}
	txTime := time.Duration(float64(size) / n.cfg.Latency.RateBytesPerSec * float64(time.Second))
	now := dc.sched.Now()
	start := now
	if src.uplinkFreeAt > start {
		start = src.uplinkFreeAt
	}
	src.uplinkFreeAt = start + txTime
	delay := (start + txTime - now) + n.link(src, dst).SampleOneWay(dc.krand)
	if ddc := dst.dctx; ddc == dc {
		dc.sched.AfterCall(delay, runDelivery, dc.newDelivery(n, src.id, dst.slot, dst.id, msg))
	} else {
		n.par.ws.Stage(dc.part, now+delay, ddc.part,
			uint64(src.id), src.sendSeq, runDelivery, dc.newDelivery(n, src.id, dst.slot, dst.id, msg))
	}
}

// send looks up both endpoints and delivers; it silently drops if either
// endpoint is gone (matching a TCP RST on a dead host).
func (n *Network) send(from NodeID, to NodeID, msg wire.Message) {
	src, ok := n.nodes[from]
	if !ok {
		//bcbptlint:allow partiso — missing-endpoint drop: nodes are only removed by serial-mode churn, so this branch cannot run mid-window
		n.serial.stats.Dropped++
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		//bcbptlint:allow partiso — missing-endpoint drop: nodes are only removed by serial-mode churn, so this branch cannot run mid-window
		n.serial.stats.Dropped++
		return
	}
	n.deliver(src, dst, msg)
}

// Connection errors.
var (
	ErrSelfConnect   = errors.New("p2p: node cannot connect to itself")
	ErrAlreadyPeers  = errors.New("p2p: already connected")
	ErrPeerCapacity  = errors.New("p2p: peer at capacity")
	ErrUnknownNode   = errors.New("p2p: unknown node")
	ErrOutboundLimit = errors.New("p2p: outbound limit reached")
)

// Connect establishes a connection initiated by a to b. The handshake
// (version/verack) is charged one RTT plus message costs; the connection
// becomes usable immediately for the initiator's bookkeeping, matching
// the simulator granularity of the paper.
func (n *Network) Connect(a, b NodeID) error {
	return n.connect(a, b, true)
}

// ConnectUnbounded is Connect without the initiator's outbound cap —
// measurement instrumentation (the degree-sweep experiments wire the
// measuring node to arbitrary connection counts). MaxPeers still applies
// on both sides.
func (n *Network) ConnectUnbounded(a, b NodeID) error {
	return n.connect(a, b, false)
}

func (n *Network) connect(a, b NodeID, enforceOutbound bool) error {
	if n.par != nil {
		return errors.New("p2p: connect while parallel dispatch enabled")
	}
	if a == b {
		return ErrSelfConnect
	}
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, b)
	}
	if na.peerPos(b) >= 0 {
		return ErrAlreadyPeers
	}
	if enforceOutbound && na.nOut >= n.cfg.MaxOutbound {
		return ErrOutboundLimit
	}
	if na.nPeers >= n.cfg.MaxPeers {
		return ErrOutboundLimit
	}
	if nb.nPeers >= n.cfg.MaxPeers {
		return ErrPeerCapacity
	}
	// Charge the handshake: version + verack each way. Connections are
	// only made from the serial (topology) phase, never mid-window.
	n.serial.stats.count(wire.CmdVersion, versionSize)
	n.serial.stats.count(wire.CmdVerack, verackSize)
	n.serial.stats.count(wire.CmdVersion, versionSize)
	n.serial.stats.count(wire.CmdVerack, verackSize)
	na.addPeer(nb, true)
	nb.addPeer(na, false)
	return nil
}

// approximate handshake frame sizes (header + typical payload).
const (
	versionSize = 13 + 4 + 26 + 4 + 1 + 10
	verackSize  = 13
)

// Disconnect tears down the connection between a and b (no-op if absent).
func (n *Network) Disconnect(a, b NodeID) {
	na, ok := n.nodes[a]
	if !ok {
		return
	}
	if na.peerPos(b) < 0 {
		return
	}
	n.teardown(na, b)
}

// teardown removes the edge from both sides and fires OnDisconnect.
func (n *Network) teardown(na *Node, b NodeID) {
	if n.par != nil {
		panic("p2p: disconnect while parallel dispatch enabled")
	}
	na.removePeer(b)
	if nb, ok := n.nodes[b]; ok {
		nb.removePeer(na.id)
	}
	if n.OnDisconnect != nil {
		n.OnDisconnect(na.id, b)
	}
}

// verifyJob is the pooled payload behind a deferred verification event:
// a transaction or block whose modelled verification delay has elapsed.
type verifyJob struct {
	net   *Network
	node  NodeID
	from  NodeID
	tx    *chain.Tx
	block *chain.Block
}

// runVerify is the static dispatch target for verification events. Verify
// jobs are scheduled on the verifying node's own partition, so the pool
// round-trips through a single dispatch context.
func runVerify(a any) {
	j := a.(*verifyJob)
	n, nodeID, from, tx, block := j.net, j.node, j.from, j.tx, j.block
	j.tx, j.block = nil, nil
	node, ok := n.nodes[nodeID]
	if !ok {
		//bcbptlint:allow partiso — churned-verifier fallback: node removal is serial-only, so this branch cannot run mid-window
		n.serial.verifyPool = append(n.serial.verifyPool, j)
		return
	}
	node.dctx.verifyPool = append(node.dctx.verifyPool, j)
	if tx != nil {
		_ = node.acceptTx(tx, from) // invalid txs die here, by design
		return
	}
	_ = node.acceptBlock(block, from)
}

// probeJob is the pooled payload behind one scheduled ProbeN ping: the
// churn-safe (slot, id) handle of the probing node, its target, and the
// completion callback shared by all pings of one ProbeN call.
type probeJob struct {
	net    *Network
	slot   int32
	id     NodeID
	target NodeID
	onPong func(time.Duration)
}

// runProbe is the static dispatch target for ProbeN's spaced pings.
// Probe jobs are scheduled on the probing node's own partition.
func runProbe(a any) {
	j := a.(*probeJob)
	n, slot, id, target, onPong := j.net, j.slot, j.id, j.target, j.onPong
	j.onPong = nil
	node := n.nodeAt(slot, id)
	if node == nil {
		//bcbptlint:allow partiso — churned-prober fallback: node removal is serial-only, so this branch cannot run mid-window
		n.serial.probePool = append(n.serial.probePool, j)
		return // prober churned out; the probe is simply lost
	}
	node.dctx.probePool = append(node.dctx.probePool, j)
	node.Probe(target, onPong)
}

// ResetInventory clears every node's seen-transaction state. Measurement
// harnesses call this between runs so memory stays bounded over thousands
// of injected transactions. With the generation-stamped layout this is a
// generation bump plus an O(active hashes) registry clear: no per-node
// work at all outside ValidationFull mode, whose mempools are real
// containers that must be drained.
func (n *Network) ResetInventory() {
	if n.par != nil {
		// Between-runs housekeeping for parallel dispatch: even pooled
		// payloads back out across partitions so systematic migration
		// drift (see rebalancePool) cannot force steady-state allocation.
		n.par.rebalancePools()
	}
	n.invGen++
	if n.invGen == 0 {
		// Generation counter wrapped (after ~4 billion resets): stale
		// stamps could alias the new generation, so hard-reset every
		// node's arrays once and restart from generation 1.
		n.invGen = 1
		for _, node := range n.slots {
			if node != nil {
				node.inv = nodeInv{}
			}
		}
	}
	clear(n.hashIdx)
	n.hashN = 0
	if n.cfg.Validation == ValidationFull {
		for _, node := range n.slots {
			if node == nil || node.mempool == nil {
				continue
			}
			for _, id := range node.mempool.IDs() {
				node.mempool.Remove(id)
			}
		}
	}
}

// StartKeepalive begins the periodic peer-ping service configured by
// Config.PingInterval: every interval, every node pings each of its
// peers, feeding the RTT estimators that cluster maintenance reads (the
// paper's repeated measurement requirement, §IV.A). Returns nil when
// PingInterval is zero. Stop the returned ticker to halt the service —
// otherwise the event queue never drains (use RunUntil).
func (n *Network) StartKeepalive() *sim.Ticker {
	if n.cfg.PingInterval <= 0 {
		return nil
	}
	return n.sched.NewTicker(n.cfg.PingInterval, func() {
		for _, id := range n.NodeIDs() {
			node, ok := n.nodes[id]
			if !ok {
				continue
			}
			for _, ref := range node.sortedPeers() {
				node.Probe(ref.id, nil)
			}
		}
	})
}

// Run drains the event queue. Unsupported in parallel mode, which needs
// a finite horizon to window against — use RunUntil there.
func (n *Network) Run() error {
	if n.par != nil {
		return errors.New("p2p: Run unsupported in parallel mode; use RunUntil")
	}
	return n.sched.Run()
}

// StopRun halts the current run from inside an event callback: the serial
// scheduler stops after the running event; the parallel kernel stops at
// the next window barrier (conservative windows cannot be interrupted
// without desynchronising partition clocks — the few extra events that
// complete the window were independent of the stop decision by the
// lookahead argument, and a subsequent RunUntil drains identically either
// way). Safe to call from any partition's worker.
func (n *Network) StopRun() {
	if n.par != nil {
		n.par.ws.Stop()
		return
	}
	n.sched.Stop()
}

// RunUntil processes events up to the virtual-time limit, polling ctx so
// a long run — a large BCBPT bootstrap, a deep measurement campaign — is
// promptly cancellable. On cancellation it returns an error wrapping
// ctx.Err() with the virtual time reached; pending events stay queued.
// In parallel mode the same contract is honoured by the window kernel.
func (n *Network) RunUntil(ctx context.Context, limit sim.Time) error {
	var err error
	if n.par != nil {
		err = n.par.ws.RunUntilCtx(ctx, limit)
	} else {
		err = n.sched.RunUntilCtx(ctx, limit)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("p2p: run interrupted at t=%v: %w", n.Now(), err)
		}
		return err
	}
	return nil
}

// Close releases a network that will not run again: it stops the
// scheduler, drops every pending event (whose closures otherwise pin
// nodes and messages live), and detaches the measurement and topology
// hooks. Build harnesses call it on their error paths so an abandoned
// half-bootstrapped network cannot keep state alive or resume by
// accident. Close is idempotent; node state stays readable.
func (n *Network) Close() {
	if n.par != nil {
		n.par.ws.Clear()
		n.par.ws.Close()
		for _, nd := range n.slots {
			if nd != nil {
				nd.dctx = &n.serial
			}
		}
		n.par = nil
	}
	n.sched.Stop()
	n.sched.Clear()
	n.OnTxFirstSeen = nil
	n.OnBlockFirstSeen = nil
	n.OnDisconnect = nil
	n.DisableTrace()
}
