// Package p2p implements the simulated Bitcoin peer-to-peer network: nodes
// with the INV/GETDATA/TX relay protocol of Fig. 1 of the paper, latency-
// weighted message delivery, ping measurement, address gossip, and churn
// hooks. Neighbour selection policy is deliberately NOT here — the
// internal/topology package wires nodes together (randomly, by locality,
// or by ping time) on top of these primitives.
//
// The network is an overlay: any node may message any other (as any host
// can dial any other over IP); the peer graph only determines where
// gossip flows. That distinction is what lets BCBPT ping-probe discovered
// nodes before deciding to peer with them.
package p2p

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/latency"
	"repro/internal/sim"
	"repro/internal/wire"
)

// NodeID identifies a node in the simulated network.
type NodeID uint64

// ValidationMode selects how much transaction validation nodes perform.
type ValidationMode int

const (
	// ValidationLight checks well-formedness and charges the virtual
	// verification cost, but skips ECDSA and UTXO lookups. The right
	// default for large propagation experiments: the *time* cost of
	// verification is still modelled, only the CPU burn is skipped.
	ValidationLight ValidationMode = iota
	// ValidationFull runs real signature and UTXO validation per node.
	ValidationFull
	// ValidationNone treats transactions as opaque payloads (inventory
	// propagation only).
	ValidationNone
)

// String implements fmt.Stringer.
func (v ValidationMode) String() string {
	switch v {
	case ValidationFull:
		return "full"
	case ValidationLight:
		return "light"
	case ValidationNone:
		return "none"
	default:
		return fmt.Sprintf("ValidationMode(%d)", int(v))
	}
}

// RelayMode selects how transactions propagate between peers.
type RelayMode int

const (
	// RelayInv is the three-step INV/GETDATA/TX exchange of Fig. 1 —
	// the Bitcoin protocol of the paper's era.
	RelayInv RelayMode = iota
	// RelayDirect pushes the full transaction immediately without the
	// INV round trip — the pipelining of the paper's refs [9]/[10]
	// (Stathakopoulou's "faster Bitcoin network"). Used by the
	// direct-relay ablation.
	RelayDirect
)

// String implements fmt.Stringer.
func (m RelayMode) String() string {
	switch m {
	case RelayInv:
		return "inv"
	case RelayDirect:
		return "direct"
	default:
		return fmt.Sprintf("RelayMode(%d)", int(m))
	}
}

// Config parameterises a Network.
type Config struct {
	// Latency configures the link model (eqs. 2-4).
	Latency latency.Params
	// VerifyCost converts transactions into virtual verification delay.
	VerifyCost chain.VerifyCostModel
	// Validation selects per-node validation depth.
	Validation ValidationMode
	// Relay selects the propagation exchange (default: RelayInv, Fig. 1).
	Relay RelayMode
	// MaxOutbound caps connections a node initiates (Bitcoin: 8).
	MaxOutbound int
	// MaxPeers caps total connections per node (Bitcoin: 125).
	MaxPeers int
	// PingInterval is the keepalive ping period for connected peers.
	// Zero disables keepalive pings.
	PingInterval time.Duration
	// LossProb drops each delivered message independently with this
	// probability (failure injection; "errors such as loss of connection
	// and data corruption are expected", §V.B). 0 disables loss.
	LossProb float64
	// BaseUTXO, when set, seeds every node's ledger view (Full mode).
	BaseUTXO *chain.UTXOSet
	// Seed roots all randomness.
	Seed int64
}

// DefaultConfig returns the configuration used by the paper experiments.
func DefaultConfig() Config {
	return Config{
		Latency:      latency.DefaultParams(),
		VerifyCost:   chain.DefaultVerifyCost(),
		Validation:   ValidationLight,
		MaxOutbound:  8,
		MaxPeers:     125,
		PingInterval: 30 * time.Second,
		Seed:         1,
	}
}

// Network owns the scheduler, all nodes, and the link-latency state.
// It is single-threaded: all interaction happens through scheduled events.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	streams *sim.Streams
	model   *latency.Model

	nodes  map[NodeID]*Node
	nextID NodeID
	links  map[linkKey]latency.Link

	// Hot-path random streams, resolved once at construction so delivery
	// never pays the Streams map lookup. Stream derivation is a pure
	// function of (seed, name), so pre-resolving changes nothing.
	lossRng     *rand.Rand
	deliveryRng *rand.Rand
	linksRng    *rand.Rand

	// deliveryPool and verifyPool recycle the payload structs behind the
	// scheduler's AfterCall events: a 2000-node flood schedules one
	// delivery per in-flight message and one verify job per (node, tx)
	// first-sight, and pooling them (with the arena kernel's closure-free
	// AfterCall) keeps the steady-state flood at zero allocations per
	// event instead of one closure per (peer, hash) pair.
	deliveryPool []*delivery
	verifyPool   []*verifyJob

	// pingPool, pongPool and getDataPool recycle the three message types
	// that are built fresh per recipient on hot paths (announcements share
	// one INV/TX across recipients, but every GETDATA, keepalive ping and
	// pong is its own message). These messages are single-recipient and
	// consumed entirely inside handleMessage, so runDelivery returns them
	// to the pools right after dispatch. Messages dropped by loss or a
	// vanished sender simply miss the pool — correctness never depends on
	// recycling.
	pingPool    []*wire.MsgPing
	pongPool    []*wire.MsgPong
	getDataPool []*wire.MsgGetData
	// pingPad is the shared keepalive/probe padding: pings carry Pad only
	// so their on-wire size matches the latency model's Mping, the bytes
	// are never read, and messages are immutable after send — so every
	// ping shares one zeroed buffer instead of allocating its own.
	pingPad []byte

	stats Stats

	// OnTxFirstSeen fires when a node accepts a transaction it had not
	// seen before (after verification delay). Measurement hooks in.
	OnTxFirstSeen func(node NodeID, tx chain.Hash, at sim.Time)
	// OnBlockFirstSeen fires when a node accepts a block it had not seen
	// before (after verification delay).
	OnBlockFirstSeen func(node NodeID, block chain.Hash, at sim.Time)
	// OnDisconnect fires after a connection is torn down, letting the
	// topology manager refill the peer's slots.
	OnDisconnect func(a, b NodeID)
}

type linkKey struct{ lo, hi NodeID }

func mkLinkKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{lo: a, hi: b}
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.MaxOutbound <= 0 || cfg.MaxPeers <= 0 {
		return nil, errors.New("p2p: MaxOutbound and MaxPeers must be positive")
	}
	if cfg.MaxOutbound > cfg.MaxPeers {
		return nil, fmt.Errorf("p2p: MaxOutbound %d > MaxPeers %d", cfg.MaxOutbound, cfg.MaxPeers)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("p2p: LossProb %g outside [0,1)", cfg.LossProb)
	}
	model, err := latency.NewModel(cfg.Latency)
	if err != nil {
		return nil, err
	}
	streams := sim.NewStreams(cfg.Seed)
	return &Network{
		cfg:         cfg,
		sched:       sim.NewScheduler(),
		streams:     streams,
		model:       model,
		nodes:       make(map[NodeID]*Node),
		links:       make(map[linkKey]latency.Link),
		lossRng:     streams.Stream("loss"),
		deliveryRng: streams.Stream("delivery"),
		linksRng:    streams.Stream("links"),
	}, nil
}

// Scheduler exposes the simulation clock and event queue.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Streams exposes the named random streams.
func (n *Network) Streams() *sim.Streams { return n.streams }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the message counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the message counters (used between measurement runs).
func (n *Network) ResetStats() { n.stats = Stats{} }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// NumNodes returns the number of live nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// AddNode creates a node at the given location and returns it.
func (n *Network) AddNode(loc geo.Location) *Node {
	n.nextID++
	id := n.nextID
	node := &Node{
		id:      id,
		loc:     loc,
		net:     n,
		peers:   make(map[NodeID]*peerState),
		known:   make(map[chain.Hash]sim.Time, 16),
		peerInv: make(map[chain.Hash]map[NodeID]struct{}, 16),
		pending: make(map[uint64]pendingPing),
	}
	if n.cfg.Validation == ValidationFull {
		base := n.cfg.BaseUTXO
		if base == nil {
			base = chain.NewUTXOSet()
		}
		node.mempool = chain.NewMempool(base.Clone(), 0)
	}
	n.nodes[id] = node
	return node
}

// Node returns the node with the given ID, if it exists.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// NodeIDs returns all live node IDs in ascending order.
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := NodeID(1); id <= n.nextID; id++ {
		if _, ok := n.nodes[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// RemoveNode disconnects and deletes a node (a churn "leave" event).
// Removing an unknown node is a no-op. The node is deleted from the
// network before OnDisconnect fires, so refill logic running inside the
// callback can never reconnect to the departing node; peers are processed
// in sorted order for determinism.
func (n *Network) RemoveNode(id NodeID) {
	node, ok := n.nodes[id]
	if !ok {
		return
	}
	delete(n.nodes, id)
	for _, peerID := range node.Peers() {
		delete(node.peers, peerID)
		node.invalidatePeers()
		if nb, ok := n.nodes[peerID]; ok {
			delete(nb.peers, id)
			nb.invalidatePeers()
		}
		if n.OnDisconnect != nil {
			n.OnDisconnect(id, peerID)
		}
	}
}

// link returns (creating on first use) the latency link between two nodes.
func (n *Network) link(a, b *Node) latency.Link {
	key := mkLinkKey(a.id, b.id)
	if l, ok := n.links[key]; ok {
		return l
	}
	l := n.model.NewLink(n.linksRng, a.loc.Coord, b.loc.Coord)
	n.links[key] = l
	return l
}

// BaseRTT returns the congestion-free round-trip time between two nodes —
// the simulator's ground truth, used by experiments to verify clustering
// quality. Returns false if either node is gone.
func (n *Network) BaseRTT(a, b NodeID) (time.Duration, bool) {
	na, ok := n.nodes[a]
	if !ok {
		return 0, false
	}
	nb, ok := n.nodes[b]
	if !ok {
		return 0, false
	}
	return n.link(na, nb).Base(), true
}

// delivery is the pooled payload behind one in-flight message event.
type delivery struct {
	net *Network
	src NodeID
	dst NodeID
	msg wire.Message
}

// runDelivery is the static dispatch target for delivery events: no
// closure is allocated per message. The payload struct is returned to the
// pool before the message is handled, so handlers that immediately send
// (relay) reuse it for their own deliveries.
func runDelivery(a any) {
	d := a.(*delivery)
	n, src, dst, msg := d.net, d.src, d.dst, d.msg
	d.msg = nil
	n.deliveryPool = append(n.deliveryPool, d)
	// The destination may have churned away mid-flight.
	node, ok := n.nodes[dst]
	if ok {
		node.handleMessage(src, msg)
	} else {
		n.stats.Dropped++
	}
	n.recycleMessage(msg)
}

// recycleMessage returns a fully handled single-recipient message to its
// pool. Only types that handlers never retain are pooled: pings and pongs
// are read for their nonce, GETDATAs for their item list, and none of
// them outlives handleMessage. Shared announcement messages (INV/TX) and
// everything the topology layer might hold onto stay unpooled.
func (n *Network) recycleMessage(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgPing:
		m.Pad = nil
		n.pingPool = append(n.pingPool, m)
	case *wire.MsgPong:
		n.pongPool = append(n.pongPool, m)
	case *wire.MsgGetData:
		m.Items = m.Items[:0]
		n.getDataPool = append(n.getDataPool, m)
	}
}

// newPing pops a pooled ping (or allocates) with the shared pad.
func (n *Network) newPing(nonce uint64, padBytes int) *wire.MsgPing {
	pad := n.sharedPad(padBytes)
	if last := len(n.pingPool) - 1; last >= 0 {
		m := n.pingPool[last]
		n.pingPool = n.pingPool[:last]
		m.Nonce, m.Pad = nonce, pad
		return m
	}
	return &wire.MsgPing{Nonce: nonce, Pad: pad}
}

// newPong pops a pooled pong (or allocates).
func (n *Network) newPong(nonce uint64) *wire.MsgPong {
	if last := len(n.pongPool) - 1; last >= 0 {
		m := n.pongPool[last]
		n.pongPool = n.pongPool[:last]
		m.Nonce = nonce
		return m
	}
	return &wire.MsgPong{Nonce: nonce}
}

// newGetData pops a pooled, zero-length GETDATA (or allocates); callers
// append their wanted items to Items.
func (n *Network) newGetData() *wire.MsgGetData {
	if last := len(n.getDataPool) - 1; last >= 0 {
		m := n.getDataPool[last]
		n.getDataPool = n.getDataPool[:last]
		return m
	}
	return &wire.MsgGetData{}
}

// sharedPad returns a zeroed scratch slice of the given size, grown once
// and shared by every ping in flight (ping padding is write-never data).
func (n *Network) sharedPad(size int) []byte {
	if size > len(n.pingPad) {
		n.pingPad = make([]byte, size)
	}
	return n.pingPad[:size]
}

// newDelivery pops a pooled payload (or allocates on first use).
func (n *Network) newDelivery(src, dst NodeID, msg wire.Message) *delivery {
	if last := len(n.deliveryPool) - 1; last >= 0 {
		d := n.deliveryPool[last]
		n.deliveryPool = n.deliveryPool[:last]
		d.src, d.dst, d.msg = src, dst, msg
		return d
	}
	return &delivery{net: n, src: src, dst: dst, msg: msg}
}

// deliver schedules msg to arrive at dst after serialization on the
// sender's uplink plus the link's sampled one-way delay. The uplink is a
// serial resource: concurrent sends queue behind each other (the rate(r)
// and queuing terms of eqs. 2 and 4 applied to all traffic, not just
// pings) — this is what makes announcing to many peers progressively
// slower for the later ones.
func (n *Network) deliver(src, dst *Node, msg wire.Message) {
	size := wire.EncodedSize(msg)
	n.stats.count(msg.Command(), size)
	if n.cfg.LossProb > 0 && n.lossRng.Float64() < n.cfg.LossProb {
		n.stats.Lost++
		return
	}
	txTime := time.Duration(float64(size) / n.cfg.Latency.RateBytesPerSec * float64(time.Second))
	start := n.sched.Now()
	if src.uplinkFreeAt > start {
		start = src.uplinkFreeAt
	}
	src.uplinkFreeAt = start + txTime
	delay := (start + txTime - n.sched.Now()) + n.link(src, dst).SampleOneWay(n.deliveryRng)
	n.sched.AfterCall(delay, runDelivery, n.newDelivery(src.id, dst.id, msg))
}

// send looks up both endpoints and delivers; it silently drops if either
// endpoint is gone (matching a TCP RST on a dead host).
func (n *Network) send(from NodeID, to NodeID, msg wire.Message) {
	src, ok := n.nodes[from]
	if !ok {
		n.stats.Dropped++
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.stats.Dropped++
		return
	}
	n.deliver(src, dst, msg)
}

// Connection errors.
var (
	ErrSelfConnect   = errors.New("p2p: node cannot connect to itself")
	ErrAlreadyPeers  = errors.New("p2p: already connected")
	ErrPeerCapacity  = errors.New("p2p: peer at capacity")
	ErrUnknownNode   = errors.New("p2p: unknown node")
	ErrOutboundLimit = errors.New("p2p: outbound limit reached")
)

// Connect establishes a connection initiated by a to b. The handshake
// (version/verack) is charged one RTT plus message costs; the connection
// becomes usable immediately for the initiator's bookkeeping, matching
// the simulator granularity of the paper.
func (n *Network) Connect(a, b NodeID) error {
	return n.connect(a, b, true)
}

// ConnectUnbounded is Connect without the initiator's outbound cap —
// measurement instrumentation (the degree-sweep experiments wire the
// measuring node to arbitrary connection counts). MaxPeers still applies
// on both sides.
func (n *Network) ConnectUnbounded(a, b NodeID) error {
	return n.connect(a, b, false)
}

func (n *Network) connect(a, b NodeID, enforceOutbound bool) error {
	if a == b {
		return ErrSelfConnect
	}
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, b)
	}
	if _, dup := na.peers[b]; dup {
		return ErrAlreadyPeers
	}
	if enforceOutbound && na.Outbound() >= n.cfg.MaxOutbound {
		return ErrOutboundLimit
	}
	if len(na.peers) >= n.cfg.MaxPeers {
		return ErrOutboundLimit
	}
	if len(nb.peers) >= n.cfg.MaxPeers {
		return ErrPeerCapacity
	}
	// Charge the handshake: version + verack each way.
	n.stats.count(wire.CmdVersion, versionSize)
	n.stats.count(wire.CmdVerack, verackSize)
	n.stats.count(wire.CmdVersion, versionSize)
	n.stats.count(wire.CmdVerack, verackSize)
	na.peers[b] = &peerState{outbound: true}
	nb.peers[a] = &peerState{outbound: false}
	na.invalidatePeers()
	nb.invalidatePeers()
	return nil
}

// approximate handshake frame sizes (header + typical payload).
const (
	versionSize = 13 + 4 + 26 + 4 + 1 + 10
	verackSize  = 13
)

// Disconnect tears down the connection between a and b (no-op if absent).
func (n *Network) Disconnect(a, b NodeID) {
	na, ok := n.nodes[a]
	if !ok {
		return
	}
	if _, connected := na.peers[b]; !connected {
		return
	}
	n.teardown(na, b)
}

// teardown removes the edge from both sides and fires OnDisconnect.
func (n *Network) teardown(na *Node, b NodeID) {
	delete(na.peers, b)
	na.invalidatePeers()
	if nb, ok := n.nodes[b]; ok {
		delete(nb.peers, na.id)
		nb.invalidatePeers()
	}
	if n.OnDisconnect != nil {
		n.OnDisconnect(na.id, b)
	}
}

// verifyJob is the pooled payload behind a deferred verification event:
// a transaction or block whose modelled verification delay has elapsed.
type verifyJob struct {
	net   *Network
	node  NodeID
	from  NodeID
	tx    *chain.Tx
	block *chain.Block
}

// runVerify is the static dispatch target for verification events.
func runVerify(a any) {
	j := a.(*verifyJob)
	n, nodeID, from, tx, block := j.net, j.node, j.from, j.tx, j.block
	j.tx, j.block = nil, nil
	n.verifyPool = append(n.verifyPool, j)
	node, ok := n.nodes[nodeID]
	if !ok {
		return
	}
	if tx != nil {
		_ = node.acceptTx(tx, from) // invalid txs die here, by design
		return
	}
	_ = node.acceptBlock(block, from)
}

// newVerifyJob pops a pooled payload (or allocates on first use).
func (n *Network) newVerifyJob(node, from NodeID, tx *chain.Tx, block *chain.Block) *verifyJob {
	if last := len(n.verifyPool) - 1; last >= 0 {
		j := n.verifyPool[last]
		n.verifyPool = n.verifyPool[:last]
		j.node, j.from, j.tx, j.block = node, from, tx, block
		return j
	}
	return &verifyJob{net: n, node: node, from: from, tx: tx, block: block}
}

// ResetInventory clears every node's seen-transaction state. Measurement
// harnesses call this between runs so memory stays bounded over thousands
// of injected transactions. Maps are cleared in place and peerInv inner
// sets recycled through each node's pool, so a campaign's thousandth run
// allocates nothing the first run did not.
func (n *Network) ResetInventory() {
	for _, node := range n.nodes {
		clear(node.known)
		for h, set := range node.peerInv {
			clear(set)
			node.invSetPool = append(node.invSetPool, set)
			delete(node.peerInv, h)
		}
		clear(node.txData)
		clear(node.blockData)
		clear(node.requested)
		if node.mempool != nil {
			for _, id := range node.mempool.IDs() {
				node.mempool.Remove(id)
			}
		}
	}
}

// StartKeepalive begins the periodic peer-ping service configured by
// Config.PingInterval: every interval, every node pings each of its
// peers, feeding the RTT estimators that cluster maintenance reads (the
// paper's repeated measurement requirement, §IV.A). Returns nil when
// PingInterval is zero. Stop the returned ticker to halt the service —
// otherwise the event queue never drains (use RunUntil).
func (n *Network) StartKeepalive() *sim.Ticker {
	if n.cfg.PingInterval <= 0 {
		return nil
	}
	return n.sched.NewTicker(n.cfg.PingInterval, func() {
		for _, id := range n.NodeIDs() {
			node, ok := n.nodes[id]
			if !ok {
				continue
			}
			for _, p := range node.sortedPeers() {
				node.Probe(p, nil)
			}
		}
	})
}

// Run drains the event queue.
func (n *Network) Run() error { return n.sched.Run() }

// RunUntil processes events up to the virtual-time limit, polling ctx so
// a long run — a large BCBPT bootstrap, a deep measurement campaign — is
// promptly cancellable. On cancellation it returns an error wrapping
// ctx.Err() with the virtual time reached; pending events stay queued.
func (n *Network) RunUntil(ctx context.Context, limit sim.Time) error {
	if err := n.sched.RunUntilCtx(ctx, limit); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("p2p: run interrupted at t=%v: %w", n.sched.Now(), err)
		}
		return err
	}
	return nil
}

// Close releases a network that will not run again: it stops the
// scheduler, drops every pending event (whose closures otherwise pin
// nodes and messages live), and detaches the measurement and topology
// hooks. Build harnesses call it on their error paths so an abandoned
// half-bootstrapped network cannot keep state alive or resume by
// accident. Close is idempotent; node state stays readable.
func (n *Network) Close() {
	n.sched.Stop()
	n.sched.Clear()
	n.OnTxFirstSeen = nil
	n.OnBlockFirstSeen = nil
	n.OnDisconnect = nil
}
