package p2p

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Conservative parallel dispatch for the flood path.
//
// The network's nodes are partitioned into event domains (the topology's
// clusters — see EnableParallelDispatch), each owning one partition of a
// sim.WindowScheduler. Every event a node executes — message handling,
// verification, probing — runs in that node's partition; sends to a node
// in the same partition schedule directly on the partition scheduler,
// while sends to another partition are staged and committed at the window
// barrier in canonical (at, sender, sendSeq) order. The lookahead bound
// certifying the windows is the minimum latency floor over cross-partition
// peer links (latency.Link.FloorOneWay): a message can never cross
// partitions in less virtual time, so events within one window are
// causally independent across partitions.
//
// Bit-identity with the serial kernel follows from two properties. First,
// all randomness on the delivery path is keyed by stable identities (see
// Network.deliver and Network.makeLink) rather than drawn from shared
// sequential streams, so values do not depend on global dispatch order.
// Second, each node's event sequence is totally ordered by its partition's
// (at, seq) heap, and the commit order of cross-partition events is the
// canonical (at, sender, sendSeq) — the same order the serial kernel
// would deliver them in, up to exact virtual-time ties between distinct
// senders, which the continuous delay model makes a measure-zero event.
//
// The mode is strictly a dispatch strategy: enabling it with any worker
// or partition count yields byte-identical measurements, CSVs and stats
// to the serial kernel. Topology mutation (add/remove/connect/disconnect)
// is forbidden while enabled; experiments with churn stay serial.

// Key-derivation tags separating the keyed RNG domains ("send" and
// "link" in ASCII, padded). Changing either changes every sampled delay.
const (
	sendKeyTag uint64 = 0x73656e644b657931 // "sendKey1"
	linkKeyTag uint64 = 0x6c696e6b4b657931 // "linkKey1"
)

// dispatchCtx is the per-partition dispatch state: scheduler, keyed RNG
// scratch, payload/message pools, and traffic counters. Serial mode uses
// a single context (Network.serial); parallel mode gives each partition
// its own, so the hot path never shares mutable state across workers.
type dispatchCtx struct {
	sched *sim.Scheduler
	part  int32
	stats Stats

	// ksrc/krand are the keyed delivery RNG: ksrc is re-keyed per send
	// and krand adapts it to Float64/NormFloat64 without allocating.
	ksrc  sim.KeyedSource
	krand *rand.Rand

	// Payload pools behind the scheduler's AfterCall events — see the
	// pooling rationale on runDelivery/runVerify/runProbe.
	deliveryPool []*delivery
	verifyPool   []*verifyJob
	probePool    []*probeJob

	// Message pools. Every hot-path message type is single-recipient and
	// consumed entirely inside handleMessage, so runDelivery returns them
	// right after dispatch. Messages dropped by loss or a vanished
	// endpoint simply miss the pool — correctness never depends on
	// recycling.
	pingPool     []*wire.MsgPing
	pongPool     []*wire.MsgPong
	getDataPool  []*wire.MsgGetData
	invPool      []*wire.MsgInv
	txMsgPool    []*wire.MsgTx
	blockMsgPool []*wire.MsgBlock
	// pingPad is the shared ping padding buffer (write-never data); one
	// per context so concurrent partitions never share a grow race.
	pingPad []byte

	// trace is the context's event-trace shard, nil unless tracing is
	// enabled (Network.EnableTrace). Each context owns its shard —
	// single-writer by construction, like stats — so the enabled path
	// records without locks and the disabled path costs one nil check.
	trace *obs.Shard
}

// init wires the context to its scheduler. The krand wrapper points at
// the embedded ksrc, so the context must not be copied after init.
func (dc *dispatchCtx) init(sched *sim.Scheduler, part int32) {
	dc.sched = sched
	dc.part = part
	dc.krand = rand.New(&dc.ksrc) // once per dispatch context at construction
}

// recycleMessage returns a fully handled single-recipient message to its
// pool. Only types that handlers never retain are pooled: pings and pongs
// are read for their nonce, GETDATAs and INVs for their item list, and TX
// and BLOCK wrappers for their payload pointer (the payload itself is
// shared and immutable; the wrapper is not retained). Everything the
// topology layer might hold onto stays unpooled.
func (dc *dispatchCtx) recycleMessage(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgPing:
		m.Pad = nil
		dc.pingPool = append(dc.pingPool, m)
	case *wire.MsgPong:
		dc.pongPool = append(dc.pongPool, m)
	case *wire.MsgGetData:
		m.Items = m.Items[:0]
		dc.getDataPool = append(dc.getDataPool, m)
	case *wire.MsgInv:
		m.Items = m.Items[:0]
		dc.invPool = append(dc.invPool, m)
	case *wire.MsgTx:
		m.Tx = nil
		dc.txMsgPool = append(dc.txMsgPool, m)
	case *wire.MsgBlock:
		m.Block = nil
		dc.blockMsgPool = append(dc.blockMsgPool, m)
	}
}

// newPing pops a pooled ping (or allocates) with the shared pad.
func (dc *dispatchCtx) newPing(nonce uint64, padBytes int) *wire.MsgPing {
	pad := dc.sharedPad(padBytes)
	if last := len(dc.pingPool) - 1; last >= 0 {
		m := dc.pingPool[last]
		dc.pingPool = dc.pingPool[:last]
		m.Nonce, m.Pad = nonce, pad
		return m
	}
	return &wire.MsgPing{Nonce: nonce, Pad: pad}
}

// newPong pops a pooled pong (or allocates).
func (dc *dispatchCtx) newPong(nonce uint64) *wire.MsgPong {
	if last := len(dc.pongPool) - 1; last >= 0 {
		m := dc.pongPool[last]
		dc.pongPool = dc.pongPool[:last]
		m.Nonce = nonce
		return m
	}
	return &wire.MsgPong{Nonce: nonce}
}

// newGetData pops a pooled, zero-length GETDATA (or allocates); callers
// append their wanted items to Items.
func (dc *dispatchCtx) newGetData() *wire.MsgGetData {
	if last := len(dc.getDataPool) - 1; last >= 0 {
		m := dc.getDataPool[last]
		dc.getDataPool = dc.getDataPool[:last]
		return m
	}
	return &wire.MsgGetData{}
}

// newInv pops a pooled single-item INV (or allocates).
func (dc *dispatchCtx) newInv(t wire.InvType, h chain.Hash) *wire.MsgInv {
	if last := len(dc.invPool) - 1; last >= 0 {
		m := dc.invPool[last]
		dc.invPool = dc.invPool[:last]
		m.Items = append(m.Items, wire.InvVect{Type: t, Hash: h})
		return m
	}
	return &wire.MsgInv{Items: []wire.InvVect{{Type: t, Hash: h}}}
}

// newTxMsg pops a pooled TX wrapper (or allocates).
func (dc *dispatchCtx) newTxMsg(tx *chain.Tx) *wire.MsgTx {
	if last := len(dc.txMsgPool) - 1; last >= 0 {
		m := dc.txMsgPool[last]
		dc.txMsgPool = dc.txMsgPool[:last]
		m.Tx = tx
		return m
	}
	return &wire.MsgTx{Tx: tx}
}

// newBlockMsg pops a pooled BLOCK wrapper (or allocates).
func (dc *dispatchCtx) newBlockMsg(b *chain.Block) *wire.MsgBlock {
	if last := len(dc.blockMsgPool) - 1; last >= 0 {
		m := dc.blockMsgPool[last]
		dc.blockMsgPool = dc.blockMsgPool[:last]
		m.Block = b
		return m
	}
	return &wire.MsgBlock{Block: b}
}

// sharedPad returns a zeroed scratch slice of the given size, grown once
// and shared by every ping in flight from this context.
func (dc *dispatchCtx) sharedPad(size int) []byte {
	if size > len(dc.pingPad) {
		dc.pingPad = make([]byte, size)
	}
	return dc.pingPad[:size]
}

// newDelivery pops a pooled payload (or allocates on first use).
func (dc *dispatchCtx) newDelivery(n *Network, src NodeID, dstSlot int32, dstID NodeID, msg wire.Message) *delivery {
	if last := len(dc.deliveryPool) - 1; last >= 0 {
		d := dc.deliveryPool[last]
		dc.deliveryPool = dc.deliveryPool[:last]
		d.src, d.dstSlot, d.dstID, d.msg = src, dstSlot, dstID, msg
		return d
	}
	return &delivery{net: n, src: src, dstSlot: dstSlot, dstID: dstID, msg: msg}
}

// newVerifyJob pops a pooled payload (or allocates on first use).
func (dc *dispatchCtx) newVerifyJob(n *Network, node, from NodeID, tx *chain.Tx, block *chain.Block) *verifyJob {
	if last := len(dc.verifyPool) - 1; last >= 0 {
		j := dc.verifyPool[last]
		dc.verifyPool = dc.verifyPool[:last]
		j.node, j.from, j.tx, j.block = node, from, tx, block
		return j
	}
	return &verifyJob{net: n, node: node, from: from, tx: tx, block: block}
}

// newProbeJob pops a pooled payload (or allocates on first use).
func (dc *dispatchCtx) newProbeJob(n *Network, slot int32, id, target NodeID, onPong func(time.Duration)) *probeJob {
	if last := len(dc.probePool) - 1; last >= 0 {
		j := dc.probePool[last]
		dc.probePool = dc.probePool[:last]
		j.slot, j.id, j.target, j.onPong = slot, id, target, onPong
		return j
	}
	return &probeJob{net: n, slot: slot, id: id, target: target, onPong: onPong}
}

// add merges o's counters into s (exact: flat array addition).
func (s *Stats) add(o *Stats) {
	for i := range s.Messages {
		s.Messages[i] += o.Messages[i]
		s.Bytes[i] += o.Bytes[i]
	}
	s.Dropped += o.Dropped
	s.Lost += o.Lost
}

// rebalancePool evens one pooled type back out across partitions. Pooled
// objects migrate: a cross-partition message is allocated from the
// sender's pool and freed into the receiver's, and the drift is
// systematic — the node that feeds a neighbour its first copy sends two
// payloads (INV, TX) and gets one back (GETDATA), so the same partitions
// drain a little on every flood and would allocate afresh each run
// forever. An even split between runs makes the totals converge: a
// partition that still misses allocates, the new object joins the shared
// stock, and once every partition's share covers its worst-case
// per-run deficit the steady state allocates nothing.
func rebalancePool[T any](parts []*dispatchCtx, pool func(*dispatchCtx) *[]T) {
	n := len(parts)
	total := 0
	for _, dc := range parts {
		total += len(*pool(dc))
	}
	share, extra := total/n, total%n
	j := 0
	for i := 0; i < n; i++ {
		src := pool(parts[i])
		ti := share
		if i < extra {
			ti++
		}
		for len(*src) > ti {
			// Advance j to the next partition still below target.
			for {
				if j >= n {
					return
				}
				tj := share
				if j < extra {
					tj++
				}
				if j != i && len(*pool(parts[j])) < tj {
					break
				}
				j++
			}
			dst := pool(parts[j])
			tj := share
			if j < extra {
				tj++
			}
			move := len(*src) - ti
			if d := tj - len(*dst); d < move {
				move = d
			}
			k := len(*src) - move
			*dst = append(*dst, (*src)[k:]...)
			clear((*src)[k:])
			*src = (*src)[:k]
		}
	}
}

// rebalancePools evens every pooled type across partitions. Called from
// ResetInventory (between runs, driver goroutine, workers idle) so pool
// drift cannot accumulate across a campaign.
func (p *parallelState) rebalancePools() {
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*delivery { return &dc.deliveryPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*verifyJob { return &dc.verifyPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*probeJob { return &dc.probePool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgPing { return &dc.pingPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgPong { return &dc.pongPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgGetData { return &dc.getDataPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgInv { return &dc.invPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgTx { return &dc.txMsgPool })
	rebalancePool(p.parts, func(dc *dispatchCtx) *[]*wire.MsgBlock { return &dc.blockMsgPool })
}

// PartitionPlan assigns every live node slot to an event domain.
type PartitionPlan struct {
	// Parts is the number of partitions (>= 2).
	Parts int
	// Of maps a node's dense slot index to its partition. It must cover
	// SlotCap() entries; entries for free slots are ignored.
	Of []int32
}

// parallelState is the network's parallel-mode machinery, non-nil while
// enabled.
type parallelState struct {
	ws        *sim.WindowScheduler
	plan      PartitionPlan
	parts     []*dispatchCtx
	lookahead time.Duration
}

// ParallelLookahead returns the certified window bound while parallel
// dispatch is enabled, for diagnostics and tests.
func (n *Network) ParallelLookahead() (time.Duration, bool) {
	if n.par == nil {
		return 0, false
	}
	return n.par.lookahead, true
}

// EnableParallelDispatch switches the network to conservative parallel
// dispatch with the given partition plan and worker count. Requirements:
// no parallel mode already active, no pending events (enable between
// runs, not mid-flood), at least two partitions, and every live node
// assigned a valid partition.
//
// The lookahead bound is computed as the minimum FloorOneWay over
// cross-partition peer links, which also pre-creates those links so the
// flood hot path never takes the creation lock. Traffic between
// non-peered nodes in different partitions (e.g. cross-partition probes)
// is not covered by the bound and will panic at the window barrier if it
// undercuts it — parallel mode is for relay floods over the peer graph.
//
// Results are byte-identical to serial for any plan and worker count;
// only wall-clock time changes. Topology mutation while enabled panics.
func (n *Network) EnableParallelDispatch(plan PartitionPlan, workers int) error {
	if n.par != nil {
		return errors.New("p2p: parallel dispatch already enabled")
	}
	if workers < 2 {
		return fmt.Errorf("p2p: parallel dispatch needs >= 2 workers, got %d", workers)
	}
	if plan.Parts < 2 {
		return fmt.Errorf("p2p: parallel dispatch needs >= 2 partitions, got %d", plan.Parts)
	}
	if len(plan.Of) < len(n.slots) {
		return fmt.Errorf("p2p: partition plan covers %d slots, network has %d", len(plan.Of), len(n.slots))
	}
	if n.sched.Len() != 0 {
		return fmt.Errorf("p2p: cannot enable parallel dispatch with %d pending events", n.sched.Len())
	}
	lookahead := time.Duration(0)
	crossEdges := 0
	for _, nd := range n.slots {
		if nd == nil {
			continue
		}
		p := plan.Of[nd.slot]
		if p < 0 || int(p) >= plan.Parts {
			return fmt.Errorf("p2p: node %d (slot %d) assigned invalid partition %d", nd.id, nd.slot, p)
		}
		for _, ref := range nd.sortedPeers() {
			if ref.id <= nd.id {
				continue // each edge once, from its lower endpoint
			}
			if plan.Of[ref.node.slot] == p {
				continue
			}
			f := n.link(nd, ref.node).FloorOneWay()
			if crossEdges == 0 || f < lookahead {
				lookahead = f
			}
			crossEdges++
		}
	}
	if crossEdges == 0 {
		// No cross-partition peer edges at all: the partitions are fully
		// independent and any positive window is conservative.
		lookahead = time.Second
	}
	if lookahead <= 0 {
		return fmt.Errorf("p2p: non-positive lookahead %v across %d cross-partition links", lookahead, crossEdges)
	}
	ws, err := sim.NewWindowScheduler(plan.Parts, workers, lookahead)
	if err != nil {
		return err
	}
	now := n.sched.Now()
	parts := make([]*dispatchCtx, plan.Parts)
	for i := range parts {
		ps := ws.Part(i)
		if now > 0 {
			// Align the fresh partition clocks with the network clock.
			if err := ps.RunUntilCtx(context.Background(), now); err != nil {
				ws.Close()
				return fmt.Errorf("p2p: aligning partition %d clock: %w", i, err)
			}
		}
		dc := &dispatchCtx{}
		dc.init(ps, int32(i))
		if n.tracer != nil {
			// Shard 0 is the driving goroutine's (serial context, window
			// control, measurement); partition i records on shard 1+i.
			dc.trace = n.tracer.Shard(1 + i)
		}
		parts[i] = dc
	}
	for _, nd := range n.slots {
		if nd != nil {
			nd.dctx = parts[plan.Of[nd.slot]]
		}
	}
	n.par = &parallelState{ws: ws, plan: plan, parts: parts, lookahead: lookahead}
	n.wireWindowTrace()
	return nil
}

// wireWindowTrace points the window scheduler's observability hooks at
// the tracer, or clears them. The hooks fire on the driving goroutine —
// the same goroutine that owns shard 0 — so recording there preserves
// the single-writer-per-shard discipline.
func (n *Network) wireWindowTrace() {
	if n.par == nil {
		return
	}
	ws := n.par.ws
	if n.tracer == nil {
		ws.OnWindowOpen, ws.OnWindowBarrier, ws.OnWindowCommit = nil, nil, nil
		return
	}
	tr := n.tracer.Shard(0)
	ws.OnWindowOpen = func(open, horizon sim.Time, index uint64) {
		// P2 is the window span in nanos: the JSON export renders the
		// open event as a complete slice with that duration.
		tr.Record(obs.Event{At: open, Kind: obs.KindWindowOpen, P1: index, P2: uint64(horizon - open + 1)})
	}
	ws.OnWindowBarrier = func(horizon sim.Time, index uint64, spanNanos int64) {
		tr.Record(obs.Event{At: horizon, Kind: obs.KindWindowBarrier, P1: index, P2: uint64(spanNanos)})
	}
	ws.OnWindowCommit = func(now sim.Time, index uint64, staged int) {
		tr.Record(obs.Event{At: now, Kind: obs.KindWindowCommit, P1: index, P2: uint64(staged)})
	}
}

// EnableWindowProfile installs a PDES window profile on the parallel
// dispatcher, accumulating per-partition busy time and window spans via
// the injected nanosecond clock (p2p is a deterministic package: it
// never reads the wall clock itself). Returns nil when the network is
// in serial mode — profiling is a parallel-dispatch diagnostic.
func (n *Network) EnableWindowProfile(clock func() int64) *sim.WindowProfile {
	if n.par == nil {
		return nil
	}
	return n.par.ws.EnableProfile(clock)
}

// DisableParallelDispatch returns the network to serial dispatch,
// folding partition counters and pools back into the serial context. It
// requires drained partitions (disable between runs) and advances the
// serial clock to the parallel clock so time never goes backward.
func (n *Network) DisableParallelDispatch() error {
	if n.par == nil {
		return nil
	}
	if pending := n.par.ws.Len(); pending != 0 {
		return fmt.Errorf("p2p: cannot disable parallel dispatch with %d pending events", pending)
	}
	if now := n.par.ws.Now(); now > n.sched.Now() {
		if err := n.sched.RunUntilCtx(context.Background(), now); err != nil {
			return fmt.Errorf("p2p: advancing serial clock: %w", err)
		}
	}
	for _, dc := range n.par.parts {
		n.serial.stats.add(&dc.stats)
		n.serial.deliveryPool = append(n.serial.deliveryPool, dc.deliveryPool...)
		n.serial.verifyPool = append(n.serial.verifyPool, dc.verifyPool...)
		n.serial.probePool = append(n.serial.probePool, dc.probePool...)
		n.serial.pingPool = append(n.serial.pingPool, dc.pingPool...)
		n.serial.pongPool = append(n.serial.pongPool, dc.pongPool...)
		n.serial.getDataPool = append(n.serial.getDataPool, dc.getDataPool...)
		n.serial.invPool = append(n.serial.invPool, dc.invPool...)
		n.serial.txMsgPool = append(n.serial.txMsgPool, dc.txMsgPool...)
		n.serial.blockMsgPool = append(n.serial.blockMsgPool, dc.blockMsgPool...)
	}
	for _, nd := range n.slots {
		if nd != nil {
			nd.dctx = &n.serial
		}
	}
	n.par.ws.Close()
	n.par = nil
	return nil
}
